//! Property tests over the workload kernels: every transform must
//! round-trip on arbitrary inputs (the paper's substrate must be *real*).

use hyperqueues::workloads::bzip2::block::{compress_block, decompress_block};
use hyperqueues::workloads::bzip2::bwt::{bwt, ibwt};
use hyperqueues::workloads::bzip2::mtf::{imtf, mtf, zle_decode, zle_encode};
use hyperqueues::workloads::bzip2::rle::{rle1_decode, rle1_encode};
use hyperqueues::workloads::dedup::compress::{compress, decompress};
use hyperqueues::workloads::dedup::rolling::{chunk_boundaries, ChunkParams};
use proptest::prelude::*;

/// Byte vectors biased toward runs and repetition (the adversarial cases
/// for RLE/BWT/LZ), plus plain random data.
fn byteish() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        prop::collection::vec(any::<u8>(), 0..4096),
        // Runny data.
        prop::collection::vec((any::<u8>(), 1usize..300), 0..24).prop_map(|runs| {
            runs.into_iter()
                .flat_map(|(b, n)| std::iter::repeat_n(b, n))
                .collect()
        }),
        // Small-alphabet data (BWT-friendly).
        prop::collection::vec(0u8..4, 0..4096),
        // Periodic data.
        (prop::collection::vec(any::<u8>(), 1..16), 1usize..200).prop_map(|(pat, n)| pat.repeat(n)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn lz_roundtrip(data in byteish()) {
        let c = compress(&data);
        prop_assert_eq!(decompress(&c).expect("decodes"), data);
    }

    #[test]
    fn bwt_roundtrip(data in byteish()) {
        let (last, idx) = bwt(&data);
        prop_assert_eq!(ibwt(&last, idx), data);
    }

    #[test]
    fn mtf_zle_roundtrip(data in byteish()) {
        let m = mtf(&data);
        let z = zle_encode(&m);
        prop_assert_eq!(imtf(&zle_decode(&z)), data);
    }

    #[test]
    fn rle1_roundtrip(data in byteish()) {
        prop_assert_eq!(rle1_decode(&rle1_encode(&data)), data);
    }

    #[test]
    fn full_block_roundtrip(data in byteish()) {
        let c = compress_block(&data);
        prop_assert_eq!(decompress_block(&c).expect("block decodes"), data);
    }

    #[test]
    fn chunker_covers_input(data in byteish()) {
        let p = ChunkParams::tiny();
        let ends = chunk_boundaries(&data, &p);
        if data.is_empty() {
            prop_assert!(ends.is_empty());
        } else {
            prop_assert_eq!(*ends.last().unwrap(), data.len());
            let mut prev = 0usize;
            for &e in &ends {
                prop_assert!(e > prev, "non-monotonic boundary");
                prop_assert!(e - prev <= p.max_size, "oversized chunk");
                prev = e;
            }
        }
    }

    #[test]
    fn chunker_is_deterministic_and_content_defined(
        prefix in prop::collection::vec(any::<u8>(), 0..512),
        body in prop::collection::vec(any::<u8>(), 2048..4096),
    ) {
        // Shifting content must re-synchronize: chunk the body alone and
        // inside prefix+body; interior boundaries (away from the edges)
        // must coincide modulo the prefix offset.
        let p = ChunkParams::tiny();
        let solo: Vec<usize> = chunk_boundaries(&body, &p);
        let mut joined = prefix.clone();
        joined.extend_from_slice(&body);
        let shifted: Vec<usize> = chunk_boundaries(&joined, &p);
        // Collect boundary positions well inside the body from both runs.
        let inner_solo: Vec<usize> = solo
            .iter()
            .copied()
            .filter(|&e| e > p.max_size && e + p.max_size < body.len())
            .collect();
        let shifted_set: std::collections::HashSet<usize> = shifted
            .iter()
            .filter_map(|&e| e.checked_sub(prefix.len()))
            .collect();
        // After at most one max_size worth of resynchronization, interior
        // boundaries must be recovered.
        let recovered = inner_solo
            .iter()
            .filter(|&&e| shifted_set.contains(&e))
            .count();
        if inner_solo.len() >= 3 {
            prop_assert!(
                recovered >= inner_solo.len() - 2,
                "content-defined chunking failed to resync: {recovered}/{}",
                inner_solo.len()
            );
        }
    }
}
