//! The service-layer acceptance suite: persistent graphs, multi-job
//! admission, elastic workers.
//!
//! Three properties pin the tentpole:
//!
//! 1. **Cross-job determinism** — N concurrent jobs through one compiled
//!    graph, on 1/2/8 workers: every job's output equals its serial
//!    elision, regardless of how jobs interleave (plus a proptest sweep
//!    over job sizes and admission limits).
//! 2. **Zero-allocation steady state** — a warm persistent graph
//!    sustains ≥ 1000 sequential jobs without allocating a single
//!    segment (asserted via the pool/alloc counters).
//! 3. **Elasticity** — growing/shrinking the worker pool between (and
//!    during) jobs never changes observable output.
//!
//! `HQ_SERVICE_JOBS` shrinks the sustained-jobs loop for instrumented
//! runs (the CI ThreadSanitizer job sets it).

use std::sync::Arc;

use hyperqueues::pipelines::graph::{Admission, GraphSpec, ServiceConfig};
use hyperqueues::swan::{Runtime, RuntimeConfig, SchedulerPolicy};
use hyperqueues::workloads::service::{
    build_wordcount_service, job_lines, logstream_digest_serial, logstream_digest_spec,
    wordcount_serial, ServiceWorkloadConfig,
};
use proptest::prelude::*;

fn small_cfg(jobs: usize) -> ServiceWorkloadConfig {
    let mut cfg = ServiceWorkloadConfig::small();
    cfg.jobs = jobs;
    cfg
}

/// How many sequential jobs the steady-state test sustains. 1000+ by
/// default (the acceptance criterion); `HQ_SERVICE_JOBS` overrides for
/// instrumented (TSan) runs.
fn sustained_jobs() -> usize {
    std::env::var("HQ_SERVICE_JOBS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000)
}

/// Both scheduler policies: concurrent-job determinism must hold whether
/// idle workers help through FIFO rings or steal from Chase-Lev deques.
const POLICIES: [SchedulerPolicy; 2] = [
    SchedulerPolicy::HelpFirst,
    SchedulerPolicy::StealFirst { steal_batch: 8 },
];

#[test]
fn concurrent_jobs_deterministic_on_1_2_8_workers() {
    let cfg = small_cfg(16);
    let expected: Vec<_> = (0..cfg.jobs)
        .map(|j| wordcount_serial(&job_lines(&cfg, j)))
        .collect();
    for policy in POLICIES {
        for workers in [1usize, 2, 8] {
            let rt = Arc::new(Runtime::new(
                RuntimeConfig::new().workers(workers).scheduler(policy),
            ));
            let graph = build_wordcount_service(rt, &cfg);
            // Submit everything up front so jobs genuinely overlap (up to
            // the admission bound), then join in submission order.
            let handles: Vec<_> = (0..cfg.jobs)
                .map(|j| {
                    graph
                        .submit(job_lines(&cfg, j), Admission::Unbounded)
                        .expect_accepted()
                })
                .collect();
            for (j, h) in handles.into_iter().enumerate() {
                assert_eq!(
                    h.join(),
                    expected[j],
                    "job {j} diverged from its serial elision at {workers}                      workers under {policy:?}"
                );
            }
            let stats = graph.telemetry().admission;
            assert_eq!(stats.completed, cfg.jobs as u64);
            assert!(
                stats.high_water_in_flight <= cfg.max_in_flight,
                "admission bound violated at {workers} workers: {stats:?}"
            );
        }
    }
}

#[test]
fn sustained_jobs_allocate_zero_segments_after_warmup() {
    let jobs = sustained_jobs();
    // Small digest jobs on a persistent graph; sequential submission so
    // the steady state is exactly "job N+1 reuses job N's segments".
    let mut cfg = small_cfg(jobs);
    cfg.job_lines = 24;
    cfg.degree = 2;
    cfg.max_in_flight = 1;
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = logstream_digest_spec(cfg.degree, cfg.window, 0).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: cfg.max_in_flight,
            segment_capacity: cfg.segment_capacity,
            io_batch: cfg.io_batch,
            ..ServiceConfig::default()
        },
    );
    // Warm-up: instantiate the edges, then park the worst-case segment
    // demand in every pool.
    let lines0 = job_lines(&cfg, 0);
    assert_eq!(
        graph
            .submit(lines0.clone(), Admission::Unbounded)
            .expect_accepted()
            .join(),
        logstream_digest_serial(&lines0, 0)
    );
    graph.prewarm(cfg.prewarm_depth());
    let warm = graph.telemetry().storage;

    for j in 1..=jobs {
        let lines = job_lines(&cfg, j);
        let out = graph
            .submit(lines.clone(), Admission::Unbounded)
            .expect_accepted()
            .join();
        if j % 251 == 0 {
            assert_eq!(out, logstream_digest_serial(&lines, 0), "job {j} diverged");
        }
    }

    let after = graph.telemetry().storage;
    assert_eq!(
        after.segments_allocated, warm.segments_allocated,
        "steady state must not allocate segments: {jobs} jobs took \
         {warm:?} -> {after:?}"
    );
    assert!(
        after.pool_hits > warm.pool_hits,
        "jobs must draw their segments from the pools: {after:?}"
    );
    assert!(
        after.segments_returned > warm.segments_returned,
        "completed jobs must recycle their segment chains: {after:?}"
    );
    assert_eq!(graph.telemetry().admission.completed, jobs as u64 + 1);
}

#[test]
fn elastic_resize_between_and_during_jobs_keeps_output_identical() {
    let cfg = small_cfg(12);
    let expected: Vec<_> = (0..cfg.jobs)
        .map(|j| wordcount_serial(&job_lines(&cfg, j)))
        .collect();
    let rt = Arc::new(Runtime::new(RuntimeConfig::new().workers(1..=8)));
    let graph = build_wordcount_service(Arc::clone(&rt), &cfg);
    // Sweep the pool size while jobs flow: grow mid-stream, shrink back.
    for (j, expect) in expected.iter().enumerate() {
        match j {
            2 => assert_eq!(rt.resize_workers(2), 2),
            4 => assert_eq!(rt.resize_workers(8), 8),
            7 => assert_eq!(rt.resize_workers(3), 3),
            9 => assert_eq!(rt.resize_workers(1), 1),
            _ => {}
        }
        let h = graph
            .submit(job_lines(&cfg, j), Admission::Unbounded)
            .expect_accepted();
        if j % 2 == 0 {
            // Resize *while* this job runs, too.
            rt.resize_workers(if j % 4 == 0 { 5 } else { 2 });
        }
        assert_eq!(&h.join(), expect, "job {j} output changed under resize");
    }
    assert_eq!(graph.telemetry().admission.completed, cfg.jobs as u64);
}

#[test]
fn admission_is_fifo_and_bounded_under_burst() {
    let cfg = small_cfg(24);
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = build_wordcount_service(rt, &cfg);
    let handles: Vec<_> = (0..cfg.jobs)
        .map(|j| {
            graph
                .submit(job_lines(&cfg, j), Admission::Unbounded)
                .expect_accepted()
        })
        .collect();
    // Handles carry the admission sequence: submission order is FIFO.
    for (j, h) in handles.iter().enumerate() {
        assert_eq!(h.id(), j as u64, "job ids must follow submission order");
    }
    for h in handles {
        h.join();
    }
    let stats = graph.telemetry().admission;
    assert_eq!(stats.completed, cfg.jobs as u64);
    assert_eq!(stats.in_flight, 0);
    assert_eq!(stats.queued, 0);
    assert!(stats.high_water_in_flight <= cfg.max_in_flight);
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8, ..ProptestConfig::default()
    })]

    /// Random job sizes × admission limits × worker counts × edge
    /// capacities: every job of every interleaving equals its serial
    /// elision, and the admission bound holds.
    #[test]
    fn random_job_mixes_stay_deterministic(
        sizes in prop::collection::vec(1usize..150, 1..10),
        max_in_flight in 1usize..5,
        seg_cap in 2usize..32,
        workers in 1usize..4,
        steal_first in any::<bool>(),
    ) {
        let policy = if steal_first {
            SchedulerPolicy::StealFirst { steal_batch: 8 }
        } else {
            SchedulerPolicy::HelpFirst
        };
        let rt = Arc::new(Runtime::new(
            RuntimeConfig::new().workers(workers).scheduler(policy),
        ));
        let graph = GraphSpec::<u64, u64>::new()
            .fanout_map(3, 8, |x| x.wrapping_mul(x) ^ 0x9E37)
            .filter_map(|x| (x % 3 != 1).then_some(x))
            .compile(
                Arc::clone(&rt),
                ServiceConfig {
                    max_in_flight,
                    segment_capacity: seg_cap,
                    io_batch: 8,
                    ..ServiceConfig::default()
                },
            );
        let inputs: Vec<Vec<u64>> = sizes
            .iter()
            .enumerate()
            .map(|(j, &n)| (0..n as u64).map(|i| i + 1000 * j as u64).collect())
            .collect();
        let handles: Vec<_> = inputs
            .iter()
            .map(|input| {
                graph
                    .submit(input.clone(), Admission::Unbounded)
                    .expect_accepted()
            })
            .collect();
        for (input, h) in inputs.iter().zip(handles) {
            let expect: Vec<u64> = input
                .iter()
                .map(|&x| x.wrapping_mul(x) ^ 0x9E37)
                .filter(|x| x % 3 != 1)
                .collect();
            prop_assert_eq!(h.join(), expect);
        }
        let stats = graph.telemetry().admission;
        prop_assert!(stats.high_water_in_flight <= max_in_flight);
        prop_assert_eq!(stats.completed, sizes.len() as u64);
    }
}
