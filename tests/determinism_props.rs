//! Property-based determinism tests: randomized pipeline programs must
//! observe values in serial-elision order under every scheduling we can
//! provoke. This is the paper's central claim, attacked with proptest.

use hyperqueues::hyperqueue::{Hyperqueue, PushToken};
use hyperqueues::swan::{Runtime, RuntimeConfig, Scope};
use proptest::prelude::*;

/// A randomized producer tree: at each node either push a run of values or
/// split into children (recursively), preserving serial order.
#[derive(Clone, Debug)]
enum Plan {
    Push(u8),
    Split(Vec<Plan>),
}

fn plan_strategy() -> impl Strategy<Value = Plan> {
    let leaf = (1u8..20).prop_map(Plan::Push);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop::collection::vec(inner, 1..4).prop_map(Plan::Split)
    })
}

/// Serial elision: what order must the consumer observe?
fn serial_order(plan: &Plan, next: &mut u64, out: &mut Vec<u64>) {
    match plan {
        Plan::Push(n) => {
            for _ in 0..*n {
                out.push(*next);
                *next += 1;
            }
        }
        Plan::Split(children) => {
            for c in children {
                serial_order(c, next, out);
            }
        }
    }
}

/// Pre-assigns each leaf its serial position range so parallel execution
/// cannot perturb the *values*, only their arrival order — which the
/// hyperqueue must then restore.
fn run_plan_preassigned(s: &Scope<'_>, plan: Plan, mut q: PushToken<u64>, start: u64) {
    match plan {
        Plan::Push(n) => {
            for i in 0..n as u64 {
                q.push(start + i);
            }
        }
        Plan::Split(children) => {
            let mut offset = start;
            for c in children {
                let size = plan_size(&c);
                s.spawn((q.pushdep(),), move |s, (q2,)| {
                    run_plan_preassigned(s, c, q2, offset)
                });
                offset += size;
            }
        }
    }
}

fn plan_size(plan: &Plan) -> u64 {
    match plan {
        Plan::Push(n) => *n as u64,
        Plan::Split(children) => children.iter().map(plan_size).sum(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    #[test]
    fn random_producer_trees_preserve_serial_order(
        plan in plan_strategy(),
        workers in 1usize..9,
        seg_cap in prop::sample::select(vec![2usize, 3, 8, 64]),
        chaos in prop::option::of(0u64..1000),
    ) {
        let mut expect = Vec::new();
        serial_order(&plan, &mut 0, &mut expect);

        let cfg = match chaos {
            Some(seed) => RuntimeConfig::new().workers(workers).with_chaos(seed, 25),
            None => RuntimeConfig::new().workers(workers),
        };
        let rt = Runtime::new(cfg);
        let mut got = Vec::new();
        let got_ref = &mut got;
        rt.scope(move |s| {
            let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
            let plan2 = plan.clone();
            s.spawn((q.pushdep(),), move |s, (q2,)| {
                run_plan_preassigned(s, plan2, q2, 0)
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                while !c.empty() {
                    got_ref.push(c.pop());
                }
            });
        });
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn interleaved_producers_and_consumers_partition_the_stream(
        chunks in prop::collection::vec(1u32..30, 1..8),
        workers in 1usize..9,
    ) {
        // spawn P(c0); C; P(c1); C; ... — each consumer drains exactly the
        // values pushed before it (rule 4 hides later pushes).
        let rt = Runtime::with_workers(workers);
        let total: u32 = chunks.iter().sum();
        let mut outputs: Vec<Vec<u32>> = vec![Vec::new(); chunks.len()];
        {
            let outs: Vec<&mut Vec<u32>> = outputs.iter_mut().collect();
            let chunks2 = chunks.clone();
            rt.scope(move |s| {
                let q = Hyperqueue::<u32>::with_segment_capacity(s, 4);
                let mut next = 0u32;
                for (i, (&n, out)) in chunks2.iter().zip(outs).enumerate() {
                    let lo = next;
                    next += n;
                    let hi = next;
                    s.spawn((q.pushdep(),), move |_, (mut p,)| {
                        for v in lo..hi {
                            p.push(v);
                        }
                    });
                    s.spawn((q.popdep(),), move |_, (mut c,)| {
                        while !c.empty() {
                            out.push(c.pop());
                        }
                        let _ = i;
                    });
                }
            });
        }
        // Consumers may split the stream at any boundary (a consumer can
        // drain values of *later* producers only if they were pushed before
        // it was spawned — impossible here since each pop task is spawned
        // right after its producer and hides later pushes). Check: the
        // concatenation is exactly 0..total, and consumer i never sees a
        // value from a producer spawned after it.
        let flat: Vec<u32> = outputs.iter().flatten().copied().collect();
        prop_assert_eq!(flat, (0..total).collect::<Vec<_>>());
        let mut bound = 0u32;
        for (i, out) in outputs.iter().enumerate() {
            bound += chunks[i];
            for &v in out {
                prop_assert!(v < bound, "consumer {i} saw {v} >= bound {bound}");
            }
        }
    }
}
