//! End-to-end router determinism over real sockets: the same batch
//! pushed through `hqrouter`'s engine over {1, 2, 3} backend daemons,
//! under both scheduler policies, must produce a per-connection reply
//! stream **byte-identical** to the single-daemon run (DESIGN.md §7.2).
//!
//! The backends here are in-process `IngressServer`s (real TCP, no
//! subprocess overhead); the SIGKILL fault path with the real `hqd`
//! binary lives in `tests/router_fault.rs`.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use pipelines::graph::ServiceConfig;
use pipelines::ingress::{
    encode_frame, FrameKind, IngressClient, IngressConfig, IngressServer, JobOutcome, QueryStatus,
    Router, RouterConfig,
};
use pipelines::journal::{Journal, JournalConfig};
use pipelines::partition::rendezvous_route;
use swan::{Runtime, RuntimeConfig, SchedulerPolicy};
use workloads::service::{job_lines, wordcount_spec, ServiceWorkloadConfig};
use workloads::wire::{encode_lines, expected_wordcount_bytes, WordcountCodec};

const JOBS: usize = 24;
const BACKOFF: Duration = Duration::from_micros(200);

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hq-router-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn wordcount_server(workers: usize, policy: &str) -> (Arc<Runtime>, IngressServer) {
    let rt = Arc::new(Runtime::new(
        RuntimeConfig::new()
            .workers(workers)
            .scheduler(SchedulerPolicy::parse(policy).expect("known policy")),
    ));
    let graph = Arc::new(wordcount_spec(3, 16).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: 2,
            segment_capacity: 16,
            ..ServiceConfig::default()
        },
    ));
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(WordcountCodec),
        IngressConfig::default(),
    )
    .expect("bind backend");
    (rt, server)
}

fn durable_server(dir: &Path) -> (Arc<Runtime>, IngressServer) {
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = Arc::new(wordcount_spec(3, 16).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: 2,
            segment_capacity: 16,
            ..ServiceConfig::default()
        },
    ));
    let (journal, replay) =
        Journal::open(JournalConfig::at(dir.to_path_buf())).expect("open journal");
    let (server, _report) = IngressServer::bind_durable(
        "127.0.0.1:0",
        graph,
        Arc::new(WordcountCodec),
        IngressConfig::default(),
        journal,
        &replay,
    )
    .expect("bind durable backend");
    (rt, server)
}

/// Pipelines the whole batch on one connection and returns the raw
/// reply-stream bytes (every frame re-encoded through the canonical
/// encoder, so equal streams mean equal wire bytes).
fn reply_stream(addr: std::net::SocketAddr, cfg: &ServiceWorkloadConfig) -> Vec<u8> {
    let mut client = IngressClient::connect(addr).expect("connect");
    for j in 0..JOBS {
        client
            .submit(j as u64 + 1, &encode_lines(&job_lines(cfg, j)))
            .expect("pipelined submit");
    }
    let mut stream = Vec::new();
    for _ in 0..JOBS {
        let frame = client.recv().expect("reply");
        assert_eq!(frame.kind, FrameKind::Result, "req {}", frame.req_id);
        encode_frame(frame.kind, frame.req_id, &frame.body, &mut stream);
    }
    stream
}

#[test]
fn routed_reply_streams_are_byte_identical_to_single_daemon() {
    let cfg = ServiceWorkloadConfig::small();

    // The ground truth: one daemon serving the whole batch — whose
    // replies are themselves the serial elision's bytes, checked first.
    let (_rt, single) = wordcount_server(2, "help-first");
    let baseline = reply_stream(single.local_addr(), &cfg);
    single.shutdown();
    let mut expected = Vec::new();
    for j in 0..JOBS {
        encode_frame(
            FrameKind::Result,
            j as u64 + 1,
            &expected_wordcount_bytes(&job_lines(&cfg, j)),
            &mut expected,
        );
    }
    assert_eq!(
        baseline, expected,
        "single-daemon stream must be the serial elision"
    );

    // The sweep: {1,2,3} shards × both policies × varied worker counts.
    for policy in ["help-first", "steal-first"] {
        for backends in [1usize, 2, 3] {
            let mut keep = Vec::new();
            let mut addrs = Vec::new();
            for i in 0..backends {
                let (rt, server) = wordcount_server(1 + i, policy);
                addrs.push(server.local_addr().to_string());
                keep.push((rt, server));
            }
            let router = Router::bind("127.0.0.1:0", RouterConfig::to(addrs)).expect("bind router");
            let routed = reply_stream(router.local_addr(), &cfg);
            assert_eq!(
                routed, baseline,
                "reply stream diverged through {backends} backend(s) under {policy}"
            );
            let stats = router.shutdown();
            assert_eq!(
                (
                    stats.retries_synthesized,
                    stats.errors_synthesized,
                    stats.shard_failures
                ),
                (0, 0, 0),
                "a healthy fleet must never need synthesized replies"
            );
            assert_eq!(stats.frames_in, JOBS as u64);
            assert_eq!(stats.replies_out, JOBS as u64);
        }
    }
}

#[test]
fn durable_jobs_route_ack_and_query_through_the_router() {
    let cfg = ServiceWorkloadConfig::small();
    let dirs = [temp_dir("durable-a"), temp_dir("durable-b")];
    let a = durable_server(&dirs[0]);
    let b = durable_server(&dirs[1]);
    let addrs = vec![a.1.local_addr().to_string(), b.1.local_addr().to_string()];
    let router = Router::bind("127.0.0.1:0", RouterConfig::to(addrs)).expect("bind router");

    // The id range must actually exercise both shards, or this test
    // would silently degrade to single-daemon coverage.
    let ids: Vec<u64> = (1..=8).collect();
    let shards: Vec<usize> = ids.iter().map(|&id| rendezvous_route(id, 2)).collect();
    assert!(
        shards.contains(&0) && shards.contains(&1),
        "id range covers both shards"
    );

    let mut client = IngressClient::connect(router.local_addr()).expect("connect");
    for (i, &id) in ids.iter().enumerate() {
        let payload = encode_lines(&job_lines(&cfg, i));
        let outcome = client
            .submit_durable_and_wait(id, &payload, BACKOFF)
            .expect("durable submit");
        assert_eq!(
            outcome,
            JobOutcome::Result(expected_wordcount_bytes(&job_lines(&cfg, i))),
            "durable job {id}"
        );
    }
    // Query lands on the owning shard: every id reports Done with the
    // journaled bytes, then Acked after the (also routed) ack.
    for (i, &id) in ids.iter().enumerate() {
        let (status, body) = client.query(id).expect("query");
        assert_eq!(status, QueryStatus::Done);
        assert_eq!(body, expected_wordcount_bytes(&job_lines(&cfg, i)));
    }
    for &id in &ids {
        client.ack(id).expect("ack");
    }
    for &id in &ids {
        let (status, body) = client.query(id).expect("query after ack");
        assert_eq!((status, body.len()), (QueryStatus::Acked, 0), "id {id}");
    }
    let (status, _) = client.query(0xDEAD_BEEF).expect("query unknown");
    assert_eq!(status, QueryStatus::Unknown);

    drop(client);
    router.shutdown();
    drop(a);
    drop(b);
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}

/// An ack of a bogus id makes the backend push an *unsolicited* Error
/// frame (acks are fire-and-forget). The merger must recognize it as the
/// ack's out-of-band reply — forwarding it in the exact slot a single
/// daemon would — rather than misattribute it to the next request.
#[test]
fn stray_ack_errors_do_not_desynchronize_the_merge() {
    let cfg = ServiceWorkloadConfig::small();
    let dir = temp_dir("ackerr");
    let backend = durable_server(&dir);
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig::to(vec![backend.1.local_addr().to_string()]),
    )
    .expect("bind router");

    let mut client = IngressClient::connect(router.local_addr()).expect("connect");
    let payload0 = encode_lines(&job_lines(&cfg, 0));
    let outcome = client
        .submit_durable_and_wait(1, &payload0, BACKOFF)
        .expect("first job");
    assert_eq!(
        outcome,
        JobOutcome::Result(expected_wordcount_bytes(&job_lines(&cfg, 0)))
    );

    client.ack(999).expect("send bogus ack"); // unknown id → Error reply
    let payload1 = encode_lines(&job_lines(&cfg, 1));
    client.submit_durable(2, &payload1).expect("second job");

    // Single-daemon order: the ack error's reply slot precedes the
    // submit's. The router must reproduce exactly that.
    let err = client.recv().expect("ack error");
    assert_eq!((err.kind, err.req_id), (FrameKind::Error, 999));
    assert!(
        String::from_utf8_lossy(&err.body).contains("unknown durable job"),
        "unexpected error body: {}",
        String::from_utf8_lossy(&err.body)
    );
    let result = client.recv().expect("second job result");
    assert_eq!((result.kind, result.req_id), (FrameKind::Result, 2));
    assert_eq!(result.body, expected_wordcount_bytes(&job_lines(&cfg, 1)));

    drop(client);
    router.shutdown();
    drop(backend);
    let _ = std::fs::remove_dir_all(&dir);
}
