//! Fast determinism smoke test, always on in CI: the same hyperqueue
//! program must produce an identical pop sequence at every worker count
//! (the paper's determinism claim, checked in miniature). The full
//! property-based attack lives in `determinism_props.rs`; this suite is
//! the cheap canary that runs on every push.

use hyperqueues::hyperqueue::{Hyperqueue, PushToken};
use hyperqueues::swan::{Runtime, RuntimeConfig, Scope};

/// A fixed three-level producer tree: parent pushes, children push, one
/// grandchild pushes — enough nesting to exercise segment hand-off and
/// head re-attachment without taking real time.
fn produce(s: &Scope<'_>, mut p: PushToken<u64>, base: u64) {
    for i in 0..7 {
        p.push(base + i);
    }
    if base < 2_000 {
        for child in 0..3u64 {
            let child_base = (base + 1) * 10 + child * 100;
            s.spawn((p.pushdep(),), move |s, (p2,)| {
                produce(s, p2, child_base);
            });
        }
        p.push(base + 7);
    }
}

/// Runs the program and returns the consumer's observed pop order.
fn pop_order(workers: usize, seg_cap: usize, chaos: Option<u64>) -> Vec<u64> {
    let cfg = match chaos {
        Some(seed) => RuntimeConfig::new().workers(workers).with_chaos(seed, 30),
        None => RuntimeConfig::new().workers(workers),
    };
    let rt = Runtime::new(cfg);
    let mut got = Vec::new();
    let g = &mut got;
    rt.scope(move |s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        s.spawn((q.pushdep(),), |s, (p,)| produce(s, p, 0));
        s.spawn((q.popdep(),), move |_, (mut c,)| {
            while !c.empty() {
                g.push(c.pop());
            }
        });
    });
    got
}

#[test]
fn pop_order_is_identical_across_worker_counts() {
    let reference = pop_order(1, 8, None);
    assert!(
        reference.len() > 100,
        "program too small to be a meaningful smoke test"
    );
    for workers in [2, 8] {
        assert_eq!(
            pop_order(workers, 8, None),
            reference,
            "{workers} workers diverged from the single-worker order"
        );
    }
}

#[test]
fn pop_order_survives_segment_capacity_and_chaos() {
    let reference = pop_order(1, 8, None);
    // Tiny segments force frequent hand-offs; chaos injects scheduling
    // perturbation. Neither may change the observed order.
    for (workers, seg_cap, chaos) in [(4, 2, None), (8, 3, Some(42)), (2, 64, Some(7))] {
        assert_eq!(
            pop_order(workers, seg_cap, chaos),
            reference,
            "workers={workers} seg_cap={seg_cap} chaos={chaos:?} diverged"
        );
    }
}
