//! Failure-injection tests: panicking tasks, abandoned queues, consumers
//! that quit early — the runtime must neither hang nor leak nor corrupt
//! later work.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hyperqueues::hyperqueue::Hyperqueue;
use hyperqueues::swan::{Runtime, Versioned};

#[test]
fn panicking_producer_does_not_hang_the_scope() {
    let rt = Runtime::with_workers(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|s| {
            let q = Hyperqueue::<u32>::new(s);
            s.spawn((q.pushdep(),), |_, (mut p,)| {
                p.push(1);
                panic!("producer died");
            });
            s.spawn((q.popdep(),), |_, (mut c,)| {
                // May see the value or not; must never hang.
                while !c.empty() {
                    let _ = c.pop();
                }
            });
        });
    }));
    assert!(result.is_err(), "panic must propagate");
    // Runtime still healthy afterwards.
    let ok = AtomicUsize::new(0);
    rt.scope(|s| {
        s.spawn((), |_, ()| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
    });
    assert_eq!(ok.load(Ordering::SeqCst), 1);
}

#[test]
fn panicking_consumer_propagates_and_leaves_queue_reclaimable() {
    let rt = Runtime::with_workers(4);
    let marker = Arc::new(());
    let m2 = Arc::clone(&marker);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(move |s| {
            let q = Hyperqueue::<Arc<()>>::new(s);
            for _ in 0..100 {
                q.push(Arc::clone(&m2));
            }
            s.spawn((q.popdep(),), |_, (mut c,)| {
                let _ = c.pop();
                panic!("consumer died");
            });
        });
    }));
    assert!(result.is_err());
    assert_eq!(
        Arc::strong_count(&marker),
        1,
        "values leaked after consumer panic"
    );
}

#[test]
fn nested_task_panic_reaches_the_root() {
    let rt = Runtime::with_workers(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|s| {
            s.spawn((), |s, ()| {
                s.spawn((), |s, ()| {
                    s.spawn((), |_, ()| panic!("deep panic"));
                });
            });
        });
    }));
    assert!(
        result.is_err(),
        "grandchild panic must surface at the scope"
    );
}

#[test]
fn versioned_objects_survive_writer_panic() {
    let rt = Runtime::with_workers(2);
    let v: Versioned<u64> = Versioned::new(7);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|s| {
            s.spawn((v.update(),), |_, (mut g,)| {
                *g = 8;
                panic!("writer died mid-update");
            });
            // The reader is scheduled after the (panicked) writer; it
            // still runs — determinism of *values* is forfeited on panic,
            // but scheduling must not deadlock.
            s.spawn((v.read(),), |_, (g,)| {
                let _ = *g;
            });
        });
    }));
    assert!(result.is_err());
}

#[test]
fn abandoned_nested_queues_are_reclaimed() {
    // Fragment-style code that creates local queues per iteration and
    // abandons them with values still inside (§2.1 allows this).
    let rt = Runtime::with_workers(4);
    let marker = Arc::new(());
    let m = Arc::clone(&marker);
    rt.scope(move |s| {
        s.spawn((), move |s, ()| {
            for _ in 0..50 {
                let local = Hyperqueue::<Arc<()>>::with_segment_capacity(s, 8);
                for _ in 0..20 {
                    local.push(Arc::clone(&m));
                }
                // Pop a few, abandon the rest.
                let _ = local.pop();
                let _ = local.pop();
            }
        });
    });
    assert_eq!(Arc::strong_count(&marker), 1, "abandoned values leaked");
}

#[test]
fn consumer_quitting_early_leaves_consistent_state() {
    let rt = Runtime::with_workers(4);
    for _ in 0..20 {
        let mut drained = Vec::new();
        let d = &mut drained;
        rt.scope(move |s| {
            let q = Hyperqueue::<u32>::with_segment_capacity(s, 4);
            s.spawn((q.pushdep(),), |_, (mut p,)| {
                for i in 0..40 {
                    p.push(i);
                }
            });
            // First consumer takes an arbitrary prefix and quits.
            s.spawn((q.popdep(),), |_, (mut c,)| {
                for _ in 0..7 {
                    if !c.empty() {
                        let _ = c.pop();
                    }
                }
            });
            // Second consumer must see exactly the rest, in order.
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                while !c.empty() {
                    d.push(c.pop());
                }
            });
        });
        assert_eq!(drained, (7..40).collect::<Vec<_>>());
    }
}
