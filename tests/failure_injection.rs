//! Failure-injection tests: panicking tasks, abandoned queues, consumers
//! that quit early — the runtime must neither hang nor leak nor corrupt
//! later work.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use hyperqueues::hyperqueue::Hyperqueue;
use hyperqueues::swan::{Runtime, Versioned};

#[test]
fn panicking_producer_does_not_hang_the_scope() {
    let rt = Runtime::with_workers(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|s| {
            let q = Hyperqueue::<u32>::new(s);
            s.spawn((q.pushdep(),), |_, (mut p,)| {
                p.push(1);
                panic!("producer died");
            });
            s.spawn((q.popdep(),), |_, (mut c,)| {
                // May see the value or not; must never hang.
                while !c.empty() {
                    let _ = c.pop();
                }
            });
        });
    }));
    assert!(result.is_err(), "panic must propagate");
    // Runtime still healthy afterwards.
    let ok = AtomicUsize::new(0);
    rt.scope(|s| {
        s.spawn((), |_, ()| {
            ok.fetch_add(1, Ordering::SeqCst);
        });
    });
    assert_eq!(ok.load(Ordering::SeqCst), 1);
}

#[test]
fn panicking_consumer_propagates_and_leaves_queue_reclaimable() {
    let rt = Runtime::with_workers(4);
    let marker = Arc::new(());
    let m2 = Arc::clone(&marker);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(move |s| {
            let q = Hyperqueue::<Arc<()>>::new(s);
            for _ in 0..100 {
                q.push(Arc::clone(&m2));
            }
            s.spawn((q.popdep(),), |_, (mut c,)| {
                let _ = c.pop();
                panic!("consumer died");
            });
        });
    }));
    assert!(result.is_err());
    assert_eq!(
        Arc::strong_count(&marker),
        1,
        "values leaked after consumer panic"
    );
}

#[test]
fn nested_task_panic_reaches_the_root() {
    let rt = Runtime::with_workers(4);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|s| {
            s.spawn((), |s, ()| {
                s.spawn((), |s, ()| {
                    s.spawn((), |_, ()| panic!("deep panic"));
                });
            });
        });
    }));
    assert!(
        result.is_err(),
        "grandchild panic must surface at the scope"
    );
}

#[test]
fn versioned_objects_survive_writer_panic() {
    let rt = Runtime::with_workers(2);
    let v: Versioned<u64> = Versioned::new(7);
    let result = catch_unwind(AssertUnwindSafe(|| {
        rt.scope(|s| {
            s.spawn((v.update(),), |_, (mut g,)| {
                *g = 8;
                panic!("writer died mid-update");
            });
            // The reader is scheduled after the (panicked) writer; it
            // still runs — determinism of *values* is forfeited on panic,
            // but scheduling must not deadlock.
            s.spawn((v.read(),), |_, (g,)| {
                let _ = *g;
            });
        });
    }));
    assert!(result.is_err());
}

#[test]
fn abandoned_nested_queues_are_reclaimed() {
    // Fragment-style code that creates local queues per iteration and
    // abandons them with values still inside (§2.1 allows this).
    let rt = Runtime::with_workers(4);
    let marker = Arc::new(());
    let m = Arc::clone(&marker);
    rt.scope(move |s| {
        s.spawn((), move |s, ()| {
            for _ in 0..50 {
                let local = Hyperqueue::<Arc<()>>::with_segment_capacity(s, 8);
                for _ in 0..20 {
                    local.push(Arc::clone(&m));
                }
                // Pop a few, abandon the rest.
                let _ = local.pop();
                let _ = local.pop();
            }
        });
    });
    assert_eq!(Arc::strong_count(&marker), 1, "abandoned values leaked");
}

#[test]
fn consumer_quitting_early_leaves_consistent_state() {
    let rt = Runtime::with_workers(4);
    for _ in 0..20 {
        let mut drained = Vec::new();
        let d = &mut drained;
        rt.scope(move |s| {
            let q = Hyperqueue::<u32>::with_segment_capacity(s, 4);
            s.spawn((q.pushdep(),), |_, (mut p,)| {
                for i in 0..40 {
                    p.push(i);
                }
            });
            // First consumer takes an arbitrary prefix and quits.
            s.spawn((q.popdep(),), |_, (mut c,)| {
                for _ in 0..7 {
                    if !c.empty() {
                        let _ = c.pop();
                    }
                }
            });
            // Second consumer must see exactly the rest, in order.
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                while !c.empty() {
                    d.push(c.pop());
                }
            });
        });
        assert_eq!(drained, (7..40).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Service-level failure injection: a persistent CompiledGraph must treat a
// panicking stage as one job's problem — retried per policy, never a
// wedged dispatcher or a leaked admission slot.
// ---------------------------------------------------------------------------

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use hyperqueues::pipelines::graph::{Admission, GraphSpec, ServiceConfig};
use hyperqueues::swan::RetryPolicy;

#[test]
fn panicking_stage_fails_only_its_own_job() {
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = GraphSpec::<u64, u64>::new()
        .map(|x: u64| {
            if x == 13 {
                panic!("injected failure on 13");
            }
            x * 2
        })
        .compile(
            Arc::clone(&rt),
            ServiceConfig {
                max_in_flight: 2,
                ..ServiceConfig::default()
            },
        );
    let handles: Vec<_> = (0..20u64)
        .map(|j| {
            graph
                .submit(vec![j], Admission::Unbounded)
                .expect_accepted()
        })
        .collect();
    for (j, h) in handles.into_iter().enumerate() {
        match h.wait() {
            Ok(out) => {
                assert_ne!(j, 13, "the poisoned job must not succeed");
                assert_eq!(out, vec![j as u64 * 2]);
            }
            Err(e) => {
                assert_eq!(j, 13, "only the poisoned job may fail: {e}");
                assert!(e.to_string().contains("injected failure"), "{e}");
                assert_eq!(e.attempts(), 1, "retries disabled: exactly one attempt");
            }
        }
    }
    let stats = graph.telemetry().admission;
    assert_eq!((stats.retries, stats.failed), (0, 1));
    assert_eq!(
        (stats.in_flight, stats.queued),
        (0, 0),
        "failed job leaked its admission slot: {stats:?}"
    );
    // The dispatchers are alive and the slot is reusable: a fresh batch
    // (larger than max_in_flight) drains completely.
    let handles: Vec<_> = (100..108u64)
        .map(|j| {
            graph
                .submit(vec![j], Admission::Unbounded)
                .expect_accepted()
        })
        .collect();
    for (i, h) in handles.into_iter().enumerate() {
        assert_eq!(h.join(), vec![(100 + i as u64) * 2]);
    }
    drop(graph);
    rt.quiesce();
    assert_eq!(rt.open_scopes(), 0);
}

#[test]
fn flaky_stage_is_retried_per_policy() {
    // Each value panics on its first two executions and succeeds on the
    // third: within a 3-retry budget every job must come back Ok, with
    // the retraversals visible in the stats.
    let seen: Arc<Mutex<HashMap<u64, u32>>> = Arc::new(Mutex::new(HashMap::new()));
    let seen2 = Arc::clone(&seen);
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = GraphSpec::<u64, u64>::new()
        .map(move |x: u64| {
            // Release the lock before panicking: a poisoned test mutex
            // would turn every later attempt into a different failure.
            let attempts = {
                let mut seen = seen2.lock().unwrap_or_else(|e| e.into_inner());
                let slot = seen.entry(x).or_insert(0);
                *slot += 1;
                *slot
            };
            if attempts <= 2 {
                panic!("flaky: value {x} attempt {attempts}");
            }
            x + 1
        })
        .compile(
            Arc::clone(&rt),
            ServiceConfig {
                max_in_flight: 2,
                retry: RetryPolicy {
                    max_retries: 3,
                    base_backoff: Duration::from_micros(100),
                    max_backoff: Duration::from_millis(2),
                },
                ..ServiceConfig::default()
            },
        );
    let handles: Vec<_> = (0..6u64)
        .map(|j| {
            graph
                .submit(vec![j], Admission::Unbounded)
                .expect_accepted()
        })
        .collect();
    for (j, h) in handles.into_iter().enumerate() {
        assert_eq!(h.wait().expect("within retry budget"), vec![j as u64 + 1]);
    }
    let stats = graph.telemetry().admission;
    assert_eq!(
        (stats.retries, stats.failed),
        (12, 0),
        "2 re-admissions per job, none terminal: {stats:?}"
    );
    drop(graph);
    rt.quiesce();
}

#[test]
fn exhausted_retries_fail_terminally_without_wedging_the_service() {
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = GraphSpec::<u64, u64>::new()
        .map(|x: u64| {
            if x == 7 {
                panic!("permanently broken input");
            }
            x
        })
        .compile(
            Arc::clone(&rt),
            ServiceConfig {
                max_in_flight: 2,
                retry: RetryPolicy::retries(2),
                ..ServiceConfig::default()
            },
        );
    // The doomed job and a crowd of healthy ones, interleaved.
    let doomed = graph
        .submit(vec![7], Admission::Unbounded)
        .expect_accepted();
    let healthy: Vec<_> = (0..10u64)
        .filter(|&j| j != 7)
        .map(|j| {
            graph
                .submit(vec![j], Admission::Unbounded)
                .expect_accepted()
        })
        .collect();
    let err = doomed.wait().expect_err("budget of 2 retries must exhaust");
    assert_eq!(err.attempts(), 3, "initial run + 2 retries");
    assert!(err.to_string().contains("permanently broken"), "{err}");
    for h in healthy {
        h.join(); // every healthy job still completes
    }
    let stats = graph.telemetry().admission;
    assert_eq!((stats.retries, stats.failed), (2, 1));
    assert_eq!(
        (stats.in_flight, stats.queued),
        (0, 0),
        "terminal failure leaked admission state: {stats:?}"
    );
    assert!(
        stats.high_water_in_flight <= 2,
        "retries must reuse slots, not mint new ones: {stats:?}"
    );
    drop(graph);
    rt.quiesce();
    assert_eq!(rt.open_scopes(), 0);
}
