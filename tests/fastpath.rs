//! Fast-path behavior tests: the steady-state claims this implementation
//! makes measurable through `QueueStats` — zero mutex traffic while a
//! consumer streams through an already-published segment chain, bounded
//! lock-free advances with recycling catch-up, and notify suppression —
//! plus a property-based FIFO/no-loss attack on the lock-free chain
//! advance at tiny segment capacities, and a drop-glue attack proving the
//! batched slice I/O paths neither leak nor double-drop non-`Copy`
//! payloads.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};

use hyperqueues::hyperqueue::Hyperqueue;
use hyperqueues::swan::Runtime;
use proptest::prelude::*;

/// The acceptance check for the lock-free consumer chain advance:
/// streaming through a chain of already-published segments performs
/// **zero** queue-mutex acquisitions after the first (cache-priming) pop.
#[test]
fn steady_state_chain_streaming_takes_zero_locks() {
    let rt = Runtime::with_workers(1);
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 64);
        // 6 segments' worth, all published before the first pop.
        for i in 0..384 {
            q.push(i);
        }
        // First pop primes the consumer cache through one locked probe.
        assert_eq!(q.pop(), 0);
        let before = q.stats();
        for i in 1..384 {
            assert_eq!(q.pop(), i);
        }
        let after = q.stats();
        assert_eq!(
            after.lock_acquisitions, before.lock_acquisitions,
            "steady-state streaming must not touch the queue mutex: {after:?}"
        );
        assert!(
            after.chain_advances - before.chain_advances >= 5,
            "expected one lock-free advance per segment boundary: {after:?}"
        );
    });
}

/// Batched pops ride the same lock-free chain.
#[test]
fn batched_chain_streaming_takes_zero_locks() {
    let rt = Runtime::with_workers(1);
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 64);
        q.push_iter(0..384);
        let first = q.pop_batch(1);
        assert_eq!(first, vec![0]);
        let before = q.stats();
        let mut got = Vec::new();
        while got.len() < 383 {
            let batch = q.pop_batch(50);
            assert!(!batch.is_empty());
            got.extend(batch);
        }
        let after = q.stats();
        assert_eq!(got, (1..384).collect::<Vec<_>>());
        assert_eq!(
            after.lock_acquisitions, before.lock_acquisitions,
            "batched steady-state streaming must not touch the queue mutex: {after:?}"
        );
    });
}

/// Lock-free advances are capped: a long chain forces a periodic locked
/// probe that hands drained segments back to the recycling freelist, so
/// memory stays bounded even when the consumer never blocks.
#[test]
fn long_chains_still_recycle_via_the_advance_cap() {
    let rt = Runtime::with_workers(1);
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 2);
        for i in 0..100 {
            q.push(i); // 50 tiny segments
        }
        for i in 0..100 {
            assert_eq!(q.pop(), i);
        }
        let st = q.stats();
        assert!(
            st.chain_advances >= 40,
            "most transitions should be lock-free: {st:?}"
        );
        assert!(
            st.segments_recycled >= 1,
            "the advance cap must let recycling catch up: {st:?}"
        );
    });
}

/// Producer-side segment transitions suppress the runtime wakeup when no
/// worker is parked.
#[test]
fn segment_transitions_suppress_notify_when_nobody_is_parked() {
    let rt = Runtime::with_workers(1);
    // Keeps the only worker busy so it is never parked.
    let stop = AtomicBool::new(false);
    rt.scope(|s| {
        let stop_ref = &stop;
        s.spawn((), move |_, ()| {
            while !stop_ref.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        });
        // Give the worker time to claim the spinner task.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 4);
        for i in 0..64 {
            q.push(i); // 15 segment transitions, each with a wakeup attempt
        }
        let st = q.stats();
        stop.store(true, Ordering::Relaxed);
        assert!(
            st.notifies_suppressed >= 1,
            "no worker was parked, so wakeups must be suppressed: {st:?}"
        );
        for i in 0..64 {
            assert_eq!(q.pop(), i);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 18, ..ProptestConfig::default()
    })]

    /// FIFO order and no loss across segment boundaries at tiny
    /// capacities, per-item and batched, under 1/2/8 workers — the chain
    /// advance must never skip or reorder a published value.
    #[test]
    fn tiny_segments_preserve_fifo_and_lose_nothing(
        total in 1u64..600,
        seg_cap in 2usize..5,
        workers in prop::sample::select(vec![1usize, 2, 8]),
        batched in any::<bool>(),
    ) {
        let rt = Runtime::with_workers(workers);
        let mut got = Vec::new();
        let g = &mut got;
        rt.scope(move |s| {
            let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
            s.spawn((q.pushdep(),), move |_, (mut p,)| {
                if batched {
                    p.push_iter(0..total);
                } else {
                    for i in 0..total {
                        p.push(i);
                    }
                }
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                if batched {
                    loop {
                        let batch = c.pop_batch(7);
                        if batch.is_empty() {
                            break;
                        }
                        g.extend(batch);
                    }
                } else {
                    while !c.empty() {
                        g.push(c.pop());
                    }
                }
            });
        });
        prop_assert_eq!(got, (0..total).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// Drop-glue coverage for the batched API with non-Copy payloads.
// ---------------------------------------------------------------------------

/// Live instances of [`DropGuard`] — must be zero whenever no queue holds
/// payloads. Only the drop-glue property below creates guards, so the
/// counter is not perturbed by the other tests in this binary.
static LIVE_GUARDS: AtomicI64 = AtomicI64::new(0);

/// A non-`Copy`, heap-owning payload (`Box<str>`) that counts its live
/// instances: any leak (value written but never dropped) or double-drop
/// (consumed twice) shows up as a nonzero count or a crash.
#[derive(Debug, PartialEq, Eq)]
struct DropGuard {
    text: Box<str>,
}

impl DropGuard {
    fn new(i: u64) -> Self {
        LIVE_GUARDS.fetch_add(1, Ordering::SeqCst);
        DropGuard {
            text: format!("payload-{i:05}").into_boxed_str(),
        }
    }

    fn index(&self) -> u64 {
        self.text["payload-".len()..].parse().expect("own format")
    }
}

impl Drop for DropGuard {
    fn drop(&mut self) {
        LIVE_GUARDS.fetch_sub(1, Ordering::SeqCst);
    }
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16, ..ProptestConfig::default()
    })]

    /// Non-`Copy` payloads round-trip every producer path (`push`,
    /// `push_iter`, `write_slice` staging) × every consumer path (`pop`,
    /// `pop_batch`, `read_slice` whose drop runs `consume_front`) with
    /// zero leaks — including when the consumer stops early and the
    /// remaining values are dropped with the queue (§2.1: "a hyperqueue
    /// may be destroyed with values still inside"). (`push_slice` is the
    /// `Copy`-only memcpy path and is exercised by the other suites.)
    #[test]
    fn batched_io_runs_drop_glue_for_non_copy_payloads(
        total in 1u64..400,
        seg_cap in 2usize..6,
        workers in prop::sample::select(vec![1usize, 2, 8]),
        producer_mode in 0usize..3,
        consumer_mode in 0usize..3,
        drain_fully in any::<bool>(),
    ) {
        prop_assert_eq!(LIVE_GUARDS.load(Ordering::SeqCst), 0);
        let keep = if drain_fully { total } else { total / 2 };
        let mut got: Vec<u64> = Vec::new();
        let g = &mut got;
        let rt = Runtime::with_workers(workers);
        rt.scope(move |s| {
            let q = Hyperqueue::<DropGuard>::with_segment_capacity(s, seg_cap);
            s.spawn((q.pushdep(),), move |_, (mut p,)| match producer_mode {
                0 => {
                    for i in 0..total {
                        p.push(DropGuard::new(i));
                    }
                }
                1 => {
                    p.push_iter((0..total).map(DropGuard::new));
                }
                _ => {
                    // Raw write-slice staging of non-Copy values.
                    let mut i = 0;
                    while i < total {
                        let mut ws = p.write_slice(5);
                        let n = (ws.capacity() as u64).min(total - i);
                        for _ in 0..n {
                            ws.push(DropGuard::new(i));
                            i += 1;
                        }
                    }
                }
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| match consumer_mode {
                0 => {
                    // Per-item, stopping after `keep` values.
                    let mut taken = 0;
                    while taken < keep && !c.empty() {
                        g.push(c.pop().index());
                        taken += 1;
                    }
                }
                1 => {
                    // pop_batch, stopping after ≥ `keep` values.
                    let mut taken = 0;
                    while taken < keep {
                        let batch = c.pop_batch(7);
                        if batch.is_empty() {
                            break;
                        }
                        taken += batch.len() as u64;
                        g.extend(batch.iter().map(DropGuard::index));
                        // `batch` drops its guards here.
                    }
                }
                _ => {
                    // Read slices: values are dropped by the slice's
                    // consume_front when it goes out of scope.
                    while let Some(rs) = c.read_slice(6) {
                        g.extend(rs.iter().map(DropGuard::index));
                    }
                }
            });
        });
        // All tasks done, queue destroyed: every guard must be dropped —
        // the consumed ones by the consumer, the rest by the queue.
        prop_assert_eq!(
            LIVE_GUARDS.load(Ordering::SeqCst), 0,
            "leak/double-drop: producer {producer_mode}, consumer {consumer_mode}, \
             total {total}, kept {keep}, cap {seg_cap}, {workers} workers"
        );
        // FIFO prefix: whatever was consumed is exactly the front of the
        // serial order.
        prop_assert!(
            got.iter().enumerate().all(|(i, &v)| v == i as u64),
            "order broken: {got:?}"
        );
        if drain_fully || consumer_mode == 2 {
            prop_assert_eq!(got.len() as u64, total, "full drain lost values");
        } else {
            prop_assert!(got.len() as u64 >= keep.min(total), "stopped too early");
        }
    }
}
