//! Fast-path behavior tests: the steady-state claims this implementation
//! makes measurable through `QueueStats` — zero mutex traffic while a
//! consumer streams through an already-published segment chain, bounded
//! lock-free advances with recycling catch-up, and notify suppression —
//! plus a property-based FIFO/no-loss attack on the lock-free chain
//! advance at tiny segment capacities.

use std::sync::atomic::{AtomicBool, Ordering};

use hyperqueues::hyperqueue::Hyperqueue;
use hyperqueues::swan::Runtime;
use proptest::prelude::*;

/// The acceptance check for the lock-free consumer chain advance:
/// streaming through a chain of already-published segments performs
/// **zero** queue-mutex acquisitions after the first (cache-priming) pop.
#[test]
fn steady_state_chain_streaming_takes_zero_locks() {
    let rt = Runtime::with_workers(1);
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 64);
        // 6 segments' worth, all published before the first pop.
        for i in 0..384 {
            q.push(i);
        }
        // First pop primes the consumer cache through one locked probe.
        assert_eq!(q.pop(), 0);
        let before = q.stats();
        for i in 1..384 {
            assert_eq!(q.pop(), i);
        }
        let after = q.stats();
        assert_eq!(
            after.lock_acquisitions, before.lock_acquisitions,
            "steady-state streaming must not touch the queue mutex: {after:?}"
        );
        assert!(
            after.chain_advances - before.chain_advances >= 5,
            "expected one lock-free advance per segment boundary: {after:?}"
        );
    });
}

/// Batched pops ride the same lock-free chain.
#[test]
fn batched_chain_streaming_takes_zero_locks() {
    let rt = Runtime::with_workers(1);
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 64);
        q.push_iter(0..384);
        let first = q.pop_batch(1);
        assert_eq!(first, vec![0]);
        let before = q.stats();
        let mut got = Vec::new();
        while got.len() < 383 {
            let batch = q.pop_batch(50);
            assert!(!batch.is_empty());
            got.extend(batch);
        }
        let after = q.stats();
        assert_eq!(got, (1..384).collect::<Vec<_>>());
        assert_eq!(
            after.lock_acquisitions, before.lock_acquisitions,
            "batched steady-state streaming must not touch the queue mutex: {after:?}"
        );
    });
}

/// Lock-free advances are capped: a long chain forces a periodic locked
/// probe that hands drained segments back to the recycling freelist, so
/// memory stays bounded even when the consumer never blocks.
#[test]
fn long_chains_still_recycle_via_the_advance_cap() {
    let rt = Runtime::with_workers(1);
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 2);
        for i in 0..100 {
            q.push(i); // 50 tiny segments
        }
        for i in 0..100 {
            assert_eq!(q.pop(), i);
        }
        let st = q.stats();
        assert!(
            st.chain_advances >= 40,
            "most transitions should be lock-free: {st:?}"
        );
        assert!(
            st.segments_recycled >= 1,
            "the advance cap must let recycling catch up: {st:?}"
        );
    });
}

/// Producer-side segment transitions suppress the runtime wakeup when no
/// worker is parked.
#[test]
fn segment_transitions_suppress_notify_when_nobody_is_parked() {
    let rt = Runtime::with_workers(1);
    // Keeps the only worker busy so it is never parked.
    let stop = AtomicBool::new(false);
    rt.scope(|s| {
        let stop_ref = &stop;
        s.spawn((), move |_, ()| {
            while !stop_ref.load(Ordering::Relaxed) {
                std::hint::spin_loop();
            }
        });
        // Give the worker time to claim the spinner task.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 4);
        for i in 0..64 {
            q.push(i); // 15 segment transitions, each with a wakeup attempt
        }
        let st = q.stats();
        stop.store(true, Ordering::Relaxed);
        assert!(
            st.notifies_suppressed >= 1,
            "no worker was parked, so wakeups must be suppressed: {st:?}"
        );
        for i in 0..64 {
            assert_eq!(q.pop(), i);
        }
    });
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 18, ..ProptestConfig::default()
    })]

    /// FIFO order and no loss across segment boundaries at tiny
    /// capacities, per-item and batched, under 1/2/8 workers — the chain
    /// advance must never skip or reorder a published value.
    #[test]
    fn tiny_segments_preserve_fifo_and_lose_nothing(
        total in 1u64..600,
        seg_cap in 2usize..5,
        workers in prop::sample::select(vec![1usize, 2, 8]),
        batched in any::<bool>(),
    ) {
        let rt = Runtime::with_workers(workers);
        let mut got = Vec::new();
        let g = &mut got;
        rt.scope(move |s| {
            let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
            s.spawn((q.pushdep(),), move |_, (mut p,)| {
                if batched {
                    p.push_iter(0..total);
                } else {
                    for i in 0..total {
                        p.push(i);
                    }
                }
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                if batched {
                    loop {
                        let batch = c.pop_batch(7);
                        if batch.is_empty() {
                            break;
                        }
                        g.extend(batch);
                    }
                } else {
                    while !c.empty() {
                        g.push(c.pop());
                    }
                }
            });
        });
        prop_assert_eq!(got, (0..total).collect::<Vec<_>>());
    }
}
