//! Property sweep pinning the partitioner's determinism contract
//! (DESIGN.md §7): over arbitrary hypergraphs, `pipelines::partition`
//! must produce **byte-identical** output at any thread count, honor the
//! balance bound, and never cut worse than the trivial round-robin
//! placement. The rendezvous router shares the determinism bar: stable
//! shard choice, minimal remap when the fleet grows.
//!
//! These properties are what let the sharding layer treat placement as
//! configuration rather than state: any daemon, any thread count, any
//! run derives the same placement from the same graph.

use pipelines::partition::{
    partition, rendezvous_route, Hyperedge, Hypergraph, PartitionConfig, PartitionResult,
};
use proptest::prelude::*;

/// Arbitrary small hypergraphs: 1–39 vertices with weights in 1–99, up
/// to 30 hyperedges of 1–4 pins each (pins folded into range, so
/// self-loops and duplicate pins occur — the partitioner must tolerate
/// both).
fn hypergraph_strategy() -> impl Strategy<Value = Hypergraph> {
    (
        1usize..40,
        prop::collection::vec(1u64..100, 40..41),
        prop::collection::vec((prop::collection::vec(0u32..4096, 1..5), 1u64..100), 1..31),
    )
        .prop_map(|(n, weights, raw_edges)| {
            let vertex_weights = weights[..n].to_vec();
            let edges = raw_edges
                .into_iter()
                .map(|(pins, weight)| Hyperedge {
                    pins: pins.into_iter().map(|p| p % n as u32).collect(),
                    weight,
                })
                .collect();
            Hypergraph {
                vertex_weights,
                edges,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The tentpole property: the full `PartitionResult` — assignment,
    /// cut, load, round count — is bit-identical whether the refinement
    /// rounds ran on 1, 2, or 8 threads.
    #[test]
    fn partitioning_is_bit_identical_at_any_thread_count(
        g in hypergraph_strategy(),
        parts in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let runs: Vec<PartitionResult> = [1usize, 2, 8]
            .iter()
            .map(|&threads| {
                partition(
                    &g,
                    &PartitionConfig {
                        parts,
                        threads,
                        ..PartitionConfig::default()
                    },
                )
            })
            .collect();
        prop_assert_eq!(&runs[0], &runs[1], "threads=1 vs threads=2 diverged");
        prop_assert_eq!(&runs[0], &runs[2], "threads=1 vs threads=8 diverged");

        // The self-reported metrics must match recomputation from the
        // assignment — otherwise "identical results" could hide wrong ones.
        let r = &runs[0];
        prop_assert_eq!(r.assignment.len(), g.len());
        prop_assert!(r.assignment.iter().all(|&p| (p as usize) < parts));
        prop_assert_eq!(r.cut, g.cut(&r.assignment));
        prop_assert_eq!(
            r.max_part_weight,
            g.part_loads(&r.assignment, parts).into_iter().max().unwrap_or(0)
        );
    }

    /// Every part's load stays within the advertised balance bound.
    #[test]
    fn partitions_honor_the_balance_bound(
        g in hypergraph_strategy(),
        parts in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let cfg = PartitionConfig { parts, ..PartitionConfig::default() };
        let r = partition(&g, &cfg);
        let bound = g.balance_bound(parts, cfg.epsilon_permille);
        prop_assert!(
            r.max_part_weight <= bound,
            "max part weight {} exceeds balance bound {bound}",
            r.max_part_weight
        );
    }

    /// Whenever round-robin placement is itself balanced, the optimizer
    /// must not lose to it — the guard that keeps refinement regressions
    /// from ever shipping a worse-than-trivial placement.
    #[test]
    fn cut_is_never_worse_than_round_robin(
        g in hypergraph_strategy(),
        parts in prop::sample::select(vec![2usize, 3, 4]),
    ) {
        let cfg = PartitionConfig { parts, ..PartitionConfig::default() };
        let r = partition(&g, &cfg);
        let rr: Vec<u32> = (0..g.len() as u32).map(|v| v % parts as u32).collect();
        let bound = g.balance_bound(parts, cfg.epsilon_permille);
        if g.part_loads(&rr, parts).into_iter().all(|l| l <= bound) {
            let rr_cut = g.cut(&rr);
            prop_assert!(
                r.cut <= rr_cut,
                "cut {} worse than round-robin's {rr_cut}",
                r.cut
            );
        }
    }

    /// Rendezvous routing: in range, deterministic, and growing the
    /// fleet from N to N+1 shards only ever moves ids *to* the new shard
    /// — ids staying put is what keeps durable jobs on the journals that
    /// own them across fleet changes.
    #[test]
    fn rendezvous_routing_is_deterministic_and_minimally_disruptive(
        ids in prop::collection::vec(any::<u64>(), 1..64),
        n in prop::sample::select(vec![1usize, 2, 3, 5, 8]),
    ) {
        for &id in &ids {
            let shard = rendezvous_route(id, n);
            prop_assert!(shard < n);
            prop_assert_eq!(shard, rendezvous_route(id, n), "routing must be stable");
            let grown = rendezvous_route(id, n + 1);
            if grown != shard {
                prop_assert_eq!(
                    grown, n,
                    "id {id} moved between existing shards when shard {n} was added"
                );
            }
        }
    }
}

/// Degenerate inputs must stay total (the service layer can hand the
/// partitioner a single-stage graph or ask for more parts than stages).
#[test]
fn degenerate_graphs_partition_cleanly() {
    let empty = Hypergraph::default();
    let r = partition(&empty, &PartitionConfig::default());
    assert!(r.assignment.is_empty());
    assert_eq!((r.cut, r.max_part_weight), (0, 0));

    let single = Hypergraph {
        vertex_weights: vec![7],
        edges: vec![Hyperedge {
            pins: vec![0, 0],
            weight: 3,
        }],
    };
    let r = partition(
        &single,
        &PartitionConfig {
            parts: 4,
            ..PartitionConfig::default()
        },
    );
    assert_eq!(r.assignment.len(), 1);
    assert_eq!(r.cut, 0, "a one-vertex graph has nothing to cut");
    assert_eq!(r.max_part_weight, 7);
}
