//! Every `DESIGN.md §N` citation in the source tree must resolve to a
//! real section heading in DESIGN.md — documentation that drifts from
//! the code is worse than none.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("readable source dir") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "target" && !name.starts_with('.') {
                rust_files(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Section ids (`2`, `3.1`, …) cited as `DESIGN.md §id` in `text`.
fn cited_sections(text: &str) -> Vec<String> {
    const NEEDLE: &str = "DESIGN.md §";
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(NEEDLE) {
        rest = &rest[pos + NEEDLE.len()..];
        let id: String = rest
            .chars()
            .take_while(|c| c.is_ascii_digit() || *c == '.')
            .collect();
        let id = id.trim_end_matches('.').to_string();
        if !id.is_empty() {
            out.push(id);
        }
    }
    out
}

/// Section ids declared by DESIGN.md's headings. A heading declares `id`
/// when it contains `§id` not followed by another digit or dot (so a
/// `§3.1` heading does not declare `§3`).
fn declared_sections(design: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for line in design.lines() {
        if !line.starts_with('#') {
            continue;
        }
        for id in cited_sections(&line.replace('§', "DESIGN.md §")) {
            out.insert(id);
        }
    }
    out
}

#[test]
fn every_design_citation_resolves_to_a_heading() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md"))
        .expect("DESIGN.md must exist at the repository root");
    let declared = declared_sections(&design);
    assert!(
        !declared.is_empty(),
        "DESIGN.md must declare §-numbered section headings"
    );

    let mut files = Vec::new();
    for dir in ["crates", "src", "examples", "tests"] {
        rust_files(&root.join(dir), &mut files);
    }
    assert!(files.len() > 50, "source walk looks broken: {files:?}");

    let mut missing = Vec::new();
    let mut citations = 0usize;
    for file in &files {
        let text = std::fs::read_to_string(file).expect("readable source file");
        for id in cited_sections(&text) {
            citations += 1;
            if !declared.contains(&id) {
                missing.push(format!("{} cites DESIGN.md §{id}", file.display()));
            }
        }
    }
    assert!(
        citations >= 5,
        "expected several DESIGN.md citations in the tree"
    );
    assert!(
        missing.is_empty(),
        "unresolved DESIGN.md citations (headings declared: {declared:?}):\n{}",
        missing.join("\n")
    );
}

#[test]
fn section_parsers_behave() {
    assert_eq!(
        cited_sections("see DESIGN.md §3.1 and DESIGN.md §2; also DESIGN.md §6.3."),
        vec!["3.1", "2", "6.3"]
    );
    assert_eq!(
        cited_sections("plain DESIGN.md mention"),
        Vec::<String>::new()
    );
    let declared = declared_sections("## §2 · Views\n### §3.1 · Rings\nnope\n# intro\n");
    assert!(declared.contains("2") && declared.contains("3.1"));
    assert!(!declared.contains("3"), "§3.1 must not declare §3");
}
