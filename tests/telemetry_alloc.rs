//! Proof that the latency fast path stays off the allocator.
//!
//! `LatencyHistogram::record` runs at job completion inside the service
//! fast path, so DESIGN.md promises it is allocation-free. This test
//! swaps in a counting global allocator and records a few thousand
//! samples across the full value range: the allocation count before and
//! after must be identical. Kept in its own test binary because a
//! `#[global_allocator]` is process-wide — the counter must not see
//! other tests' traffic.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use hyperqueues::pipelines::telemetry::LatencyHistogram;

struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn record_never_allocates() {
    let h = LatencyHistogram::new();
    // Warm up outside the measured window (the histogram itself is
    // inline atomics, but the test harness may lazily allocate).
    h.record(1);

    let before = ALLOCATIONS.load(Ordering::SeqCst);
    for i in 0u64..10_000 {
        // Cover every bucket: small values, powers of two, and huge
        // values that land in the saturating last bucket.
        h.record(i);
        h.record(1u64 << (i % 64));
        h.record(u64::MAX - i);
    }
    let after = ALLOCATIONS.load(Ordering::SeqCst);
    assert_eq!(
        after - before,
        0,
        "LatencyHistogram::record allocated {} times",
        after - before
    );

    let snap = h.snapshot();
    assert_eq!(snap.count(), 30_001);
}
