//! Telemetry invariants attacked with proptest: histogram quantile
//! derivation must bracket the exact sorted-sample quantile for *any*
//! sample set, and the text encoding must round-trip any snapshot the
//! encoder can produce (the wire contract of `StatsEvent` frames).

use hyperqueues::pipelines::telemetry::{
    ClassLatency, EdgeTelemetry, HistogramSnapshot, JournalTelemetry, LatencyHistogram,
    TelemetrySnapshot,
};
use hyperqueues::pipelines::{IngressStats, JournalStats};
use proptest::prelude::*;

/// The ground truth the histogram approximates: the 1-based rank
/// `ceil(q·n)` sample of the sorted data.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64, ..ProptestConfig::default()
    })]

    #[test]
    fn histogram_quantiles_bracket_exact_quantiles(
        samples in prop::collection::vec(any::<u64>(), 1..512),
        percentiles in prop::collection::vec(1u32..100, 1..8),
    ) {
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        for &pct in &percentiles {
            let q = f64::from(pct) / 100.0;
            let exact = exact_quantile(&sorted, q);
            let (lo, hi) = snap.quantile_bounds(q).expect("non-empty histogram");
            prop_assert!(
                lo <= exact && exact <= hi,
                "q{}: exact {} outside bucket [{}, {}]", q, exact, lo, hi
            );
            // The conservative estimate is the bucket's upper bound: it
            // never understates the exact quantile, and (power-of-two
            // buckets) never overstates it by more than 2x.
            prop_assert_eq!(snap.quantile(q), hi);
            prop_assert!(hi == u64::MAX || hi < exact.saturating_mul(2).max(1));
        }
    }

    #[test]
    fn text_encoding_roundtrips_arbitrary_snapshots(
        sched_vals in prop::collection::vec(any::<u64>(), 8..9),
        edge_count in 0usize..5,
        latency_samples in prop::collection::vec(any::<u64>(), 0..64),
        with_ingress in any::<bool>(),
        with_journal in any::<bool>(),
        lag in any::<u64>(),
    ) {
        let mut snap = TelemetrySnapshot::new();
        snap.sched.tasks_executed = sched_vals[0];
        snap.sched.steals = sched_vals[1];
        snap.sched.steal_failures = sched_vals[2];
        snap.sched.steal_batch_items = sched_vals[3];
        snap.sched.helps_sync = sched_vals[4];
        snap.sched.helps_queue = sched_vals[5];
        snap.sched.parks = sched_vals[6];
        snap.sched.deferred_tasks = sched_vals[7];
        snap.queues.segments_allocated = sched_vals[0] ^ 1;
        snap.queues.lock_acquisitions = sched_vals[1] ^ 2;
        snap.admission.submitted = sched_vals[2] ^ 3;
        snap.admission.in_flight = (sched_vals[3] % 1024) as usize;
        snap.storage.edges = edge_count;
        snap.storage.pool_hits = sched_vals[4] ^ 4;
        for i in 0..edge_count {
            let mut e = EdgeTelemetry::default();
            e.pool.segment_capacity = 32;
            e.pool.hits = i as u64;
            e.queues.segments_allocated = i as u64 + 1;
            snap.edges.push(e);
        }
        if !latency_samples.is_empty() {
            let h = LatencyHistogram::new();
            for &s in &latency_samples {
                h.record(s);
            }
            snap.latency.push(ClassLatency {
                class: "jobs".to_string(),
                histogram: h.snapshot(),
            });
        }
        if with_ingress {
            snap.ingress = Some(IngressStats {
                connections: sched_vals[5] ^ 5,
                stats_events: sched_vals[6] ^ 6,
                stats_dropped: sched_vals[7] ^ 7,
                ..IngressStats::default()
            });
        }
        if with_journal {
            snap.journal = Some(JournalTelemetry {
                stats: JournalStats {
                    appends: sched_vals[0] ^ 8,
                    dir_syncs: sched_vals[1] ^ 9,
                    ..JournalStats::default()
                },
                lag,
            });
        }
        let text = snap.encode_text();
        let back = TelemetrySnapshot::parse_text(&text).expect("encoder output must parse");
        prop_assert_eq!(back, snap);
    }
}

#[test]
fn bucket_bounds_tile_u64_without_gaps() {
    let mut expect_lo = 0u64;
    for i in 0..64 {
        let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
        assert_eq!(lo, expect_lo, "bucket {i} lower bound");
        assert!(hi >= lo);
        if i == 63 {
            assert_eq!(hi, u64::MAX);
        } else {
            expect_lo = hi + 1;
        }
    }
}

#[test]
fn parser_tolerates_future_keys_in_known_and_unknown_sections() {
    let text = "telemetry_version 1\n\
                sched.tasks_executed 9\n\
                sched.keys_from_the_future 1\n\
                gpu.utilization 87\n\
                latency.jobs.b3 2\n\
                latency.jobs.p50_cached 11\n";
    let snap = TelemetrySnapshot::parse_text(text).expect("forward-compatible parse");
    assert_eq!(snap.sched.tasks_executed, 9);
    assert_eq!(snap.latency.len(), 1);
    assert_eq!(snap.latency[0].histogram.buckets[3], 2);
    assert_eq!(snap.latency[0].histogram.count(), 2);
}
