//! Ingress failure modes and end-to-end determinism over real sockets.
//!
//! Everything here runs against a live `IngressServer` on a loopback
//! socket: malformed/oversized frame rejection, undecodable payloads,
//! admission-full RETRY backpressure, clients that vanish mid-job,
//! graceful shutdown draining, and byte-identical responses across
//! worker counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipelines::graph::{GraphSpec, ServiceConfig};
use pipelines::ingress::{
    FrameKind, IngressClient, IngressConfig, IngressServer, JobCodec, JobOutcome,
};
use swan::Runtime;
use workloads::service::{job_lines, logstream_digest_spec, wordcount_spec, ServiceWorkloadConfig};
use workloads::wire::{
    decode_lines, encode_lines, expected_wordcount_bytes, LogstreamCodec, WordcountCodec,
};

const BACKOFF: Duration = Duration::from_micros(200);

fn wordcount_server(workers: usize, cfg: IngressConfig) -> (Arc<Runtime>, IngressServer) {
    let rt = Arc::new(Runtime::with_workers(workers));
    let graph = Arc::new(wordcount_spec(3, 16).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: 2,
            segment_capacity: 16,
            ..ServiceConfig::default()
        },
    ));
    let server =
        IngressServer::bind("127.0.0.1:0", graph, Arc::new(WordcountCodec), cfg).expect("bind");
    (rt, server)
}

/// Line-echo codec over a configurable-latency graph: the test harness
/// for admission and disconnect scenarios.
struct EchoCodec;

impl JobCodec for EchoCodec {
    type In = String;
    type Out = String;
    fn decode_job(&self, payload: &[u8]) -> Result<Vec<String>, String> {
        decode_lines(payload)
    }
    fn encode_result(&self, out: &[String], buf: &mut Vec<u8>) {
        buf.extend_from_slice(encode_lines(out).as_slice());
    }
}

/// An echo service whose jobs block while their line says "block" and the
/// gate is closed; returns (runtime, server, gate).
fn gated_echo_server(
    max_in_flight: usize,
    max_queued: usize,
) -> (Arc<Runtime>, IngressServer, Arc<AtomicBool>) {
    let gate = Arc::new(AtomicBool::new(false));
    let gate2 = Arc::clone(&gate);
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = Arc::new(
        GraphSpec::<String, String>::new()
            .map(move |line: String| {
                while line == "block" && !gate2.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                line
            })
            .compile(
                Arc::clone(&rt),
                ServiceConfig {
                    max_in_flight,
                    ..ServiceConfig::default()
                },
            ),
    );
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(EchoCodec),
        IngressConfig {
            max_queued,
            ..IngressConfig::default()
        },
    )
    .expect("bind");
    (rt, server, gate)
}

fn poll_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn malformed_frame_gets_error_then_close_and_server_survives() {
    let (_rt, server) = wordcount_server(2, IngressConfig::default());
    let addr = server.local_addr();
    let mut bad = IngressClient::connect(addr).unwrap();
    // A syntactically valid frame with an unassigned kind byte.
    let mut wire = vec![];
    wire.extend_from_slice(&9u32.to_le_bytes());
    wire.push(0xEE);
    wire.extend_from_slice(&1u64.to_le_bytes());
    bad.send_raw(&wire).unwrap();
    let err = bad.recv().expect("error frame before close");
    assert_eq!((err.kind, err.req_id), (FrameKind::Error, 0));
    assert!(String::from_utf8_lossy(&err.body).contains("protocol error"));
    assert!(bad.recv().is_err(), "connection must close after the error");
    // The daemon itself is unharmed: a fresh client completes a job.
    let mut ok = IngressClient::connect(addr).unwrap();
    let lines = vec!["alpha bravo alpha".to_string()];
    match ok
        .submit_and_wait(7, &encode_lines(&lines), BACKOFF)
        .unwrap()
    {
        JobOutcome::Result(bytes) => assert_eq!(bytes, expected_wordcount_bytes(&lines)),
        JobOutcome::Failed(m) => panic!("job failed: {m}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn oversized_and_truncated_frames_are_rejected() {
    let (_rt, server) = wordcount_server(
        1,
        IngressConfig {
            max_frame_len: 64,
            ..IngressConfig::default()
        },
    );
    let addr = server.local_addr();
    // Oversized: a submit whose len field exceeds the 64-byte cap.
    let mut big = IngressClient::connect(addr).unwrap();
    big.submit(1, &[b'x'; 500]).unwrap();
    let err = big.recv().expect("oversized must be reported");
    assert_eq!((err.kind, err.req_id), (FrameKind::Error, 0));
    assert!(big.recv().is_err(), "connection must close");
    // Truncated: a len field smaller than the fixed kind+req_id part.
    let mut short = IngressClient::connect(addr).unwrap();
    short.send_raw(&3u32.to_le_bytes()).unwrap();
    let err = short.recv().expect("truncated must be reported");
    assert_eq!(err.kind, FrameKind::Error);
    assert!(short.recv().is_err(), "connection must close");
    assert_eq!(server.shutdown().protocol_errors, 2);
}

#[test]
fn undecodable_payload_errors_but_keeps_the_connection() {
    let (_rt, server) = wordcount_server(2, IngressConfig::default());
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    client.submit(3, &[0xFF, 0xFE, 0x00]).unwrap(); // not UTF-8
    let err = client.recv().unwrap();
    assert_eq!((err.kind, err.req_id), (FrameKind::Error, 3));
    assert!(String::from_utf8_lossy(&err.body).contains("bad job payload"));
    // Same connection, next request: still served.
    let lines = vec!["charlie delta charlie".to_string()];
    match client
        .submit_and_wait(4, &encode_lines(&lines), BACKOFF)
        .unwrap()
    {
        JobOutcome::Result(bytes) => assert_eq!(bytes, expected_wordcount_bytes(&lines)),
        JobOutcome::Failed(m) => panic!("job failed: {m}"),
    }
    let stats = server.shutdown();
    assert_eq!(
        stats.protocol_errors, 0,
        "payload errors are not protocol errors"
    );
    assert!(stats.errors_sent >= 1);
}

#[test]
fn oversized_result_degrades_to_a_job_error() {
    // Logstream expands each input line into a 17-byte hex digest line,
    // so a submit can fit the frame limit while its result does not. The
    // server must answer with an Error, not an oversized frame.
    let rt = Arc::new(Runtime::with_workers(2));
    let graph =
        Arc::new(logstream_digest_spec(2, 8, 0).compile(Arc::clone(&rt), ServiceConfig::default()));
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(LogstreamCodec),
        IngressConfig {
            max_frame_len: 32,
            ..IngressConfig::default()
        },
    )
    .expect("bind");
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    // Three 1-char lines: 15-byte submit frame, 51-byte result body.
    client.submit(1, b"a\nb\nc\n").unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Error, 1));
    assert!(String::from_utf8_lossy(&r.body).contains("result too large"));
    // One line (17-byte result body) fits: the connection still serves.
    client.submit(2, b"a\n").unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Result, 2));
    assert_eq!(r.body.len(), 17);
    let stats = server.shutdown();
    assert_eq!(stats.jobs_accepted, stats.jobs_completed);
}

#[test]
fn admission_full_turns_into_retry_frames() {
    let (_rt, server, gate) = gated_echo_server(1, 1);
    let addr = server.local_addr();
    let mut a = IngressClient::connect(addr).unwrap();
    let mut probe = IngressClient::connect(addr).unwrap();
    // Occupy the single in-flight slot…
    a.submit(0, b"block").unwrap();
    assert!(
        poll_until(Duration::from_secs(5), || probe
            .stats(90)
            .unwrap()
            .contains("\"in_flight\": 1")),
        "blocker never admitted"
    );
    // …and the single waiting slot.
    a.submit(1, b"queued").unwrap();
    assert!(
        poll_until(Duration::from_secs(5), || probe
            .stats(91)
            .unwrap()
            .contains("\"queued\": 1")),
        "second job never queued"
    );
    // The line is full: an independent connection gets explicit RETRY.
    let mut b = IngressClient::connect(addr).unwrap();
    b.submit(5, b"rejected").unwrap();
    let retry = b.recv().unwrap();
    assert_eq!((retry.kind, retry.req_id), (FrameKind::Retry, 5));
    assert_eq!(u32::from_le_bytes(retry.body[..4].try_into().unwrap()), 1);
    // Open the gate: everything drains, in submission order per connection.
    gate.store(true, Ordering::Release);
    let r0 = a.recv().unwrap();
    assert_eq!(
        (r0.kind, r0.req_id, r0.body.as_slice()),
        (FrameKind::Result, 0, b"block\n".as_slice())
    );
    let r1 = a.recv().unwrap();
    assert_eq!(
        (r1.kind, r1.req_id, r1.body.as_slice()),
        (FrameKind::Result, 1, b"queued\n".as_slice())
    );
    // And the refused client succeeds on resubmission.
    match b.submit_and_wait(6, b"rejected", BACKOFF).unwrap() {
        JobOutcome::Result(bytes) => assert_eq!(bytes, b"rejected\n"),
        JobOutcome::Failed(m) => panic!("{m}"),
    }
    let stats = server.shutdown();
    assert!(stats.retries_sent >= 1);
    assert_eq!(stats.jobs_accepted, stats.jobs_completed);
}

#[test]
fn client_disconnect_mid_job_still_drains_the_job() {
    let (_rt, server, gate) = gated_echo_server(2, 8);
    let addr = server.local_addr();
    {
        let mut doomed = IngressClient::connect(addr).unwrap();
        doomed.submit(0, b"block").unwrap();
        // Wait until the job is truly accepted, then vanish.
        let mut probe = IngressClient::connect(addr).unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || probe
                .stats(1)
                .unwrap()
                .contains("\"jobs_accepted\": 1")),
            "job never accepted"
        );
    } // both sockets drop here, job still running
    gate.store(true, Ordering::Release);
    assert!(
        poll_until(Duration::from_secs(5), || {
            let s = server.stats();
            s.jobs_completed == s.jobs_accepted && s.jobs_accepted >= 1
        }),
        "abandoned job did not drain: {:?}",
        server.stats()
    );
    // No worker/dispatcher leaked: the service still serves new clients.
    let mut next = IngressClient::connect(addr).unwrap();
    match next.submit_and_wait(9, b"hello", BACKOFF).unwrap() {
        JobOutcome::Result(bytes) => assert_eq!(bytes, b"hello\n"),
        JobOutcome::Failed(m) => panic!("{m}"),
    }
    server.shutdown();
}

#[test]
fn graceful_shutdown_drains_accepted_jobs_and_answers_them() {
    let (rt, server, gate) = gated_echo_server(2, 16);
    gate.store(true, Ordering::Release); // jobs run at full speed
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    for j in 0..5u64 {
        client.submit(j, format!("job-{j}").as_bytes()).unwrap();
    }
    assert!(
        poll_until(Duration::from_secs(5), || server.stats().jobs_accepted == 5),
        "submits not all accepted before shutdown"
    );
    let stats = server.shutdown();
    assert_eq!(
        (stats.jobs_accepted, stats.jobs_completed),
        (5, 5),
        "graceful shutdown must drain accepted jobs"
    );
    // The responses were written before the server closed the socket.
    for j in 0..5u64 {
        let r = client.recv().expect("drained response");
        assert_eq!((r.kind, r.req_id), (FrameKind::Result, j));
        assert_eq!(r.body, format!("job-{j}\n").into_bytes());
    }
    assert!(client.recv().is_err(), "socket closed after the drain");
    rt.quiesce();
    assert_eq!(rt.open_scopes(), 0);
}

#[test]
fn responses_are_byte_identical_across_1_2_8_workers() {
    let cfg = ServiceWorkloadConfig::small();
    let jobs = 24usize;
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for workers in [1usize, 2, 8] {
        let (rt, server) = wordcount_server(workers, IngressConfig::default());
        let addr = server.local_addr();
        // Two concurrent connections splitting the job range.
        let responses: Vec<Vec<u8>> = std::thread::scope(|s| {
            let cfg = &cfg;
            let handles: Vec<_> = (0..2)
                .map(|half| {
                    s.spawn(move || {
                        let mut client = IngressClient::connect(addr).unwrap();
                        let mut out = Vec::new();
                        for j in (0..jobs).filter(|j| j % 2 == half) {
                            let payload = encode_lines(&job_lines(cfg, j));
                            match client.submit_and_wait(j as u64, &payload, BACKOFF).unwrap() {
                                JobOutcome::Result(bytes) => out.push((j, bytes)),
                                JobOutcome::Failed(m) => panic!("job {j}: {m}"),
                            }
                        }
                        out
                    })
                })
                .collect();
            let mut all: Vec<(usize, Vec<u8>)> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_by_key(|(j, _)| *j);
            all.into_iter().map(|(_, b)| b).collect()
        });
        for (j, bytes) in responses.iter().enumerate() {
            assert_eq!(
                bytes,
                &expected_wordcount_bytes(&job_lines(&cfg, j)),
                "job {j} at {workers} workers diverged from its serial elision"
            );
        }
        match &reference {
            None => reference = Some(responses),
            Some(r) => assert_eq!(
                r, &responses,
                "responses at {workers} workers differ from the 1-worker bytes"
            ),
        }
        server.shutdown();
        rt.quiesce();
    }
}
