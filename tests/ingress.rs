//! Ingress failure modes and end-to-end determinism over real sockets.
//!
//! Everything here runs against a live `IngressServer` on a loopback
//! socket: malformed/oversized frame rejection, undecodable payloads,
//! admission-full RETRY backpressure, clients that vanish mid-job,
//! graceful shutdown draining, and byte-identical responses across
//! worker counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipelines::graph::{GraphSpec, ServiceConfig};
use pipelines::ingress::{
    encode_frame, FrameDecoder, FrameKind, IngressClient, IngressConfig, IngressServer, JobCodec,
    JobOutcome, QueryStatus, RecoveryReport,
};
use pipelines::journal::{replay_dir, JobReplayStatus, Journal, JournalConfig, RecordKind};
use proptest::prelude::*;
use swan::Runtime;
use workloads::service::{job_lines, logstream_digest_spec, wordcount_spec, ServiceWorkloadConfig};
use workloads::wire::{
    decode_lines, encode_lines, expected_wordcount_bytes, LogstreamCodec, WordcountCodec,
};

const BACKOFF: Duration = Duration::from_micros(200);

fn wordcount_server(workers: usize, cfg: IngressConfig) -> (Arc<Runtime>, IngressServer) {
    let rt = Arc::new(Runtime::with_workers(workers));
    let graph = Arc::new(wordcount_spec(3, 16).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: 2,
            segment_capacity: 16,
            ..ServiceConfig::default()
        },
    ));
    let server =
        IngressServer::bind("127.0.0.1:0", graph, Arc::new(WordcountCodec), cfg).expect("bind");
    (rt, server)
}

/// Line-echo codec over a configurable-latency graph: the test harness
/// for admission and disconnect scenarios.
struct EchoCodec;

impl JobCodec for EchoCodec {
    type In = String;
    type Out = String;
    fn decode_job(&self, payload: &[u8]) -> Result<Vec<String>, String> {
        decode_lines(payload)
    }
    fn encode_result(&self, out: &[String], buf: &mut Vec<u8>) {
        buf.extend_from_slice(encode_lines(out).as_slice());
    }
}

/// An echo service whose jobs block while their line says "block" and the
/// gate is closed; returns (runtime, server, gate).
fn gated_echo_server(
    max_in_flight: usize,
    max_queued: usize,
) -> (Arc<Runtime>, IngressServer, Arc<AtomicBool>) {
    let gate = Arc::new(AtomicBool::new(false));
    let gate2 = Arc::clone(&gate);
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = Arc::new(
        GraphSpec::<String, String>::new()
            .map(move |line: String| {
                while line == "block" && !gate2.load(Ordering::Acquire) {
                    std::thread::sleep(Duration::from_millis(1));
                }
                line
            })
            .compile(
                Arc::clone(&rt),
                ServiceConfig {
                    max_in_flight,
                    ..ServiceConfig::default()
                },
            ),
    );
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(EchoCodec),
        IngressConfig {
            max_queued,
            ..IngressConfig::default()
        },
    )
    .expect("bind");
    (rt, server, gate)
}

fn poll_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let t0 = Instant::now();
    while t0.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

#[test]
fn malformed_frame_gets_error_then_close_and_server_survives() {
    let (_rt, server) = wordcount_server(2, IngressConfig::default());
    let addr = server.local_addr();
    let mut bad = IngressClient::connect(addr).unwrap();
    // A syntactically valid frame with an unassigned kind byte.
    let mut wire = vec![];
    wire.extend_from_slice(&9u32.to_le_bytes());
    wire.push(0xEE);
    wire.extend_from_slice(&1u64.to_le_bytes());
    bad.send_raw(&wire).unwrap();
    let err = bad.recv().expect("error frame before close");
    assert_eq!((err.kind, err.req_id), (FrameKind::Error, 0));
    assert!(String::from_utf8_lossy(&err.body).contains("protocol error"));
    assert!(bad.recv().is_err(), "connection must close after the error");
    // The daemon itself is unharmed: a fresh client completes a job.
    let mut ok = IngressClient::connect(addr).unwrap();
    let lines = vec!["alpha bravo alpha".to_string()];
    match ok
        .submit_and_wait(7, &encode_lines(&lines), BACKOFF)
        .unwrap()
    {
        JobOutcome::Result(bytes) => assert_eq!(bytes, expected_wordcount_bytes(&lines)),
        JobOutcome::Failed(m) => panic!("job failed: {m}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.protocol_errors, 1);
}

#[test]
fn oversized_and_truncated_frames_are_rejected() {
    let (_rt, server) = wordcount_server(
        1,
        IngressConfig {
            max_frame_len: 64,
            ..IngressConfig::default()
        },
    );
    let addr = server.local_addr();
    // Oversized: a submit whose len field exceeds the 64-byte cap.
    let mut big = IngressClient::connect(addr).unwrap();
    big.submit(1, &[b'x'; 500]).unwrap();
    let err = big.recv().expect("oversized must be reported");
    assert_eq!((err.kind, err.req_id), (FrameKind::Error, 0));
    assert!(big.recv().is_err(), "connection must close");
    // Truncated: a len field smaller than the fixed kind+req_id part.
    let mut short = IngressClient::connect(addr).unwrap();
    short.send_raw(&3u32.to_le_bytes()).unwrap();
    let err = short.recv().expect("truncated must be reported");
    assert_eq!(err.kind, FrameKind::Error);
    assert!(short.recv().is_err(), "connection must close");
    assert_eq!(server.shutdown().protocol_errors, 2);
}

#[test]
fn undecodable_payload_errors_but_keeps_the_connection() {
    let (_rt, server) = wordcount_server(2, IngressConfig::default());
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    client.submit(3, &[0xFF, 0xFE, 0x00]).unwrap(); // not UTF-8
    let err = client.recv().unwrap();
    assert_eq!((err.kind, err.req_id), (FrameKind::Error, 3));
    assert!(String::from_utf8_lossy(&err.body).contains("bad job payload"));
    // Same connection, next request: still served.
    let lines = vec!["charlie delta charlie".to_string()];
    match client
        .submit_and_wait(4, &encode_lines(&lines), BACKOFF)
        .unwrap()
    {
        JobOutcome::Result(bytes) => assert_eq!(bytes, expected_wordcount_bytes(&lines)),
        JobOutcome::Failed(m) => panic!("job failed: {m}"),
    }
    let stats = server.shutdown();
    assert_eq!(
        stats.protocol_errors, 0,
        "payload errors are not protocol errors"
    );
    assert!(stats.errors_sent >= 1);
}

#[test]
fn oversized_result_degrades_to_a_job_error() {
    // Logstream expands each input line into a 17-byte hex digest line,
    // so a submit can fit the frame limit while its result does not. The
    // server must answer with an Error, not an oversized frame.
    let rt = Arc::new(Runtime::with_workers(2));
    let graph =
        Arc::new(logstream_digest_spec(2, 8, 0).compile(Arc::clone(&rt), ServiceConfig::default()));
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(LogstreamCodec),
        IngressConfig {
            max_frame_len: 32,
            ..IngressConfig::default()
        },
    )
    .expect("bind");
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    // Three 1-char lines: 15-byte submit frame, 51-byte result body.
    client.submit(1, b"a\nb\nc\n").unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Error, 1));
    assert!(String::from_utf8_lossy(&r.body).contains("result too large"));
    // One line (17-byte result body) fits: the connection still serves.
    client.submit(2, b"a\n").unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Result, 2));
    assert_eq!(r.body.len(), 17);
    let stats = server.shutdown();
    assert_eq!(stats.jobs_accepted, stats.jobs_completed);
}

#[test]
fn admission_full_turns_into_retry_frames() {
    let (_rt, server, gate) = gated_echo_server(1, 1);
    let addr = server.local_addr();
    let mut a = IngressClient::connect(addr).unwrap();
    let mut probe = IngressClient::connect(addr).unwrap();
    // Occupy the single in-flight slot…
    a.submit(0, b"block").unwrap();
    assert!(
        poll_until(Duration::from_secs(5), || {
            probe.stats(90).unwrap().admission.in_flight == 1
        }),
        "blocker never admitted"
    );
    // …and the single waiting slot.
    a.submit(1, b"queued").unwrap();
    assert!(
        poll_until(Duration::from_secs(5), || {
            probe.stats(91).unwrap().admission.queued == 1
        }),
        "second job never queued"
    );
    // The line is full: an independent connection gets explicit RETRY.
    let mut b = IngressClient::connect(addr).unwrap();
    b.submit(5, b"rejected").unwrap();
    let retry = b.recv().unwrap();
    assert_eq!((retry.kind, retry.req_id), (FrameKind::Retry, 5));
    assert_eq!(u32::from_le_bytes(retry.body[..4].try_into().unwrap()), 1);
    // Open the gate: everything drains, in submission order per connection.
    gate.store(true, Ordering::Release);
    let r0 = a.recv().unwrap();
    assert_eq!(
        (r0.kind, r0.req_id, r0.body.as_slice()),
        (FrameKind::Result, 0, b"block\n".as_slice())
    );
    let r1 = a.recv().unwrap();
    assert_eq!(
        (r1.kind, r1.req_id, r1.body.as_slice()),
        (FrameKind::Result, 1, b"queued\n".as_slice())
    );
    // And the refused client succeeds on resubmission.
    match b.submit_and_wait(6, b"rejected", BACKOFF).unwrap() {
        JobOutcome::Result(bytes) => assert_eq!(bytes, b"rejected\n"),
        JobOutcome::Failed(m) => panic!("{m}"),
    }
    let stats = server.shutdown();
    assert!(stats.retries_sent >= 1);
    assert_eq!(stats.jobs_accepted, stats.jobs_completed);
}

#[test]
fn client_disconnect_mid_job_still_drains_the_job() {
    let (_rt, server, gate) = gated_echo_server(2, 8);
    let addr = server.local_addr();
    {
        let mut doomed = IngressClient::connect(addr).unwrap();
        doomed.submit(0, b"block").unwrap();
        // Wait until the job is truly accepted, then vanish.
        let mut probe = IngressClient::connect(addr).unwrap();
        assert!(
            poll_until(Duration::from_secs(5), || {
                let snap = probe.stats(1).unwrap();
                snap.ingress.is_some_and(|i| i.jobs_accepted == 1)
            }),
            "job never accepted"
        );
    } // both sockets drop here, job still running
    gate.store(true, Ordering::Release);
    assert!(
        poll_until(Duration::from_secs(5), || {
            let s = server.stats();
            s.jobs_completed == s.jobs_accepted && s.jobs_accepted >= 1
        }),
        "abandoned job did not drain: {:?}",
        server.stats()
    );
    // The orphaned result is *counted*, not silently discarded.
    assert!(
        poll_until(Duration::from_secs(5), || server.stats().results_dropped
            == 1),
        "dead-socket result drop not counted: {:?}",
        server.stats()
    );
    // No worker/dispatcher leaked: the service still serves new clients.
    let mut next = IngressClient::connect(addr).unwrap();
    match next.submit_and_wait(9, b"hello", BACKOFF).unwrap() {
        JobOutcome::Result(bytes) => assert_eq!(bytes, b"hello\n"),
        JobOutcome::Failed(m) => panic!("{m}"),
    }
    let stats = server.shutdown();
    assert_eq!(stats.results_dropped, 1, "only the abandoned job dropped");
}

#[test]
fn graceful_shutdown_drains_accepted_jobs_and_answers_them() {
    let (rt, server, gate) = gated_echo_server(2, 16);
    gate.store(true, Ordering::Release); // jobs run at full speed
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    for j in 0..5u64 {
        client.submit(j, format!("job-{j}").as_bytes()).unwrap();
    }
    assert!(
        poll_until(Duration::from_secs(5), || server.stats().jobs_accepted == 5),
        "submits not all accepted before shutdown"
    );
    let stats = server.shutdown();
    assert_eq!(
        (stats.jobs_accepted, stats.jobs_completed),
        (5, 5),
        "graceful shutdown must drain accepted jobs"
    );
    // The responses were written before the server closed the socket.
    for j in 0..5u64 {
        let r = client.recv().expect("drained response");
        assert_eq!((r.kind, r.req_id), (FrameKind::Result, j));
        assert_eq!(r.body, format!("job-{j}\n").into_bytes());
    }
    assert!(client.recv().is_err(), "socket closed after the drain");
    rt.quiesce();
    assert_eq!(rt.open_scopes(), 0);
}

#[test]
fn responses_are_byte_identical_across_1_2_8_workers() {
    let cfg = ServiceWorkloadConfig::small();
    let jobs = 24usize;
    let mut reference: Option<Vec<Vec<u8>>> = None;
    for workers in [1usize, 2, 8] {
        let (rt, server) = wordcount_server(workers, IngressConfig::default());
        let addr = server.local_addr();
        // Two concurrent connections splitting the job range.
        let responses: Vec<Vec<u8>> = std::thread::scope(|s| {
            let cfg = &cfg;
            let handles: Vec<_> = (0..2)
                .map(|half| {
                    s.spawn(move || {
                        let mut client = IngressClient::connect(addr).unwrap();
                        let mut out = Vec::new();
                        for j in (0..jobs).filter(|j| j % 2 == half) {
                            let payload = encode_lines(&job_lines(cfg, j));
                            match client.submit_and_wait(j as u64, &payload, BACKOFF).unwrap() {
                                JobOutcome::Result(bytes) => out.push((j, bytes)),
                                JobOutcome::Failed(m) => panic!("job {j}: {m}"),
                            }
                        }
                        out
                    })
                })
                .collect();
            let mut all: Vec<(usize, Vec<u8>)> = handles
                .into_iter()
                .flat_map(|h| h.join().unwrap())
                .collect();
            all.sort_by_key(|(j, _)| *j);
            all.into_iter().map(|(_, b)| b).collect()
        });
        for (j, bytes) in responses.iter().enumerate() {
            assert_eq!(
                bytes,
                &expected_wordcount_bytes(&job_lines(&cfg, j)),
                "job {j} at {workers} workers diverged from its serial elision"
            );
        }
        match &reference {
            None => reference = Some(responses),
            Some(r) => assert_eq!(
                r, &responses,
                "responses at {workers} workers differ from the 1-worker bytes"
            ),
        }
        server.shutdown();
        rt.quiesce();
    }
}

// ---------------------------------------------------------------------------
// Durable frames: SubmitDurable / Ack / Query over a journal-backed server.
// ---------------------------------------------------------------------------

fn journal_temp_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hq-ingress-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A wordcount server with durable submissions enabled over a fresh (or
/// recovered) journal in `dir`.
fn durable_wordcount_server(
    workers: usize,
    dir: &std::path::Path,
) -> (Arc<Runtime>, IngressServer, RecoveryReport) {
    durable_wordcount_server_with(workers, dir, IngressConfig::default())
}

/// [`durable_wordcount_server`] with explicit ingress knobs.
fn durable_wordcount_server_with(
    workers: usize,
    dir: &std::path::Path,
    cfg: IngressConfig,
) -> (Arc<Runtime>, IngressServer, RecoveryReport) {
    let rt = Arc::new(Runtime::with_workers(workers));
    let graph = Arc::new(wordcount_spec(3, 16).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: 2,
            segment_capacity: 16,
            ..ServiceConfig::default()
        },
    ));
    let (journal, replay) = Journal::open(JournalConfig::at(dir)).expect("open journal");
    let (server, report) = IngressServer::bind_durable(
        "127.0.0.1:0",
        graph,
        Arc::new(WordcountCodec),
        cfg,
        journal,
        &replay,
    )
    .expect("bind durable");
    (rt, server, report)
}

#[test]
fn durable_lifecycle_dedupes_acks_and_queries() {
    let cfg = ServiceWorkloadConfig::small();
    let dir = journal_temp_dir("lifecycle");
    let (rt, server, report) = durable_wordcount_server(2, &dir);
    assert_eq!(report.journaled_jobs, 0, "fresh journal replays nothing");
    let mut client = IngressClient::connect(server.local_addr()).unwrap();

    // Unknown before anything is submitted.
    assert_eq!(client.query(1).unwrap(), (QueryStatus::Unknown, Vec::new()));

    let payload = encode_lines(&job_lines(&cfg, 0));
    let want = expected_wordcount_bytes(&job_lines(&cfg, 0));
    let got = client
        .submit_durable_and_wait(1, &payload, BACKOFF)
        .unwrap();
    assert_eq!(got, JobOutcome::Result(want.clone()));

    // Duplicate submit returns the journaled result instead of re-running.
    let dup = client
        .submit_durable_and_wait(1, &payload, BACKOFF)
        .unwrap();
    assert_eq!(dup, JobOutcome::Result(want.clone()));
    assert_eq!(client.query(1).unwrap(), (QueryStatus::Done, want));
    let stats = server.stats();
    assert_eq!(
        (stats.durable_jobs, stats.durable_dupes),
        (1, 1),
        "one run, one dedupe"
    );

    // Ack retires the result; re-ack is idempotent (fire-and-forget: the
    // follow-up query round-trip proves no error frame was queued).
    client.ack(1).unwrap();
    assert_eq!(client.query(1).unwrap(), (QueryStatus::Acked, Vec::new()));
    client.ack(1).unwrap();
    assert_eq!(client.query(1).unwrap(), (QueryStatus::Acked, Vec::new()));

    // Submitting an acked id is an error, not a silent re-run.
    match client
        .submit_durable_and_wait(1, &payload, BACKOFF)
        .unwrap()
    {
        JobOutcome::Failed(msg) => assert!(msg.contains("already acknowledged"), "{msg}"),
        other => panic!("acked resubmit must fail, got {other:?}"),
    }
    server.shutdown();
    rt.quiesce();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_results_resume_across_reconnects() {
    let cfg = ServiceWorkloadConfig::small();
    let dir = journal_temp_dir("reconnect");
    let (rt, server, _) = durable_wordcount_server(2, &dir);
    let payload = encode_lines(&job_lines(&cfg, 3));
    let want = expected_wordcount_bytes(&job_lines(&cfg, 3));

    let mut first = IngressClient::connect(server.local_addr()).unwrap();
    let got = first.submit_durable_and_wait(7, &payload, BACKOFF).unwrap();
    assert_eq!(got, JobOutcome::Result(want.clone()));
    drop(first); // connection gone; the durable result must not be

    let mut second = IngressClient::connect(server.local_addr()).unwrap();
    assert_eq!(second.query(7).unwrap(), (QueryStatus::Done, want.clone()));
    let resumed = second
        .submit_durable_and_wait(7, &payload, BACKOFF)
        .unwrap();
    assert_eq!(
        resumed,
        JobOutcome::Result(want),
        "resume across connections"
    );
    server.shutdown();
    rt.quiesce();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_misuse_is_rejected_without_killing_the_connection() {
    let cfg = ServiceWorkloadConfig::small();
    let dir = journal_temp_dir("misuse");
    let (rt, server, _) = durable_wordcount_server(2, &dir);
    let mut client = IngressClient::connect(server.local_addr()).unwrap();

    // Durable job id 0 is reserved for connection-level errors.
    client.submit_durable(0, b"x").unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Error, 0));
    assert!(String::from_utf8_lossy(&r.body).contains("non-zero"));

    // Ack and Query carry no body; a non-empty one is a per-request error.
    client.send(FrameKind::Ack, 1, b"junk").unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Error, 1));
    client.send(FrameKind::Query, 1, b"junk").unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Error, 1));

    // Acking an unknown id, or one still unresolved, is an error too.
    client.ack(42).unwrap();
    let r = client.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Error, 42));

    // None of that killed the connection: real work still goes through.
    let payload = encode_lines(&job_lines(&cfg, 0));
    let got = client
        .submit_durable_and_wait(5, &payload, BACKOFF)
        .unwrap();
    assert_eq!(
        got,
        JobOutcome::Result(expected_wordcount_bytes(&job_lines(&cfg, 0)))
    );

    // A client speaking server-only kinds is cut off (stream offset no
    // longer trustworthy), and the server keeps serving others.
    let mut rogue = IngressClient::connect(server.local_addr()).unwrap();
    rogue.send(FrameKind::QueryOk, 9, &[1]).unwrap();
    let r = rogue.recv().unwrap();
    assert_eq!((r.kind, r.req_id), (FrameKind::Error, 0));
    assert!(rogue.recv().is_err(), "connection closed after QueryOk");

    // A truncated SubmitDurable (header promises more body than ever
    // arrives) must not run a job; the abandoned connection just closes.
    let mut torn = IngressClient::connect(server.local_addr()).unwrap();
    torn.send_raw(&100u32.to_le_bytes()).unwrap();
    torn.send_raw(&[FrameKind::SubmitDurable as u8]).unwrap();
    torn.send_raw(&6u64.to_le_bytes()).unwrap();
    torn.send_raw(b"only-this").unwrap();
    drop(torn);
    assert!(
        poll_until(Duration::from_secs(2), || server.stats().connections == 3),
        "torn connection not reaped"
    );
    assert_eq!(
        server.stats().durable_jobs,
        1,
        "truncated SubmitDurable must not start a job"
    );
    server.shutdown();
    rt.quiesce();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn durable_frames_on_a_plain_server_fail_cleanly() {
    let (rt, server) = wordcount_server(2, IngressConfig::default());
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    match client
        .submit_durable_and_wait(1, b"irrelevant", BACKOFF)
        .unwrap()
    {
        JobOutcome::Failed(msg) => assert!(msg.contains("disabled"), "{msg}"),
        other => panic!("durable submit on plain server must fail, got {other:?}"),
    }
    client.ack(1).unwrap();
    let r = client.recv().unwrap();
    assert_eq!(r.kind, FrameKind::Error);
    assert!(client.query(1).is_err(), "query must surface the error");
    server.shutdown();
    rt.quiesce();
}

#[test]
fn oversized_queried_result_degrades_to_an_error_frame() {
    // Same degrade discipline as the Result path: a Done entry whose
    // journaled bytes exceed max_frame_len must come back as an Error
    // frame from Query too, never as an oversized QueryOk.
    let dir = journal_temp_dir("query-oversize");
    let rt = Arc::new(Runtime::with_workers(2));
    let graph =
        Arc::new(logstream_digest_spec(2, 8, 0).compile(Arc::clone(&rt), ServiceConfig::default()));
    let (journal, replay) = Journal::open(JournalConfig::at(&dir)).expect("open journal");
    let (server, _) = IngressServer::bind_durable(
        "127.0.0.1:0",
        graph,
        Arc::new(LogstreamCodec),
        IngressConfig {
            max_frame_len: 32,
            ..IngressConfig::default()
        },
        journal,
        &replay,
    )
    .expect("bind durable");
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    // Three lines → 51-byte result body: the submit reply degrades…
    match client
        .submit_durable_and_wait(1, b"a\nb\nc\n", BACKOFF)
        .unwrap()
    {
        JobOutcome::Failed(msg) => assert!(msg.contains("result too large"), "{msg}"),
        other => panic!("oversized durable result must degrade, got {other:?}"),
    }
    // …and so must the query of the journaled Done entry.
    let err = client.query(1).expect_err("query must degrade too");
    assert!(err.to_string().contains("result too large"), "{err}");
    // The connection survives, and a fitting result still queries fine.
    match client.submit_durable_and_wait(2, b"a\n", BACKOFF).unwrap() {
        JobOutcome::Result(bytes) => assert_eq!(bytes.len(), 17),
        other => panic!("small job must succeed, got {other:?}"),
    }
    let (status, bytes) = client.query(2).unwrap();
    assert_eq!((status, bytes.len()), (QueryStatus::Done, 17));
    server.shutdown();
    rt.quiesce();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn acked_ids_beyond_the_retention_cap_are_evicted() {
    let cfg = ServiceWorkloadConfig::small();
    let dir = journal_temp_dir("evict");
    let (rt, server, _) = durable_wordcount_server_with(
        2,
        &dir,
        IngressConfig {
            max_retired_ids: 2,
            ..IngressConfig::default()
        },
    );
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    for id in 1..=3u64 {
        let payload = encode_lines(&job_lines(&cfg, id as usize));
        let got = client
            .submit_durable_and_wait(id, &payload, BACKOFF)
            .unwrap();
        assert_eq!(
            got,
            JobOutcome::Result(expected_wordcount_bytes(&job_lines(&cfg, id as usize)))
        );
        client.ack(id).unwrap();
    }
    // Retention cap 2: acking id 3 evicted id 1 from the table, so the
    // daemon's memory stays bounded no matter how many ids retire.
    assert_eq!(client.query(1).unwrap(), (QueryStatus::Unknown, Vec::new()));
    assert_eq!(client.query(2).unwrap(), (QueryStatus::Acked, Vec::new()));
    assert_eq!(client.query(3).unwrap(), (QueryStatus::Acked, Vec::new()));
    // An evicted id is simply a fresh id again: resubmitting re-runs the
    // job (byte-identical, and the client already consumed the original).
    let payload = encode_lines(&job_lines(&cfg, 1));
    let got = client
        .submit_durable_and_wait(1, &payload, BACKOFF)
        .unwrap();
    assert_eq!(
        got,
        JobOutcome::Result(expected_wordcount_bytes(&job_lines(&cfg, 1)))
    );
    server.shutdown();
    rt.quiesce();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Event-driven ingress: slowloris, idle cost, fd exhaustion, fallback mode.
// ---------------------------------------------------------------------------

#[test]
fn slowloris_submit_trickled_byte_by_byte_still_completes() {
    let (rt, server) = wordcount_server(2, IngressConfig::default());
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    let lines = vec![
        "slow and steady and slow".to_string(),
        "steady wins the race".to_string(),
    ];
    let mut wire = Vec::new();
    encode_frame(FrameKind::Submit, 42, &encode_lines(&lines), &mut wire);
    // One byte per write with a pause: the server sees the frame arrive
    // over dozens of reads and must parse it exactly as if it came whole.
    for byte in wire {
        client.send_raw(&[byte]).unwrap();
        std::thread::sleep(Duration::from_micros(500));
    }
    let frame = client.recv().expect("result for the trickled submit");
    assert_eq!((frame.kind, frame.req_id), (FrameKind::Result, 42));
    assert_eq!(frame.body, expected_wordcount_bytes(&lines));
    server.shutdown();
    rt.quiesce();
}

/// The C1M claim in a test: connected-but-silent clients must cost the
/// event loops nothing. 512 idle connections, a half-second observation
/// window, and the loop-wakeup counter must not move — there is no
/// per-connection polling anywhere.
#[test]
#[cfg(target_os = "linux")]
fn idle_connections_cost_no_event_loop_wakeups() {
    let _ = epoll::raise_nofile_limit(4096);
    let (rt, server) = wordcount_server(1, IngressConfig::default());
    let addr = server.local_addr();
    let idle: Vec<std::net::TcpStream> = (0..512)
        .map(|_| std::net::TcpStream::connect(addr).expect("connect idle client"))
        .collect();
    assert!(
        poll_until(Duration::from_secs(10), || {
            server.stats().connections == 512
        }),
        "not all idle connections were accepted"
    );
    assert!(
        server.stats().loop_wakeups > 0,
        "event mode not active — this test measures the epoll path"
    );
    // Let the registration burst settle, then watch a quiet window.
    std::thread::sleep(Duration::from_millis(100));
    let before = server.stats().loop_wakeups;
    std::thread::sleep(Duration::from_millis(500));
    let woke = server.stats().loop_wakeups - before;
    assert!(
        woke <= 4,
        "{woke} event-loop wakeups in an idle 500ms window with 512 \
         silent connections — idle connections must be free"
    );
    // They are real connections: one of them still completes a job.
    let mut client = IngressClient::connect(addr).unwrap();
    let lines = vec!["still alive".to_string()];
    match client
        .submit_and_wait(1, &encode_lines(&lines), BACKOFF)
        .unwrap()
    {
        JobOutcome::Result(bytes) => assert_eq!(bytes, expected_wordcount_bytes(&lines)),
        JobOutcome::Failed(m) => panic!("job failed: {m}"),
    }
    drop(idle);
    server.shutdown();
    rt.quiesce();
}

/// Child-process body for `fd_exhaustion_backs_off_and_recovers`: runs
/// with its own RLIMIT_NOFILE so the hoard cannot starve sibling tests.
#[test]
#[ignore = "helper: spawned by fd_exhaustion_backs_off_and_recovers"]
#[cfg(target_os = "linux")]
fn fd_exhaustion_helper() {
    // Bind first: the server allocates every fd it needs (epoll, eventfds,
    // listener) before the limit drops.
    let (rt, server) = wordcount_server(2, IngressConfig::default());
    let addr = server.local_addr();
    epoll::set_nofile_limit(96).expect("lower RLIMIT_NOFILE");
    // Hoard the remaining headroom so the *next* fd allocation fails...
    let mut hoard = Vec::new();
    while let Ok(f) = std::fs::File::open("/dev/null") {
        hoard.push(f);
    }
    // ...then free exactly one slot for the client's socket. The TCP
    // handshake completes in the backlog; the server's accept() still
    // has zero fds and must fail with EMFILE.
    hoard.pop();
    let pending = std::net::TcpStream::connect(addr).expect("connect rides the backlog");
    assert!(
        poll_until(Duration::from_secs(10), || server.stats().accept_errors
            >= 3),
        "accept() never surfaced the fd exhaustion"
    );
    // Release the hoard: the backed-off acceptor must recover on its own
    // and drain the backlog — the stranded connection finally gets
    // accepted, and a fresh client completes a job end to end.
    drop(hoard);
    assert!(
        poll_until(Duration::from_secs(10), || server.stats().connections >= 1),
        "acceptor never recovered after fds were freed"
    );
    drop(pending);
    let mut client = IngressClient::connect(addr).unwrap();
    let lines = vec!["after the famine".to_string()];
    match client
        .submit_and_wait(9, &encode_lines(&lines), BACKOFF)
        .unwrap()
    {
        JobOutcome::Result(bytes) => assert_eq!(bytes, expected_wordcount_bytes(&lines)),
        JobOutcome::Failed(m) => panic!("job failed: {m}"),
    }
    let stats = server.shutdown();
    assert!(stats.accept_errors >= 3, "EMFILE retries were not counted");
    rt.quiesce();
}

/// Satellite check on the accept-error path: fd exhaustion must back off
/// and count, not spin, and the acceptor must recover once fds return.
/// Runs in a child process (via the test harness itself) because it
/// lowers RLIMIT_NOFILE and hoards every file descriptor.
#[test]
#[cfg(target_os = "linux")]
fn fd_exhaustion_backs_off_and_recovers() {
    let exe = std::env::current_exe().expect("test binary path");
    let out = std::process::Command::new(exe)
        .args([
            "--exact",
            "fd_exhaustion_helper",
            "--ignored",
            "--nocapture",
            "--test-threads",
            "1",
        ])
        .output()
        .expect("spawn child test process");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        out.status.success() && stdout.contains("1 passed"),
        "child failed:\nstdout: {stdout}\nstderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The portable fallback (`event_loops: 0`) must speak the identical
/// protocol: byte-identical results and a graceful drain, same as the
/// epoll path the other tests exercise.
#[test]
fn fallback_mode_serves_byte_identically_and_drains() {
    let cfg = ServiceWorkloadConfig::small();
    let (rt, server) = wordcount_server(
        2,
        IngressConfig {
            event_loops: 0,
            ..IngressConfig::default()
        },
    );
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    for j in 0..8usize {
        let payload = encode_lines(&job_lines(&cfg, j));
        match client.submit_and_wait(j as u64, &payload, BACKOFF).unwrap() {
            JobOutcome::Result(bytes) => {
                assert_eq!(bytes, expected_wordcount_bytes(&job_lines(&cfg, j)))
            }
            JobOutcome::Failed(m) => panic!("job {j}: {m}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!((stats.jobs_accepted, stats.jobs_completed), (8, 8));
    rt.quiesce();
}

/// Durable lifecycle over the fallback mode — the journal path must be
/// mode-independent.
#[test]
fn fallback_mode_durable_roundtrip() {
    let cfg = ServiceWorkloadConfig::small();
    let dir = journal_temp_dir("fallback");
    let (rt, server, _) = durable_wordcount_server_with(
        2,
        &dir,
        IngressConfig {
            event_loops: 0,
            ..IngressConfig::default()
        },
    );
    let mut client = IngressClient::connect(server.local_addr()).unwrap();
    let payload = encode_lines(&job_lines(&cfg, 0));
    let want = expected_wordcount_bytes(&job_lines(&cfg, 0));
    let got = client
        .submit_durable_and_wait(5, &payload, BACKOFF)
        .unwrap();
    assert_eq!(got, JobOutcome::Result(want.clone()));
    let dup = client
        .submit_durable_and_wait(5, &payload, BACKOFF)
        .unwrap();
    assert_eq!(dup, JobOutcome::Result(want));
    client.ack(5).unwrap();
    assert_eq!(client.query(5).unwrap(), (QueryStatus::Acked, Vec::new()));
    server.shutdown();
    rt.quiesce();
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Journal corruption: CRC framing must reject bit rot on replay.
// ---------------------------------------------------------------------------

/// Writes a known journal (submits, results, a failure, an ack), returns
/// the clean replay for comparison.
fn journal_fixture(dir: &std::path::Path) -> pipelines::journal::Replay {
    let (journal, replay) = Journal::open(JournalConfig::at(dir)).expect("open");
    assert!(replay.jobs.is_empty());
    for id in 1..=8u64 {
        journal.append(RecordKind::Submit, id, format!("payload-{id}").as_bytes());
    }
    for id in 1..=6u64 {
        journal.append(RecordKind::Result, id, format!("result-{id}").as_bytes());
    }
    journal.append(
        RecordKind::Failed,
        7,
        &pipelines::journal::encode_failed_body(2, "stage panicked"),
    );
    journal.append_sync(RecordKind::Ack, 1, &[]);
    drop(journal);
    let clean = replay_dir(dir).expect("clean replay");
    assert_eq!(clean.jobs.len(), 8);
    assert_eq!(clean.corrupt_records, 0);
    assert_eq!(clean.jobs[&1].status, JobReplayStatus::Acked);
    assert_eq!(clean.jobs[&8].status, JobReplayStatus::Pending);
    assert_eq!(
        clean.jobs[&7].status,
        JobReplayStatus::Failed {
            attempts: 2,
            message: "stage panicked".to_string(),
        }
    );
    clean
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 48, ..ProptestConfig::default()
    })]

    /// Flip one byte anywhere in a journal segment: replay must never
    /// panic, never error, and — the CRC guarantee — never *alter* a
    /// record. Corruption may only drop records (and is visible as a
    /// shorter record count or a corrupt-record count), never change
    /// payloads, results, or failure messages.
    #[test]
    fn corrupted_journal_records_are_rejected_not_misread(
        offset_seed in any::<u64>(),
        flip in 1u8..255,
    ) {
        let dir = journal_temp_dir("crc");
        let clean = journal_fixture(&dir);
        let segment = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| Some(e.ok()?.path()))
            .find(|p| p.extension().is_some_and(|x| x == "log"))
            .expect("one segment file");
        let mut bytes = std::fs::read(&segment).unwrap();
        let offset = (offset_seed % bytes.len() as u64) as usize;
        bytes[offset] ^= flip; // flip != 0, so the byte really changes
        std::fs::write(&segment, &bytes).unwrap();

        let replayed = replay_dir(&dir).expect("replay over corruption");
        // Detected: either a record failed its CRC, or the scan stopped
        // early at a mis-framed length (fewer records).
        prop_assert!(
            replayed.corrupt_records >= 1 || replayed.records < clean.records,
            "byte flip at {offset} went unnoticed"
        );
        // Never misread: a dropped record may regress a job to an
        // *earlier* lifecycle stage (e.g. Acked back to Done), but any
        // byte that survives CRC must be exactly what was written.
        for (id, job) in &replayed.jobs {
            if !job.payload.is_empty() {
                prop_assert_eq!(&job.payload, &format!("payload-{id}").into_bytes());
            }
            match &job.status {
                JobReplayStatus::Done(bytes) => {
                    prop_assert_eq!(bytes, &format!("result-{id}").into_bytes());
                }
                JobReplayStatus::Failed { attempts, message } => {
                    prop_assert_eq!((*id, *attempts, message.as_str()), (7, 2, "stage panicked"));
                }
                JobReplayStatus::Pending | JobReplayStatus::Acked => {}
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

// ---------------------------------------------------------------------------
// Telemetry subscriptions (Subscribe / StatsEvent).
// ---------------------------------------------------------------------------

use pipelines::telemetry::TelemetrySnapshot;

/// Subscribes, consumes `want` StatsEvent frames, and checks each parses
/// and that monotone counters never regress between consecutive frames.
fn drive_subscription(event_loops: usize, want: usize) {
    let (rt, server) = wordcount_server(
        2,
        IngressConfig {
            event_loops,
            ..IngressConfig::default()
        },
    );
    let addr = server.local_addr();
    let mut client = IngressClient::connect(addr).unwrap();
    client.subscribe(77, 5).unwrap();
    let mut prev: Option<TelemetrySnapshot> = None;
    for tick in 0..want {
        let frame = client.recv().expect("subscription tick");
        assert_eq!(
            (frame.kind, frame.req_id),
            (FrameKind::StatsEvent, 77),
            "tick {tick} must be a StatsEvent echoing the Subscribe req_id"
        );
        let text = String::from_utf8_lossy(&frame.body);
        let snap = TelemetrySnapshot::parse_text(&text).expect("tick parses");
        if let Some(prev) = &prev {
            assert!(
                snap.sched.tasks_executed >= prev.sched.tasks_executed,
                "tasks_executed regressed between ticks"
            );
            let (p, c) = (prev.ingress.unwrap(), snap.ingress.unwrap());
            assert!(c.stats_events >= p.stats_events, "stats_events regressed");
        }
        prev = Some(snap);
    }
    // Subscribe(0) cancels the stream and doubles as the one-shot the
    // typed stats() call uses; afterwards the connection still serves
    // ordinary request/response traffic.
    let snap = client.stats(78).unwrap();
    assert!(snap.ingress.unwrap().stats_events >= want as u64);
    let lines = vec!["after the stream".to_string()];
    match client
        .submit_and_wait(79, &encode_lines(&lines), BACKOFF)
        .unwrap()
    {
        JobOutcome::Result(bytes) => assert_eq!(bytes, expected_wordcount_bytes(&lines)),
        JobOutcome::Failed(m) => panic!("job failed: {m}"),
    }
    server.shutdown();
    rt.quiesce();
}

#[test]
fn subscription_streams_stats_events_in_event_mode() {
    drive_subscription(2, 3);
}

#[test]
fn subscription_streams_stats_events_in_fallback_mode() {
    drive_subscription(0, 3);
}

/// The FIFO reply contract with a live subscription: on a subscribed
/// connection running real jobs, the reply substream (everything that is
/// not a StatsEvent) must be identical to the reply stream of an
/// unsubscribed control connection submitting the same jobs.
fn replies_unperturbed_by_ticks(event_loops: usize) {
    let (rt, server) = wordcount_server(
        2,
        IngressConfig {
            event_loops,
            ..IngressConfig::default()
        },
    );
    let addr = server.local_addr();
    let payloads: Vec<Vec<u8>> = (0..8)
        .map(|j| {
            let lines: Vec<String> = (0..4).map(|k| format!("word{j} tick {k} tick")).collect();
            encode_lines(&lines).to_vec()
        })
        .collect();

    // Control: no subscription, replies arrive FIFO by req_id.
    let mut control = IngressClient::connect(addr).unwrap();
    let mut expected = Vec::new();
    for (j, p) in payloads.iter().enumerate() {
        match control.submit_and_wait(j as u64, p, BACKOFF).unwrap() {
            JobOutcome::Result(bytes) => expected.push((FrameKind::Result, j as u64, bytes)),
            JobOutcome::Failed(m) => panic!("control job {j} failed: {m}"),
        }
    }

    // Subscribed connection: 1 ms ticks racing the same submissions.
    let mut subbed = IngressClient::connect(addr).unwrap();
    subbed.subscribe(1000, 1).unwrap();
    for (j, p) in payloads.iter().enumerate() {
        subbed.submit(j as u64, p).unwrap();
        if j == 4 {
            // Let ticks pile into the stream mid-burst.
            std::thread::sleep(Duration::from_millis(10));
        }
    }
    let mut replies = Vec::new();
    let mut ticks = 0usize;
    while replies.len() < payloads.len() {
        let frame = subbed.recv().expect("reply or tick");
        match frame.kind {
            FrameKind::StatsEvent => {
                assert_eq!(frame.req_id, 1000);
                let text = String::from_utf8_lossy(&frame.body);
                TelemetrySnapshot::parse_text(&text).expect("interleaved tick parses");
                ticks += 1;
            }
            FrameKind::Retry => {
                let req_id = frame.req_id;
                let p = &payloads[req_id as usize];
                std::thread::sleep(BACKOFF);
                subbed.submit(req_id, p).unwrap();
            }
            kind => replies.push((kind, frame.req_id, frame.body)),
        }
    }
    assert!(ticks >= 1, "no StatsEvent interleaved with the replies");
    assert_eq!(
        replies, expected,
        "reply substream diverged from the unsubscribed control connection"
    );
    server.shutdown();
    rt.quiesce();
}

#[test]
fn subscription_ticks_never_corrupt_replies_in_event_mode() {
    replies_unperturbed_by_ticks(2);
}

#[test]
fn subscription_ticks_never_corrupt_replies_in_fallback_mode() {
    replies_unperturbed_by_ticks(0);
}

/// Backpressure in event mode: a subscriber that stops reading while big
/// replies flood its connection must lose *ticks* (counted, not queued),
/// never replies — and the reply substream stays intact throughout.
#[test]
fn slow_subscriber_drops_ticks_not_replies() {
    let rt = Arc::new(Runtime::with_workers(2));
    // Tiny submits, huge replies: the graph expands each line 4096x, so
    // the client's writes never block while the server's write buffer
    // saturates. (Submitting big payloads instead would deadlock this
    // single-threaded test: over the write-buffer limit the server stops
    // *reading* the connection, and an unread 16 MiB submit burst would
    // wedge the client in write() before it ever starts reading.)
    let graph = Arc::new(
        GraphSpec::<String, String>::new()
            .map(|line: String| line.repeat(4096))
            .compile(
                Arc::clone(&rt),
                ServiceConfig {
                    max_in_flight: 2,
                    ..ServiceConfig::default()
                },
            ),
    );
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(EchoCodec),
        IngressConfig {
            event_loops: 2,
            write_buf_limit: 4 * 1024, // clamp floor: drops trip fast
            max_queued: 128,
            ..IngressConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    let jobs = 64usize;
    // One 64-byte line in, one 256 KiB line out — 16 MiB of replies
    // total, far beyond any kernel socket buffering.
    let payload = encode_lines(&["x".repeat(64)]).to_vec();
    let expected_reply = encode_lines(&["x".repeat(64).repeat(4096)]).to_vec();
    let mut client = IngressClient::connect(addr).unwrap();
    client.subscribe(5000, 1).unwrap();
    for j in 0..jobs {
        client.submit(j as u64, &payload).unwrap();
    }
    // Do NOT read until the server provably dropped a tick under
    // backpressure (16 MiB of unread replies outgrows any kernel
    // buffering, and 1 ms ticks keep probing the full buffer).
    assert!(
        poll_until(Duration::from_secs(10), || server.stats().stats_dropped
            >= 1),
        "no tick was ever dropped: {:?}",
        server.stats()
    );
    let mut results = 0usize;
    while results < jobs {
        let frame = client.recv().expect("reply after backpressure");
        match frame.kind {
            FrameKind::StatsEvent => {
                let text = String::from_utf8_lossy(&frame.body);
                TelemetrySnapshot::parse_text(&text).expect("tick parses after backpressure");
            }
            FrameKind::Retry => {
                let req_id = frame.req_id;
                std::thread::sleep(BACKOFF);
                client.submit(req_id, &payload).unwrap();
            }
            FrameKind::Result => {
                assert_eq!(
                    frame.req_id, results as u64,
                    "replies must stay FIFO under tick backpressure"
                );
                assert_eq!(frame.body, expected_reply, "expanded reply corrupted");
                results += 1;
            }
            other => panic!("unexpected {other:?} frame"),
        }
    }
    let stats = server.shutdown();
    assert!(stats.stats_dropped >= 1, "drop counter lost at shutdown");
    assert_eq!(stats.jobs_accepted, stats.jobs_completed);
    rt.quiesce();
}

// ---------------------------------------------------------------------------
// Durable clients vs. dropped connections (DESIGN.md §6.4).
//
// A fake daemon built from a raw listener lets these tests drop the
// connection at the exact moment a real crash would: after the
// SubmitDurable is on the wire but before any reply. The regression they
// pin: `submit_durable_and_wait` used to surface that ECONNRESET as
// fatal, abandoning a job the server-side journal still owned.
// ---------------------------------------------------------------------------

/// Reads one client frame off a raw socket, however it was chunked.
fn read_client_frame(conn: &mut std::net::TcpStream) -> pipelines::ingress::Frame {
    use std::io::Read as _;
    let mut dec = FrameDecoder::new(1 << 20);
    let mut buf = [0u8; 4096];
    loop {
        if let Some(frame) = dec.next_frame().expect("well-formed client frame") {
            return frame;
        }
        let n = conn.read(&mut buf).expect("client readable");
        assert!(n > 0, "client hung up mid-frame");
        dec.extend(&buf[..n]);
    }
}

#[test]
fn durable_wait_survives_a_dropped_connection_via_query_resume() {
    use std::io::{Read as _, Write as _};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
    let addr = listener.local_addr().expect("addr");
    let result_bytes = b"journaled result".to_vec();
    let expected = result_bytes.clone();

    let daemon = std::thread::spawn(move || {
        // Connection 1: accept the durable submit, then vanish without a
        // reply — exactly what a crash mid-job looks like to the client.
        let (mut conn, _) = listener.accept().expect("conn 1");
        let frame = read_client_frame(&mut conn);
        assert_eq!((frame.kind, frame.req_id), (FrameKind::SubmitDurable, 42));
        drop(conn);
        // Connection 2: the client reconnects and resumes with Query.
        // Report the job still in flight once (forcing a re-query), then
        // Done with the journaled bytes.
        let (mut conn, _) = listener.accept().expect("conn 2");
        let frame = read_client_frame(&mut conn);
        assert_eq!((frame.kind, frame.req_id), (FrameKind::Query, 42));
        let mut reply = Vec::new();
        encode_frame(
            FrameKind::QueryOk,
            42,
            &[QueryStatus::InFlight as u8],
            &mut reply,
        );
        conn.write_all(&reply).expect("write InFlight");
        let frame = read_client_frame(&mut conn);
        assert_eq!((frame.kind, frame.req_id), (FrameKind::Query, 42));
        let mut body = vec![QueryStatus::Done as u8];
        body.extend_from_slice(&result_bytes);
        reply.clear();
        encode_frame(FrameKind::QueryOk, 42, &body, &mut reply);
        conn.write_all(&reply).expect("write Done");
        // Hold the connection open until the client finishes reading.
        let _ = conn.read(&mut [0u8; 16]);
    });

    let mut client = IngressClient::connect(addr).expect("connect");
    let outcome = client
        .submit_durable_and_wait(42, b"payload\n", BACKOFF)
        .expect("durable wait must survive the dropped connection");
    assert_eq!(outcome, JobOutcome::Result(expected));
    drop(client);
    daemon.join().expect("fake daemon");
}

#[test]
fn durable_wait_resubmits_when_resume_finds_no_trace() {
    use std::io::{Read as _, Write as _};

    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind fake daemon");
    let addr = listener.local_addr().expect("addr");

    let daemon = std::thread::spawn(move || {
        // Connection 1: the submit never made it into the journal — drop
        // before replying, remember nothing.
        let (mut conn, _) = listener.accept().expect("conn 1");
        let frame = read_client_frame(&mut conn);
        assert_eq!((frame.kind, frame.req_id), (FrameKind::SubmitDurable, 7));
        let payload = frame.body.clone();
        drop(conn);
        // Connection 2: Query finds no trace → Unknown. The client must
        // resubmit the identical payload on the same connection.
        let (mut conn, _) = listener.accept().expect("conn 2");
        let frame = read_client_frame(&mut conn);
        assert_eq!((frame.kind, frame.req_id), (FrameKind::Query, 7));
        let mut reply = Vec::new();
        encode_frame(
            FrameKind::QueryOk,
            7,
            &[QueryStatus::Unknown as u8],
            &mut reply,
        );
        conn.write_all(&reply).expect("write Unknown");
        let frame = read_client_frame(&mut conn);
        assert_eq!(
            (frame.kind, frame.req_id, frame.body),
            (FrameKind::SubmitDurable, 7, payload),
            "resubmit must carry the original payload"
        );
        reply.clear();
        encode_frame(FrameKind::Result, 7, b"fresh run", &mut reply);
        conn.write_all(&reply).expect("write Result");
        let _ = conn.read(&mut [0u8; 16]);
    });

    let mut client = IngressClient::connect(addr).expect("connect");
    let outcome = client
        .submit_durable_and_wait(7, b"payload\n", BACKOFF)
        .expect("durable wait must resubmit after an Unknown resume");
    assert_eq!(outcome, JobOutcome::Result(b"fresh run".to_vec()));
    drop(client);
    daemon.join().expect("fake daemon");
}
