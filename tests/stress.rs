//! Stress tests: deep nesting, many queues, sustained load, full-machine
//! worker counts.

use hyperqueues::hyperqueue::{Hyperqueue, PushToken};
use hyperqueues::swan::{Runtime, Scope};

#[test]
fn deep_producer_recursion() {
    // A left-leaning spawn chain ~200 deep, each level pushing one value:
    // exercises the early-head-attach recursion across many levels.
    fn descend(s: &Scope<'_>, mut q: PushToken<u64>, depth: u64) {
        if depth == 0 {
            return;
        }
        q.push(depth);
        s.spawn((q.pushdep(),), move |s, (q2,)| descend(s, q2, depth - 1));
    }
    let rt = Runtime::with_workers(4);
    let mut got = Vec::new();
    let g = &mut got;
    rt.scope(move |s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 2);
        s.spawn((q.pushdep(),), |s, (q2,)| descend(s, q2, 200));
        s.spawn((q.popdep(),), move |_, (mut c,)| {
            while !c.empty() {
                g.push(c.pop());
            }
        });
    });
    let expect: Vec<u64> = (1..=200).rev().collect();
    assert_eq!(got, expect);
}

#[test]
fn many_concurrent_queues() {
    // 64 independent pipelines sharing one runtime.
    let rt = Runtime::with_workers(8);
    let mut sums = vec![0u64; 64];
    {
        let refs: Vec<&mut u64> = sums.iter_mut().collect();
        rt.scope(move |s| {
            for (k, out) in refs.into_iter().enumerate() {
                let q = Hyperqueue::<u64>::with_segment_capacity(s, 16);
                s.spawn((q.pushdep(),), move |_, (mut p,)| {
                    for i in 0..500u64 {
                        p.push(i + k as u64);
                    }
                });
                s.spawn((q.popdep(),), move |_, (mut c,)| {
                    while !c.empty() {
                        *out += c.pop();
                    }
                });
            }
        });
    }
    for (k, &s) in sums.iter().enumerate() {
        let expect: u64 = (0..500u64).map(|i| i + k as u64).sum();
        assert_eq!(s, expect, "queue {k}");
    }
}

#[test]
#[ignore = "long-running (~10s debug); run with `cargo test -- --ignored` (CI runs it in the scheduled stress job)"]
fn sustained_throughput_full_machine() {
    // A long pipeline on every core: throughput sanity + no loss.
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let rt = Runtime::with_workers(workers);
    let total = 2_000_000u64;
    let mut count = 0u64;
    let mut sum = 0u64;
    let (count_ref, sum_ref) = (&mut count, &mut sum);
    rt.scope(move |s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 1024);
        s.spawn((q.pushdep(),), move |s, (mut p,)| {
            // Split the production across a few child tasks.
            for part in 0..8u64 {
                let lo = part * total / 8;
                let hi = (part + 1) * total / 8;
                s.spawn((p.pushdep(),), move |_, (mut p2,)| {
                    for i in lo..hi {
                        p2.push(i);
                    }
                });
            }
        });
        s.spawn((q.popdep(),), move |_, (mut c,)| {
            while !c.empty() {
                *sum_ref = sum_ref.wrapping_add(c.pop());
                *count_ref += 1;
            }
        });
    });
    assert_eq!(count, total);
    assert_eq!(sum, total * (total - 1) / 2);
}

#[test]
fn pipelines_chained_through_five_queues() {
    // in -> +1 -> *2 -> +3 -> collect, all concurrent.
    let rt = Runtime::with_workers(8);
    let mut out = Vec::new();
    let o = &mut out;
    rt.scope(move |s| {
        let q1 = Hyperqueue::<u64>::new(s);
        let q2 = Hyperqueue::<u64>::new(s);
        let q3 = Hyperqueue::<u64>::new(s);
        let q4 = Hyperqueue::<u64>::new(s);
        s.spawn((q1.pushdep(),), |_, (mut p,)| {
            for i in 0..10_000 {
                p.push(i);
            }
        });
        s.spawn((q1.popdep(), q2.pushdep()), |_, (mut c, mut p)| {
            while !c.empty() {
                p.push(c.pop() + 1);
            }
        });
        s.spawn((q2.popdep(), q3.pushdep()), |_, (mut c, mut p)| {
            while !c.empty() {
                p.push(c.pop() * 2);
            }
        });
        s.spawn((q3.popdep(), q4.pushdep()), |_, (mut c, mut p)| {
            while !c.empty() {
                p.push(c.pop() + 3);
            }
        });
        s.spawn((q4.popdep(),), move |_, (mut c,)| {
            while !c.empty() {
                o.push(c.pop());
            }
        });
    });
    let expect: Vec<u64> = (0..10_000u64).map(|i| (i + 1) * 2 + 3).collect();
    assert_eq!(out, expect);
}

#[test]
fn repeated_scopes_on_one_runtime() {
    let rt = Runtime::with_workers(6);
    for round in 0..50u64 {
        let mut got = Vec::new();
        let g = &mut got;
        rt.scope(move |s| {
            let q = Hyperqueue::<u64>::with_segment_capacity(s, 8);
            s.spawn((q.pushdep(),), move |_, (mut p,)| {
                for i in 0..100 {
                    p.push(round * 1000 + i);
                }
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                while !c.empty() {
                    g.push(c.pop());
                }
            });
        });
        assert_eq!(got.len(), 100);
        assert_eq!(got[0], round * 1000);
    }
}
