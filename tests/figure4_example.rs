//! The worked example of **Figure 4** (paper §4.3), as an executable test.
//!
//! Task 0 (the scope root) spawns:
//!   Task 1 (push), which spawns Task 2 (push: values 0-3) and Task 3
//!   (push: values 4-7); Task 4 (pop), which spawns Task 5 (pop: drains);
//!   Task 6 (push: value 8).
//!
//! Determinism requires Task 5 to observe exactly 0..=7 in order — never
//! Task 6's value 8, which is pushed by a task *younger* than the
//! consumer. Value 8 stays in the queue (observable by the owner after
//! sync, since the top-level task holds both privileges).

use hyperqueues::hyperqueue::Hyperqueue;
use hyperqueues::swan::{Runtime, RuntimeConfig};

fn run_figure4(workers: usize, chaos_seed: Option<u64>) -> (Vec<u32>, Vec<u32>) {
    let cfg = match chaos_seed {
        Some(seed) => RuntimeConfig::new().workers(workers).with_chaos(seed, 60),
        None => RuntimeConfig::new().workers(workers),
    };
    let rt = Runtime::new(cfg);
    let mut consumed = Vec::new();
    let mut leftover = Vec::new();
    let (c_ref, l_ref) = (&mut consumed, &mut leftover);
    rt.scope(move |s| {
        // Segment capacity 4 reproduces the figure's segment granularity:
        // Task 2 fills the initial segment; Task 3 needs a fresh one.
        let q = Hyperqueue::<u32>::with_segment_capacity(s, 4);
        // Task 1: push privileges, delegates to Tasks 2 and 3.
        s.spawn((q.pushdep(),), |s, (mut p,)| {
            s.spawn((p.pushdep(),), |_, (mut p2,)| {
                for v in 0..4 {
                    p2.push(v);
                }
            });
            s.spawn((p.pushdep(),), |_, (mut p3,)| {
                for v in 4..8 {
                    p3.push(v);
                }
            });
        });
        // Task 4: pop privileges, delegates to Task 5.
        s.spawn((q.popdep(),), |s, (mut c,)| {
            s.spawn((c.popdep(),), |_, (mut c5,)| {
                // Task 5 pops everything *visible to it*: exactly 0..=7.
                while !c5.empty() {
                    c_ref.push(c5.pop());
                }
            });
        });
        // Task 6: pushes 8, which Tasks 4/5 must never observe.
        s.spawn((q.pushdep(),), |_, (mut p,)| {
            p.push(8);
        });
        s.sync();
        // The owner (Task 0) now drains the remainder.
        while !q.empty() {
            l_ref.push(q.pop());
        }
    });
    (consumed, leftover)
}

#[test]
fn figure4_consumer_sees_exactly_0_to_7_in_order() {
    for workers in [1, 2, 4, 8] {
        let (consumed, leftover) = run_figure4(workers, None);
        assert_eq!(
            consumed,
            (0..8).collect::<Vec<_>>(),
            "consumer order broken at {workers} workers"
        );
        assert_eq!(leftover, vec![8], "task 6's value must remain queued");
    }
}

#[test]
fn figure4_is_robust_under_chaos_scheduling() {
    for seed in 0..20 {
        let (consumed, leftover) = run_figure4(8, Some(seed));
        assert_eq!(consumed, (0..8).collect::<Vec<_>>(), "seed {seed}");
        assert_eq!(leftover, vec![8], "seed {seed}");
    }
}
