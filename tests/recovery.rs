//! Crash-recovery integration tests: SIGKILL a live `hqd` mid-burst and
//! prove the journal replays every unacked job to **byte-identical**
//! results after restart.
//!
//! This is the paper's determinism guarantee doing operational work: a
//! replayed job re-runs through the same deterministic graph, so the
//! recovered result bytes can be `assert_eq!`-ed against the serial
//! elision — crash recovery is exactly testable, not best-effort. The
//! matrix covers 1/2/8 workers under both scheduler policies; every
//! combination must reconcile to the same per-job bytes.

use std::io::{BufRead, BufReader, Write};
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use pipelines::ingress::{IngressClient, JobOutcome, QueryStatus};
use workloads::service::{job_lines, ServiceWorkloadConfig};
use workloads::wire::{encode_lines, expected_wordcount_bytes};

const JOBS: usize = 12;
const BACKOFF: Duration = Duration::from_micros(500);

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hq-recovery-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Spawns the real `hqd` binary serving wordcount over `journal_dir` and
/// waits for its "serving" banner, returning the bound address. Port 0
/// keeps parallel test combos from colliding.
fn spawn_hqd(
    journal_dir: &Path,
    workers: usize,
    scheduler: &str,
) -> (Child, String, BufReader<ChildStdout>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hqd"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--workload",
            "wordcount",
            "--workers",
            &workers.to_string(),
            "--scheduler",
            scheduler,
            "--degree",
            "3",
            "--journal-dir",
            journal_dir.to_str().expect("utf-8 temp path"),
            "--fsync-batch",
            "32",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("failed to spawn hqd");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    let addr = loop {
        line.clear();
        let n = stdout.read_line(&mut line).expect("hqd stdout readable");
        assert!(n > 0, "hqd exited before its serving banner");
        if let Some(rest) = line.strip_prefix("hqd: serving wordcount on ") {
            break rest
                .split_whitespace()
                .next()
                .expect("address after 'on'")
                .to_string();
        }
    };
    (child, addr, stdout)
}

/// Tells a live daemon to shut down gracefully via its stdin "quit" path
/// and reaps it.
fn quit_hqd(mut child: Child) {
    if let Some(stdin) = child.stdin.as_mut() {
        let _ = stdin.write_all(b"quit\n");
    }
    drop(child.stdin.take()); // EOF, the other graceful trigger
    let status = child.wait().expect("hqd reaped");
    assert!(status.success(), "graceful hqd exit must be clean");
}

/// The per-job ground truth: what an uninterrupted run returns for job
/// `j` — `expected_wordcount_bytes` over the deterministic corpus is the
/// serial elision the protocol guarantees at any worker count.
fn expected(cfg: &ServiceWorkloadConfig, j: usize) -> Vec<u8> {
    expected_wordcount_bytes(&job_lines(cfg, j))
}

/// One full crash/recover cycle at a given worker count and scheduler:
/// burst durable submits, SIGKILL mid-burst, restart over the same
/// journal, reconcile every job, ack, verify, quit. Returns the per-job
/// result bytes the *recovered* daemon served.
fn crash_and_recover(workers: usize, scheduler: &str) -> Vec<Vec<u8>> {
    let cfg = ServiceWorkloadConfig::small(); // degree 3, matching --degree below
    let dir = temp_dir(&format!("w{workers}-{scheduler}"));

    // --- Life 1: burst, then die without warning. -----------------------
    let (mut child, addr, _stdout) = spawn_hqd(&dir, workers, scheduler);
    let mut client = IngressClient::connect(&addr).expect("connect to hqd");
    for j in 0..JOBS {
        let payload = encode_lines(&job_lines(&cfg, j));
        client
            .submit_durable(j as u64 + 1, &payload)
            .expect("burst submit");
    }
    // Read a few responses so the kill lands mid-burst: some jobs have
    // journaled results, some are in flight, some may be wholly lost
    // (torn tail) — recovery must reconcile all three.
    for _ in 0..3 {
        let frame = client.recv().expect("early responses");
        let j = (frame.req_id - 1) as usize;
        assert_eq!(
            (frame.kind, frame.body),
            (pipelines::ingress::FrameKind::Result, expected(&cfg, j)),
            "pre-crash result for job {j}"
        );
    }
    child.kill().expect("SIGKILL hqd"); // SIGKILL on unix: no drain, no flush
    let _ = child.wait();

    // --- Life 2: recover and reconcile. ---------------------------------
    let (child, addr, _stdout) = spawn_hqd(&dir, workers, scheduler);
    let mut client = IngressClient::connect(&addr).expect("reconnect to hqd");
    let mut results = Vec::with_capacity(JOBS);
    for j in 0..JOBS {
        let payload = encode_lines(&job_lines(&cfg, j));
        // Duplicate submit of every id: journaled ids return their
        // (possibly replayed) result without re-running; ids the crash
        // ate entirely run fresh. Either way the bytes must match the
        // uninterrupted run exactly.
        let outcome = client
            .submit_durable_and_wait(j as u64 + 1, &payload, BACKOFF)
            .expect("reconcile job");
        match outcome {
            JobOutcome::Result(bytes) => {
                assert_eq!(
                    bytes,
                    expected(&cfg, j),
                    "job {j} bytes diverged after crash recovery \
                     ({workers} workers, {scheduler})"
                );
                results.push(bytes);
            }
            JobOutcome::Failed(msg) => panic!("job {j} failed after recovery: {msg}"),
        }
    }
    // Ack everything; queries must then report Acked (and never a stale
    // result), proving the retire path survives recovery too.
    for j in 0..JOBS {
        client.ack(j as u64 + 1).expect("ack");
    }
    for j in 0..JOBS {
        let (status, body) = client.query(j as u64 + 1).expect("query");
        assert_eq!(
            (status, body.len()),
            (QueryStatus::Acked, 0),
            "job {j} must be acked"
        );
    }
    let (status, _) = client.query(0xDEAD_BEEF).expect("query unknown");
    assert_eq!(status, QueryStatus::Unknown);
    quit_hqd(child);
    let _ = std::fs::remove_dir_all(&dir);
    results
}

#[test]
fn sigkill_recovery_is_byte_identical_across_workers_and_policies() {
    let mut baseline: Option<Vec<Vec<u8>>> = None;
    for scheduler in ["help-first", "steal-first"] {
        for workers in [1usize, 2, 8] {
            let results = crash_and_recover(workers, scheduler);
            match &baseline {
                None => baseline = Some(results),
                Some(expect) => assert_eq!(
                    &results, expect,
                    "recovered results diverged at {workers} workers, {scheduler}"
                ),
            }
        }
    }
}

#[test]
fn acked_jobs_stay_retired_across_another_restart() {
    let cfg = ServiceWorkloadConfig::small();
    let dir = temp_dir("retire");

    // Life 1: complete and ack a job gracefully.
    let (child, addr, _stdout) = spawn_hqd(&dir, 2, "help-first");
    let mut client = IngressClient::connect(&addr).expect("connect");
    let payload = encode_lines(&job_lines(&cfg, 0));
    let outcome = client
        .submit_durable_and_wait(1, &payload, BACKOFF)
        .expect("submit");
    assert_eq!(outcome, JobOutcome::Result(expected(&cfg, 0)));
    client.ack(1).expect("ack");
    // Query forces a round trip, so the ack (fire-and-forget) has
    // definitely been processed before we shut down.
    let (status, _) = client.query(1).expect("query");
    assert_eq!(status, QueryStatus::Acked);
    quit_hqd(child);

    // Life 2: the acked id must still be retired, not re-run.
    let (child, addr, _stdout) = spawn_hqd(&dir, 2, "help-first");
    let mut client = IngressClient::connect(&addr).expect("reconnect");
    let (status, _) = client.query(1).expect("query after restart");
    assert_eq!(
        status,
        QueryStatus::Acked,
        "ack must survive restart (not resurrect the job)"
    );
    quit_hqd(child);
    let _ = std::fs::remove_dir_all(&dir);
}
