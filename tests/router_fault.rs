//! Sharded fault injection: SIGKILL one `hqd` backend behind the router
//! mid-traffic and prove the blast radius is exactly one shard.
//!
//! The contract under test (DESIGN.md §7.2): requests routed to the dead
//! shard surface [`FrameKind::Retry`] — nothing hangs, nothing is
//! silently dropped — while every other shard's requests keep resolving
//! normally; and once the backend restarts on its journal, resubmitted
//! ids reconcile to **byte-identical** results, exactly like the
//! single-daemon recovery path in `tests/recovery.rs` (whose harness
//! this reuses).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};
use std::time::Duration;

use pipelines::ingress::{FrameKind, IngressClient, JobOutcome, QueryStatus, Router, RouterConfig};
use pipelines::partition::rendezvous_route;
use workloads::service::{job_lines, ServiceWorkloadConfig};
use workloads::wire::{encode_lines, expected_wordcount_bytes};

const BURST: u64 = 12;
const BACKOFF: Duration = Duration::from_millis(2);

fn temp_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("hq-rfault-{tag}-{}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Reserves a loopback port the OS considers free right now. The shard
/// must come back on the *same* address after its crash (the router's
/// shard map is fixed), so port 0 per life is not an option here.
fn reserve_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").expect("reserve port");
    let port = listener.local_addr().expect("local addr").port();
    drop(listener);
    port
}

type Hqd = (Child, BufReader<ChildStdout>);

/// Spawns the real `hqd` binary on a fixed `addr` over `journal_dir` and
/// waits for its serving banner (same harness as `tests/recovery.rs`).
fn spawn_hqd(addr: &str, journal_dir: &Path) -> Hqd {
    let mut child = Command::new(env!("CARGO_BIN_EXE_hqd"))
        .args([
            "--addr",
            addr,
            "--workload",
            "wordcount",
            "--workers",
            "2",
            "--scheduler",
            "help-first",
            "--degree",
            "3",
            "--journal-dir",
            journal_dir.to_str().expect("utf-8 temp path"),
            "--fsync-batch",
            "32",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("failed to spawn hqd");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut line = String::new();
    loop {
        line.clear();
        let n = stdout.read_line(&mut line).expect("hqd stdout readable");
        assert!(n > 0, "hqd exited before its serving banner");
        if line.starts_with("hqd: serving wordcount on ") {
            break;
        }
    }
    (child, stdout)
}

/// Graceful shutdown. The stdout reader must stay alive until the child
/// exits — dropping it closes the pipe and the daemon's own drain
/// summary print would kill it with EPIPE.
fn quit_hqd(daemon: Hqd) {
    let (mut child, _stdout) = daemon;
    if let Some(stdin) = child.stdin.as_mut() {
        let _ = stdin.write_all(b"quit\n");
    }
    drop(child.stdin.take());
    let status = child.wait().expect("hqd reaped");
    assert!(status.success(), "graceful hqd exit must be clean");
}

fn expected(cfg: &ServiceWorkloadConfig, id: u64) -> Vec<u8> {
    expected_wordcount_bytes(&job_lines(cfg, id as usize))
}

fn payload(cfg: &ServiceWorkloadConfig, id: u64) -> Vec<u8> {
    encode_lines(&job_lines(cfg, id as usize))
}

#[test]
fn sigkill_one_shard_retries_that_shard_only_and_recovers_byte_identically() {
    let cfg = ServiceWorkloadConfig::small();
    let dirs = [temp_dir("shard0"), temp_dir("shard1")];
    let addrs = [
        format!("127.0.0.1:{}", reserve_port()),
        format!("127.0.0.1:{}", reserve_port()),
    ];
    let mut daemons = vec![
        Some(spawn_hqd(&addrs[0], &dirs[0])),
        Some(spawn_hqd(&addrs[1], &dirs[1])),
    ];
    let router =
        Router::bind("127.0.0.1:0", RouterConfig::to(addrs.iter().cloned())).expect("bind router");
    let mut client = IngressClient::connect(router.local_addr()).expect("connect");

    // --- Phase 1: healthy fleet, pipelined burst over both shards. -------
    let burst: Vec<u64> = (1..=BURST).collect();
    assert!(
        burst.iter().any(|&id| rendezvous_route(id, 2) == 0)
            && burst.iter().any(|&id| rendezvous_route(id, 2) == 1),
        "burst must span both shards"
    );
    for &id in &burst {
        client
            .submit_durable(id, &payload(&cfg, id))
            .expect("burst");
    }
    for &id in &burst {
        let frame = client.recv().expect("burst reply");
        assert_eq!(
            (frame.kind, frame.req_id),
            (FrameKind::Result, id),
            "healthy burst reply"
        );
        assert_eq!(frame.body, expected(&cfg, id), "job {id} bytes");
    }

    // --- Phase 2: SIGKILL one shard mid-service. --------------------------
    // Choose the victim by where fresh ids land, so dead-shard traffic is
    // guaranteed after the kill.
    let probe: Vec<u64> = (101..=108).collect();
    let victim = rendezvous_route(probe[0], 2);
    let dead_ids: Vec<u64> = probe
        .iter()
        .copied()
        .filter(|&id| rendezvous_route(id, 2) == victim)
        .collect();
    let live_ids: Vec<u64> = probe
        .iter()
        .copied()
        .filter(|&id| rendezvous_route(id, 2) != victim)
        .collect();
    assert!(
        !dead_ids.is_empty() && !live_ids.is_empty(),
        "probe ids must span both shards"
    );
    let (mut victim_proc, _victim_stdout) = daemons[victim].take().expect("victim alive");
    victim_proc.kill().expect("SIGKILL shard");
    let _ = victim_proc.wait();

    for &id in &probe {
        client
            .submit_durable(id, &payload(&cfg, id))
            .expect("post-kill submit");
    }
    for &id in &probe {
        let frame = client.recv().expect("post-kill reply");
        assert_eq!(frame.req_id, id);
        if rendezvous_route(id, 2) == victim {
            // The dead shard's requests surface Retry — never a hang,
            // never a fabricated result.
            assert_eq!(frame.kind, FrameKind::Retry, "dead-shard id {id}");
        } else {
            // The other shard is untouched: same results, same bytes.
            assert_eq!(frame.kind, FrameKind::Result, "live-shard id {id}");
            assert_eq!(frame.body, expected(&cfg, id), "live-shard id {id} bytes");
        }
    }
    // The live shard also still answers queries for its settled jobs.
    let settled_live = burst
        .iter()
        .copied()
        .find(|&id| rendezvous_route(id, 2) != victim)
        .expect("burst spans both shards");
    let (status, body) = client
        .query(settled_live)
        .expect("live query during outage");
    assert_eq!(status, QueryStatus::Done);
    assert_eq!(body, expected(&cfg, settled_live));
    // At this point the refusals are exactly the dead shard's requests —
    // the live shard never needed a synthesized reply.
    let mid = router.stats();
    assert_eq!(
        mid.retries_synthesized,
        dead_ids.len() as u64,
        "exactly the dead shard's submits were refused during the outage"
    );

    // --- Phase 3: restart the shard on its journal; reconcile. -----------
    daemons[victim] = Some(spawn_hqd(&addrs[victim], &dirs[victim]));
    for &id in &dead_ids {
        let outcome = client
            .submit_durable_and_wait(id, &payload(&cfg, id), BACKOFF)
            .expect("reconcile dead-shard id");
        assert_eq!(
            outcome,
            JobOutcome::Result(expected(&cfg, id)),
            "dead-shard id {id} must replay byte-identically"
        );
    }
    // Pre-crash ids on the victim shard reconcile from the journal too:
    // duplicate submits return the replayed result, never a re-run's
    // divergence (there is none to have — but the dedupe proves the
    // journal owned them).
    for &id in burst
        .iter()
        .filter(|&&id| rendezvous_route(id, 2) == victim)
    {
        let outcome = client
            .submit_durable_and_wait(id, &payload(&cfg, id), BACKOFF)
            .expect("reconcile pre-crash id");
        assert_eq!(outcome, JobOutcome::Result(expected(&cfg, id)), "id {id}");
    }

    // --- Phase 4: retire everything through the router. ------------------
    for &id in burst.iter().chain(&probe) {
        client.ack(id).expect("ack");
    }
    for &id in burst.iter().chain(&probe) {
        let (status, body) = client.query(id).expect("query after ack");
        assert_eq!((status, body.len()), (QueryStatus::Acked, 0), "id {id}");
    }

    let stats = router.shutdown();
    // Reconciliation may burn a Retry or two re-discovering the stale
    // socket before the reconnect lands, but never an Error.
    assert!(stats.retries_synthesized >= mid.retries_synthesized);
    assert_eq!(stats.errors_synthesized, 0, "no request was hard-failed");
    assert!(
        stats.reconnects >= 1,
        "the victim shard must have been re-dialed"
    );

    for d in daemons.into_iter().flatten() {
        quit_hqd(d);
    }
    for dir in &dirs {
        let _ = std::fs::remove_dir_all(dir);
    }
}
