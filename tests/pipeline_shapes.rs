//! Pipeline-shape semantics, from the paper's chains to arbitrary DAGs.
//!
//! Part 1 — cross-model agreement for the three evaluation workloads
//! (Figures 7 and 9 describe the shapes; the tests pin the *semantics*):
//! every programming model must produce byte-identical output, and that
//! output must verify (dedup archives and bzip2 streams decode back to
//! the original input).
//!
//! Part 2 — the DAG determinism sweep: randomly generated graph shapes
//! (fan-out degree 1–4, merge windows 1–64, segment capacities 2–8,
//! round-robin and keyed routing, optional tee) built on
//! `pipelines::graph` must produce byte-identical output on 1/2/8
//! workers, equal to the serial elision computed by plain iterator code.
//!
//! Part 3 — the graph-shaped logstream workload agrees across serial,
//! linear-chain and fan-out drivers at every worker count.

use hyperqueues::pipelines::graph::{GraphBuilder, Partition};
use hyperqueues::swan::{Runtime, RuntimeConfig, SchedulerPolicy};
use hyperqueues::workloads::{bzip2, dedup, ferret, logstream};
use proptest::prelude::*;

#[test]
fn ferret_all_models_agree() {
    let cfg = ferret::FerretConfig::small();
    let (serial, _) = ferret::run_serial(&cfg);
    let rt = Runtime::with_workers(6);
    assert_eq!(
        ferret::run_pthread(&cfg, &ferret::PthreadTuning::oversubscribed(6)).checksum(),
        serial.checksum()
    );
    assert_eq!(ferret::run_tbb(&cfg, 6, 24).checksum(), serial.checksum());
    assert_eq!(ferret::run_objects(&cfg, &rt).checksum(), serial.checksum());
    assert_eq!(
        ferret::run_hyperqueue(&cfg, &rt).checksum(),
        serial.checksum()
    );
}

#[test]
fn dedup_all_models_agree_and_roundtrip() {
    let cfg = dedup::DedupConfig::small();
    let data = dedup::corpus(&cfg);
    let (serial, _) = dedup::run_serial(&cfg, &data);
    let rt = Runtime::with_workers(6);

    let archives = [
        dedup::run_pthread(&cfg, &data, &dedup::DedupTuning::oversubscribed(6)),
        dedup::run_tbb(&cfg, &data, 6, 12),
        dedup::run_objects(&cfg, &data, &rt),
        dedup::run_hyperqueue(&cfg, &data, &rt),
    ];
    for (i, a) in archives.iter().enumerate() {
        assert_eq!(a.checksum(), serial.checksum(), "model {i} diverged");
    }
    let restored = dedup::unarchive(&serial.bytes).expect("decodes");
    assert_eq!(&restored[..], &data[..]);
}

#[test]
fn bzip2_all_models_agree_and_roundtrip() {
    let cfg = bzip2::Bzip2Config::small();
    let data = bzip2::corpus(&cfg);
    let (serial, _) = bzip2::run_serial(&cfg, &data);
    let rt = Runtime::with_workers(6);
    let reference = hyperqueues::workloads::util::fnv1a(&serial);

    for (name, stream) in [
        ("objects", bzip2::run_objects(&cfg, &data, &rt)),
        ("hyperqueue", bzip2::run_hyperqueue(&cfg, &data, &rt)),
        (
            "loop-split",
            bzip2::run_hyperqueue_split(&cfg, &data, &rt, 4),
        ),
    ] {
        assert_eq!(
            hyperqueues::workloads::util::fnv1a(&stream),
            reference,
            "{name} diverged"
        );
    }
    let restored = bzip2::decompress_stream(&serial).expect("decodes");
    assert_eq!(&restored[..], &data[..]);
}

// ---------------------------------------------------------------------------
// Part 2: the DAG determinism sweep (pipelines::graph).
// ---------------------------------------------------------------------------

/// One randomly drawn layer of a DAG shape.
#[derive(Clone, Debug)]
enum ShapeOp {
    /// A linear map stage.
    Map { mul: u64, add: u64 },
    /// `split(degree) → replica map → merge(window)`, round-robin or keyed.
    FanOut {
        degree: usize,
        window: usize,
        keyed: bool,
        mul: u64,
    },
    /// Multicast: the side branch folds an order-sensitive checksum.
    Tee,
}

fn mix(x: u64, mul: u64, add: u64) -> u64 {
    x.wrapping_mul(mul | 1).wrapping_add(add)
}

fn fold_step(acc: u64, v: u64) -> u64 {
    acc.rotate_left(7) ^ v
}

/// The serial elision of a shape: plain iterator code — no tasks, no
/// queues. This is the oracle every parallel run must reproduce exactly.
fn serial_elision(total: u64, ops: &[ShapeOp]) -> (Vec<u64>, Vec<u64>) {
    let mut vals: Vec<u64> = (0..total).collect();
    let mut tees = Vec::new();
    for op in ops {
        match op {
            ShapeOp::Map { mul, add } => {
                vals.iter_mut().for_each(|v| *v = mix(*v, *mul, *add));
            }
            // A fan-out/merge pair is observationally a map.
            ShapeOp::FanOut { mul, .. } => {
                vals.iter_mut().for_each(|v| *v = mix(*v, *mul, 1));
            }
            ShapeOp::Tee => tees.push(vals.iter().copied().fold(0, fold_step)),
        }
    }
    (vals, tees)
}

/// Both scheduler policies, exercised by every determinism sweep below:
/// the serial-elision oracle must hold regardless of how idle workers
/// find tasks (help-first FIFO rings vs steal-first Chase-Lev deques).
const POLICIES: [SchedulerPolicy; 2] = [
    SchedulerPolicy::HelpFirst,
    SchedulerPolicy::StealFirst { steal_batch: 4 },
];

/// Builds and runs the same shape on the graph layer.
fn graph_run(
    total: u64,
    ops: &[ShapeOp],
    seg_cap: usize,
    workers: usize,
    policy: SchedulerPolicy,
) -> (Vec<u64>, Vec<u64>) {
    let rt = Runtime::new(RuntimeConfig::new().workers(workers).scheduler(policy));
    let mut out = Vec::new();
    let tee_count = ops.iter().filter(|o| matches!(o, ShapeOp::Tee)).count();
    let mut tee_sums = vec![0u64; tee_count];
    {
        let out_ref = &mut out;
        let ops = ops.to_vec();
        let mut tee_slots: std::collections::VecDeque<&mut u64> = tee_sums.iter_mut().collect();
        rt.scope(move |s| {
            let gb = GraphBuilder::on(s)
                .segment_capacity(seg_cap)
                .io_batch(seg_cap);
            let mut node = gb.source_iter(0..total);
            for op in ops {
                node = match op {
                    ShapeOp::Map { mul, add } => node.map(move |x| mix(x, mul, add)),
                    ShapeOp::FanOut {
                        degree,
                        window,
                        keyed,
                        mul,
                    } => {
                        let part = if keyed {
                            Partition::keyed(|v: &u64| v % 7)
                        } else {
                            Partition::RoundRobin
                        };
                        node.split(degree, part)
                            .map(move |x| mix(x, mul, 1))
                            .merge(window)
                    }
                    ShapeOp::Tee => {
                        let (a, b) = node.tee();
                        let slot = tee_slots.pop_front().expect("one slot per tee");
                        b.for_each(move |v| *slot = fold_step(*slot, v));
                        a
                    }
                };
            }
            node.collect_into(out_ref);
        });
    }
    (out, tee_sums)
}

fn op_strategy() -> impl Strategy<Value = ShapeOp> {
    prop_oneof![
        (1u64..1000, 0u64..1000).prop_map(|(mul, add)| ShapeOp::Map { mul, add }),
        (1usize..=4, 1usize..=64, any::<bool>(), 1u64..1000).prop_map(
            |(degree, window, keyed, mul)| ShapeOp::FanOut {
                degree,
                window,
                keyed,
                mul,
            }
        ),
        Just(ShapeOp::Tee),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, ..ProptestConfig::default()
    })]

    /// ≥ 20 random DAG shapes (fan-out degree 1–4, merge windows 1–64,
    /// segment capacities 2–8, RR/keyed routing, tees), each run on 1, 2
    /// and 8 workers: the merged output and every tee-branch fold must be
    /// byte-identical to the serial elision.
    #[test]
    fn random_dag_shapes_match_serial_elision_at_all_worker_counts(
        total in 1u64..400,
        seg_cap in 2usize..=8,
        ops in prop::collection::vec(op_strategy(), 1..5),
    ) {
        let (expect, expect_tees) = serial_elision(total, &ops);
        for policy in POLICIES {
            for workers in [1usize, 2, 8] {
                let (got, tees) = graph_run(total, &ops, seg_cap, workers, policy);
                prop_assert_eq!(
                    &got, &expect,
                    "main output diverged: {workers} workers, cap {seg_cap}, {policy:?}, ops {ops:?}"
                );
                prop_assert_eq!(
                    &tees, &expect_tees,
                    "tee branch diverged: {workers} workers, cap {seg_cap}, {policy:?}, ops {ops:?}"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Part 3: the graph-shaped logstream workload.
// ---------------------------------------------------------------------------

#[test]
fn logstream_all_drivers_agree_across_worker_counts() {
    let cfg = logstream::LogConfig::small();
    let lines = logstream::corpus(&cfg);
    let (serial, _) = logstream::run_serial(&cfg, &lines);
    for policy in POLICIES {
        for workers in [1, 2, 8] {
            let rt = Runtime::new(RuntimeConfig::new().workers(workers).scheduler(policy));
            assert_eq!(
                logstream::run_linear(&cfg, &lines, &rt),
                serial,
                "linear at {workers} workers under {policy:?}"
            );
            for degree in [1, 3, cfg.shards] {
                assert_eq!(
                    logstream::run_graph(&cfg, &lines, &rt, degree),
                    serial,
                    "graph degree {degree} at {workers} workers under {policy:?}"
                );
            }
        }
    }
}

#[test]
fn workloads_scale_free_same_binary_many_core_counts() {
    // The scale-free property: identical outputs from the identical
    // program text across core counts, for all three workloads at once.
    let fcfg = ferret::FerretConfig::small();
    let dcfg = dedup::DedupConfig::small();
    let bcfg = bzip2::Bzip2Config::small();
    let ddata = dedup::corpus(&dcfg);
    let bdata = bzip2::corpus(&bcfg);
    let (fs, _) = ferret::run_serial(&fcfg);
    let (ds, _) = dedup::run_serial(&dcfg, &ddata);
    let (bs, _) = bzip2::run_serial(&bcfg, &bdata);
    for workers in [1, 3, 8, 16] {
        let rt = Runtime::with_workers(workers);
        assert_eq!(
            ferret::run_hyperqueue(&fcfg, &rt).checksum(),
            fs.checksum(),
            "ferret at {workers}"
        );
        assert_eq!(
            dedup::run_hyperqueue(&dcfg, &ddata, &rt).checksum(),
            ds.checksum(),
            "dedup at {workers}"
        );
        assert_eq!(
            hyperqueues::workloads::util::fnv1a(&bzip2::run_hyperqueue(&bcfg, &bdata, &rt)),
            hyperqueues::workloads::util::fnv1a(&bs),
            "bzip2 at {workers}"
        );
    }
}
