//! Cross-model agreement for all three evaluation workloads (Figures 7
//! and 9 describe the shapes; this test pins the *semantics*): every
//! programming model must produce byte-identical output, and that output
//! must verify (dedup archives and bzip2 streams decode back to the
//! original input).

use hyperqueues::swan::Runtime;
use hyperqueues::workloads::{bzip2, dedup, ferret};

#[test]
fn ferret_all_models_agree() {
    let cfg = ferret::FerretConfig::small();
    let (serial, _) = ferret::run_serial(&cfg);
    let rt = Runtime::with_workers(6);
    assert_eq!(
        ferret::run_pthread(&cfg, &ferret::PthreadTuning::oversubscribed(6)).checksum(),
        serial.checksum()
    );
    assert_eq!(ferret::run_tbb(&cfg, 6, 24).checksum(), serial.checksum());
    assert_eq!(ferret::run_objects(&cfg, &rt).checksum(), serial.checksum());
    assert_eq!(
        ferret::run_hyperqueue(&cfg, &rt).checksum(),
        serial.checksum()
    );
}

#[test]
fn dedup_all_models_agree_and_roundtrip() {
    let cfg = dedup::DedupConfig::small();
    let data = dedup::corpus(&cfg);
    let (serial, _) = dedup::run_serial(&cfg, &data);
    let rt = Runtime::with_workers(6);

    let archives = [
        dedup::run_pthread(&cfg, &data, &dedup::DedupTuning::oversubscribed(6)),
        dedup::run_tbb(&cfg, &data, 6, 12),
        dedup::run_objects(&cfg, &data, &rt),
        dedup::run_hyperqueue(&cfg, &data, &rt),
    ];
    for (i, a) in archives.iter().enumerate() {
        assert_eq!(a.checksum(), serial.checksum(), "model {i} diverged");
    }
    let restored = dedup::unarchive(&serial.bytes).expect("decodes");
    assert_eq!(&restored[..], &data[..]);
}

#[test]
fn bzip2_all_models_agree_and_roundtrip() {
    let cfg = bzip2::Bzip2Config::small();
    let data = bzip2::corpus(&cfg);
    let (serial, _) = bzip2::run_serial(&cfg, &data);
    let rt = Runtime::with_workers(6);
    let reference = hyperqueues::workloads::util::fnv1a(&serial);

    for (name, stream) in [
        ("objects", bzip2::run_objects(&cfg, &data, &rt)),
        ("hyperqueue", bzip2::run_hyperqueue(&cfg, &data, &rt)),
        (
            "loop-split",
            bzip2::run_hyperqueue_split(&cfg, &data, &rt, 4),
        ),
    ] {
        assert_eq!(
            hyperqueues::workloads::util::fnv1a(&stream),
            reference,
            "{name} diverged"
        );
    }
    let restored = bzip2::decompress_stream(&serial).expect("decodes");
    assert_eq!(&restored[..], &data[..]);
}

#[test]
fn workloads_scale_free_same_binary_many_core_counts() {
    // The scale-free property: identical outputs from the identical
    // program text across core counts, for all three workloads at once.
    let fcfg = ferret::FerretConfig::small();
    let dcfg = dedup::DedupConfig::small();
    let bcfg = bzip2::Bzip2Config::small();
    let ddata = dedup::corpus(&dcfg);
    let bdata = bzip2::corpus(&bcfg);
    let (fs, _) = ferret::run_serial(&fcfg);
    let (ds, _) = dedup::run_serial(&dcfg, &ddata);
    let (bs, _) = bzip2::run_serial(&bcfg, &bdata);
    for workers in [1, 3, 8, 16] {
        let rt = Runtime::with_workers(workers);
        assert_eq!(
            ferret::run_hyperqueue(&fcfg, &rt).checksum(),
            fs.checksum(),
            "ferret at {workers}"
        );
        assert_eq!(
            dedup::run_hyperqueue(&dcfg, &ddata, &rt).checksum(),
            ds.checksum(),
            "dedup at {workers}"
        );
        assert_eq!(
            hyperqueues::workloads::util::fnv1a(&bzip2::run_hyperqueue(&bcfg, &bdata, &rt)),
            hyperqueues::workloads::util::fnv1a(&bs),
            "bzip2 at {workers}"
        );
    }
}
