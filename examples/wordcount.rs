//! A domain example beyond the paper's benchmarks: a deterministic
//! word-frequency pipeline (the shape of a log-analytics job).
//!
//! Stage 1 (serial): a reader splits text into lines — natural streaming
//! code, no restructuring. Stage 2 (parallel): per-batch tokenization +
//! local counting, spawned per batch with push privileges on the output
//! queue so partial results arrive *in batch order*. Stage 3 (serial):
//! merge — because merge order is deterministic, ties in the final top-10
//! resolve identically on every run and core count.
//!
//! ```text
//! cargo run --release --example wordcount [-- mbytes]
//! ```

use std::collections::HashMap;

use hyperqueues::hyperqueue::Hyperqueue;
use hyperqueues::swan::Runtime;
use hyperqueues::workloads::bzip2::{corpus, Bzip2Config};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mbytes: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);
    let text = corpus(&Bzip2Config::bench(mbytes << 20)); // word-soup corpus

    let mut results = Vec::new();
    for workers in [
        1,
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    ] {
        let rt = Runtime::with_workers(workers);
        let t0 = std::time::Instant::now();
        let mut merged: HashMap<String, u64> = HashMap::new();
        let merged_ref = &mut merged;
        let text_ref = &text;
        rt.scope(move |s| {
            let lines_q = Hyperqueue::<String>::with_segment_capacity(s, 256);
            let counts_q = Hyperqueue::<Vec<(String, u64)>>::with_segment_capacity(s, 32);
            // Stage 1: serial reader — one write-slice publication per
            // run of lines instead of one per line.
            s.spawn((lines_q.pushdep(),), move |_, (mut push,)| {
                push.push_iter(
                    text_ref
                        .split(|&b| b == b'\n')
                        .map(|line| String::from_utf8_lossy(line).into_owned()),
                );
            });
            // Stage 2: dispatcher pops line batches, spawns counting tasks
            // (pop_batch returns empty exactly when the queue is
            // permanently empty, so it doubles as the loop condition).
            s.spawn(
                (lines_q.popdep(), counts_q.pushdep()),
                move |s, (mut pop, mut push)| loop {
                    let work = pop.pop_batch(64);
                    if work.is_empty() {
                        break;
                    }
                    s.spawn((push.pushdep(),), move |_, (mut p,)| {
                        let mut local: HashMap<String, u64> = HashMap::new();
                        for line in &work {
                            for w in line.split_whitespace() {
                                *local.entry(w.to_string()).or_insert(0) += 1;
                            }
                        }
                        let mut v: Vec<(String, u64)> = local.into_iter().collect();
                        v.sort_unstable(); // deterministic partials
                        p.push(v);
                    });
                },
            );
            // Stage 3: serial merge, in batch order.
            s.spawn((counts_q.popdep(),), move |_, (mut pop,)| loop {
                let partials = pop.pop_batch(16);
                if partials.is_empty() {
                    break;
                }
                for partial in partials {
                    for (w, n) in partial {
                        *merged_ref.entry(w).or_insert(0) += n;
                    }
                }
            });
        });
        let elapsed = t0.elapsed();
        let mut top: Vec<(String, u64)> = merged.into_iter().collect();
        top.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        top.truncate(10);
        println!(
            "workers={workers:<2} {elapsed:?}  top-3: {:?}",
            &top[..3.min(top.len())]
        );
        results.push(top);
    }
    assert!(
        results.windows(2).all(|w| w[0] == w[1]),
        "word counts diverged across core counts!"
    );
    println!("top-10 identical across core counts — deterministic analytics.");
}
