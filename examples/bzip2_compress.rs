//! bzip2 (§6.3): block compression (RLE1 → BWT → MTF → zero-run encoding
//! → canonical Huffman) over the 3-stage pipeline, comparing the
//! versioned-objects dataflow baseline against both hyperqueue
//! formulations (naive, and the §5.4 loop-split).
//!
//! ```text
//! cargo run --release --example bzip2_compress [-- mbytes [workers]]
//! ```

use hyperqueues::swan::Runtime;
use hyperqueues::workloads::bzip2::{
    corpus, decompress_hyperqueue, decompress_stream, run_hyperqueue, run_hyperqueue_split,
    run_objects, run_serial, Bzip2Config,
};
use hyperqueues::workloads::util::fnv1a;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mbytes: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(8);
    let workers = args.get(2).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    let cfg = Bzip2Config::bench(mbytes << 20);
    let data = corpus(&cfg);

    println!(
        "bzip2: {mbytes} MiB, {workers} workers, {} KiB blocks",
        cfg.block_size >> 10
    );
    let t0 = std::time::Instant::now();
    let (stream, _clock) = run_serial(&cfg, &data);
    let serial_time = t0.elapsed();
    let reference = fnv1a(&stream);
    println!(
        "serial:           {serial_time:?}  ({:.2}x compression)",
        data.len() as f64 / stream.len() as f64
    );

    let rt = Runtime::with_workers(workers);
    for (name, out, t) in [
        {
            let t0 = std::time::Instant::now();
            let out = run_objects(&cfg, &data, &rt);
            ("objects dataflow", out, t0.elapsed())
        },
        {
            let t0 = std::time::Instant::now();
            let out = run_hyperqueue(&cfg, &data, &rt);
            ("hyperqueue", out, t0.elapsed())
        },
        {
            let t0 = std::time::Instant::now();
            let out = run_hyperqueue_split(&cfg, &data, &rt, 8);
            ("hq loop-split(8)", out, t0.elapsed())
        },
    ] {
        assert_eq!(fnv1a(&out), reference, "{name} diverged");
        println!(
            "{name:<17} {t:?}  (speedup {:.2}x, byte-identical)",
            serial_time.as_secs_f64() / t.as_secs_f64()
        );
    }

    let t0 = std::time::Instant::now();
    let restored = decompress_stream(&stream).expect("stream decodes");
    let serial_d = t0.elapsed();
    assert_eq!(&restored[..], &data[..]);

    // Bonus: parallel decompression through the same hyperqueue shape.
    let t0 = std::time::Instant::now();
    let restored = decompress_hyperqueue(&stream, &rt).expect("parallel decode");
    let par_d = t0.elapsed();
    assert_eq!(&restored[..], &data[..]);
    println!(
        "round-trip verified; decompression serial {serial_d:?} vs parallel {par_d:?} ({:.2}x)",
        serial_d.as_secs_f64() / par_d.as_secs_f64()
    );
}
