//! Dedup (§6.2, Figure 10(c)): deduplicating compression where the
//! Fragment task wires a *nested pipeline per coarse chunk* through local
//! hyperqueues, while every Deduplicate+Compress task streams finished
//! chunks onto one global write queue — no gathered lists, no waiting for
//! whole coarse chunks.
//!
//! ```text
//! cargo run --release --example dedup_pipeline [-- mbytes [workers]]
//! ```

use hyperqueues::swan::Runtime;
use hyperqueues::workloads::dedup::{corpus, run_hyperqueue, run_serial, unarchive, DedupConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mbytes: usize = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(16);
    let workers = args.get(2).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    let cfg = DedupConfig::bench(mbytes << 20);
    let data = corpus(&cfg);

    println!("dedup: {mbytes} MiB corpus, {workers} workers");
    let t0 = std::time::Instant::now();
    let (serial, clock) = run_serial(&cfg, &data);
    let serial_time = t0.elapsed();
    print!(
        "{}",
        clock.render("  serial stage breakdown (Table 2 shape)")
    );

    let rt = Runtime::with_workers(workers);
    let t0 = std::time::Instant::now();
    let arch = run_hyperqueue(&cfg, &data, &rt);
    let hq_time = t0.elapsed();

    assert_eq!(arch.checksum(), serial.checksum(), "archive diverged!");
    let restored = unarchive(&arch.bytes).expect("archive must decode");
    assert_eq!(&restored[..], &data[..], "round-trip failed!");

    println!(
        "\n{} chunks, {} unique ({:.1}%), {:.2} MiB -> {:.2} MiB ({:.2}x)",
        arch.total_chunks,
        arch.unique_chunks,
        100.0 * arch.unique_chunks as f64 / arch.total_chunks as f64,
        data.len() as f64 / (1 << 20) as f64,
        arch.bytes.len() as f64 / (1 << 20) as f64,
        data.len() as f64 / arch.bytes.len() as f64,
    );
    println!(
        "hyperqueue: {:?} vs serial {:?} (speedup {:.2}x), archive byte-identical, round-trip verified",
        hq_time,
        serial_time,
        serial_time.as_secs_f64() / hq_time.as_secs_f64()
    );
}
