//! Quickstart: the paper's Figure 2 — a two-stage pipeline where a
//! recursive, divide-and-conquer producer feeds a consumer through a
//! hyperqueue, deterministically, on any number of cores.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hyperqueues::hyperqueue::{Hyperqueue, PushToken};
use hyperqueues::swan::{Runtime, Scope};

/// The producer of Figure 2: recursively splits its range; leaves push.
/// `f(n)` here computes a little hash so the work is visible. The paper's
/// leaf grain is 10 heavyweight `f(n)` calls; with our featherweight `f`
/// we use a larger grain so tasks stay coarser than scheduling overhead.
fn producer(s: &Scope<'_>, mut queue: PushToken<u64>, start: u64, end: u64) {
    if end - start <= 2000 {
        for n in start..end {
            queue.push(f(n));
        }
    } else {
        let mid = (start + end) / 2;
        s.spawn((queue.pushdep(),), move |s, (q,)| {
            producer(s, q, start, mid)
        });
        s.spawn((queue.pushdep(),), move |s, (q,)| producer(s, q, mid, end));
        // implicit sync at end of task
    }
}

fn f(n: u64) -> u64 {
    let mut x = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 31;
    x
}

fn main() {
    let total = 100_000u64;
    for workers in [1, 2, num_cpus()] {
        let rt = Runtime::with_workers(workers);
        let mut sum = 0u64;
        let mut count = 0u64;
        let mut in_order = true;
        let (sum_ref, count_ref, order_ref) = (&mut sum, &mut count, &mut in_order);
        let t0 = std::time::Instant::now();
        rt.scope(move |s| {
            let queue = Hyperqueue::<u64>::new(s);
            s.spawn((queue.pushdep(),), move |s, (q,)| producer(s, q, 0, total));
            s.spawn((queue.popdep(),), move |_, (mut q,)| {
                // The consumer sees f(0), f(1), f(2), ... in exactly the
                // serial order, no matter how producers were scheduled.
                let mut expect = 0u64;
                while !q.empty() {
                    let v = q.pop();
                    *order_ref &= v == f(expect);
                    expect += 1;
                    *sum_ref = sum_ref.wrapping_add(v);
                    *count_ref += 1;
                }
            });
        });
        println!(
            "workers={workers:<2} popped {count} values in {:?} (order preserved: {in_order}, checksum {sum:#x})",
            t0.elapsed()
        );
        assert!(in_order);
        assert_eq!(count, total);
    }
    println!("\nSame program text, any core count, same observable order — scale-free and deterministic.");
}

fn num_cpus() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}
