//! Programming idioms from §5 of the paper, each demonstrated runnable:
//!
//! 1. segment-length tuning (§5.1)
//! 2. queue slices (§5.2)
//! 3. checking for parallel execution — `SYNCHED` (§5.3)
//! 4. queue loop split & interchange (§5.4, Figure 5)
//! 5. selective sync (§5.5, Figure 6)
//!
//! ```text
//! cargo run --release --example idioms
//! ```

use hyperqueues::hyperqueue::Hyperqueue;
use hyperqueues::swan::Runtime;

fn main() {
    let rt = Runtime::with_workers(4);

    // ---- §5.1 segment-length tuning --------------------------------------
    // A producer that emits exactly 64 values per task performs best with
    // 64-slot segments: each leaf task fills exactly one segment.
    rt.scope(|s| {
        let q = Hyperqueue::<u32>::with_segment_capacity(s, 64);
        s.spawn((q.pushdep(),), |_, (mut p,)| {
            for i in 0..64 {
                p.push(i);
            }
        });
        let mut got = 0;
        while !q.empty() {
            let _ = q.pop();
            got += 1;
        }
        assert_eq!(got, 64);
        let stats = q.stats();
        println!(
            "§5.1 tuned segments: {got} values, {} segment(s) allocated",
            stats.segments_allocated
        );
    });

    // ---- §5.2 queue slices ------------------------------------------------
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, 128);
        s.spawn((q.pushdep(),), |_, (mut p,)| {
            // Reserve write slices: pushes at array speed, one publication
            // when the slice drops. A slice never spans segments, so it
            // may come back *shorter* than requested — size the inner loop
            // with `capacity()`.
            let mut n = 0u64;
            while n < 128 {
                let mut ws = p.write_slice(32);
                for _ in 0..ws.capacity().min((128 - n) as usize) {
                    ws.push(n);
                    n += 1;
                }
            }
            // Or let the queue do the slicing: push_iter drains any
            // iterator through write slices.
            p.push_iter(128..256);
        });
        s.spawn((q.popdep(),), |_, (mut c,)| {
            let mut expect = 0u64;
            while let Some(rs) = c.read_slice(64) {
                for &v in rs.as_slice() {
                    assert_eq!(v, expect);
                    expect += 1;
                }
            }
            println!("§5.2 slices: consumed {expect} values via read slices, in order");
        });
    });

    // ---- §5.3 SYNCHED ------------------------------------------------------
    rt.scope(|s| {
        println!("§5.3 SYNCHED before spawning: {}", s.synched());
        s.spawn((), |_, ()| {
            std::thread::sleep(std::time::Duration::from_millis(5));
        });
        println!("§5.3 SYNCHED with a child outstanding: {}", s.synched());
        s.sync();
        println!("§5.3 SYNCHED after sync: {}", s.synched());
    });

    // ---- §5.4 loop split (Figure 5) ----------------------------------------
    // The main queue-iteration loop moves *outside* the tasks: the owner
    // pushes 10 values at a time and spawns a consumer per batch. Memory
    // use under serial execution is bounded by one batch.
    let consumed = std::sync::atomic::AtomicU32::new(0);
    rt.scope(|s| {
        let q = Hyperqueue::<u32>::with_segment_capacity(s, 16);
        let total = 100u32;
        let consumed_ref = &consumed;
        let mut pushed = 0u32;
        while pushed < total {
            for _ in 0..10 {
                q.push(pushed);
                pushed += 1;
            }
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                // Rule 4 makes later pushes invisible: this consumer sees
                // exactly the values pushed before it was spawned.
                let mut n = 0;
                while !c.empty() {
                    let _ = c.pop();
                    n += 1;
                }
                consumed_ref.fetch_add(n, std::sync::atomic::Ordering::Relaxed);
            });
        }
        s.sync();
        println!(
            "§5.4 loop split: {} values through 10-element batches",
            consumed.load(std::sync::atomic::Ordering::Relaxed)
        );
    });

    // ---- §5.5 selective sync (Figure 6) ------------------------------------
    rt.scope(|s| {
        let q = Hyperqueue::<u32>::new(s);
        s.spawn((q.pushdep(),), |_, (mut p,)| p.push(1));
        s.spawn((q.popdep(),), |_, (mut c,)| {
            assert!(!c.empty());
            assert_eq!(c.pop(), 1);
        });
        s.spawn((q.pushdep(),), |_, (mut p,)| p.push(2));
        // `sync (popdep<T>) queue;` — wait only for the consumer child,
        // then pop the second producer's value ourselves.
        q.sync_pop(s);
        assert!(!q.empty());
        assert_eq!(q.pop(), 2);
        println!("§5.5 selective sync: consumer awaited, owner popped the remainder");
    });

    println!("\nall idioms behaved as §5 describes.");
}
