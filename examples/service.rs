//! The service layer in one screen: compile a graph once, keep it hot on
//! a persistent runtime, fire many jobs at it, resize the worker pool
//! mid-traffic — outputs never change, only throughput.
//!
//! Run with `cargo run --release --example service`.

use std::sync::Arc;

use hyperqueues::pipelines::graph::{Admission, ServiceConfig};
use hyperqueues::swan::Runtime;
use hyperqueues::workloads::service::{
    job_lines, wordcount_serial, wordcount_spec, ServiceWorkloadConfig,
};

fn main() {
    // A long-lived runtime: workers park between jobs, and the pool can
    // grow/shrink elastically while traffic flows.
    let rt = Arc::new(Runtime::persistent());
    println!(
        "persistent runtime: {} worker(s), elastic up to {}",
        rt.active_workers(),
        rt.max_workers()
    );

    // Compile the wordcount graph once: tokenize -> sharded counting ->
    // ordered merge. All stage closures live behind Arcs, so the same
    // spec re-instantiates for every job.
    let cfg = ServiceWorkloadConfig::small();
    let graph = wordcount_spec(cfg.degree, cfg.window).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: 3,
            ..ServiceConfig::default()
        },
    );

    // Warm the graph (instantiates the per-edge segment pools), then park
    // the worst-case segment demand so the loop below never allocates.
    graph
        .submit(job_lines(&cfg, 0), Admission::Unbounded)
        .expect_accepted()
        .join();
    graph.prewarm(cfg.prewarm_depth());
    let warm = graph.telemetry().storage;

    // Fire a burst of jobs; resize the worker pool while they run.
    let handles: Vec<_> = (0..32)
        .map(|j| {
            if j == 10 {
                rt.resize_workers(rt.max_workers());
            }
            if j == 20 {
                rt.resize_workers(1);
            }
            graph
                .submit(job_lines(&cfg, j), Admission::Unbounded)
                .expect_accepted()
        })
        .collect();
    for (j, h) in handles.into_iter().enumerate() {
        let out = h.join();
        assert_eq!(out, wordcount_serial(&job_lines(&cfg, j)));
        if j % 8 == 0 {
            println!(
                "job {j:>2}: {} distinct words (verified vs serial elision)",
                out.len()
            );
        }
    }

    let t = graph.telemetry();
    let (jobs, storage) = (t.admission, t.storage);
    println!(
        "\n{} jobs completed; peak in-flight {} (bound {});",
        jobs.completed, jobs.high_water_in_flight, jobs.max_in_flight
    );
    println!(
        "segments: {} allocated during the burst (pools served {} draws, {} returned)",
        storage.segments_allocated - warm.segments_allocated,
        storage.pool_hits - warm.pool_hits,
        storage.segments_returned - warm.segments_returned,
    );
}
