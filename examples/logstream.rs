//! Streaming log analytics on a graph-shaped pipeline — the
//! `pipelines::graph` tour.
//!
//! ```text
//! cargo run --release --example logstream [records] [degree]
//! ```
//!
//! Builds the DAG (tee → keyed fan-out over aggregation shards →
//! ordered key-merge, plus a round-robin digest fan-out rejoined by
//! sequence tag), runs it at several worker counts, and shows the output
//! is byte-identical every time — then prints a hand-built mini-DAG so the
//! builder API is visible end to end.

use hyperqueues::pipelines::graph::{GraphBuilder, Partition};
use hyperqueues::swan::Runtime;
use hyperqueues::workloads::logstream::{corpus, run_graph, run_serial, LogConfig};

fn main() {
    let mut args = std::env::args().skip(1);
    let records: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(40_000);
    let degree: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let mut cfg = LogConfig::bench(records);
    cfg.parse_work = 40; // keep the demo snappy
    let lines = corpus(&cfg);
    println!(
        "logstream: {} records, {} services, fan-out degree {degree}",
        cfg.records, cfg.services
    );

    let (serial, clock) = run_serial(&cfg, &lines);
    println!("\n{}", clock.render("serial stage profile"));

    for workers in [1, 2, 4, 8] {
        let rt = Runtime::with_workers(workers);
        let (d, out) = {
            let t0 = std::time::Instant::now();
            let out = run_graph(&cfg, &lines, &rt, degree);
            (t0.elapsed(), out)
        };
        assert_eq!(out, serial, "graph output diverged at {workers} workers");
        println!(
            "graph x{degree} on {workers} workers: {:>7.1} ms  checksum {:#018x}  (identical)",
            d.as_secs_f64() * 1e3,
            out.checksum()
        );
    }
    println!("\nfirst summaries:");
    for line in serial.summaries.iter().take(3) {
        println!("  {line}");
    }

    // The builder API in miniature: fan out a squaring stage over 3
    // replicas, merge back in serial order, tee a checksum branch.
    let rt = Runtime::with_workers(4);
    let mut squares = Vec::new();
    let mut checksum = 0u64;
    let (sq_ref, ck_ref) = (&mut squares, &mut checksum);
    rt.scope(move |s| {
        let (main, side) = GraphBuilder::on(s).source_iter(1u64..=10).tee();
        main.split(3, Partition::RoundRobin)
            .map(|x| x * x)
            .merge(8)
            .collect_into(sq_ref);
        side.for_each(move |x| *ck_ref += x);
    });
    println!(
        "\nmini-DAG: squares of 1..=10 via 3 replicas = {squares:?} (sum of inputs: {checksum})"
    );
}
