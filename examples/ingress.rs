//! Network ingress round trip, fully offline: bind an `IngressServer` on
//! a loopback socket, speak the framed protocol to it with
//! `IngressClient`, and watch backpressure and stats frames work.
//!
//! Run with: `cargo run --release --example ingress`
//!
//! This is the in-process version of the `hqd` + `ingress_load` pair the
//! README quickstart shows; the wire bytes are identical.

use std::sync::Arc;
use std::time::Duration;

use pipelines::graph::ServiceConfig;
use pipelines::ingress::{IngressClient, IngressConfig, IngressServer, JobOutcome};
use swan::Runtime;
use workloads::service::{job_lines, wordcount_spec, ServiceWorkloadConfig};
use workloads::wire::{encode_lines, expected_wordcount_bytes, WordcountCodec};

fn main() {
    // Server side: a persistent wordcount graph behind a TCP front door.
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = Arc::new(wordcount_spec(3, 16).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: 2,
            ..ServiceConfig::default()
        },
    ));
    let server = IngressServer::bind(
        "127.0.0.1:0", // port 0: the OS picks; real deployments pin one
        graph,
        Arc::new(WordcountCodec),
        IngressConfig::default(),
    )
    .expect("bind loopback");
    println!("serving wordcount on {}", server.local_addr());

    // Client side: submit a handful of jobs and check every response
    // against its serial elision — the bytes must match exactly.
    let cfg = ServiceWorkloadConfig::small();
    let mut client = IngressClient::connect(server.local_addr()).expect("connect");
    for j in 0..8usize {
        let lines = job_lines(&cfg, j);
        let outcome = client
            .submit_and_wait(j as u64, &encode_lines(&lines), Duration::from_micros(200))
            .expect("transport");
        match outcome {
            JobOutcome::Result(bytes) => {
                assert_eq!(bytes, expected_wordcount_bytes(&lines));
                let text = String::from_utf8(bytes).expect("utf8");
                let first = text.lines().next().unwrap_or("<empty>");
                println!(
                    "job {j}: {} distinct words, first: {first}",
                    text.lines().count()
                );
            }
            JobOutcome::Failed(msg) => panic!("job {j} failed: {msg}"),
        }
    }

    // The protocol also exposes a typed telemetry snapshot.
    let t = client.stats(99).expect("stats");
    println!(
        "server telemetry v{}: {} jobs accepted, {} in flight, {} edges",
        t.version,
        t.ingress.map_or(0, |i| i.jobs_accepted),
        t.admission.in_flight,
        t.storage.edges,
    );

    // Graceful teardown: drain accepted jobs, then quiesce the runtime.
    let stats = server.shutdown();
    rt.quiesce();
    println!(
        "drained: {} jobs accepted, {} completed, {} bytes out",
        stats.jobs_accepted, stats.jobs_completed, stats.bytes_out
    );
}
