//! Ferret (§6.1): content-based image similarity search over the 6-stage
//! pipeline of Figure 7, with the hyperqueue formulation of the paper —
//! the *unchanged* recursive directory traversal feeds an input queue,
//! per-image tasks carry the output queue's push privilege, and a single
//! output task drains results in serial order.
//!
//! ```text
//! cargo run --release --example ferret_pipeline [-- images [workers]]
//! ```

use hyperqueues::swan::Runtime;
use hyperqueues::workloads::ferret::{run_hyperqueue, run_serial, FerretConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let images = args.get(1).and_then(|v| v.parse().ok()).unwrap_or(500);
    let workers = args.get(2).and_then(|v| v.parse().ok()).unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
    });
    let cfg = FerretConfig::bench(images);

    println!("ferret: {images} images, {workers} workers");
    let t0 = std::time::Instant::now();
    let (serial, clock) = run_serial(&cfg);
    let serial_time = t0.elapsed();
    println!("\nserial stage breakdown:");
    print!("{}", clock.render("  (Table 1 shape)"));

    let rt = Runtime::with_workers(workers);
    let t0 = std::time::Instant::now();
    let out = run_hyperqueue(&cfg, &rt);
    let hq_time = t0.elapsed();

    assert_eq!(out.lines, serial.lines, "hyperqueue output diverged!");
    println!(
        "\nhyperqueue: {:?} vs serial {:?}  (speedup {:.2}x on {workers} workers)",
        hq_time,
        serial_time,
        serial_time.as_secs_f64() / hq_time.as_secs_f64()
    );
    println!("outputs identical: true");
    println!("\nfirst results:");
    for line in out.lines.iter().take(3) {
        println!("  {line}");
    }
}
