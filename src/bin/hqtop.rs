//! `hqtop` — a live terminal view of a running `hqd`.
//!
//! Connects to the daemon's ingress port, sends one `Subscribe` frame,
//! and repaints the terminal from the resulting `StatsEvent` stream: per-
//! edge queue depths, worker steal/park rates, admission depth, journal
//! lag, and the per-job-class latency histograms — every counter the
//! paper's evaluation reasons from, read off the live daemon instead of
//! a post-mortem bench report. Std-only: plain ANSI escapes, no TUI
//! dependency.
//!
//! ```text
//! hqtop [--addr 127.0.0.1:7171] [--interval-ms 1000] [--frames N]
//! ```
//!
//! `--frames N` (N > 0) is the headless mode CI drives: consume exactly
//! N StatsEvent frames *without* repainting, verify each parses and that
//! monotone counters never regress between consecutive frames, then exit
//! 0 (any malformed frame or counter regression exits nonzero). With
//! `--frames 0` (the default) it renders until the connection closes or
//! the terminal kills it.

use pipelines::ingress::{FrameKind, IngressClient};
use pipelines::telemetry::{HistogramSnapshot, TelemetrySnapshot};

const KNOWN_FLAGS: [&str; 3] = ["--addr", "--interval-ms", "--frames"];

fn validate_args(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let tok = args[i].as_str();
        if !KNOWN_FLAGS.contains(&tok) {
            eprintln!("hqtop: unknown argument {tok} (expected one of {KNOWN_FLAGS:?})");
            std::process::exit(2);
        }
        if args.get(i + 1).is_none() {
            eprintln!("hqtop: {tok} requires a value");
            std::process::exit(2);
        }
        i += 2;
    }
}

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_u64(args: &[String], key: &str, default: u64) -> u64 {
    match flag(args, key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("hqtop: {key} expects a non-negative integer, got {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    validate_args(&args);
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let interval_ms = flag_u64(&args, "--interval-ms", 1000).clamp(1, u64::from(u32::MAX)) as u32;
    let frames = flag_u64(&args, "--frames", 0);

    let mut client = match IngressClient::connect(&addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("hqtop: cannot connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Err(e) = client.subscribe(1, interval_ms) {
        eprintln!("hqtop: subscribe failed: {e}");
        std::process::exit(1);
    }

    let mut prev: Option<TelemetrySnapshot> = None;
    let mut tick = 0u64;
    loop {
        let frame = match client.recv() {
            Ok(f) => f,
            Err(e) => {
                // Headless runs must see their full quota; an interactive
                // session ending with the daemon is a normal exit.
                if frames > 0 {
                    eprintln!("hqtop: connection lost after {tick} frames: {e}");
                    std::process::exit(1);
                }
                eprintln!("hqtop: connection closed ({e})");
                std::process::exit(0);
            }
        };
        match frame.kind {
            FrameKind::StatsEvent => {}
            other => {
                eprintln!("hqtop: unexpected {other:?} frame on a subscribed connection");
                std::process::exit(1);
            }
        }
        let text = String::from_utf8_lossy(&frame.body);
        let snap = match TelemetrySnapshot::parse_text(&text) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hqtop: malformed StatsEvent: {e}");
                std::process::exit(1);
            }
        };
        if let Some(prev) = &prev {
            if let Err(e) = check_monotone(prev, &snap) {
                eprintln!("hqtop: counter regression between frames: {e}");
                std::process::exit(1);
            }
        }
        tick += 1;
        if frames == 0 {
            render(&addr, interval_ms, tick, &snap, prev.as_ref());
        }
        prev = Some(snap);
        if frames > 0 && tick >= frames {
            println!("hqtop: {tick} well-formed StatsEvent frames, counters monotone");
            return;
        }
    }
}

/// Counters that must never decrease between two snapshots of the same
/// daemon — the headless-mode correctness check.
fn check_monotone(prev: &TelemetrySnapshot, cur: &TelemetrySnapshot) -> Result<(), String> {
    let check = |name: &str, before: u64, after: u64| {
        if after < before {
            Err(format!("{name} went {before} -> {after}"))
        } else {
            Ok(())
        }
    };
    check(
        "sched.tasks_executed",
        prev.sched.tasks_executed,
        cur.sched.tasks_executed,
    )?;
    check(
        "admission.submitted",
        prev.admission.submitted,
        cur.admission.submitted,
    )?;
    check(
        "admission.completed",
        prev.admission.completed,
        cur.admission.completed,
    )?;
    check(
        "queues.segments_allocated",
        prev.queues.segments_allocated,
        cur.queues.segments_allocated,
    )?;
    if let (Some(p), Some(c)) = (&prev.ingress, &cur.ingress) {
        check("ingress.frames_in", p.frames_in, c.frames_in)?;
        check("ingress.bytes_in", p.bytes_in, c.bytes_in)?;
        check("ingress.jobs_accepted", p.jobs_accepted, c.jobs_accepted)?;
        check("ingress.stats_events", p.stats_events, c.stats_events)?;
    }
    if let (Some(p), Some(c)) = (&prev.journal, &cur.journal) {
        check("journal.appends", p.stats.appends, c.stats.appends)?;
        check("journal.fsyncs", p.stats.fsyncs, c.stats.fsyncs)?;
    }
    for pc in &prev.latency {
        if let Some(cc) = cur.latency.iter().find(|c| c.class == pc.class) {
            check(
                &format!("latency.{}.count", pc.class),
                pc.histogram.count(),
                cc.histogram.count(),
            )?;
        }
    }
    Ok(())
}

/// Per-second rate of a counter across one refresh interval.
fn rate(before: u64, after: u64, interval_ms: u32) -> f64 {
    let d = after.saturating_sub(before) as f64;
    d * 1000.0 / f64::from(interval_ms.max(1))
}

fn render(
    addr: &str,
    interval_ms: u32,
    tick: u64,
    snap: &TelemetrySnapshot,
    prev: Option<&TelemetrySnapshot>,
) {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(4096);
    // Clear screen, cursor home.
    s.push_str("\x1b[2J\x1b[H");
    let _ = writeln!(
        s,
        "\x1b[1mhqtop\x1b[0m — {addr} · telemetry v{} · every {interval_ms} ms · frame {tick}",
        snap.version
    );
    let _ = writeln!(s);

    let a = &snap.admission;
    let _ = writeln!(
        s,
        "\x1b[1madmission\x1b[0m   in-flight {:>4}/{:<4}  queued {:>4}  high-water {:>4}  \
         submitted {:>8}  completed {:>8}  retries {:>4}  failed {:>4}",
        a.in_flight,
        a.max_in_flight,
        a.queued,
        a.high_water_in_flight,
        a.submitted,
        a.completed,
        a.retries,
        a.failed,
    );

    let m = &snap.sched;
    let (exec_rate, steal_rate, park_rate) = match prev {
        Some(p) => (
            rate(p.sched.tasks_executed, m.tasks_executed, interval_ms),
            rate(p.sched.steals, m.steals, interval_ms),
            rate(p.sched.parks, m.parks, interval_ms),
        ),
        None => (0.0, 0.0, 0.0),
    };
    let _ = writeln!(
        s,
        "\x1b[1mscheduler\x1b[0m   tasks {:>10} ({exec_rate:>9.1}/s)  steals {:>8} \
         ({steal_rate:>7.1}/s)  parks {:>8} ({park_rate:>7.1}/s)  helps {:>6}",
        m.tasks_executed,
        m.steals,
        m.parks,
        m.helps_sync + m.helps_queue,
    );

    if let Some(i) = &snap.ingress {
        let (job_rate, byte_rate) = match prev.and_then(|p| p.ingress.as_ref()) {
            Some(p) => (
                rate(p.jobs_completed, i.jobs_completed, interval_ms),
                rate(p.bytes_out, i.bytes_out, interval_ms),
            ),
            None => (0.0, 0.0),
        };
        let _ = writeln!(
            s,
            "\x1b[1mingress\x1b[0m     conns {:>5}  jobs {:>8} done ({job_rate:>8.1}/s)  \
             retries {:>6}  out {:>9.1} KiB/s  wakeups {:>8}  ticks {:>6} (dropped {})",
            i.connections,
            i.jobs_completed,
            i.retries_sent,
            byte_rate / 1024.0,
            i.loop_wakeups,
            i.stats_events,
            i.stats_dropped,
        );
    }

    if let Some(j) = &snap.journal {
        let _ = writeln!(
            s,
            "\x1b[1mjournal\x1b[0m     lag {:>5} records  appends {:>8}  fsyncs {:>7}  \
             dir-syncs {:>4}  segments {:>3} live",
            j.lag,
            j.stats.appends,
            j.stats.fsyncs,
            j.stats.dir_syncs,
            j.stats.segments_created - j.stats.segments_deleted,
        );
    }

    let _ = writeln!(s);
    let _ = writeln!(
        s,
        "\x1b[1m{:>4}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\x1b[0m",
        "edge", "seg-alloc", "recycled", "pool-hits", "pool-miss", "available", "locks"
    );
    for (idx, e) in snap.edges.iter().enumerate() {
        let _ = writeln!(
            s,
            "{idx:>4}  {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            e.queues.segments_allocated,
            e.queues.segments_recycled,
            e.pool.hits,
            e.pool.misses,
            e.pool.available,
            e.queues.lock_acquisitions,
        );
    }

    for c in &snap.latency {
        let h = &c.histogram;
        let _ = writeln!(s);
        let _ = writeln!(
            s,
            "\x1b[1mlatency · {}\x1b[0m  count {}  p50 {}  p95 {}  p99 {}  (µs, upper bucket bounds)",
            c.class,
            h.count(),
            format_us(h.quantile(0.50)),
            format_us(h.quantile(0.95)),
            format_us(h.quantile(0.99)),
        );
        s.push_str(&sparkline(h));
    }
    print!("{s}");
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
}

fn format_us(us: u64) -> String {
    if us >= 1_000_000 {
        format!("{:.2}s", us as f64 / 1e6)
    } else if us >= 1_000 {
        format!("{:.2}ms", us as f64 / 1e3)
    } else {
        format!("{us}µs")
    }
}

/// One bar row per occupied histogram bucket, scaled to the fullest.
fn sparkline(h: &HistogramSnapshot) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let max = h.buckets.iter().copied().max().unwrap_or(0);
    if max == 0 {
        return s;
    }
    for (i, &n) in h.buckets.iter().enumerate() {
        if n == 0 {
            continue;
        }
        let (lo, hi) = HistogramSnapshot::bucket_bounds(i);
        let width = ((n as f64 / max as f64) * 40.0).ceil() as usize;
        let _ = writeln!(
            s,
            "  {:>9}–{:<9} {:>8} {}",
            format_us(lo),
            format_us(hi.min(99_999_999_999)),
            n,
            "#".repeat(width.max(1)),
        );
    }
    s
}
