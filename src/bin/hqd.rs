//! `hqd` — the hyperqueue service daemon.
//!
//! Fronts a persistent [`pipelines::service::CompiledGraph`] with the TCP
//! ingress protocol (`pipelines::ingress`; frame layout in the README's
//! "Network ingress" section). Submit jobs with any protocol client —
//! `ingress_load` in the bench crate is the closed-loop load generator.
//!
//! ```text
//! hqd [--addr 127.0.0.1:7171] [--workload wordcount|logstream]
//!     [--workers N]          0 (default) = persistent(): one per core, elastic
//!     [--scheduler P]        help-first (default) | steal-first | steal-first:N
//!                            (N = steal batch); HQ_SCHED sets the default
//!     [--max-in-flight N]    admission bound, default 4
//!     [--max-queued N]       accepted-but-waiting bound, default 64 (then RETRY)
//!     [--degree N]           fan-out/shard degree inside each job, default 4
//!     [--run-secs N]         serve for N seconds, then drain and exit;
//!                            0 (default) = serve until stdin closes or
//!                            a "quit" line arrives
//! ```
//!
//! Shutdown is always graceful: stop accepting, finish every accepted
//! job, drain the dispatchers, quiesce the runtime, then exit.

use std::sync::Arc;
use std::time::Duration;

use pipelines::graph::ServiceConfig;
use pipelines::ingress::{IngressConfig, IngressServer};
use swan::{Runtime, RuntimeConfig, SchedulerPolicy};
use workloads::service::{logstream_digest_spec, wordcount_spec};
use workloads::wire::{LogstreamCodec, WordcountCodec};

const KNOWN_FLAGS: [&str; 8] = [
    "--addr",
    "--workload",
    "--workers",
    "--scheduler",
    "--max-in-flight",
    "--max-queued",
    "--degree",
    "--run-secs",
];

/// Rejects unknown flags and flags without values up front: a daemon
/// that silently ignores a misspelled option starts with a configuration
/// the operator did not ask for.
fn validate_args(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let tok = args[i].as_str();
        if !KNOWN_FLAGS.contains(&tok) {
            eprintln!("hqd: unknown argument {tok} (expected one of {KNOWN_FLAGS:?})");
            std::process::exit(2);
        }
        if args.get(i + 1).is_none() {
            eprintln!("hqd: {tok} requires a value");
            std::process::exit(2);
        }
        i += 2;
    }
}

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], key: &str, default: usize) -> usize {
    match flag(args, key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("hqd: {key} expects a non-negative integer, got {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    validate_args(&args);
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let workload = flag(&args, "--workload").unwrap_or_else(|| "wordcount".to_string());
    let workers = flag_usize(&args, "--workers", 0);
    let max_in_flight = flag_usize(&args, "--max-in-flight", 4);
    let max_queued = flag_usize(&args, "--max-queued", 64);
    let degree = flag_usize(&args, "--degree", 4);
    let run_secs = flag_usize(&args, "--run-secs", 0);

    // --scheduler overrides HQ_SCHED, which overrides help-first.
    let scheduler = match flag(&args, "--scheduler") {
        None => RuntimeConfig::default().scheduler,
        Some(v) => SchedulerPolicy::parse(&v).unwrap_or_else(|| {
            eprintln!(
                "hqd: --scheduler expects help-first, steal-first or \
                 steal-first:N, got {v:?}"
            );
            std::process::exit(2);
        }),
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let worker_range = if workers == 0 {
        // persistent() shape: one worker per core, elastic headroom to 8.
        cores..=cores.max(8)
    } else {
        workers..=workers
    };
    let rt = Arc::new(Runtime::new(
        RuntimeConfig::new()
            .workers(worker_range)
            .scheduler(scheduler),
    ));
    let service_cfg = ServiceConfig {
        max_in_flight,
        ..ServiceConfig::default()
    };
    let ingress_cfg = IngressConfig {
        max_queued,
        ..IngressConfig::default()
    };

    // The graph type differs per workload, so each arm owns its server.
    let server = match workload.as_str() {
        "wordcount" => {
            let graph = Arc::new(wordcount_spec(degree, 32).compile(Arc::clone(&rt), service_cfg));
            IngressServer::bind(&addr, graph, Arc::new(WordcountCodec), ingress_cfg)
        }
        "logstream" => {
            let graph = Arc::new(
                logstream_digest_spec(degree, 32, 40).compile(Arc::clone(&rt), service_cfg),
            );
            IngressServer::bind(&addr, graph, Arc::new(LogstreamCodec), ingress_cfg)
        }
        other => {
            eprintln!("hqd: unknown --workload {other} (wordcount|logstream)");
            std::process::exit(2);
        }
    };
    let server = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hqd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "hqd: serving {workload} on {} ({} workers, {:?}, \
         max_in_flight {max_in_flight}, max_queued {max_queued})",
        server.local_addr(),
        rt.active_workers(),
        rt.scheduler(),
    );

    if run_secs > 0 {
        std::thread::sleep(Duration::from_secs(run_secs as u64));
    } else {
        // Serve until stdin closes (or says "quit"): the daemon shape that
        // still shuts down gracefully under `cmd | hqd` and in terminals.
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) => break, // EOF
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }

    println!("hqd: draining…");
    let stats = server.shutdown();
    rt.quiesce();
    println!(
        "hqd: drained. connections {}, jobs accepted {}, completed {}, \
         retries {}, protocol errors {}",
        stats.connections,
        stats.jobs_accepted,
        stats.jobs_completed,
        stats.retries_sent,
        stats.protocol_errors,
    );
}
