//! `hqd` — the hyperqueue service daemon.
//!
//! Fronts a persistent [`pipelines::service::CompiledGraph`] with the TCP
//! ingress protocol (`pipelines::ingress`; frame layout in the README's
//! "Network ingress" section). Submit jobs with any protocol client —
//! `ingress_load` in the bench crate is the closed-loop load generator.
//!
//! ```text
//! hqd [--addr 127.0.0.1:7171] [--workload wordcount|logstream]
//!     [--workers N]          0 (default) = persistent(): one per core, elastic
//!     [--scheduler P]        help-first (default) | steal-first | steal-first:N
//!                            (N = steal batch); HQ_SCHED sets the default
//!     [--max-in-flight N]    admission bound, default 4
//!     [--max-queued N]       accepted-but-waiting bound, default 64 (then RETRY)
//!     [--degree N]           fan-out/shard degree inside each job, default 4
//!     [--run-secs N]         serve for N seconds, then drain and exit;
//!                            0 (default) = serve until stdin closes or
//!                            a "quit" line arrives
//!     [--journal-dir DIR]    enable durable jobs: write-ahead journal in DIR,
//!                            crash recovery replays it on the next start
//!     [--max-retries N]      re-admit failed jobs up to N times with
//!                            exponential backoff, default 0 (fail fast)
//!     [--fsync-batch N]      records per group-commit fsync, default 64
//!     [--event-loops N]      epoll event-loop threads multiplexing all
//!                            connections; 0 = thread-pair-per-connection
//!                            fallback; default min(4, cores) on Linux
//! ```
//!
//! Shutdown is always graceful: stop accepting, finish every accepted
//! job, drain the dispatchers, quiesce the runtime, then exit. Durability
//! (`--journal-dir`) covers the *un*-graceful exits: SIGKILL the daemon
//! mid-burst, restart it on the same journal dir, and every unacked job
//! is replayed to a byte-identical result (see DESIGN.md §6.4).

use std::sync::Arc;
use std::time::Duration;

use pipelines::graph::ServiceConfig;
use pipelines::ingress::{IngressConfig, IngressServer};
use pipelines::journal::{Journal, JournalConfig};
use swan::{RetryPolicy, Runtime, RuntimeConfig, SchedulerPolicy};
use workloads::service::{logstream_digest_spec, wordcount_spec};
use workloads::wire::{LogstreamCodec, WordcountCodec};

const KNOWN_FLAGS: [&str; 12] = [
    "--addr",
    "--workload",
    "--workers",
    "--scheduler",
    "--max-in-flight",
    "--max-queued",
    "--degree",
    "--run-secs",
    "--journal-dir",
    "--max-retries",
    "--fsync-batch",
    "--event-loops",
];

/// Rejects unknown flags and flags without values up front: a daemon
/// that silently ignores a misspelled option starts with a configuration
/// the operator did not ask for.
fn validate_args(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let tok = args[i].as_str();
        if !KNOWN_FLAGS.contains(&tok) {
            eprintln!("hqd: unknown argument {tok} (expected one of {KNOWN_FLAGS:?})");
            std::process::exit(2);
        }
        if args.get(i + 1).is_none() {
            eprintln!("hqd: {tok} requires a value");
            std::process::exit(2);
        }
        i += 2;
    }
}

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], key: &str, default: usize) -> usize {
    match flag(args, key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("hqd: {key} expects a non-negative integer, got {v:?}");
            std::process::exit(2);
        }),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    validate_args(&args);
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let workload = flag(&args, "--workload").unwrap_or_else(|| "wordcount".to_string());
    let workers = flag_usize(&args, "--workers", 0);
    let max_in_flight = flag_usize(&args, "--max-in-flight", 4);
    let max_queued = flag_usize(&args, "--max-queued", 64);
    let degree = flag_usize(&args, "--degree", 4);
    let run_secs = flag_usize(&args, "--run-secs", 0);
    let max_retries = flag_usize(&args, "--max-retries", 0);
    let fsync_batch = flag_usize(&args, "--fsync-batch", 64);
    let event_loops = flag_usize(
        &args,
        "--event-loops",
        pipelines::ingress::default_event_loops(),
    );
    let journal_dir = flag(&args, "--journal-dir");

    // --scheduler overrides HQ_SCHED, which overrides help-first.
    let scheduler = match flag(&args, "--scheduler") {
        None => RuntimeConfig::default().scheduler,
        Some(v) => SchedulerPolicy::parse(&v).unwrap_or_else(|| {
            eprintln!(
                "hqd: --scheduler expects help-first, steal-first or \
                 steal-first:N, got {v:?}"
            );
            std::process::exit(2);
        }),
    };
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let worker_range = if workers == 0 {
        // persistent() shape: one worker per core, elastic headroom to 8.
        cores..=cores.max(8)
    } else {
        workers..=workers
    };
    let rt = Arc::new(Runtime::new(
        RuntimeConfig::new()
            .workers(worker_range)
            .scheduler(scheduler),
    ));
    let service_cfg = ServiceConfig {
        max_in_flight,
        retry: RetryPolicy::retries(max_retries.min(u32::MAX as usize) as u32),
        // The workload name labels the latency histogram in telemetry.
        job_class: workload.clone(),
        ..ServiceConfig::default()
    };
    let ingress_cfg = IngressConfig {
        max_queued,
        event_loops,
        ..IngressConfig::default()
    };

    // Open (and replay) the journal before binding, so recovery finishes
    // rebuilding the durable table before any client can connect.
    let journal = journal_dir.as_ref().map(|dir| {
        let mut jcfg = JournalConfig::at(dir);
        jcfg.fsync_batch = fsync_batch.max(1);
        match Journal::open(jcfg) {
            Ok(opened) => opened,
            Err(e) => {
                eprintln!("hqd: cannot open journal {dir}: {e}");
                std::process::exit(1);
            }
        }
    });

    // The graph type differs per workload, so each arm owns its server.
    let server = match workload.as_str() {
        "wordcount" => {
            let graph = Arc::new(wordcount_spec(degree, 32).compile(Arc::clone(&rt), service_cfg));
            let codec = Arc::new(WordcountCodec);
            match &journal {
                Some((j, replay)) => IngressServer::bind_durable(
                    &addr,
                    graph,
                    codec,
                    ingress_cfg,
                    Arc::clone(j),
                    replay,
                )
                .map(|(s, report)| (s, Some(report))),
                None => IngressServer::bind(&addr, graph, codec, ingress_cfg).map(|s| (s, None)),
            }
        }
        "logstream" => {
            let graph = Arc::new(
                logstream_digest_spec(degree, 32, 40).compile(Arc::clone(&rt), service_cfg),
            );
            let codec = Arc::new(LogstreamCodec);
            match &journal {
                Some((j, replay)) => IngressServer::bind_durable(
                    &addr,
                    graph,
                    codec,
                    ingress_cfg,
                    Arc::clone(j),
                    replay,
                )
                .map(|(s, report)| (s, Some(report))),
                None => IngressServer::bind(&addr, graph, codec, ingress_cfg).map(|s| (s, None)),
            }
        }
        other => {
            eprintln!("hqd: unknown --workload {other} (wordcount|logstream)");
            std::process::exit(2);
        }
    };
    let (server, recovery) = match server {
        Ok(s) => s,
        Err(e) => {
            eprintln!("hqd: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };

    if let Some(report) = recovery {
        println!(
            "hqd: journal replayed {} jobs (resubmitted {}, restored results {}, \
             failures {}, acked {}, corrupt records {})",
            report.journaled_jobs,
            report.resubmitted,
            report.restored_results,
            report.restored_failures,
            report.restored_acked,
            report.corrupt_records,
        );
    }
    println!(
        "hqd: serving {workload} on {} ({} workers, {:?}, \
         max_in_flight {max_in_flight}, max_queued {max_queued}, \
         event_loops {event_loops}{})",
        server.local_addr(),
        rt.active_workers(),
        rt.scheduler(),
        match &journal_dir {
            Some(dir) => format!(", journal {dir}, max_retries {max_retries}"),
            None => String::new(),
        },
    );

    if run_secs > 0 {
        std::thread::sleep(Duration::from_secs(run_secs as u64));
    } else {
        // Serve until stdin closes (or says "quit"): the daemon shape that
        // still shuts down gracefully under `cmd | hqd` and in terminals.
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) => break, // EOF
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }

    println!("hqd: draining…");
    let stats = server.shutdown();
    rt.quiesce();
    println!(
        "hqd: drained. connections {}, jobs accepted {}, completed {}, \
         retries {}, protocol errors {}, results dropped {}",
        stats.connections,
        stats.jobs_accepted,
        stats.jobs_completed,
        stats.retries_sent,
        stats.protocol_errors,
        stats.results_dropped,
    );
    if let Some((j, _)) = &journal {
        let js = j.stats();
        println!(
            "hqd: journal appends {}, fsyncs {}, bytes {}, segments created {}, deleted {}",
            js.appends, js.fsyncs, js.bytes_written, js.segments_created, js.segments_deleted,
        );
    }
}
