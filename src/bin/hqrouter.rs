//! `hqrouter` — the sharding front door for a fleet of `hqd` daemons.
//!
//! Listens on one address speaking the ingress framed protocol and fans
//! requests out over N backends by rendezvous hashing on the request id
//! (`pipelines::ingress::Router`; the determinism and failure-containment
//! arguments live in DESIGN.md §7.2). Clients talk to it exactly as they
//! would to a single `hqd` — per-connection reply streams come back
//! byte-identical to the single-daemon run.
//!
//! ```text
//! hqrouter --backend HOST:PORT [--backend HOST:PORT ...]
//!          [--addr 127.0.0.1:7270]
//!          [--max-frame-len N]   frame cap, both directions; match the
//!                                backends' setting (default 8 MiB)
//!          [--run-secs N]        serve for N seconds, then drain and exit;
//!                                0 (default) = serve until stdin closes or
//!                                a "quit" line arrives
//! ```
//!
//! Backend order is the shard map: keep it stable across restarts, or
//! durable job ids will re-route away from the journals that own them.
//! Backends may be down at startup and may die while serving — their
//! shard's requests get Retry/Error refusals while the others are
//! untouched, and the router reconnects once a backend returns.

use std::time::Duration;

use pipelines::ingress::{Router, RouterConfig, DEFAULT_MAX_FRAME_LEN};

const KNOWN_FLAGS: [&str; 4] = ["--addr", "--backend", "--max-frame-len", "--run-secs"];

/// Rejects unknown flags and flags without values up front, same policy
/// as `hqd`: a router that silently ignores a misspelled option routes
/// with a shard map the operator did not ask for.
fn validate_args(args: &[String]) {
    let mut i = 0;
    while i < args.len() {
        let tok = args[i].as_str();
        if !KNOWN_FLAGS.contains(&tok) {
            eprintln!("hqrouter: unknown argument {tok} (expected one of {KNOWN_FLAGS:?})");
            std::process::exit(2);
        }
        if args.get(i + 1).is_none() {
            eprintln!("hqrouter: {tok} requires a value");
            std::process::exit(2);
        }
        i += 2;
    }
}

fn flag(args: &[String], key: &str) -> Option<String> {
    args.iter()
        .position(|a| a == key)
        .and_then(|i| args.get(i + 1).cloned())
}

fn flag_usize(args: &[String], key: &str, default: usize) -> usize {
    match flag(args, key) {
        None => default,
        Some(v) => v.parse().unwrap_or_else(|_| {
            eprintln!("hqrouter: {key} expects a non-negative integer, got {v:?}");
            std::process::exit(2);
        }),
    }
}

/// `--backend` repeats; position in the list is the shard index.
fn backends(args: &[String]) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--backend" {
            if let Some(v) = args.get(i + 1) {
                out.push(v.clone());
            }
        }
        i += 2;
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    validate_args(&args);
    let addr = flag(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7270".to_string());
    let run_secs = flag_usize(&args, "--run-secs", 0);
    let max_frame_len = flag_usize(&args, "--max-frame-len", DEFAULT_MAX_FRAME_LEN as usize);
    let backends = backends(&args);
    if backends.is_empty() {
        eprintln!("hqrouter: at least one --backend HOST:PORT is required");
        std::process::exit(2);
    }

    let cfg = RouterConfig {
        max_frame_len: max_frame_len.min(u32::MAX as usize) as u32,
        ..RouterConfig::to(backends.iter().cloned())
    };
    let router = match Router::bind(&addr, cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("hqrouter: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "hqrouter: routing on {} over {} shard{} [{}]",
        router.local_addr(),
        backends.len(),
        if backends.len() == 1 { "" } else { "s" },
        backends.join(", "),
    );

    if run_secs > 0 {
        std::thread::sleep(Duration::from_secs(run_secs as u64));
    } else {
        let mut line = String::new();
        loop {
            line.clear();
            match std::io::stdin().read_line(&mut line) {
                Ok(0) => break, // EOF
                Ok(_) if line.trim() == "quit" => break,
                Ok(_) => {}
                Err(_) => break,
            }
        }
    }

    println!("hqrouter: draining…");
    let stats = router.shutdown();
    println!(
        "hqrouter: drained. connections {}, frames in {}, replies out {}, \
         retries synthesized {}, errors synthesized {}, reconnects {}, \
         shard failures {}",
        stats.connections,
        stats.frames_in,
        stats.replies_out,
        stats.retries_synthesized,
        stats.errors_synthesized,
        stats.reconnects,
        stats.shard_failures,
    );
}
