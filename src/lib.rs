//! # hyperqueues — deterministic scale-free pipeline parallelism
//!
//! Umbrella crate for the Rust reproduction of *"Deterministic Scale-Free
//! Pipeline Parallelism with Hyperqueues"* (Vandierendonck, Chronaki,
//! Nikolopoulos — SC 2013). It re-exports the workspace crates:
//!
//! * [`swan`] — the task-dataflow work-stealing runtime (spawn/sync,
//!   versioned objects with `indep`/`outdep`/`inoutdep`);
//! * [`hyperqueue`] — the paper's contribution: deterministic queues with
//!   `pushdep`/`popdep`/`pushpopdep` access modes;
//! * [`pipelines`] — the pthreads-style and TBB-style comparison baselines,
//!   plus `pipelines::graph`, the deterministic DAG composition layer
//!   (fan-out/fan-in/tee over hyperqueue edges);
//! * [`workloads`] — ferret, dedup and bzip2, each with drivers for every
//!   programming model of the paper's evaluation, plus the graph-shaped
//!   logstream workload.
//!
//! See `examples/quickstart.rs` for a two-minute tour, and the `bench`
//! crate's binaries (`table1`, `table2`, `fig8`, `fig11`, `bzip2_results`,
//! `ablations`) for the evaluation harness.
//!
//! ```
//! use hyperqueues::hyperqueue::Hyperqueue;
//! use hyperqueues::swan::Runtime;
//!
//! let rt = Runtime::with_workers(4);
//! let mut out = Vec::new();
//! rt.scope(|s| {
//!     let q = Hyperqueue::<u32>::new(s);
//!     s.spawn((q.pushdep(),), |_, (mut p,)| {
//!         for i in 0..10 {
//!             p.push(i * i);
//!         }
//!     });
//!     while !q.empty() {
//!         out.push(q.pop());
//!     }
//! });
//! assert_eq!(out, vec![0, 1, 4, 9, 16, 25, 36, 49, 64, 81]);
//! ```

pub use hyperqueue;
pub use pipelines;
pub use swan;
pub use workloads;
