//! Offline stand-in for the [`parking_lot`](https://crates.io/crates/parking_lot)
//! crate, implementing the subset of its API this workspace uses on top of
//! `std::sync`. The build must work with no network and no registry cache,
//! so the workspace vendors this shim instead of the real crate (which is a
//! pure performance upgrade, not a semantic one).
//!
//! Differences from std that this shim papers over, matching parking_lot:
//!
//! * [`Mutex::lock`] returns the guard directly (no poisoning `Result`);
//!   a panicked critical section does not poison the lock.
//! * [`Condvar::wait`] takes `&mut MutexGuard` instead of consuming and
//!   returning the guard.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

/// A mutual exclusion primitive (API-compatible subset of
/// `parking_lot::Mutex`).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available. Unlike
    /// `std::sync::Mutex`, panics in other critical sections do not poison
    /// the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(MutexGuard {
                inner: Some(poisoned.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds the std guard in an `Option` so [`Condvar::wait`] can temporarily
/// take ownership through a `&mut` borrow (parking_lot's wait signature).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable (API-compatible subset of `parking_lot::Condvar`).
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Self {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until this condition variable is notified. The guard is
    /// atomically released while waiting and re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present");
        let inner = match self.inner.wait(inner) {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        guard.inner = Some(inner);
    }

    /// Waits with a timeout. Returns a result whose
    /// [`timed_out`](WaitTimeoutResult::timed_out) reports expiry.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present");
        let (inner, res) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(poisoned) => {
                let (g, r) = poisoned.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes up one blocked thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes up all blocked threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.pad("Condvar { .. }")
    }
}

/// Result of [`Condvar::wait_for`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A reader-writer lock (API-compatible subset of `parking_lot::RwLock`).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the underlying data.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> std::sync::RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> std::sync::RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(());
        let _g = m.lock();
        assert!(m.try_lock().is_none());
    }

    #[test]
    fn no_poisoning_after_panic() {
        let m = Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }

    #[test]
    fn condvar_wait_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = pair.clone();
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_one();
        }
        t.join().unwrap();
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let res = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(res.timed_out());
    }
}
