//! Test configuration and the deterministic RNG driving generation.

/// Configuration for a `proptest!` block (API-compatible subset of
/// `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Unused by the shim (no shrinking); kept for struct-update syntax
    /// compatibility.
    pub max_shrink_iters: u32,
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        Self {
            cases,
            max_shrink_iters: 0,
        }
    }
}

/// Deterministic RNG (splitmix64 over a seed derived from the test name,
/// overridable with `PROPTEST_SEED`). Determinism keeps CI reproducible;
/// vary `PROPTEST_SEED` to explore new cases.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds from the test name (FNV-1a) xor an optional `PROPTEST_SEED`.
    pub fn deterministic(test_name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        let env_seed = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(0);
        Self {
            state: h ^ env_seed.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounding: bias is negligible for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_same_stream() {
        let mut a = TestRng::deterministic("t");
        let mut b = TestRng::deterministic("t");
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = TestRng::deterministic("bound");
        for _ in 0..1000 {
            assert!(r.below(7) < 7);
        }
    }
}
