//! The [`Strategy`] trait and combinators: the generation core of the shim.
//! No shrinking — a failing case panics with the generated inputs in the
//! assertion message, which is enough for a deterministic seed to reproduce.

use crate::test_runner::TestRng;
use std::ops::Range;
use std::sync::Arc;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values, retrying until `f` accepts one (bounded
    /// retries; panics if the predicate is essentially unsatisfiable).
    fn prop_filter<F>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            f,
        }
    }

    /// Builds a recursive strategy: `self` generates leaves, and `recurse`
    /// wraps a strategy for subtrees into a strategy for branches. `depth`
    /// bounds recursion; `desired_size`/`expected_branch_size` are accepted
    /// for API compatibility but only bias the leaf/branch coin.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> Recursive<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R + 'static,
    {
        Recursive {
            base: self.boxed(),
            rec: Arc::new(move |inner| recurse(inner).boxed()),
            depth,
        }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        BoxedStrategy {
            inner: Arc::new(self),
        }
    }
}

/// Object-safe generation, used to erase strategies behind
/// [`BoxedStrategy`].
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy (cheaply cloneable).
pub struct BoxedStrategy<T> {
    inner: Arc<dyn DynStrategy<T>>,
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.inner.dyn_generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter retry budget exhausted: {}", self.whence);
    }
}

/// See [`Strategy::prop_recursive`].
pub struct Recursive<T> {
    base: BoxedStrategy<T>,
    rec: Arc<dyn Fn(BoxedStrategy<T>) -> BoxedStrategy<T>>,
    depth: u32,
}

impl<T> Clone for Recursive<T> {
    fn clone(&self) -> Self {
        Self {
            base: self.base.clone(),
            rec: self.rec.clone(),
            depth: self.depth,
        }
    }
}

impl<T: 'static> Strategy for Recursive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        // At full depth prefer branches, tapering to always-leaf at 0, so
        // generated trees are a mix of shapes.
        if self.depth == 0 || rng.below(100) < 40 {
            self.base.generate(rng)
        } else {
            let shallower = Recursive {
                base: self.base.clone(),
                rec: self.rec.clone(),
                depth: self.depth - 1,
            };
            (self.rec)(shallower.boxed()).generate(rng)
        }
    }
}

/// A fixed value (API-compatible with `proptest::strategy::Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among type-erased alternatives (what `prop_oneof!`
/// expands to).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics on an empty arm list.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.arms.len() as u64) as usize;
        self.arms[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as u64)
                    .wrapping_sub(*self.start() as u64)
                    .wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return rng.next_u64() as $t;
                }
                self.start().wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::deterministic("strategy-tests")
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = rng();
        for _ in 0..200 {
            let v = (3u8..9).generate(&mut r);
            assert!((3..9).contains(&v));
            let w = (0usize..=4).generate(&mut r);
            assert!(w <= 4);
        }
    }

    #[test]
    fn map_and_union_compose() {
        let mut r = rng();
        let s = crate::prop_oneof![
            (0u32..10).prop_map(|v| v * 2),
            (100u32..110).prop_map(|v| v + 1),
        ];
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!(v % 2 == 0 && v < 20 || (101..111).contains(&v));
        }
    }

    #[test]
    fn recursive_bottoms_out() {
        #[derive(Debug)]
        enum Tree {
            Leaf(u8),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> usize {
            match t {
                Tree::Leaf(v) => {
                    assert!(*v < 10, "leaf outside its range");
                    0
                }
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let s = (0u8..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 16, 4, |inner| {
                crate::collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut r = rng();
        for _ in 0..50 {
            // Each Node level consumes one depth budget, so 3 is the max.
            assert!(depth(&s.generate(&mut r)) <= 3);
        }
    }

    #[test]
    fn filter_retries() {
        let mut r = rng();
        let s = (0u32..100).prop_filter("even", |v| v % 2 == 0);
        for _ in 0..50 {
            assert_eq!(s.generate(&mut r) % 2, 0);
        }
    }
}
