//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! property-testing crate. The build must work with no network and no
//! registry cache, so the workspace vendors this shim: it keeps proptest's
//! API surface used by this repo (the [`Strategy`](strategy::Strategy)
//! trait and combinators, `prop::{collection, sample, option}`, `any`,
//! `prop_oneof!`, and the `proptest!` test macro) but generates cases from
//! a deterministic per-test seed and does **no shrinking** — a failure
//! panics with the generated inputs, and the fixed seed reproduces it.
//!
//! Env knobs: `PROPTEST_CASES` overrides the default case count,
//! `PROPTEST_SEED` perturbs the deterministic seed to explore new inputs.

pub mod strategy;
pub mod test_runner;

use strategy::Strategy;
use test_runner::TestRng;

/// `any::<T>()` support: types with a canonical full-range strategy.
pub trait Arbitrary: Sized {
    /// Generates an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T> {
    _marker: std::marker::PhantomData<fn() -> T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Generates any value of `T` (API-compatible with `proptest::arbitrary::any`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Strategies for collections (`prop::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use std::ops::Range;

    /// Vector of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Strategies drawing from fixed data (`prop::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Uniformly selects one of `items`.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select over empty list");
        Select { items }
    }

    /// See [`select`].
    pub struct Select<T> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.items.len() as u64) as usize;
            self.items[i].clone()
        }
    }
}

/// Strategies for `Option` (`prop::option`).
pub mod option {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `None` about a quarter of the time, otherwise `Some` of `inner`.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Uniform random choice among strategies producing the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Property assertion: like `assert!` (the shim has no failure
/// persistence, so these simply panic).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property assertion: like `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property assertion: like `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs `body` over `Config::cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::deterministic(stringify!($name));
                let __strats = ( $($strat,)+ );
                for __case in 0..__cfg.cases {
                    let ( $($arg,)+ ) =
                        $crate::strategy::Strategy::generate(&__strats, &mut __rng);
                    $body
                }
            }
        )*
    };
}

/// The glob-import module mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// Mirrors proptest's `prelude::prop` module shortcut.
    pub mod prop {
        pub use crate::{collection, option, sample};
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        #[test]
        fn generated_vecs_respect_bounds(
            v in prop::collection::vec(any::<u8>(), 1..10),
            pick in prop::sample::select(vec![1usize, 2, 4]),
            maybe in prop::option::of(0u32..5),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 10);
            prop_assert!([1usize, 2, 4].contains(&pick));
            if let Some(m) = maybe {
                prop_assert!(m < 5);
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..100) {
            prop_assert!(x < 100);
        }
    }
}
