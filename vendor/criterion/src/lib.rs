//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness. The build must work with no network and no registry
//! cache, so the workspace vendors this shim: it keeps criterion's macro and
//! builder surface (`criterion_group!`, `criterion_main!`, benchmark groups,
//! `BenchmarkId`, `Throughput`) but measures with plain wall-clock timing
//! and prints a compact table instead of doing statistical analysis.
//!
//! Env knobs:
//!
//! * `BENCH_SMOKE=1` — run every benchmark exactly once with no warmup
//!   (used by CI to verify the harness still runs without paying for real
//!   measurement).
//! * `BENCH_SAMPLES=N` — override every group's sample size.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export for `b.iter(|| black_box(..))`-style usage.
pub use std::hint::black_box;

fn smoke_mode() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn sample_override() -> Option<usize> {
    std::env::var("BENCH_SAMPLES").ok()?.parse().ok()
}

/// Throughput annotation for a benchmark group (affects reporting only).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for one benchmark within a group: a function name, a
/// parameter, or both.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] runs and times the body.
pub struct Bencher {
    samples: usize,
    warmup: bool,
    /// Median per-iteration time of the last `iter` call.
    elapsed: Option<Duration>,
}

impl Bencher {
    /// Times `f`, running it `samples` times (plus one warmup iteration
    /// unless in smoke mode) and recording the median.
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        if self.warmup {
            black_box(f());
        }
        let mut times: Vec<Duration> = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let t0 = Instant::now();
            black_box(f());
            times.push(t0.elapsed());
        }
        times.sort();
        self.elapsed = Some(times[times.len() / 2]);
    }
}

/// A named collection of related benchmarks sharing reporting settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Annotates per-iteration throughput (reporting only).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets how many timed iterations each benchmark runs.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measurement time is ignored by the shim (sample count governs).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(&full, self.throughput, self.sample_size, f);
        self
    }

    /// Runs one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion
            .run_one(&full, self.throughput, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group (reporting happens eagerly, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// The benchmark driver. One instance is threaded through every
/// `criterion_group!` function.
pub struct Criterion {
    default_samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_samples: 10,
        }
    }
}

impl Criterion {
    /// `cargo bench` passes harness flags; the shim ignores them.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_samples;
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into().id;
        let samples = self.default_samples;
        self.run_one(&id, None, samples, f);
        self
    }

    fn run_one(
        &mut self,
        name: &str,
        throughput: Option<Throughput>,
        sample_size: usize,
        mut f: impl FnMut(&mut Bencher),
    ) {
        let smoke = smoke_mode();
        let samples = if smoke {
            1
        } else {
            sample_override().unwrap_or(sample_size)
        };
        let mut b = Bencher {
            samples,
            warmup: !smoke,
            elapsed: None,
        };
        f(&mut b);
        match b.elapsed {
            Some(med) => {
                let rate = match throughput {
                    Some(Throughput::Elements(n)) if med > Duration::ZERO => {
                        format!("  {:>12.0} elem/s", n as f64 / med.as_secs_f64())
                    }
                    Some(Throughput::Bytes(n)) if med > Duration::ZERO => {
                        format!("  {:>12.0} B/s", n as f64 / med.as_secs_f64())
                    }
                    _ => String::new(),
                };
                println!("{name:<48} median {med:>12.3?}{rate}");
            }
            None => println!("{name:<48} (no measurement)"),
        }
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_and_reports() {
        let mut c = Criterion::default();
        let mut ran = 0usize;
        {
            let mut g = c.benchmark_group("t");
            g.throughput(Throughput::Elements(4)).sample_size(3);
            g.bench_function("count", |b| b.iter(|| ran += 1));
            g.finish();
        }
        // Exact count depends on the BENCH_SMOKE / BENCH_SAMPLES env knobs,
        // so only assert the body actually ran.
        assert!(ran >= 1);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 8).id, "f/8");
        assert_eq!(BenchmarkId::from_parameter(256).id, "256");
    }
}
