//! Vendored readiness-syscall shim for the ingress event loop.
//!
//! The workspace builds fully offline (see `vendor/README.md`), so
//! instead of depending on `libc`/`mio` this crate binds the handful of
//! Linux syscalls the event-driven ingress needs — `epoll_create1`,
//! `epoll_ctl`, `epoll_wait`, `eventfd`, and the `RLIMIT_NOFILE` pair —
//! directly against the C library `std` already links. Everything is
//! gated on `target_os = "linux"`; on other platforms
//! [`supported`] returns `false` and the ingress layer falls back to its
//! portable thread-per-connection implementation.
//!
//! The API is a deliberately tiny safe wrapper: [`Epoll`] owns the epoll
//! instance, [`EventFd`] is the cross-thread wakeup primitive (writes
//! increment a kernel counter, reads drain it), and the rlimit helpers
//! exist so benchmarks can raise — and tests can *lower*, in a child
//! process — the open-file limit that epoll servers live and die by.

#![deny(missing_docs)]

use std::io;

/// True when this build has a real epoll implementation (Linux).
pub const fn supported() -> bool {
    cfg!(target_os = "linux")
}

/// Readiness interest / readiness result bits (a subset of `EPOLL*`).
pub mod interest {
    /// Readable (`EPOLLIN`).
    pub const READ: u32 = 0x001;
    /// Writable (`EPOLLOUT`).
    pub const WRITE: u32 = 0x004;
    /// Peer closed its write half (`EPOLLRDHUP`). Reported, never asked.
    pub const RDHUP: u32 = 0x2000;
    /// Error condition (`EPOLLERR`). Always reported, never asked.
    pub const ERROR: u32 = 0x008;
    /// Hangup (`EPOLLHUP`). Always reported, never asked.
    pub const HANGUP: u32 = 0x010;
}

/// One readiness event out of [`Epoll::wait`]: which registration
/// (`token`, the `u64` passed to [`Epoll::add`]) became ready for what
/// (`readiness`, [`interest`] bits).
#[derive(Clone, Copy, Debug)]
pub struct Event {
    /// The token the file descriptor was registered under.
    pub token: u64,
    /// The readiness bits ([`interest`] constants).
    pub readiness: u32,
}

impl Event {
    /// Readable (or peer-closed / error — all of which a reader must
    /// observe by reading).
    pub fn readable(&self) -> bool {
        self.readiness & (interest::READ | interest::RDHUP | interest::ERROR | interest::HANGUP)
            != 0
    }

    /// Writable.
    pub fn writable(&self) -> bool {
        self.readiness & (interest::WRITE | interest::ERROR | interest::HANGUP) != 0
    }
}

#[cfg(target_os = "linux")]
mod sys {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_uint, c_void};

    // The kernel ABI packs epoll_event on x86-64 only.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[repr(C)]
    struct RLimit {
        cur: u64,
        max: u64,
    }

    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    const EFD_CLOEXEC: c_int = 0o2000000;
    const EFD_NONBLOCK: c_int = 0o0004000;
    const RLIMIT_NOFILE: c_int = 7;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn eventfd(initval: c_uint, flags: c_int) -> c_int;
        fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
        fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
        fn close(fd: c_int) -> c_int;
        fn getrlimit(resource: c_int, rlim: *mut RLimit) -> c_int;
        fn setrlimit(resource: c_int, rlim: *const RLimit) -> c_int;
    }

    fn cvt(ret: c_int) -> io::Result<c_int> {
        if ret < 0 {
            Err(io::Error::last_os_error())
        } else {
            Ok(ret)
        }
    }

    /// An owned epoll instance.
    #[derive(Debug)]
    pub struct Epoll {
        fd: RawFd,
    }

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
            Ok(Epoll { fd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: u64, intr: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: intr,
                data: token,
            };
            cvt(unsafe { epoll_ctl(self.fd, op, fd, &mut ev) }).map(|_| ())
        }

        pub fn add(&self, fd: RawFd, token: u64, intr: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, intr)
        }

        pub fn modify(&self, fd: RawFd, token: u64, intr: u32) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, intr)
        }

        pub fn delete(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Blocks up to `timeout_ms` (`-1` = forever) and appends ready
        /// events to `out`. Returns how many arrived. `EINTR` reports as
        /// zero events rather than an error.
        pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
            const CAP: usize = 256;
            let mut buf = [EpollEvent { events: 0, data: 0 }; CAP];
            let n = unsafe { epoll_wait(self.fd, buf.as_mut_ptr(), CAP as c_int, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(0);
                }
                return Err(err);
            }
            for ev in buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct field by field.
                let (events, data) = (ev.events, ev.data);
                out.push(Event {
                    token: data,
                    readiness: events,
                });
            }
            Ok(n as usize)
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    /// An owned eventfd wakeup handle.
    #[derive(Debug)]
    pub struct EventFd {
        fd: RawFd,
    }

    impl EventFd {
        pub fn new() -> io::Result<EventFd> {
            let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
            Ok(EventFd { fd })
        }

        pub fn raw_fd(&self) -> RawFd {
            self.fd
        }

        /// Wakes any epoll waiting on this fd (increments the counter).
        pub fn notify(&self) {
            let one: u64 = 1;
            // A full counter (EAGAIN) already guarantees a pending wakeup.
            unsafe { write(self.fd, (&one as *const u64).cast(), 8) };
        }

        /// Consumes pending wakeups so level-triggered epoll quiets down.
        pub fn drain(&self) {
            let mut buf: u64 = 0;
            unsafe { read(self.fd, (&mut buf as *mut u64).cast(), 8) };
        }
    }

    impl Drop for EventFd {
        fn drop(&mut self) {
            unsafe { close(self.fd) };
        }
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        let mut lim = RLimit { cur: 0, max: 0 };
        cvt(unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) })?;
        Ok((lim.cur, lim.max))
    }

    pub fn set_nofile_limit(soft: u64) -> io::Result<()> {
        let (_, max) = nofile_limit()?;
        let lim = RLimit {
            cur: soft.min(max),
            max,
        };
        cvt(unsafe { setrlimit(RLIMIT_NOFILE, &lim) }).map(|_| ())
    }
}

#[cfg(not(target_os = "linux"))]
mod sys {
    //! Stub implementation: every constructor reports `Unsupported`, so
    //! callers gate on [`super::supported`] and fall back.
    use super::Event;
    use std::io;

    fn unsupported<T>() -> io::Result<T> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "epoll shim: not a linux build",
        ))
    }

    /// Stub epoll instance (never constructible).
    #[derive(Debug)]
    pub struct Epoll {}

    impl Epoll {
        pub fn new() -> io::Result<Epoll> {
            unsupported()
        }
        pub fn add(&self, _fd: i32, _token: u64, _intr: u32) -> io::Result<()> {
            unsupported()
        }
        pub fn modify(&self, _fd: i32, _token: u64, _intr: u32) -> io::Result<()> {
            unsupported()
        }
        pub fn delete(&self, _fd: i32) -> io::Result<()> {
            unsupported()
        }
        pub fn wait(&self, _out: &mut Vec<Event>, _timeout_ms: i32) -> io::Result<usize> {
            unsupported()
        }
    }

    /// Stub eventfd handle (never constructible).
    #[derive(Debug)]
    pub struct EventFd {}

    impl EventFd {
        pub fn new() -> io::Result<EventFd> {
            unsupported()
        }
        pub fn raw_fd(&self) -> i32 {
            -1
        }
        pub fn notify(&self) {}
        pub fn drain(&self) {}
    }

    pub fn nofile_limit() -> io::Result<(u64, u64)> {
        unsupported()
    }

    pub fn set_nofile_limit(_soft: u64) -> io::Result<()> {
        unsupported()
    }
}

/// An epoll instance: register file descriptors under `u64` tokens, then
/// [`wait`](Epoll::wait) for readiness. Level-triggered (the kernel
/// default): a still-readable fd reports again on the next wait, so a
/// handler may consume less than everything without losing the edge.
#[derive(Debug)]
pub struct Epoll(sys::Epoll);

impl Epoll {
    /// A fresh epoll instance (`epoll_create1(EPOLL_CLOEXEC)`).
    pub fn new() -> io::Result<Epoll> {
        sys::Epoll::new().map(Epoll)
    }

    /// Registers `fd` under `token` with [`interest`] bits `intr`.
    pub fn add(&self, fd: i32, token: u64, intr: u32) -> io::Result<()> {
        self.0.add(fd, token, intr)
    }

    /// Changes the interest set of an already-registered `fd`.
    pub fn modify(&self, fd: i32, token: u64, intr: u32) -> io::Result<()> {
        self.0.modify(fd, token, intr)
    }

    /// Removes `fd` from the interest list (idempotent on close: a closed
    /// fd is auto-removed by the kernel, so failure here is not fatal).
    pub fn delete(&self, fd: i32) -> io::Result<()> {
        self.0.delete(fd)
    }

    /// Blocks up to `timeout_ms` (`-1` = forever) and appends ready
    /// events to `out`; returns how many. `EINTR` is reported as zero
    /// events, not an error.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_ms: i32) -> io::Result<usize> {
        self.0.wait(out, timeout_ms)
    }
}

/// A cross-thread wakeup handle (`eventfd`, nonblocking): register
/// [`raw_fd`](EventFd::raw_fd) in an [`Epoll`], [`notify`](EventFd::notify)
/// from any thread, [`drain`](EventFd::drain) in the woken loop.
#[derive(Debug)]
pub struct EventFd(sys::EventFd);

impl EventFd {
    /// A fresh nonblocking eventfd.
    pub fn new() -> io::Result<EventFd> {
        sys::EventFd::new().map(EventFd)
    }

    /// The raw fd, for [`Epoll::add`].
    pub fn raw_fd(&self) -> i32 {
        self.0.raw_fd()
    }

    /// Wakes the epoll this fd is registered in. Never blocks; safe from
    /// any thread.
    pub fn notify(&self) {
        self.0.notify()
    }

    /// Consumes pending notifications (call from the woken loop).
    pub fn drain(&self) {
        self.0.drain()
    }
}

/// The process `RLIMIT_NOFILE` as `(soft, hard)`.
pub fn nofile_limit() -> io::Result<(u64, u64)> {
    sys::nofile_limit()
}

/// Sets the soft `RLIMIT_NOFILE` (clamped to the hard limit). Lowering
/// needs no privilege — which is exactly how the accept-error tests
/// provoke `EMFILE` in a child process — and raising up to the hard
/// limit is what lets the connection-sweep bench open thousands of
/// sockets.
pub fn set_nofile_limit(soft: u64) -> io::Result<()> {
    sys::set_nofile_limit(soft)
}

/// Raises the soft `RLIMIT_NOFILE` to at least `need` (best effort,
/// capped at the hard limit). Returns the resulting soft limit.
pub fn raise_nofile_limit(need: u64) -> io::Result<u64> {
    let (soft, hard) = nofile_limit()?;
    if soft >= need {
        return Ok(soft);
    }
    let target = need.min(hard);
    set_nofile_limit(target)?;
    Ok(target)
}

#[cfg(all(test, target_os = "linux"))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn eventfd_wakes_epoll_and_drains_quiet() {
        let ep = Epoll::new().unwrap();
        let ev = EventFd::new().unwrap();
        ep.add(ev.raw_fd(), 7, interest::READ).unwrap();
        // Nothing pending: a zero-timeout wait returns no events.
        let mut out = Vec::new();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);
        ev.notify();
        ev.notify();
        assert_eq!(ep.wait(&mut out, 1000).unwrap(), 1);
        assert_eq!(out[0].token, 7);
        assert!(out[0].readable());
        // Drained: level-triggered reporting stops.
        ev.drain();
        out.clear();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0);
    }

    #[test]
    fn socket_readiness_roundtrip() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let mut client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();
        let ep = Epoll::new().unwrap();
        use std::os::fd::AsRawFd;
        ep.add(server.as_raw_fd(), 1, interest::READ).unwrap();
        let mut out = Vec::new();
        assert_eq!(ep.wait(&mut out, 0).unwrap(), 0, "no bytes yet");
        client.write_all(b"ping").unwrap();
        assert!(ep.wait(&mut out, 1000).unwrap() >= 1);
        assert!(out.iter().any(|e| e.token == 1 && e.readable()));
        let mut buf = [0u8; 8];
        let mut srv = &server;
        assert_eq!(srv.read(&mut buf).unwrap(), 4);
        // Write interest on an empty send buffer reports immediately.
        ep.modify(server.as_raw_fd(), 1, interest::WRITE).unwrap();
        out.clear();
        assert!(ep.wait(&mut out, 1000).unwrap() >= 1);
        assert!(out[0].writable());
    }

    #[test]
    fn nofile_limit_reads_and_raises() {
        let (soft, hard) = nofile_limit().unwrap();
        assert!(soft > 0 && hard >= soft);
        // Raising to the current soft limit is a no-op that must succeed.
        assert!(raise_nofile_limit(soft).unwrap() >= soft);
    }
}
