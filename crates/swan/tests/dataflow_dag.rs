//! Property tests of the dataflow engine: random programs over versioned
//! objects must observe exactly the serial elision's values.

use proptest::prelude::*;
use swan::{Runtime, RuntimeConfig, Versioned};

/// One statement of a random straight-line program over `NOBJ` objects.
#[derive(Clone, Copy, Debug)]
enum Op {
    /// `obj[dst] = constant + obj[src]` via (read src, inout dst).
    AddFrom { src: u8, dst: u8, k: u8 },
    /// `obj[dst] = constant` via outdep (renaming!).
    Set { dst: u8, k: u8 },
    /// `obj[dst] += constant` via inoutdep.
    Add { dst: u8, k: u8 },
}

const NOBJ: usize = 4;

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..NOBJ as u8, 0..NOBJ as u8, any::<u8>()).prop_map(|(src, dst, k)| Op::AddFrom {
            src,
            dst,
            k
        }),
        (0..NOBJ as u8, any::<u8>()).prop_map(|(dst, k)| Op::Set { dst, k }),
        (0..NOBJ as u8, any::<u8>()).prop_map(|(dst, k)| Op::Add { dst, k }),
    ]
}

/// The serial elision: execute ops in order on a plain array.
fn serial(ops: &[Op]) -> [u64; NOBJ] {
    let mut v = [0u64; NOBJ];
    for &op in ops {
        match op {
            Op::AddFrom { src, dst, k } => v[dst as usize] = v[src as usize].wrapping_add(k as u64),
            Op::Set { dst, k } => v[dst as usize] = k as u64,
            Op::Add { dst, k } => v[dst as usize] = v[dst as usize].wrapping_add(k as u64),
        }
    }
    v
}

/// The parallel version: one task per op, dependences from access modes.
fn parallel(ops: &[Op], workers: usize, chaos: Option<u64>) -> [u64; NOBJ] {
    let cfg = match chaos {
        Some(seed) => RuntimeConfig::new().workers(workers).with_chaos(seed, 20),
        None => RuntimeConfig::new().workers(workers),
    };
    let rt = Runtime::new(cfg);
    let objs: Vec<Versioned<u64>> = (0..NOBJ).map(|_| Versioned::new(0)).collect();
    rt.scope(|s| {
        for &op in ops {
            match op {
                Op::AddFrom { src, dst, k } if src != dst => {
                    s.spawn(
                        (objs[src as usize].read(), objs[dst as usize].update()),
                        move |_, (r, mut w)| *w = r.wrapping_add(k as u64),
                    );
                }
                Op::AddFrom { dst, k, .. } => {
                    // src == dst degenerates to v = v + k.
                    s.spawn((objs[dst as usize].update(),), move |_, (mut w,)| {
                        *w = w.wrapping_add(k as u64)
                    });
                }
                Op::Set { dst, k } => {
                    s.spawn((objs[dst as usize].write(),), move |_, (mut w,)| {
                        *w = k as u64
                    });
                }
                Op::Add { dst, k } => {
                    s.spawn((objs[dst as usize].update(),), move |_, (mut w,)| {
                        *w = w.wrapping_add(k as u64)
                    });
                }
            }
        }
    });
    let mut out = [0u64; NOBJ];
    for (i, o) in objs.iter().enumerate() {
        out[i] = o.read_latest();
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn random_dataflow_programs_match_serial_elision(
        ops in prop::collection::vec(op_strategy(), 1..60),
        workers in 1usize..9,
        chaos in prop::option::of(0u64..500),
    ) {
        let expect = serial(&ops);
        let got = parallel(&ops, workers, chaos);
        prop_assert_eq!(got, expect);
    }
}

#[test]
fn long_alternating_read_write_chain() {
    // a -> b -> a -> b ... 500 deep: the scheduler must thread the chain
    // without losing an edge.
    let rt = Runtime::with_workers(8);
    let a: Versioned<u64> = Versioned::new(1);
    let b: Versioned<u64> = Versioned::new(0);
    rt.scope(|s| {
        for _ in 0..250 {
            s.spawn((a.read(), b.update()), |_, (r, mut w)| {
                *w = w.wrapping_add(*r);
            });
            s.spawn((b.read(), a.update()), |_, (r, mut w)| {
                *w = w.wrapping_add(*r);
            });
        }
    });
    // Fibonacci-ish recurrence; just check against a serial replay.
    let (mut sa, mut sb) = (1u64, 0u64);
    for _ in 0..250 {
        sb = sb.wrapping_add(sa);
        sa = sa.wrapping_add(sb);
    }
    assert_eq!(a.read_latest(), sa);
    assert_eq!(b.read_latest(), sb);
}

#[test]
fn wide_reader_fan_out_then_writer() {
    // 1 writer, 64 readers, 1 writer: the second writer (inout) must wait
    // for all 64 readers.
    let rt = Runtime::with_workers(8);
    let v: Versioned<Vec<u64>> = Versioned::new(vec![7; 32]);
    let seen = std::sync::atomic::AtomicU64::new(0);
    rt.scope(|s| {
        for _ in 0..64 {
            s.spawn((v.read(),), |_, (r,)| {
                assert_eq!(r.len(), 32);
                seen.fetch_add(r[0], std::sync::atomic::Ordering::Relaxed);
            });
        }
        s.spawn((v.update(),), |_, (mut w,)| {
            assert_eq!(
                seen.load(std::sync::atomic::Ordering::Relaxed),
                64 * 7,
                "inout writer ran before some readers"
            );
            w.push(1);
        });
    });
    assert_eq!(v.read_latest().len(), 33);
}
