//! Global injection queue.
//!
//! Overflow from the per-worker rings and submissions from non-worker
//! threads (e.g. the thread calling [`crate::Runtime::scope`]) land here.
//! A mutex-protected deque is sufficient: the injector is off the fast path
//! and contention is bounded by spawn rate, not element rate.

use parking_lot::Mutex;
use std::collections::VecDeque;

/// FIFO overflow queue shared by all workers.
pub struct Injector {
    queue: Mutex<VecDeque<u64>>,
}

impl Injector {
    /// Creates an empty injector.
    pub fn new() -> Self {
        Self {
            queue: Mutex::new(VecDeque::new()),
        }
    }

    /// Appends a task id.
    pub fn push(&self, id: u64) {
        self.queue.lock().push_back(id);
    }

    /// Removes the oldest task id, if any.
    pub fn pop(&self) -> Option<u64> {
        self.queue.lock().pop_front()
    }

    /// Approximate length (for metrics).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    /// True when no ids are queued.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.queue.lock().is_empty()
    }
}

impl Default for Injector {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let inj = Injector::new();
        assert!(inj.is_empty());
        inj.push(1);
        inj.push(2);
        inj.push(3);
        assert_eq!(inj.len(), 3);
        assert_eq!(inj.pop(), Some(1));
        assert_eq!(inj.pop(), Some(2));
        assert_eq!(inj.pop(), Some(3));
        assert_eq!(inj.pop(), None);
    }
}
