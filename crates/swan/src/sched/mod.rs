//! Scheduler internals: per-worker rings, the global injector, the task
//! registry (the single arbiter of task state), and idle parking.

mod injector;
mod registry;
mod ring;
mod sleeper;

pub use injector::Injector;
pub use registry::{Registry, ReleaseFn, RunnableTask, TaskBody};
pub use ring::Ring;
pub use sleeper::Sleeper;
