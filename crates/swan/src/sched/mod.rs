//! Scheduler internals: per-worker queues (FIFO rings or Chase-Lev
//! deques, per [`crate::SchedulerPolicy`]), the global injector, the task
//! registry (the single arbiter of task state), and idle parking.

mod deque;
mod injector;
mod registry;
mod ring;
mod sleeper;

pub use deque::Deque;
pub use injector::Injector;
pub use registry::{Registry, ReleaseFn, RunnableTask, TaskBody};
pub use ring::Ring;
pub use sleeper::Sleeper;

/// The per-worker queue behind one worker slot. Which variant every slot
/// uses is fixed at runtime construction by the configured
/// [`crate::SchedulerPolicy`]: help-first keeps the FIFO ring (pops
/// approximate program order), steal-first uses the Chase-Lev deque
/// (owner LIFO bottom, thief FIFO top). See DESIGN.md §3.1.
pub enum WorkerQueue {
    /// Vyukov MPMC FIFO ring — the help-first queue.
    Fifo(Ring),
    /// Chase-Lev deque — the steal-first queue.
    Deque(Deque),
}

impl WorkerQueue {
    /// Pushes a task id from the owning worker; `Err` when full (the
    /// caller overflows into the global injector).
    pub fn push(&self, id: u64) -> Result<(), u64> {
        match self {
            WorkerQueue::Fifo(r) => r.push(id),
            WorkerQueue::Deque(d) => d.push(id),
        }
    }

    /// Owner-side pop: FIFO front for the ring, LIFO bottom for the deque.
    pub fn pop(&self) -> Option<u64> {
        match self {
            WorkerQueue::Fifo(r) => r.pop(),
            WorkerQueue::Deque(d) => d.pop(),
        }
    }

    /// Steals from this queue into `dest` (the calling worker's own
    /// queue). Returns the first stolen id (for immediate execution) and
    /// the total count stolen. The ring variant ignores `dest` and
    /// `max` — it steals exactly one, matching the help-first policy's
    /// single-task probes.
    pub fn steal_batch_into(&self, dest: &WorkerQueue, max: usize) -> (Option<u64>, usize) {
        match (self, dest) {
            (WorkerQueue::Deque(src), WorkerQueue::Deque(dst)) => src.steal_batch_into(dst, max),
            (src, _) => match src.pop_or_steal() {
                Some(id) => (Some(id), 1),
                None => (None, 0),
            },
        }
    }

    /// Takes one id from whichever end a foreign thread may touch: the
    /// shared FIFO end of a ring, the thief end of a deque. Used by
    /// single-item steals and by mixed-variant fallbacks.
    fn pop_or_steal(&self) -> Option<u64> {
        match self {
            WorkerQueue::Fifo(r) => r.pop(),
            WorkerQueue::Deque(d) => d.steal(),
        }
    }
}
