//! A bounded multi-producer/multi-consumer ring of task ids.
//!
//! Each worker owns one ring: the owner pushes newly-ready task ids to it,
//! and both the owner and thieves pop from it. Pops are FIFO, which
//! approximates the serial elision's task order under help-first scheduling
//! (see DESIGN.md §3.1) — unlike Cilk's LIFO owner-end pops, which assume
//! work-first spawning.
//!
//! The algorithm is Dmitry Vyukov's bounded MPMC queue: each slot carries a
//! sequence number that encodes, relative to the enqueue/dequeue positions,
//! whether the slot is empty, full, or in transit. Producers and consumers
//! claim a position with a CAS and then publish the slot with a Release
//! store of the next expected sequence number.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::util::CachePadded;

struct Slot {
    seq: AtomicUsize,
    value: UnsafeCell<u64>,
}

/// Bounded MPMC FIFO ring of `u64` task ids.
pub struct Ring {
    buffer: Box<[Slot]>,
    mask: usize,
    enqueue_pos: CachePadded<AtomicUsize>,
    dequeue_pos: CachePadded<AtomicUsize>,
}

// SAFETY: the slot protocol guarantees that `value` is written by exactly one
// producer before the Release store that makes it visible, and read by
// exactly one consumer after an Acquire load of that sequence number, so the
// UnsafeCell is never accessed concurrently.
unsafe impl Sync for Ring {}
unsafe impl Send for Ring {}

impl Ring {
    /// Creates a ring with capacity `cap` (rounded up to a power of two,
    /// minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        let buffer: Box<[Slot]> = (0..cap)
            .map(|i| Slot {
                seq: AtomicUsize::new(i),
                value: UnsafeCell::new(0),
            })
            .collect();
        Self {
            buffer,
            mask: cap - 1,
            enqueue_pos: CachePadded::new(AtomicUsize::new(0)),
            dequeue_pos: CachePadded::new(AtomicUsize::new(0)),
        }
    }

    /// Attempts to enqueue `value`; fails if the ring is full.
    pub fn push(&self, value: u64) -> Result<(), u64> {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: we won the CAS for this position, so we are
                        // the unique producer for this slot until the Release
                        // store below publishes it.
                        unsafe { *slot.value.get() = value };
                        slot.seq.store(pos + 1, Ordering::Release);
                        return Ok(());
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return Err(value); // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Attempts to dequeue; returns `None` if the ring is empty.
    pub fn pop(&self) -> Option<u64> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let slot = &self.buffer[pos & self.mask];
            let seq = slot.seq.load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // SAFETY: we won the CAS for this position; the
                        // producer's Release store (observed by the Acquire
                        // load of `seq`) happens-before this read.
                        let value = unsafe { *slot.value.get() };
                        slot.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(value);
                    }
                    Err(actual) => pos = actual,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate number of queued items (racy; for metrics/heuristics).
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        let enq = self.enqueue_pos.load(Ordering::Relaxed);
        let deq = self.dequeue_pos.load(Ordering::Relaxed);
        enq.saturating_sub(deq)
    }

    /// Approximate emptiness check (racy; for heuristics only).
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let r = Ring::with_capacity(8);
        for i in 1..=5 {
            r.push(i).unwrap();
        }
        for i in 1..=5 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn push_fails_when_full() {
        let r = Ring::with_capacity(4);
        for i in 0..4 {
            r.push(i).unwrap();
        }
        assert_eq!(r.push(99), Err(99));
        assert_eq!(r.pop(), Some(0));
        r.push(99).unwrap();
    }

    #[test]
    fn capacity_rounds_up() {
        let r = Ring::with_capacity(3);
        for i in 0..4 {
            r.push(i).unwrap(); // rounded up to 4
        }
        assert!(r.push(4).is_err());
    }

    #[test]
    fn wraparound_many_times() {
        let r = Ring::with_capacity(4);
        for round in 0..100u64 {
            for i in 0..3 {
                r.push(round * 10 + i).unwrap();
            }
            for i in 0..3 {
                assert_eq!(r.pop(), Some(round * 10 + i));
            }
        }
    }

    #[test]
    fn concurrent_producers_consumers_preserve_multiset() {
        const PER_THREAD: u64 = 10_000;
        const PRODUCERS: u64 = 4;
        let r = Arc::new(Ring::with_capacity(64));
        let sum = Arc::new(AtomicUsize::new(0));
        let count = Arc::new(AtomicUsize::new(0));

        let mut handles = Vec::new();
        for p in 0..PRODUCERS {
            let r = Arc::clone(&r);
            handles.push(std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let v = p * PER_THREAD + i + 1;
                    loop {
                        if r.push(v).is_ok() {
                            break;
                        }
                        std::hint::spin_loop();
                    }
                }
            }));
        }
        for _ in 0..3 {
            let r = Arc::clone(&r);
            let sum = Arc::clone(&sum);
            let count = Arc::clone(&count);
            handles.push(std::thread::spawn(move || loop {
                if count.load(Ordering::Relaxed) >= (PRODUCERS * PER_THREAD) as usize {
                    break;
                }
                if let Some(v) = r.pop() {
                    sum.fetch_add(v as usize, Ordering::Relaxed);
                    count.fetch_add(1, Ordering::Relaxed);
                } else {
                    std::hint::spin_loop();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let n = PRODUCERS * PER_THREAD;
        assert_eq!(count.load(Ordering::Relaxed), n as usize);
        assert_eq!(sum.load(Ordering::Relaxed), (n * (n + 1) / 2) as usize);
    }
}
