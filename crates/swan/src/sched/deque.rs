//! A bounded Chase-Lev work-stealing deque of task ids.
//!
//! The steal-first scheduler (DESIGN.md §3.1) gives each worker one of
//! these instead of a FIFO ring: the **owner** pushes and pops at the
//! *bottom* (LIFO, depth-first — the freshest spawn runs next, keeping
//! its working set hot), while **thieves** steal from the *top* (FIFO,
//! breadth-first — a thief takes the oldest task, which under help-first
//! spawning is the one closest to the root and therefore the largest
//! chunk of work).
//!
//! Three deliberate deviations from the textbook (Chase & Lev, SPAA'05;
//! C11 orderings per Lê et al., PPoPP'13):
//!
//! 1. **Bounded, non-growing buffer.** `push` returns `Err(value)` when
//!    the buffer is full and the caller overflows into the global
//!    injector. This removes the grow path — the one place the classic
//!    algorithm needs memory reclamation — so there is no epoch GC, no
//!    hazard pointers, no freed-buffer race.
//! 2. **Atomic slots.** Values are `AtomicU64`s accessed with `Relaxed`
//!    loads/stores. A thief with a stale `top` may read a slot the owner
//!    is concurrently overwriting after wraparound; with plain cells that
//!    racy read is formally UB even though the value is discarded when
//!    the subsequent CAS on `top` fails. Relaxed atomics make the race
//!    benign by construction, at zero cost on every ISA we target.
//! 3. **Per-item batch stealing.** `steal_batch_into` claims each item
//!    with its own CAS on `top` rather than one bulk `top += n` CAS. The
//!    bulk CAS is *wrong* here: the owner pops items above `top` without
//!    a CAS (it only arbitrates the last item), so a thief that claims
//!    `top..top+n` in one step can claim items the owner already took.
//!    Item-at-a-time stealing only ever claims the current `top`, which
//!    the owner-side protocol does arbitrate.
//!
//! Ids are *hints*, not owned tasks: the registry's `claim` is the single
//! arbiter of execution, so a duplicated or stale id is harmless. The
//! deque protocol nevertheless delivers each pushed id at most once.

use std::sync::atomic::{fence, AtomicI64, AtomicU64, Ordering};

use crate::util::CachePadded;

/// Bounded single-owner/multi-thief Chase-Lev deque of `u64` task ids.
///
/// `push`/`pop` are owner-only (one thread at a time — the worker that
/// owns the slot); `steal` and `steal_batch_into` are safe from any
/// thread.
pub struct Deque {
    buffer: Box<[AtomicU64]>,
    mask: i64,
    /// Owner end. Written only by the owner; read by thieves.
    bottom: CachePadded<AtomicI64>,
    /// Thief end. CAS-advanced by thieves and by the owner's last-item pop.
    top: CachePadded<AtomicI64>,
}

impl Deque {
    /// Creates a deque with capacity `cap` (rounded up to a power of two,
    /// minimum 2).
    pub fn with_capacity(cap: usize) -> Self {
        let cap = cap.next_power_of_two().max(2);
        Self {
            buffer: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap as i64 - 1,
            bottom: CachePadded::new(AtomicI64::new(0)),
            top: CachePadded::new(AtomicI64::new(0)),
        }
    }

    #[inline]
    fn slot(&self, pos: i64) -> &AtomicU64 {
        &self.buffer[(pos & self.mask) as usize]
    }

    /// Owner-only: pushes `value` at the bottom. Fails when the deque is
    /// full — the caller overflows to the injector (the deque never
    /// grows; see module docs).
    pub fn push(&self, value: u64) -> Result<(), u64> {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        if b - t >= self.buffer.len() as i64 {
            return Err(value);
        }
        self.slot(b).store(value, Ordering::Relaxed);
        // Publish: a thief that Acquire-loads the new bottom sees the slot.
        self.bottom.store(b + 1, Ordering::Release);
        Ok(())
    }

    /// Owner-only: pops the most recently pushed value (LIFO). The
    /// sequentially-consistent fence orders the speculative `bottom`
    /// decrement against thief reads; the last remaining item is
    /// arbitrated by a CAS on `top` against concurrent thieves.
    pub fn pop(&self) -> Option<u64> {
        let b = self.bottom.load(Ordering::Relaxed) - 1;
        self.bottom.store(b, Ordering::Relaxed);
        fence(Ordering::SeqCst);
        let t = self.top.load(Ordering::Relaxed);
        if t > b {
            // Already empty: undo the decrement.
            self.bottom.store(b + 1, Ordering::Relaxed);
            return None;
        }
        let value = self.slot(b).load(Ordering::Relaxed);
        if t == b {
            // Last item: race thieves for it.
            let won = self
                .top
                .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok();
            self.bottom.store(b + 1, Ordering::Relaxed);
            return won.then_some(value);
        }
        Some(value)
    }

    /// Steals the oldest value (FIFO top). Safe from any thread. Returns
    /// `None` when the deque is empty *or* when the single-item CAS loses
    /// a race (the caller treats both as a failed probe and retries
    /// elsewhere rather than spinning here).
    pub fn steal(&self) -> Option<u64> {
        let t = self.top.load(Ordering::Acquire);
        fence(Ordering::SeqCst);
        let b = self.bottom.load(Ordering::Acquire);
        if t >= b {
            return None;
        }
        let value = self.slot(t).load(Ordering::Relaxed);
        self.top
            .compare_exchange(t, t + 1, Ordering::SeqCst, Ordering::Relaxed)
            .ok()
            .map(|_| value)
    }

    /// Steal-half batching: claims up to `min(max, ceil(len/2))` items
    /// from this deque, one CAS each (see module docs for why not a bulk
    /// CAS). The first stolen item is returned for immediate execution;
    /// the rest are pushed onto `dest`, which must be the **calling
    /// thread's own** deque (the push is an owner-side operation).
    ///
    /// Returns the first item and the total number stolen (0, or ≥ 1
    /// including the returned one). Stops early if `dest` runs out of
    /// room — a stolen id is never dropped.
    pub fn steal_batch_into(&self, dest: &Deque, max: usize) -> (Option<u64>, usize) {
        let want = self.len().div_ceil(2);
        let want = want.min(max.max(1));
        let mut first = None;
        let mut stolen = 0usize;
        for _ in 0..want {
            if first.is_some() && !dest.has_room() {
                break;
            }
            let Some(value) = self.steal() else { break };
            stolen += 1;
            if first.is_none() {
                first = Some(value);
            } else {
                // Cannot fail: we are dest's owner and just checked room.
                dest.push(value).expect("dest deque had room");
            }
        }
        (first, stolen)
    }

    /// Approximate number of queued items (racy; heuristics only).
    pub fn len(&self) -> usize {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Relaxed);
        (b - t).max(0) as usize
    }

    /// Approximate emptiness check (racy; heuristics only).
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Owner-only: whether a push would currently succeed. Exact from the
    /// owner's perspective — only the owner adds items, and concurrent
    /// steals only free space.
    pub fn has_room(&self) -> bool {
        let b = self.bottom.load(Ordering::Relaxed);
        let t = self.top.load(Ordering::Acquire);
        b - t < self.buffer.len() as i64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    #[test]
    fn owner_pop_is_lifo() {
        let d = Deque::with_capacity(8);
        for i in 1..=5 {
            d.push(i).unwrap();
        }
        for i in (1..=5).rev() {
            assert_eq!(d.pop(), Some(i));
        }
        assert_eq!(d.pop(), None);
        assert_eq!(d.pop(), None); // repeated pops on empty stay sane
    }

    #[test]
    fn thief_steal_is_fifo() {
        let d = Deque::with_capacity(8);
        for i in 1..=5 {
            d.push(i).unwrap();
        }
        for i in 1..=5 {
            assert_eq!(d.steal(), Some(i));
        }
        assert_eq!(d.steal(), None);
    }

    #[test]
    fn push_fails_when_full_and_recovers() {
        let d = Deque::with_capacity(4);
        for i in 0..4 {
            d.push(i).unwrap();
        }
        assert!(!d.has_room());
        assert_eq!(d.push(99), Err(99));
        assert_eq!(d.steal(), Some(0)); // freeing from the top…
        assert!(d.has_room());
        d.push(99).unwrap(); // …makes room at the bottom
        assert_eq!(d.pop(), Some(99));
    }

    #[test]
    fn wraparound_many_times() {
        let d = Deque::with_capacity(4);
        for round in 0..1000u64 {
            for i in 0..3 {
                d.push(round * 10 + i).unwrap();
            }
            assert_eq!(d.steal(), Some(round * 10)); // oldest from the top
            assert_eq!(d.pop(), Some(round * 10 + 2)); // newest from the bottom
            assert_eq!(d.pop(), Some(round * 10 + 1));
            assert_eq!(d.pop(), None);
        }
    }

    #[test]
    fn steal_batch_takes_half_and_keeps_order() {
        let src = Deque::with_capacity(16);
        let dst = Deque::with_capacity(16);
        for i in 1..=8 {
            src.push(i).unwrap();
        }
        // len 8 → steal ceil(8/2) = 4: returns the oldest, parks 3 extras.
        let (first, n) = src.steal_batch_into(&dst, 16);
        assert_eq!((first, n), (Some(1), 4));
        assert_eq!(dst.len(), 3);
        // Extras preserve age order bottom-up: the thief's LIFO pop sees
        // the newest of the stolen extras first.
        assert_eq!(dst.pop(), Some(4));
        assert_eq!(dst.pop(), Some(3));
        assert_eq!(dst.pop(), Some(2));
        assert_eq!(src.len(), 4);
    }

    #[test]
    fn steal_batch_respects_max_and_dest_capacity() {
        let src = Deque::with_capacity(16);
        for i in 1..=10 {
            src.push(i).unwrap();
        }
        let dst = Deque::with_capacity(16);
        let (first, n) = src.steal_batch_into(&dst, 2);
        assert_eq!((first, n), (Some(1), 2));

        // A full destination stops the batch after the returned item.
        let tiny = Deque::with_capacity(2);
        tiny.push(100).unwrap();
        tiny.push(101).unwrap();
        let (first, n) = src.steal_batch_into(&tiny, 8);
        assert_eq!((first, n), (Some(3), 1));
        assert_eq!(tiny.len(), 2);
    }

    #[test]
    fn concurrent_owner_and_thieves_deliver_each_id_once() {
        const ITEMS: u64 = 100_000;
        const THIEVES: usize = 3;
        let d = Arc::new(Deque::with_capacity(64));
        let taken = Arc::new(AtomicUsize::new(0));
        let sum = Arc::new(AtomicU64::new(0));

        let mut handles = Vec::new();
        for _ in 0..THIEVES {
            let d = Arc::clone(&d);
            let taken = Arc::clone(&taken);
            let sum = Arc::clone(&sum);
            handles.push(std::thread::spawn(move || loop {
                if taken.load(Ordering::Relaxed) >= ITEMS as usize {
                    break;
                }
                if let Some(v) = d.steal() {
                    sum.fetch_add(v, Ordering::Relaxed);
                    taken.fetch_add(1, Ordering::Relaxed);
                } else {
                    std::hint::spin_loop();
                }
            }));
        }
        // Owner: interleave pushes with occasional LIFO pops.
        let mut next = 1u64;
        let mut popped_locally = HashSet::new();
        while next <= ITEMS {
            match d.push(next) {
                Ok(()) => {
                    next += 1;
                    if next.is_multiple_of(7) {
                        if let Some(v) = d.pop() {
                            assert!(popped_locally.insert(v), "duplicate pop {v}");
                            sum.fetch_add(v, Ordering::Relaxed);
                            taken.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                Err(_) => std::hint::spin_loop(),
            }
        }
        // Drain what the thieves haven't grabbed.
        while taken.load(Ordering::Relaxed) < ITEMS as usize {
            if let Some(v) = d.pop() {
                assert!(popped_locally.insert(v), "duplicate pop {v}");
                sum.fetch_add(v, Ordering::Relaxed);
                taken.fetch_add(1, Ordering::Relaxed);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), ITEMS as usize);
        // Each id delivered exactly once ⇔ the sums match.
        assert_eq!(sum.load(Ordering::Relaxed), ITEMS * (ITEMS + 1) / 2);
    }

    #[test]
    fn concurrent_batch_thieves_preserve_multiset() {
        const ITEMS: u64 = 50_000;
        let src = Arc::new(Deque::with_capacity(128));
        let sum = Arc::new(AtomicU64::new(0));
        let taken = Arc::new(AtomicUsize::new(0));
        let mut handles = Vec::new();
        for _ in 0..2 {
            let src = Arc::clone(&src);
            let sum = Arc::clone(&sum);
            let taken = Arc::clone(&taken);
            handles.push(std::thread::spawn(move || {
                let mine = Deque::with_capacity(128);
                loop {
                    if taken.load(Ordering::Relaxed) >= ITEMS as usize {
                        break;
                    }
                    let (first, _) = src.steal_batch_into(&mine, 8);
                    if let Some(v) = first {
                        sum.fetch_add(v, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                    while let Some(v) = mine.pop() {
                        sum.fetch_add(v, Ordering::Relaxed);
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }));
        }
        let mut next = 1u64;
        while next <= ITEMS {
            if src.push(next).is_ok() {
                next += 1;
            } else {
                std::hint::spin_loop();
            }
        }
        while taken.load(Ordering::Relaxed) < ITEMS as usize {
            if let Some(v) = src.pop() {
                sum.fetch_add(v, Ordering::Relaxed);
                taken.fetch_add(1, Ordering::Relaxed);
            }
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sum.load(Ordering::Relaxed), ITEMS * (ITEMS + 1) / 2);
    }
}
