//! Idle-worker parking.
//!
//! Workers that find no work park here with a short timeout; any event that
//! may unblock someone (a task becoming ready, a task completing, a
//! hyperqueue push) calls [`Sleeper::notify_all`]. Because every wait uses a
//! timeout, a missed notification costs at most one park interval rather
//! than a hang, which keeps the protocol simple and verifiably live.
//!
//! # Fast path
//!
//! `notify_all` is called from the runtime's hottest paths (every enqueue,
//! every task completion, every hyperqueue segment publication). When no
//! thread is parked — the common case for a pipeline in its steady state —
//! it must cost a couple of uncontended atomics, not a mutex round-trip.
//! The protocol:
//!
//! * `notify_all` bumps the atomic `epoch`, then loads `parked`. If zero,
//!   it returns without touching the mutex or condvar (a *suppressed*
//!   notify).
//! * `park` increments `parked`, takes the lock, and re-checks `epoch`
//!   against the value it sampled before incrementing; a bump in between
//!   means an event raced the park, so it returns immediately.
//!
//! Both sides use `SeqCst` so the classic store/load interleaving is
//! total-ordered: either the notifier sees `parked > 0` (and takes the
//! slow path through the lock, which cannot complete until the parker is
//! inside `wait_for`), or the parker sees the bumped `epoch` and skips the
//! wait. A wake can therefore only be missed in the window before the
//! parker increments `parked`, where the timeout bounds the cost.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

/// Park/unpark rendezvous for idle or blocked workers.
pub struct Sleeper {
    /// Event counter; bumped by every notification (lock-free).
    epoch: AtomicU64,
    /// Number of threads inside (or committed to entering) `wait_for`.
    parked: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Sleeper {
    /// Creates a sleeper.
    pub fn new() -> Self {
        Self {
            epoch: AtomicU64::new(0),
            parked: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Parks the calling thread until a notification or `timeout` elapses.
    pub fn park(&self, timeout: Duration) {
        let epoch = self.epoch.load(Ordering::SeqCst);
        self.parked.fetch_add(1, Ordering::SeqCst);
        {
            let mut guard = self.lock.lock();
            // An epoch bump between the sample above and here means a
            // notification raced our park: return without waiting.
            if self.epoch.load(Ordering::SeqCst) == epoch {
                self.cv.wait_for(&mut guard, timeout);
            }
        }
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Publishes an event and wakes every parked thread. Returns `false`
    /// when the wake was suppressed because nobody was parked (the event is
    /// still published via the epoch, so a thread racing into `park` will
    /// notice it).
    pub fn notify_all(&self) -> bool {
        self.epoch.fetch_add(1, Ordering::SeqCst);
        if self.parked.load(Ordering::SeqCst) == 0 {
            return false;
        }
        // Taking the lock serializes with parkers between their epoch
        // re-check and `wait_for`'s atomic release-and-wait, so the
        // notification below cannot fall into that gap.
        drop(self.lock.lock());
        self.cv.notify_all();
        true
    }
}

impl Default for Sleeper {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn park_times_out() {
        let s = Sleeper::new();
        let t0 = Instant::now();
        s.park(Duration::from_millis(10));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn notify_wakes_parked_thread() {
        let s = Arc::new(Sleeper::new());
        let woke = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&s);
        let woke2 = Arc::clone(&woke);
        let h = std::thread::spawn(move || {
            // Long timeout; the notify should cut it short.
            s2.park(Duration::from_secs(10));
            woke2.store(true, Ordering::SeqCst);
        });
        // Keep notifying until the parker is visibly committed (a `true`
        // return means a parked thread was actually woken).
        while !s.notify_all() {
            std::thread::yield_now();
        }
        h.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }

    #[test]
    fn notify_with_no_sleepers_is_suppressed() {
        let s = Sleeper::new();
        assert!(!s.notify_all(), "nobody parked: wake must be suppressed");
    }

    #[test]
    fn suppressed_notify_still_publishes_event() {
        // A notify that lands between a parker's epoch sample and its wait
        // must still cut the park short via the epoch re-check. We can't
        // force that interleaving deterministically, but we can assert the
        // observable contract: park after a suppressed notify does not see
        // the stale epoch (i.e. it still times out normally rather than
        // hanging), and a concurrent notify storm never loses liveness.
        let s = Arc::new(Sleeper::new());
        let stop = Arc::new(AtomicBool::new(false));
        let notifier = {
            let s = Arc::clone(&s);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    s.notify_all();
                }
            })
        };
        let t0 = Instant::now();
        for _ in 0..100 {
            s.park(Duration::from_millis(5));
        }
        // With a notifier hammering the epoch, parks return immediately:
        // far faster than 100 full timeouts.
        assert!(t0.elapsed() < Duration::from_millis(400));
        stop.store(true, Ordering::SeqCst);
        notifier.join().unwrap();
    }
}
