//! Idle-worker parking.
//!
//! Workers that find no work park here with a short timeout; any event that
//! may unblock someone (a task becoming ready, a task completing, a
//! hyperqueue push) calls [`Sleeper::notify_all`]. Because every wait uses a
//! timeout, a missed notification costs at most one park interval rather
//! than a hang, which keeps the protocol simple and verifiably live.

use parking_lot::{Condvar, Mutex};
use std::time::Duration;

/// Park/unpark rendezvous for idle or blocked workers.
pub struct Sleeper {
    lock: Mutex<u64>,
    cv: Condvar,
}

impl Sleeper {
    /// Creates a sleeper.
    pub fn new() -> Self {
        Self {
            lock: Mutex::new(0),
            cv: Condvar::new(),
        }
    }

    /// Parks the calling thread until a notification or `timeout` elapses.
    pub fn park(&self, timeout: Duration) {
        let epoch = {
            let guard = self.lock.lock();
            *guard
        };
        let mut guard = self.lock.lock();
        if *guard != epoch {
            return; // something happened between the two locks
        }
        self.cv.wait_for(&mut guard, timeout);
    }

    /// Wakes every parked thread.
    pub fn notify_all(&self) {
        let mut guard = self.lock.lock();
        *guard = guard.wrapping_add(1);
        drop(guard);
        self.cv.notify_all();
    }
}

impl Default for Sleeper {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::Instant;

    #[test]
    fn park_times_out() {
        let s = Sleeper::new();
        let t0 = Instant::now();
        s.park(Duration::from_millis(10));
        assert!(t0.elapsed() >= Duration::from_millis(5));
    }

    #[test]
    fn notify_wakes_parked_thread() {
        let s = Arc::new(Sleeper::new());
        let woke = Arc::new(AtomicBool::new(false));
        let s2 = Arc::clone(&s);
        let woke2 = Arc::clone(&woke);
        let h = std::thread::spawn(move || {
            // Long timeout; the notify should cut it short.
            s2.park(Duration::from_secs(10));
            woke2.store(true, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(50));
        s.notify_all();
        h.join().unwrap();
        assert!(woke.load(Ordering::SeqCst));
    }
}
