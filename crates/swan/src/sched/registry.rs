//! The task registry: the single arbiter of task state.
//!
//! Every spawned task lives here from spawn until completion. Per-worker
//! rings and the injector hold only task *ids* (hints); ownership of a
//! task's body is transferred exactly once through [`Registry::claim`] or
//! [`Registry::claim_filtered`], so duplicated or stale ids in the rings are
//! harmless.
//!
//! The registry also stores the dataflow dependence graph: a task's
//! `pending` counter is the number of incomplete predecessors; completed
//! tasks notify successors via [`Registry::complete`]. Presence in the map
//! is the "incomplete" predicate — ids are never reused, so a predecessor
//! missing from the map has already completed and contributes no edge.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::frame::{help_eligible_frames, Frame, FrameId, HelpMode};

/// Type-erased task body. The worker wraps the frame in a fresh `Scope`
/// before invocation; the `'static` here is a lie upheld by the scope
/// barrier (see `scope.rs` for the safety argument).
pub type TaskBody = Box<dyn FnOnce() + Send + 'static>;

/// Completion callback registered by dependency objects at spawn time
/// (e.g. hyperqueue view reduction, producer-section release).
pub type ReleaseFn = Box<dyn FnOnce() + Send + 'static>;

struct TaskEntry {
    frame: Arc<Frame>,
    body: Option<TaskBody>,
    releases: Vec<ReleaseFn>,
    pending: usize,
    succs: Vec<FrameId>,
}

/// A claimed task, ready to execute.
pub struct RunnableTask {
    pub id: FrameId,
    pub frame: Arc<Frame>,
    pub body: TaskBody,
    pub releases: Vec<ReleaseFn>,
}

struct Inner {
    tasks: HashMap<u64, TaskEntry>,
    /// Ids of unclaimed, dependence-free tasks, ordered by spawn id. Used by
    /// the filtered-help scan; ascending id approximates program order well
    /// enough to prioritize older work.
    ready: BTreeSet<u64>,
}

/// See module docs.
pub struct Registry {
    inner: Mutex<Inner>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                tasks: HashMap::new(),
                ready: BTreeSet::new(),
            }),
        }
    }

    /// Registers a spawned task with its predecessor set. Returns `true`
    /// if the task is immediately ready (no incomplete predecessors).
    ///
    /// Linking is atomic under the registry lock: a predecessor listed in
    /// `preds` either is still present (we join its successor list) or has
    /// already completed (no edge needed). This closes the race between a
    /// dependency object naming a predecessor and that predecessor
    /// completing concurrently.
    pub fn insert(
        &self,
        id: FrameId,
        frame: Arc<Frame>,
        body: TaskBody,
        releases: Vec<ReleaseFn>,
        preds: &[FrameId],
    ) -> bool {
        let mut inner = self.inner.lock();
        let mut pending = 0;
        for p in preds {
            if p.0 == id.0 {
                continue; // self-edges are meaningless
            }
            if let Some(entry) = inner.tasks.get_mut(&p.0) {
                entry.succs.push(id);
                pending += 1;
            }
        }
        let ready = pending == 0;
        inner.tasks.insert(
            id.0,
            TaskEntry {
                frame,
                body: Some(body),
                releases,
                pending,
                succs: Vec::new(),
            },
        );
        if ready {
            inner.ready.insert(id.0);
        }
        ready
    }

    /// Attempts to claim task `id` for execution. Returns `None` if the id
    /// is stale (completed), already claimed, or not yet ready.
    pub fn claim(&self, id: u64) -> Option<RunnableTask> {
        let mut inner = self.inner.lock();
        let entry = inner.tasks.get_mut(&id)?;
        if entry.pending > 0 || entry.body.is_none() {
            return None;
        }
        let body = entry.body.take().expect("checked above");
        let releases = std::mem::take(&mut entry.releases);
        let frame = Arc::clone(&entry.frame);
        inner.ready.remove(&id);
        Some(RunnableTask {
            id: FrameId(id),
            frame,
            body,
            releases,
        })
    }

    /// Claims the oldest ready task whose frame is help-eligible for a
    /// worker blocked at `blocked` under `mode`. Used by `sync` and by
    /// blocked hyperqueue operations.
    pub fn claim_filtered(&self, mode: HelpMode, blocked: &Frame) -> Option<RunnableTask> {
        let mut inner = self.inner.lock();
        let mut chosen = None;
        for &id in inner.ready.iter() {
            let entry = inner.tasks.get(&id).expect("ready id must be present");
            if help_eligible_frames(mode, blocked, &entry.frame) {
                chosen = Some(id);
                break;
            }
        }
        let id = chosen?;
        let entry = inner.tasks.get_mut(&id).expect("just found");
        let body = entry.body.take().expect("ready tasks have bodies");
        let releases = std::mem::take(&mut entry.releases);
        let frame = Arc::clone(&entry.frame);
        inner.ready.remove(&id);
        Some(RunnableTask {
            id: FrameId(id),
            frame,
            body,
            releases,
        })
    }

    /// Removes a completed task and releases its successors. Returns the
    /// ids of tasks that became ready, each with its frame's worker-group
    /// pin so the runtime can route it to the right queue.
    pub fn complete(&self, id: FrameId) -> Vec<(FrameId, Option<u32>)> {
        let mut inner = self.inner.lock();
        let entry = inner
            .tasks
            .remove(&id.0)
            .expect("complete() on unknown task");
        debug_assert!(entry.body.is_none(), "completing an unclaimed task");
        let mut now_ready = Vec::new();
        for s in entry.succs {
            if let Some(succ) = inner.tasks.get_mut(&s.0) {
                debug_assert!(succ.pending > 0);
                succ.pending -= 1;
                if succ.pending == 0 && succ.body.is_some() {
                    let group = succ.frame.group;
                    inner.ready.insert(s.0);
                    now_ready.push((s, group));
                }
            }
        }
        now_ready
    }

    /// True if task `id` has not completed yet (spawned and still present).
    #[allow(dead_code)]
    pub fn is_incomplete(&self, id: FrameId) -> bool {
        self.inner.lock().tasks.contains_key(&id.0)
    }

    /// Number of registered (incomplete) tasks.
    #[allow(dead_code)]
    pub fn len(&self) -> usize {
        self.inner.lock().tasks.len()
    }

    /// True when no tasks are registered.
    #[allow(dead_code)]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of ready, unclaimed tasks.
    #[allow(dead_code)]
    pub fn ready_len(&self) -> usize {
        self.inner.lock().ready.len()
    }
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn frame_with_path(id: u64, path: &[u32]) -> Arc<Frame> {
        // Build the chain root -> ... -> leaf to get the desired path.
        let mut f = Frame::new_root(FrameId(1000 + id));
        for &_seg in path {
            // new_child assigns sequential sibling indices; for tests we
            // only need *a* frame with the right path length/ordering, so
            // construct by repeated descent and rely on the sibling counter.
            f = Frame::new_child(&f, FrameId(id));
        }
        f
    }

    fn noop_body() -> TaskBody {
        Box::new(|| {})
    }

    #[test]
    fn insert_without_preds_is_ready() {
        let reg = Registry::new();
        let f = Frame::new_root(FrameId(1));
        assert!(reg.insert(FrameId(1), f, noop_body(), vec![], &[]));
        assert_eq!(reg.ready_len(), 1);
        let t = reg.claim(1).expect("claimable");
        assert_eq!(t.id, FrameId(1));
        assert!(reg.claim(1).is_none(), "double claim must fail");
        reg.complete(FrameId(1));
        assert!(reg.is_empty());
    }

    #[test]
    fn dependent_task_waits_for_predecessor() {
        let reg = Registry::new();
        let f1 = Frame::new_root(FrameId(1));
        let f2 = Frame::new_root(FrameId(2));
        assert!(reg.insert(FrameId(1), f1, noop_body(), vec![], &[]));
        assert!(!reg.insert(FrameId(2), f2, noop_body(), vec![], &[FrameId(1)]));
        assert!(reg.claim(2).is_none(), "not ready yet");
        let t1 = reg.claim(1).unwrap();
        drop(t1.body);
        let ready = reg.complete(FrameId(1));
        assert_eq!(ready, vec![(FrameId(2), None)]);
        assert!(reg.claim(2).is_some());
    }

    #[test]
    fn completed_predecessor_contributes_no_edge() {
        let reg = Registry::new();
        let f2 = Frame::new_root(FrameId(2));
        // Predecessor 1 never existed / already completed.
        assert!(reg.insert(FrameId(2), f2, noop_body(), vec![], &[FrameId(1)]));
    }

    #[test]
    fn duplicate_preds_count_twice_and_release_twice() {
        let reg = Registry::new();
        let f1 = Frame::new_root(FrameId(1));
        let f2 = Frame::new_root(FrameId(2));
        reg.insert(FrameId(1), f1, noop_body(), vec![], &[]);
        assert!(!reg.insert(
            FrameId(2),
            f2,
            noop_body(),
            vec![],
            &[FrameId(1), FrameId(1)]
        ));
        reg.claim(1).unwrap();
        let ready = reg.complete(FrameId(1));
        assert_eq!(ready, vec![(FrameId(2), None)]);
    }

    #[test]
    fn claim_filtered_respects_program_order() {
        let reg = Registry::new();
        let root = Frame::new_root(FrameId(0));
        let a = Frame::new_child(&root, FrameId(1)); // path [0]
        let b = Frame::new_child(&root, FrameId(2)); // path [1]
        let c = Frame::new_child(&root, FrameId(3)); // path [2]
        reg.insert(FrameId(1), Arc::clone(&a), noop_body(), vec![], &[]);
        reg.insert(FrameId(2), Arc::clone(&b), noop_body(), vec![], &[]);
        reg.insert(FrameId(3), Arc::clone(&c), noop_body(), vec![], &[]);

        // Frame b (path [1]) helping in Preceding mode must get task 1
        // (path [0]), never task 3 (path [2]).
        let t = reg.claim_filtered(HelpMode::Preceding, &b).unwrap();
        assert_eq!(t.id, FrameId(1));
        // Next eligible: nothing (task 2 *is* the blocked frame, task 3 is
        // later in program order).
        assert!(reg.claim_filtered(HelpMode::Preceding, &b).is_none());
        // But Descendants mode for the root (path []) takes anything.
        assert!(reg.claim_filtered(HelpMode::Descendants, &root).is_some());
    }

    #[test]
    fn claim_filtered_never_crosses_trees() {
        let reg = Registry::new();
        let tree1 = Frame::new_root(FrameId(0));
        let tree2 = Frame::new_root(FrameId(10));
        let t2_child = Frame::new_child(&tree2, FrameId(11));
        reg.insert(FrameId(11), t2_child, noop_body(), vec![], &[]);
        // A frame of tree1 may not claim tree2's task even in Preceding
        // mode...
        assert!(reg.claim_filtered(HelpMode::Preceding, &tree1).is_none());
        // ...but tree2's own root can.
        assert!(reg.claim_filtered(HelpMode::Descendants, &tree2).is_some());
    }

    #[test]
    fn frame_with_path_helper_builds_descendants() {
        let f = frame_with_path(5, &[0, 0]);
        assert_eq!(f.path.len(), 2);
    }
}
