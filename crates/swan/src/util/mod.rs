//! Small concurrency utilities used throughout the runtime.
//!
//! These are deliberately written in-tree (rather than pulled from
//! `crossbeam-utils`) because they are load-bearing for the scheduler and the
//! hyperqueue data path, and the reproduction mandate is to build the system
//! from scratch. The designs follow the standard treatments in *Rust Atomics
//! and Locks* (Bos, 2023).

mod backoff;
mod cache_padded;
mod rng;

pub use backoff::Backoff;
pub use cache_padded::CachePadded;
pub use rng::XorShift64;
