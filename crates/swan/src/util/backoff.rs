use std::hint;
use std::thread;

/// Exponential backoff for spin loops.
///
/// The hyperqueue paper (§4.5) deliberately *blocks the worker* on
/// `empty()` rather than suspending the task, because observed blocking
/// delays are short. This helper implements the waiting discipline for those
/// short blocks: spin with `spin_loop` hints for a few rounds, then start
/// yielding the OS thread so that an oversubscribed machine still makes
/// progress.
pub struct Backoff {
    step: u32,
}

const SPIN_LIMIT: u32 = 6;
const YIELD_LIMIT: u32 = 10;

impl Backoff {
    /// Creates a fresh backoff counter.
    pub fn new() -> Self {
        Self { step: 0 }
    }

    /// Resets the counter, e.g. after observing progress.
    pub fn reset(&mut self) {
        self.step = 0;
    }

    /// Backs off for one round: busy-spin first, yield later.
    pub fn snooze(&mut self) {
        if self.step <= SPIN_LIMIT {
            for _ in 0..(1u32 << self.step) {
                hint::spin_loop();
            }
        } else {
            thread::yield_now();
        }
        if self.step <= YIELD_LIMIT {
            self.step += 1;
        }
    }

    /// True once spinning has been going on long enough that the caller
    /// should consider parking the thread or re-checking a slow path.
    pub fn is_completed(&self) -> bool {
        self.step > YIELD_LIMIT
    }
}

impl Default for Backoff {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_after_enough_rounds() {
        let mut b = Backoff::new();
        assert!(!b.is_completed());
        for _ in 0..=YIELD_LIMIT {
            b.snooze();
        }
        assert!(b.is_completed());
        b.reset();
        assert!(!b.is_completed());
    }
}
