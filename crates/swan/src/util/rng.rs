/// A tiny xorshift64* PRNG used for steal-victim selection and for the
/// chaos-testing mode.
///
/// Not cryptographic; chosen because victim selection must be allocation-free
/// and wait-free, and the statistical quality of xorshift64* is more than
/// adequate for load balancing.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Creates a generator from a nonzero seed; zero seeds are remapped.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 {
                0x9E37_79B9_7F4A_7C15
            } else {
                seed
            },
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform-ish value in `0..bound` (bound must be nonzero).
    pub fn next_below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0);
        (self.next_u64() % bound as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_seed_is_remapped() {
        let mut r = XorShift64::new(0);
        assert_ne!(r.next_u64(), 0);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = XorShift64::new(42);
        for _ in 0..1000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn rough_uniformity_over_small_bound() {
        let mut r = XorShift64::new(99);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[r.next_below(8)] += 1;
        }
        for &c in &counts {
            // Each bucket should get 10000 +- 15%.
            assert!((8_500..11_500).contains(&c), "skewed bucket: {c}");
        }
    }
}
