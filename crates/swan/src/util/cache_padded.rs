use core::fmt;
use core::ops::{Deref, DerefMut};

/// Pads and aligns a value to the size of a cache line (conservatively two
/// lines, 128 bytes, to defeat adjacent-line prefetching on x86).
///
/// Used to keep producer-side and consumer-side indices of the SPSC queue
/// segments, and the heads of the work-stealing rings, on distinct cache
/// lines so that the single-producer/single-consumer fast paths do not
/// false-share.
#[derive(Default)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wraps `value` in a cache-line-aligned cell.
    pub const fn new(value: T) -> Self {
        Self { value }
    }

    /// Consumes the padding wrapper, returning the inner value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T: fmt::Debug> fmt::Debug for CachePadded<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_tuple("CachePadded").field(&self.value).finish()
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> Self {
        Self::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alignment_is_at_least_128() {
        assert!(core::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(core::mem::align_of::<CachePadded<[u64; 32]>>() >= 128);
    }

    #[test]
    fn deref_roundtrip() {
        let mut c = CachePadded::new(41u64);
        *c += 1;
        assert_eq!(*c, 42);
        assert_eq!(c.into_inner(), 42);
    }

    #[test]
    fn adjacent_elements_do_not_share_lines() {
        let v = [CachePadded::new(0u8), CachePadded::new(0u8)];
        let a = &v[0] as *const _ as usize;
        let b = &v[1] as *const _ as usize;
        assert!(b - a >= 128);
    }
}
