//! Scopes: the spawn/sync surface of the runtime.
//!
//! A [`Scope`] corresponds to one procedure instance (frame) in the spawn
//! tree. `Runtime::scope` opens the root; every spawned task body receives a
//! scope for its own frame, through which it can spawn children (with a
//! subset of its privileges — enforced by the dependency-object types) and
//! `sync` on them, mirroring the paper's Cilk-style `spawn`/`sync`.

use std::marker::PhantomData;
use std::sync::Arc;

use crate::dataflow::engine::{AcquireCtx, DepList};
use crate::frame::{Frame, FrameId, HelpMode, LabelKey};
use crate::metrics::Metrics;
use crate::runtime::{RtInner, RuntimeHandle};
use crate::sched::TaskBody;

/// Handle to the current procedure instance; grants `spawn` and `sync`.
///
/// The `'scope` lifetime ties every spawned closure to the environment of
/// the enclosing `Runtime::scope` call, exactly like `std::thread::scope`:
/// tasks may borrow anything that outlives the scope because the scope does
/// not return until all transitively spawned tasks complete.
pub struct Scope<'scope> {
    rt: Arc<RtInner>,
    frame: Arc<Frame>,
    // Invariant over 'scope (same trick as rayon / std::thread::scope).
    _marker: PhantomData<&'scope mut &'scope ()>,
}

impl<'scope> Scope<'scope> {
    pub(crate) fn new(rt: Arc<RtInner>, frame: Arc<Frame>) -> Self {
        Self {
            rt,
            frame,
            _marker: PhantomData,
        }
    }

    /// Spawns a child task.
    ///
    /// `deps` is a tuple of dependency arguments (versioned-object access
    /// modes, hyperqueue access modes, or `()` for a pure fork); the task
    /// starts once all its predecessors have completed. `body` receives a
    /// scope for the child frame plus the guards produced by the
    /// dependencies.
    ///
    /// The child is **not** executed inline (help-first scheduling); the
    /// runtime guarantees it completes before the enclosing frame does
    /// (implicit sync, as in Cilk).
    pub fn spawn<D, F>(&self, deps: D, body: F)
    where
        D: DepList,
        D::Guards: 'scope,
        F: FnOnce(&Scope<'scope>, D::Guards) + Send + 'scope,
    {
        self.spawn_impl(None, deps, body)
    }

    /// [`Scope::spawn`] pinned to a worker group (DESIGN.md §7.1): the
    /// task (and, by inheritance, its children) enqueues to group
    /// `group % worker_groups`' injector, where that group's workers
    /// prefer it — the placement hook partition-pinned pipeline stages
    /// use to avoid cross-partition steals. Pinning is advisory: on an
    /// ungrouped runtime it is a plain spawn, and an idle foreign worker
    /// may still take the task rather than let it starve (counted in
    /// [`crate::MetricsSnapshot::cross_group_steals`]). Determinism is
    /// unaffected either way — programs here are scale-free.
    pub fn spawn_pinned<D, F>(&self, group: u32, deps: D, body: F)
    where
        D: DepList,
        D::Guards: 'scope,
        F: FnOnce(&Scope<'scope>, D::Guards) + Send + 'scope,
    {
        self.spawn_impl(Some(group), deps, body)
    }

    fn spawn_impl<D, F>(&self, group: Option<u32>, deps: D, body: F)
    where
        D: DepList,
        D::Guards: 'scope,
        F: FnOnce(&Scope<'scope>, D::Guards) + Send + 'scope,
    {
        let id = self.rt.alloc_id();
        let frame = match group {
            Some(g) => Frame::new_child_pinned(&self.frame, id, g),
            None => Frame::new_child(&self.frame, id),
        };
        let mut ctx = AcquireCtx::new(&self.rt, id, &frame, &self.frame);
        let guards = deps.acquire_all(&mut ctx);
        let preds = std::mem::take(&mut ctx.preds);
        let releases = std::mem::take(&mut ctx.releases);

        let rt2 = Arc::clone(&self.rt);
        let frame2 = Arc::clone(&frame);
        let closure: Box<dyn FnOnce() + Send + 'scope> = Box::new(move || {
            let scope: Scope<'scope> = Scope::new(rt2, frame2);
            body(&scope, guards);
        });
        // SAFETY: extending the closure's lifetime to 'static is sound
        // because (a) `Runtime::scope` does not return before every
        // transitively spawned task has completed (root `wait_children`
        // plus each task's implicit sync), so all 'scope borrows the
        // closure captures remain live while it can run, and (b) the
        // closure is never invoked after the registry drops it.
        let task: TaskBody = unsafe {
            std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Box<dyn FnOnce() + Send>>(
                closure,
            )
        };
        let pin = frame.group;
        let ready = self.rt.registry.insert(id, frame, task, releases, &preds);
        if ready {
            self.rt.enqueue_to(id, pin);
        } else {
            Metrics::incr(&self.rt.metrics.deferred_tasks);
        }
    }

    /// Spawns one task per element of `deps`, sharing a single body closure
    /// across the replicas — the spawn surface of fan-out pipeline stages
    /// (one replica per dependency bundle, e.g. one per shard queue). The
    /// body receives the replica index alongside the guards; replicas are
    /// spawned in `deps` order, so dependence edges derive from program
    /// order exactly as with individual [`Scope::spawn`] calls.
    pub fn spawn_replicas<D, F>(&self, deps: impl IntoIterator<Item = D>, body: F)
    where
        D: DepList,
        D::Guards: 'scope,
        F: Fn(&Scope<'scope>, usize, D::Guards) + Send + Sync + 'scope,
    {
        let body = Arc::new(body);
        for (idx, d) in deps.into_iter().enumerate() {
            let b = Arc::clone(&body);
            self.spawn(d, move |s, guards| b(s, idx, guards));
        }
    }

    /// Waits until all children spawned by this scope have completed,
    /// executing descendant tasks meanwhile. Panics from the subtree
    /// resurface here. This is the paper's `sync` statement.
    pub fn sync(&self) {
        self.rt.wait_children(&self.frame, true);
    }

    /// Cilk's `SYNCHED` pseudo-variable (§5.3): true if this frame
    /// currently has no outstanding children, i.e. a `sync` would not
    /// block. The paper warns that acting on this can violate determinism;
    /// it exists for memory-footprint control idioms.
    pub fn synched(&self) -> bool {
        self.frame.children_active() == 0
    }

    /// Selective sync (§5.5): waits until all outstanding children carrying
    /// `label` have completed. Hyperqueue handles expose a typed wrapper
    /// (`sync (popdep<T>)queue`).
    pub fn sync_label(&self, label: LabelKey) {
        let frame = Arc::clone(&self.frame);
        let f2 = Arc::clone(&self.frame);
        self.rt.block_until(&frame, HelpMode::Descendants, move || {
            f2.label_count(label) == 0
        });
        if let Some(payload) = self.frame.take_panic() {
            std::panic::resume_unwind(payload);
        }
    }

    /// The frame backing this scope.
    pub fn frame(&self) -> &Arc<Frame> {
        &self.frame
    }

    /// A clonable runtime handle (used by dependency objects created inside
    /// the scope, e.g. `Hyperqueue::new`).
    pub fn runtime(&self) -> RuntimeHandle {
        RuntimeHandle {
            inner: Arc::clone(&self.rt),
        }
    }

    /// Id of this scope's frame.
    pub fn id(&self) -> FrameId {
        self.frame.id
    }
}

#[cfg(test)]
mod tests {
    use crate::Runtime;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

    #[test]
    fn explicit_sync_waits_for_children() {
        let rt = Runtime::with_workers(4);
        let done = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..16 {
                s.spawn((), |_, ()| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.sync();
            assert_eq!(done.load(Ordering::SeqCst), 16);
        });
    }

    #[test]
    fn synched_reflects_outstanding_children() {
        let rt = Runtime::with_workers(2);
        let gate = AtomicBool::new(false);
        let gate_ref = &gate;
        rt.scope(|s| {
            assert!(s.synched(), "fresh scope has no children");
            s.spawn((), move |_, ()| {
                while !gate_ref.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
            });
            assert!(!s.synched(), "child outstanding");
            gate.store(true, Ordering::Release);
            s.sync();
            assert!(s.synched());
        });
    }

    #[test]
    fn sync_inside_task_waits_for_grandchildren() {
        let rt = Runtime::with_workers(4);
        let order = parking_lot::Mutex::new(Vec::new());
        let order_ref = &order;
        rt.scope(|s| {
            s.spawn((), move |s, ()| {
                for i in 0..4 {
                    s.spawn((), move |_, ()| {
                        order_ref.lock().push(i);
                    });
                }
                s.sync();
                order_ref.lock().push(99);
            });
        });
        let v = order.into_inner();
        assert_eq!(v.len(), 5);
        assert_eq!(*v.last().unwrap(), 99, "sync must come after children");
    }

    #[test]
    fn spawn_replicas_runs_one_task_per_dep_bundle() {
        use crate::Versioned;
        let rt = Runtime::with_workers(4);
        let cells: Vec<Versioned<usize>> = (0..6).map(|_| Versioned::new(0)).collect();
        rt.scope(|s| {
            let deps: Vec<_> = cells.iter().map(|c| (c.write(),)).collect();
            s.spawn_replicas(deps, |_, idx, (mut w,)| {
                *w = idx + 1;
            });
        });
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.read_latest(), i + 1, "replica {i} did not run");
        }
    }

    #[test]
    fn vec_deps_gate_on_every_element() {
        use crate::Versioned;
        let rt = Runtime::with_workers(4);
        let cells: Vec<Versioned<u32>> = (0..5).map(|_| Versioned::new(0)).collect();
        let total = Versioned::new(0u32);
        rt.scope(|s| {
            for (i, c) in cells.iter().enumerate() {
                s.spawn((c.write(),), move |_, (mut w,)| {
                    std::thread::sleep(std::time::Duration::from_millis(1));
                    *w = i as u32 + 1;
                });
            }
            // One task reading through a Vec dep: must wait for all writers.
            let reads: Vec<_> = cells.iter().map(|c| c.read()).collect();
            s.spawn((reads, total.write()), |_, (gs, mut out)| {
                *out = gs.iter().map(|g| **g).sum();
            });
        });
        assert_eq!(total.read_latest(), 1 + 2 + 3 + 4 + 5);
    }

    #[test]
    fn tasks_spawned_after_sync_also_run() {
        let rt = Runtime::with_workers(2);
        let count = AtomicUsize::new(0);
        rt.scope(|s| {
            s.spawn((), |_, ()| {
                count.fetch_add(1, Ordering::SeqCst);
            });
            s.sync();
            s.spawn((), |_, ()| {
                count.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(count.load(Ordering::SeqCst), 2);
    }
}
