//! # swan — a deterministic task-dataflow runtime
//!
//! A from-scratch Rust reimplementation of the substrate underneath the
//! SC'13 paper *"Deterministic Scale-Free Pipeline Parallelism with
//! Hyperqueues"* (Vandierendonck, Chronaki, Nikolopoulos): a Cilk-style
//! spawn/sync runtime with task-dataflow dependences over *versioned
//! objects* (`indep`/`outdep`/`inoutdep`), executed by a work-stealing
//! worker pool.
//!
//! The hyperqueue itself lives in the `hyperqueue` crate and plugs into
//! this runtime through the [`DepArg`] trait — the same extension point the
//! versioned objects use.
//!
//! ## Quick start
//!
//! ```
//! use swan::{Runtime, Versioned};
//!
//! let rt = Runtime::with_workers(4);
//! let acc: Versioned<Vec<u32>> = Versioned::new(Vec::new());
//! rt.scope(|s| {
//!     for i in 0..4 {
//!         // `update` = inoutdep: tasks are serialized in program order.
//!         s.spawn((acc.update(),), move |_, (mut v,)| v.push(i));
//!     }
//! });
//! assert_eq!(acc.read_latest(), vec![0, 1, 2, 3]);
//! ```
//!
//! ## Determinism model
//!
//! Programs whose tasks communicate only through dependency objects
//! (versioned objects, hyperqueues) are *serializable*: the observable
//! effects equal those of the serial elision (run every `spawn` as a plain
//! call). The scheduler may interleave independent tasks arbitrarily, but
//! dependence edges are derived from spawn order, which is fixed by the
//! program text.

#![deny(missing_docs)]

mod config;
pub mod dataflow;
pub mod frame;
pub mod jobs;
mod metrics;
mod runtime;
mod sched;
mod scope;
pub mod util;

pub use config::{ChaosConfig, RuntimeConfig, SchedulerPolicy, WorkerRange};
pub use dataflow::{
    next_object_id, AcquireCtx, DepArg, DepList, InDep, InOutDep, OutDep, ReadGuard, Versioned,
    WriteGuard,
};
pub use frame::{Frame, FrameId, HelpMode};
pub use jobs::{AdmitGuard, JobTable, JobTableStats, JobTicket, RetryDecision, RetryPolicy};
pub use metrics::{Metrics, MetricsSnapshot};
pub use runtime::{Runtime, RuntimeHandle};
pub use scope::Scope;
