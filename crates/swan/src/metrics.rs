//! Scheduler event counters.
//!
//! The evaluation section of the paper reasons about work-stealing activity
//! (e.g. §2.2: the shallow-spawn-tree producer of Figure 3 causes "more
//! frequent work stealing activity"). These counters let the benchmark
//! harness and the test-suite observe that behaviour directly; the service
//! layer folds a [`MetricsSnapshot`] into its consolidated
//! `SchedulerStats` frame.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing scheduler activity. All counters are
/// updated with relaxed ordering: they are statistics, not synchronization.
#[derive(Default, Debug)]
pub struct Metrics {
    /// Tasks whose bodies were executed to completion.
    pub tasks_executed: AtomicU64,
    /// Successful steal operations (one per victim probe that yielded at
    /// least one task; a steal-first batch counts once).
    pub steals: AtomicU64,
    /// Steal probes that found nothing (empty victim or lost CAS race).
    pub steal_failures: AtomicU64,
    /// Total task ids moved by steals. `steal_batch_items / steals` is
    /// the observed mean batch size (always 1 under help-first).
    pub steal_batch_items: AtomicU64,
    /// Steals (or group-injector pops) that crossed a worker-group
    /// boundary — the liveness fallback of partition pinning. Stays near
    /// zero while the placement keeps every group busy (DESIGN.md §7.1).
    pub cross_group_steals: AtomicU64,
    /// Tasks executed inside a blocked `sync` (descendant help).
    pub helps_sync: AtomicU64,
    /// Tasks executed inside a blocked queue operation (preceding-task help).
    pub helps_queue: AtomicU64,
    /// Times a worker parked because it found no work.
    pub parks: AtomicU64,
    /// Tasks that were spawned but not immediately ready (dataflow wait).
    pub deferred_tasks: AtomicU64,
}

/// A point-in-time copy of [`Metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Tasks whose bodies were executed to completion.
    pub tasks_executed: u64,
    /// Successful steal operations (batches, not items).
    pub steals: u64,
    /// Steal probes that found nothing.
    pub steal_failures: u64,
    /// Total task ids moved by steals.
    pub steal_batch_items: u64,
    /// Steals or injector pops that crossed a worker-group boundary.
    pub cross_group_steals: u64,
    /// Tasks executed inside a blocked `sync`.
    pub helps_sync: u64,
    /// Tasks executed inside a blocked queue operation.
    pub helps_queue: u64,
    /// Times a worker parked because it found no work.
    pub parks: u64,
    /// Tasks spawned with unmet dependences.
    pub deferred_tasks: u64,
}

impl Metrics {
    /// Bumps a counter by one.
    #[inline]
    pub fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Bumps a counter by `n`.
    #[inline]
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            tasks_executed: self.tasks_executed.load(Ordering::Relaxed),
            steals: self.steals.load(Ordering::Relaxed),
            steal_failures: self.steal_failures.load(Ordering::Relaxed),
            steal_batch_items: self.steal_batch_items.load(Ordering::Relaxed),
            cross_group_steals: self.cross_group_steals.load(Ordering::Relaxed),
            helps_sync: self.helps_sync.load(Ordering::Relaxed),
            helps_queue: self.helps_queue.load(Ordering::Relaxed),
            parks: self.parks.load(Ordering::Relaxed),
            deferred_tasks: self.deferred_tasks.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_reflects_increments() {
        let m = Metrics::default();
        Metrics::incr(&m.tasks_executed);
        Metrics::incr(&m.tasks_executed);
        Metrics::incr(&m.steals);
        Metrics::add(&m.steal_batch_items, 5);
        let s = m.snapshot();
        assert_eq!(s.tasks_executed, 2);
        assert_eq!(s.steals, 1);
        assert_eq!(s.steal_batch_items, 5);
        assert_eq!(s.parks, 0);
    }
}
