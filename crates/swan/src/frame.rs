//! Spawn-tree frames and program order.
//!
//! Every task instance (and every scope root) owns a [`Frame`] node in the
//! spawn tree. Frames carry a *path*: the sequence of sibling indices from
//! the root. Paths encode the serial elision's program order, which drives
//! two things:
//!
//! 1. the **help filters** that keep blocked workers deadlock-free (a worker
//!    blocked in `sync` may only execute descendants of the syncing frame; a
//!    worker blocked in a hyperqueue operation may only execute tasks that
//!    *precede* the blocked frame in program order — see DESIGN.md §2), and
//! 2. the hyperqueue's view algebra, which merges per-task views "with the
//!    immediate logically preceding task" (paper §4.1).
//!
//! Program order over frames: for sibling frames the order is the spawn
//! order (sibling index); a parent's continuation follows all of its
//! children (Cilk's serial elision runs a child to completion at its spawn
//! point). Hence, comparing paths lexicographically — with the convention
//! that a *descendant* precedes its ancestor's continuation — yields the
//! serial order of the *remaining work* of two frames.

use std::any::Any;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

/// Identifies a frame (== the task instance that runs in it).
/// Ids are allocated from a global monotonic counter and never reused.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(pub u64);

/// Label for selective sync counters: (object id, access-mode tag).
pub type LabelKey = (u64, u8);

/// A node of the spawn tree.
pub struct Frame {
    /// Unique id of this frame / task instance.
    pub id: FrameId,
    /// Id of the root frame of this spawn tree. Paths are only comparable
    /// within one tree; distinct scopes (even nested ones) form distinct
    /// trees and never help across each other.
    pub root: FrameId,
    /// Parent frame; `None` for a scope root.
    pub parent: Option<Arc<Frame>>,
    /// Sibling indices from the root; the root's path is empty.
    pub path: Box<[u32]>,
    /// Worker group this frame is pinned to (partition placement,
    /// DESIGN.md §7.1). Set by `Scope::spawn_pinned` and inherited by
    /// children; `None` means unpinned. Advisory: it biases which
    /// worker's queue the task lands in, never whether it runs.
    pub group: Option<u32>,
    /// Number of direct children that have not completed yet.
    children_active: AtomicUsize,
    /// Next sibling index to hand out to a spawned child.
    next_child_seq: AtomicU32,
    /// First panic payload observed in this frame's subtree.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Outstanding children counted per (object, mode) label; backs the
    /// paper's selective sync (`sync (popdep<int>)queue;`, §5.5).
    labeled: Mutex<HashMap<LabelKey, usize>>,
}

impl Frame {
    /// Creates a root frame (used by `Runtime::scope`).
    pub fn new_root(id: FrameId) -> Arc<Frame> {
        Arc::new(Frame {
            id,
            root: id,
            parent: None,
            path: Box::new([]),
            group: None,
            children_active: AtomicUsize::new(0),
            next_child_seq: AtomicU32::new(0),
            panic: Mutex::new(None),
            labeled: Mutex::new(HashMap::new()),
        })
    }

    /// Creates a child frame of `parent`, assigning the next sibling index.
    /// Also increments the parent's active-children count. The child
    /// inherits the parent's worker-group pin.
    pub fn new_child(parent: &Arc<Frame>, id: FrameId) -> Arc<Frame> {
        Self::new_child_in(parent, id, parent.group)
    }

    /// [`Frame::new_child`] with an explicit worker-group pin (the
    /// `spawn_pinned` path, DESIGN.md §7.1), overriding inheritance.
    pub fn new_child_pinned(parent: &Arc<Frame>, id: FrameId, group: u32) -> Arc<Frame> {
        Self::new_child_in(parent, id, Some(group))
    }

    fn new_child_in(parent: &Arc<Frame>, id: FrameId, group: Option<u32>) -> Arc<Frame> {
        let seq = parent.next_child_seq.fetch_add(1, Ordering::Relaxed);
        parent.children_active.fetch_add(1, Ordering::Relaxed);
        let mut path = Vec::with_capacity(parent.path.len() + 1);
        path.extend_from_slice(&parent.path);
        path.push(seq);
        Arc::new(Frame {
            id,
            root: parent.root,
            parent: Some(Arc::clone(parent)),
            path: path.into_boxed_slice(),
            group,
            children_active: AtomicUsize::new(0),
            next_child_seq: AtomicU32::new(0),
            panic: Mutex::new(None),
            labeled: Mutex::new(HashMap::new()),
        })
    }

    /// Number of direct children still running (or not yet started).
    #[inline]
    pub fn children_active(&self) -> usize {
        // Acquire pairs with the Release decrement in `child_completed` so
        // that a syncing frame observing zero also observes all side effects
        // of its children.
        self.children_active.load(Ordering::Acquire)
    }

    /// Marks one direct child of `self` as completed.
    pub fn child_completed(&self) {
        let prev = self.children_active.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "children_active underflow");
    }

    /// Records a panic payload (first one wins) for propagation at sync.
    pub fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Takes the stored panic payload, if any.
    pub fn take_panic(&self) -> Option<Box<dyn Any + Send + 'static>> {
        self.panic.lock().take()
    }

    /// True if a panic is pending in this frame.
    pub fn has_panic(&self) -> bool {
        self.panic.lock().is_some()
    }

    /// Increments the labeled-children counter for `key`.
    pub fn label_incr(&self, key: LabelKey) {
        *self.labeled.lock().entry(key).or_insert(0) += 1;
    }

    /// Decrements the labeled-children counter for `key`.
    pub fn label_decr(&self, key: LabelKey) {
        let mut map = self.labeled.lock();
        match map.get_mut(&key) {
            Some(n) if *n > 0 => {
                *n -= 1;
                if *n == 0 {
                    map.remove(&key);
                }
            }
            _ => debug_assert!(false, "label_decr without matching incr"),
        }
    }

    /// Number of outstanding children carrying label `key`.
    pub fn label_count(&self, key: LabelKey) -> usize {
        self.labeled.lock().get(&key).copied().unwrap_or(0)
    }

    /// True if `self` is a strict ancestor of `other`.
    pub fn is_ancestor_of(&self, other: &Frame) -> bool {
        other.path.len() > self.path.len() && other.path[..self.path.len()] == *self.path
    }
}

impl std::fmt::Debug for Frame {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Frame")
            .field("id", &self.id)
            .field("path", &self.path)
            .field("children_active", &self.children_active())
            .finish()
    }
}

/// Relation of two frames in the serial elision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProgramOrder {
    /// `a`'s entire subtree runs before `b`'s in the serial elision.
    Before,
    /// `a`'s entire subtree runs after `b`'s.
    After,
    /// `a` is a strict ancestor of `b` (so `b` runs inside `a`).
    AncestorOfB,
    /// `a` is a strict descendant of `b`.
    DescendantOfB,
    /// The same frame.
    Equal,
}

/// Compares two frame paths in program order. See module docs.
pub fn program_order(a: &[u32], b: &[u32]) -> ProgramOrder {
    let n = a.len().min(b.len());
    for i in 0..n {
        if a[i] < b[i] {
            return ProgramOrder::Before;
        }
        if a[i] > b[i] {
            return ProgramOrder::After;
        }
    }
    match a.len().cmp(&b.len()) {
        std::cmp::Ordering::Equal => ProgramOrder::Equal,
        std::cmp::Ordering::Less => ProgramOrder::AncestorOfB,
        std::cmp::Ordering::Greater => ProgramOrder::DescendantOfB,
    }
}

/// Which tasks a blocked frame is allowed to execute while waiting.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HelpMode {
    /// Blocked at `sync`: only descendants of the blocked frame. This is the
    /// productive set (sync waits on children) and keeps each native stack
    /// ordered earlier-above-later.
    Descendants,
    /// Blocked in a hyperqueue `empty()`/`pop()`: descendants (tasks the
    /// blocked frame itself spawned so far — they precede its continuation)
    /// plus any task whose subtree strictly precedes the blocked frame.
    /// These are exactly the tasks that may still produce values visible to
    /// the blocked consumer.
    Preceding,
}

/// Decides whether a blocked frame with path `blocked` may execute a pending
/// task with path `candidate` under `mode`. Both paths must belong to the
/// same spawn tree; see [`help_eligible_frames`] for the tree-aware check.
pub fn help_eligible(mode: HelpMode, blocked: &[u32], candidate: &[u32]) -> bool {
    match program_order(candidate, blocked) {
        ProgramOrder::Equal => false,
        ProgramOrder::DescendantOfB => true, // candidate inside blocked frame
        ProgramOrder::Before => mode == HelpMode::Preceding,
        ProgramOrder::After | ProgramOrder::AncestorOfB => false,
    }
}

/// Tree-aware help eligibility: frames from different scopes (spawn trees)
/// never help each other — their paths are not comparable, and cross-tree
/// claims could stack later work above earlier work.
pub fn help_eligible_frames(mode: HelpMode, blocked: &Frame, candidate: &Frame) -> bool {
    blocked.root == candidate.root && help_eligible(mode, &blocked.path, &candidate.path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn root() -> Arc<Frame> {
        Frame::new_root(FrameId(0))
    }

    #[test]
    fn child_paths_extend_parent() {
        let r = root();
        let a = Frame::new_child(&r, FrameId(1));
        let b = Frame::new_child(&r, FrameId(2));
        let aa = Frame::new_child(&a, FrameId(3));
        assert_eq!(&*a.path, &[0]);
        assert_eq!(&*b.path, &[1]);
        assert_eq!(&*aa.path, &[0, 0]);
        assert_eq!(r.children_active(), 2);
        assert_eq!(a.children_active(), 1);
    }

    #[test]
    fn child_completed_decrements() {
        let r = root();
        let _a = Frame::new_child(&r, FrameId(1));
        assert_eq!(r.children_active(), 1);
        r.child_completed();
        assert_eq!(r.children_active(), 0);
    }

    #[test]
    fn program_order_siblings() {
        assert_eq!(program_order(&[0], &[1]), ProgramOrder::Before);
        assert_eq!(program_order(&[2], &[1]), ProgramOrder::After);
        assert_eq!(program_order(&[1], &[1]), ProgramOrder::Equal);
    }

    #[test]
    fn program_order_nested() {
        // Child [0,3] precedes sibling [1] entirely.
        assert_eq!(program_order(&[0, 3], &[1]), ProgramOrder::Before);
        // [1] is an ancestor of [1,5].
        assert_eq!(program_order(&[1], &[1, 5]), ProgramOrder::AncestorOfB);
        assert_eq!(program_order(&[1, 5], &[1]), ProgramOrder::DescendantOfB);
    }

    #[test]
    fn is_ancestor_of_works() {
        let r = root();
        let a = Frame::new_child(&r, FrameId(1));
        let aa = Frame::new_child(&a, FrameId(2));
        assert!(r.is_ancestor_of(&a));
        assert!(r.is_ancestor_of(&aa));
        assert!(a.is_ancestor_of(&aa));
        assert!(!a.is_ancestor_of(&r));
        assert!(!aa.is_ancestor_of(&a));
    }

    #[test]
    fn sync_help_only_descendants() {
        // Blocked frame [1]; candidate descendant [1,0] is eligible, the
        // preceding sibling [0] is not (sync mode), the later sibling [2] is
        // never eligible.
        assert!(help_eligible(HelpMode::Descendants, &[1], &[1, 0]));
        assert!(!help_eligible(HelpMode::Descendants, &[1], &[0]));
        assert!(!help_eligible(HelpMode::Descendants, &[1], &[2]));
        assert!(!help_eligible(HelpMode::Descendants, &[1], &[1]));
    }

    #[test]
    fn queue_help_takes_preceding_too() {
        assert!(help_eligible(HelpMode::Preceding, &[1], &[0]));
        assert!(help_eligible(HelpMode::Preceding, &[1], &[0, 7]));
        assert!(help_eligible(HelpMode::Preceding, &[1], &[1, 3]));
        assert!(!help_eligible(HelpMode::Preceding, &[1], &[2]));
        // An ancestor is never pending in the ready pool, but must also
        // never be claimed by a descendant.
        assert!(!help_eligible(HelpMode::Preceding, &[1, 2], &[1]));
    }

    #[test]
    fn panic_first_wins() {
        let r = root();
        r.record_panic(Box::new("first"));
        r.record_panic(Box::new("second"));
        let p = r.take_panic().unwrap();
        assert_eq!(*p.downcast::<&str>().unwrap(), "first");
        assert!(r.take_panic().is_none());
    }

    #[test]
    fn labeled_counters() {
        let r = root();
        let key = (42u64, 1u8);
        assert_eq!(r.label_count(key), 0);
        r.label_incr(key);
        r.label_incr(key);
        assert_eq!(r.label_count(key), 2);
        r.label_decr(key);
        assert_eq!(r.label_count(key), 1);
        r.label_decr(key);
        assert_eq!(r.label_count(key), 0);
    }
}
