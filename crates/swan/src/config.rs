//! Runtime configuration.

use std::time::Duration;

/// Configuration for a [`crate::Runtime`].
///
/// The defaults follow the paper's philosophy: programs are *scale-free*, so
/// the only knob a user normally touches is implicit (the machine's core
/// count). Everything else exists for the benchmark harness and the test
/// suite (chaos mode).
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads. Defaults to `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Upper bound for [`crate::Runtime::resize_workers`]: the runtime
    /// pre-allocates this many worker slots (rings) and can grow/shrink
    /// the live thread count anywhere in `1..=max_workers` without
    /// changing observable program output (the scale-free guarantee).
    /// Clamped up to `workers`; defaults to `workers` (no elasticity
    /// headroom).
    pub max_workers: usize,
    /// Maximum depth of nested "help" execution a blocked worker will stack
    /// before falling back to passive waiting. Bounds stack growth of the
    /// help-first scheduling discipline (see DESIGN.md §3.1).
    pub max_help_depth: usize,
    /// How long a worker parks at a time while idle or blocked. Short parks
    /// sidestep lost-wakeup corner cases at negligible cost for the
    /// millisecond-scale pipeline stages this runtime targets.
    pub park_timeout: Duration,
    /// Chaos-testing mode: seeded random delays before task execution, used
    /// by the determinism test-suite to shake out order-dependent bugs.
    pub chaos: Option<ChaosConfig>,
}

/// Seeded scheduling jitter for determinism tests.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// PRNG seed; two runs with the same seed inject identical jitter.
    pub seed: u64,
    /// Upper bound on the random pre-task busy-wait, in microseconds.
    pub max_delay_us: u64,
}

impl RuntimeConfig {
    /// Default configuration with `workers` worker threads.
    pub fn with_workers(workers: usize) -> Self {
        Self {
            workers: workers.max(1),
            max_workers: workers.max(1),
            ..Self::default()
        }
    }

    /// Elastic configuration: starts with `workers` threads and reserves
    /// capacity to grow up to `max_workers` (see
    /// [`crate::Runtime::resize_workers`]).
    pub fn with_worker_range(workers: usize, max_workers: usize) -> Self {
        let workers = workers.max(1);
        Self {
            workers,
            max_workers: max_workers.max(workers),
            ..Self::default()
        }
    }

    /// Adds chaos-mode jitter (testing only).
    pub fn with_chaos(mut self, seed: u64, max_delay_us: u64) -> Self {
        self.chaos = Some(ChaosConfig { seed, max_delay_us });
        self
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            workers,
            max_workers: workers,
            max_help_depth: 64,
            park_timeout: Duration::from_micros(200),
            chaos: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_at_least_one_worker() {
        assert!(RuntimeConfig::default().workers >= 1);
    }

    #[test]
    fn with_workers_clamps_zero_to_one() {
        assert_eq!(RuntimeConfig::with_workers(0).workers, 1);
        assert_eq!(RuntimeConfig::with_workers(8).workers, 8);
    }

    #[test]
    fn worker_range_clamps_max_to_at_least_init() {
        let c = RuntimeConfig::with_worker_range(4, 2);
        assert_eq!((c.workers, c.max_workers), (4, 4));
        let c = RuntimeConfig::with_worker_range(1, 8);
        assert_eq!((c.workers, c.max_workers), (1, 8));
        assert_eq!(RuntimeConfig::with_workers(3).max_workers, 3);
    }

    #[test]
    fn chaos_builder_sets_fields() {
        let c = RuntimeConfig::with_workers(2).with_chaos(42, 100);
        let chaos = c.chaos.expect("chaos set");
        assert_eq!(chaos.seed, 42);
        assert_eq!(chaos.max_delay_us, 100);
    }
}
