//! Runtime configuration: the fluent [`RuntimeConfig`] builder and the
//! [`SchedulerPolicy`] selector.

use std::ops::RangeInclusive;
use std::time::Duration;

/// Which worker-loop scheduler the runtime runs (see DESIGN.md §3.1 for
/// the decision table). Both policies preserve determinism — programs on
/// this runtime are scale-free, so the policy changes throughput and
/// stealing behaviour, never observable output.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SchedulerPolicy {
    /// Per-worker FIFO rings, injector before stealing, single-task
    /// steals. Pops approximate the serial elision's program order, which
    /// keeps pipeline producers ahead of their consumers and minimises
    /// blocked-consumer helping. The historical default.
    HelpFirst,
    /// Per-worker Chase-Lev deques: owner LIFO bottom (depth-first, cache
    /// hot), thieves FIFO top with steal-half batching, injector checked
    /// after steal probes fail. The classic Cilk-style regime — better
    /// under fork-join-heavy and irregular DAG load.
    StealFirst {
        /// Upper bound on one steal batch (the thief takes
        /// `min(steal_batch, ceil(victim_len/2))` ids). 0 behaves as 1.
        steal_batch: usize,
    },
}

impl SchedulerPolicy {
    /// The policy CI matrices select via the `HQ_SCHED` environment
    /// variable (`help-first`, `steal-first`, or `steal-first:N` with a
    /// batch bound), if set and well-formed. [`RuntimeConfig::default`]
    /// applies this, so a test binary run under `HQ_SCHED=steal-first`
    /// exercises the deque scheduler without per-test plumbing.
    pub fn from_env() -> Option<Self> {
        Self::parse(&std::env::var("HQ_SCHED").ok()?)
    }

    /// Parses a policy selector: `help-first`, `steal-first`, or
    /// `steal-first:N` (N = steal batch bound). The grammar shared by
    /// `HQ_SCHED` and `hqd --scheduler`.
    pub fn parse(raw: &str) -> Option<Self> {
        match raw.trim() {
            "help-first" => Some(Self::HelpFirst),
            "steal-first" => Some(Self::StealFirst {
                steal_batch: Self::DEFAULT_STEAL_BATCH,
            }),
            other => {
                let batch = other.strip_prefix("steal-first:")?.parse().ok()?;
                Some(Self::StealFirst { steal_batch: batch })
            }
        }
    }

    /// Default steal-half batch bound.
    pub const DEFAULT_STEAL_BATCH: usize = 16;
}

/// Initial and maximum worker counts, the argument to
/// [`RuntimeConfig::workers`]. Converts from a plain count (`4` — fixed
/// size, no elasticity headroom) or an inclusive range (`1..=8` — start
/// at 1, [`crate::Runtime::resize_workers`] may grow to 8).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WorkerRange {
    /// Threads staffed at construction (min 1).
    pub initial: usize,
    /// Upper bound for elastic resizing (clamped up to `initial`).
    pub max: usize,
}

impl From<usize> for WorkerRange {
    fn from(n: usize) -> Self {
        let n = n.max(1);
        Self { initial: n, max: n }
    }
}

impl From<RangeInclusive<usize>> for WorkerRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        let initial = (*r.start()).max(1);
        Self {
            initial,
            max: (*r.end()).max(initial),
        }
    }
}

/// Configuration for a [`crate::Runtime`], built fluently:
///
/// ```
/// use swan::{RuntimeConfig, SchedulerPolicy};
///
/// let cfg = RuntimeConfig::new()
///     .workers(1..=8)
///     .scheduler(SchedulerPolicy::StealFirst { steal_batch: 16 });
/// assert_eq!((cfg.workers, cfg.max_workers), (1, 8));
/// ```
///
/// The defaults follow the paper's philosophy: programs are *scale-free*,
/// so the only knob a user normally touches is implicit (the machine's
/// core count). Everything else exists for the benchmark harness and the
/// test suite (chaos mode, the scheduler-policy ablation).
#[derive(Clone, Debug)]
pub struct RuntimeConfig {
    /// Number of worker threads. Defaults to `std::thread::available_parallelism()`.
    pub workers: usize,
    /// Upper bound for [`crate::Runtime::resize_workers`]: the runtime
    /// pre-allocates this many worker slots (queues) and can grow/shrink
    /// the live thread count anywhere in `1..=max_workers` without
    /// changing observable program output (the scale-free guarantee).
    /// Clamped up to `workers`; defaults to `workers` (no elasticity
    /// headroom).
    pub max_workers: usize,
    /// Worker-loop scheduling policy. Defaults to
    /// [`SchedulerPolicy::HelpFirst`], overridable process-wide via the
    /// `HQ_SCHED` environment variable (see
    /// [`SchedulerPolicy::from_env`]).
    pub scheduler: SchedulerPolicy,
    /// Number of worker groups for partition pinning (DESIGN.md §7.1).
    /// Worker `idx` belongs to group `idx % worker_groups`; tasks spawned
    /// with [`crate::Scope::spawn_pinned`] enqueue to their group's
    /// injector and are preferred by that group's workers. Pinning is
    /// *advisory*: a group with no eligible work falls back to foreign
    /// groups (counted in
    /// [`crate::MetricsSnapshot::cross_group_steals`]), so liveness and
    /// the scale-free determinism guarantee are unaffected. Default 1
    /// (grouping off).
    pub worker_groups: usize,
    /// Maximum depth of nested "help" execution a blocked worker will stack
    /// before falling back to passive waiting. Bounds stack growth of the
    /// help-first scheduling discipline (see DESIGN.md §3.1).
    pub max_help_depth: usize,
    /// How long a worker parks at a time while idle or blocked. Short parks
    /// sidestep lost-wakeup corner cases at negligible cost for the
    /// millisecond-scale pipeline stages this runtime targets.
    pub park_timeout: Duration,
    /// Chaos-testing mode: seeded random delays before task execution, used
    /// by the determinism test-suite to shake out order-dependent bugs.
    pub chaos: Option<ChaosConfig>,
}

/// Seeded scheduling jitter for determinism tests.
#[derive(Clone, Debug)]
pub struct ChaosConfig {
    /// PRNG seed; two runs with the same seed inject identical jitter.
    pub seed: u64,
    /// Upper bound on the random pre-task busy-wait, in microseconds.
    pub max_delay_us: u64,
}

impl RuntimeConfig {
    /// Starts a builder from the defaults (machine core count, help-first
    /// unless `HQ_SCHED` overrides).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker count — a fixed size (`.workers(4)`) or an elastic
    /// range (`.workers(1..=8)`, resizable via
    /// [`crate::Runtime::resize_workers`]).
    pub fn workers(mut self, range: impl Into<WorkerRange>) -> Self {
        let range = range.into();
        self.workers = range.initial;
        self.max_workers = range.max;
        self
    }

    /// Selects the worker-loop scheduler.
    pub fn scheduler(mut self, policy: SchedulerPolicy) -> Self {
        self.scheduler = policy;
        self
    }

    /// Sets the number of worker groups for partition pinning (min 1;
    /// 1 disables grouping). See [`crate::Scope::spawn_pinned`].
    pub fn worker_groups(mut self, groups: usize) -> Self {
        self.worker_groups = groups.max(1);
        self
    }

    /// Bounds nested help-execution depth.
    pub fn max_help_depth(mut self, depth: usize) -> Self {
        self.max_help_depth = depth.max(1);
        self
    }

    /// Sets the idle/blocked park interval.
    pub fn park_timeout(mut self, timeout: Duration) -> Self {
        self.park_timeout = timeout;
        self
    }

    /// Adds chaos-mode jitter (testing only).
    pub fn with_chaos(mut self, seed: u64, max_delay_us: u64) -> Self {
        self.chaos = Some(ChaosConfig { seed, max_delay_us });
        self
    }

    /// Default configuration with `workers` worker threads.
    #[deprecated(since = "0.2.0", note = "use `RuntimeConfig::new().workers(n)`")]
    pub fn with_workers(workers: usize) -> Self {
        Self::new().workers(workers)
    }

    /// Elastic configuration: starts with `workers` threads and reserves
    /// capacity to grow up to `max_workers`.
    #[deprecated(
        since = "0.2.0",
        note = "use `RuntimeConfig::new().workers(min..=max)`"
    )]
    pub fn with_worker_range(workers: usize, max_workers: usize) -> Self {
        Self::new().workers(workers.max(1)..=max_workers)
    }
}

impl Default for RuntimeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            workers,
            max_workers: workers,
            scheduler: SchedulerPolicy::from_env().unwrap_or(SchedulerPolicy::HelpFirst),
            worker_groups: 1,
            max_help_depth: 64,
            park_timeout: Duration::from_micros(200),
            chaos: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_has_at_least_one_worker() {
        assert!(RuntimeConfig::default().workers >= 1);
    }

    #[test]
    fn workers_accepts_count_and_range() {
        let c = RuntimeConfig::new().workers(0);
        assert_eq!((c.workers, c.max_workers), (1, 1));
        let c = RuntimeConfig::new().workers(8);
        assert_eq!((c.workers, c.max_workers), (8, 8));
        let c = RuntimeConfig::new().workers(1..=8);
        assert_eq!((c.workers, c.max_workers), (1, 8));
        // A backwards range clamps max up to initial.
        #[allow(clippy::reversed_empty_ranges)]
        let c = RuntimeConfig::new().workers(4..=2);
        assert_eq!((c.workers, c.max_workers), (4, 4));
    }

    #[test]
    fn scheduler_builder_sets_policy() {
        let c = RuntimeConfig::new().scheduler(SchedulerPolicy::StealFirst { steal_batch: 4 });
        assert_eq!(c.scheduler, SchedulerPolicy::StealFirst { steal_batch: 4 });
    }

    #[test]
    #[allow(deprecated)]
    fn deprecated_shims_match_builder() {
        let shim = RuntimeConfig::with_workers(3);
        assert_eq!((shim.workers, shim.max_workers), (3, 3));
        assert_eq!(RuntimeConfig::with_workers(0).workers, 1);
        let shim = RuntimeConfig::with_worker_range(4, 2);
        assert_eq!((shim.workers, shim.max_workers), (4, 4));
        let shim = RuntimeConfig::with_worker_range(1, 8);
        assert_eq!((shim.workers, shim.max_workers), (1, 8));
    }

    #[test]
    fn chaos_builder_sets_fields() {
        let c = RuntimeConfig::new().workers(2).with_chaos(42, 100);
        let chaos = c.chaos.expect("chaos set");
        assert_eq!(chaos.seed, 42);
        assert_eq!(chaos.max_delay_us, 100);
    }

    #[test]
    fn policy_parser_accepts_the_ci_matrix_forms() {
        // Parse the *strings* the CI matrix uses without touching the
        // process environment (tests run concurrently).
        let parse = SchedulerPolicy::parse;
        assert_eq!(parse("help-first"), Some(SchedulerPolicy::HelpFirst));
        assert_eq!(
            parse("steal-first"),
            Some(SchedulerPolicy::StealFirst { steal_batch: 16 })
        );
        assert_eq!(
            parse("steal-first:4"),
            Some(SchedulerPolicy::StealFirst { steal_batch: 4 })
        );
        assert_eq!(parse("work-first"), None);
        assert_eq!(parse("steal-first:x"), None);
    }
}
