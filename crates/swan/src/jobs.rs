//! Job admission for persistent runtimes: a bounded, FIFO-fair job table.
//!
//! A persistent runtime (see [`crate::Runtime::persistent`]) keeps its
//! worker pool hot and lets clients push many independent *jobs* through
//! it. Unbounded concurrent admission would let a burst of jobs thrash the
//! scheduler (and the memory of every pipeline instantiated per job), so
//! services gate job entry through a [`JobTable`]:
//!
//! * **bounded in-flight**: at most `max_in_flight` jobs execute at once;
//! * **FIFO fairness**: jobs are admitted strictly in the order their
//!   tickets were registered — no job can overtake an earlier one at the
//!   admission gate, so tail latency degrades gracefully under load
//!   instead of starving the unlucky.
//!
//! The table is deliberately runtime-agnostic: it orders *admissions*,
//! not tasks. `pipelines::graph::CompiledGraph` drives one per compiled
//! graph; anything that maps "job" to "scope" can reuse it.
//!
//! ```
//! use swan::JobTable;
//!
//! let table = JobTable::new(2);
//! let t0 = table.register();
//! let t1 = table.register();
//! let g0 = table.admit(&t0); // in order, within the bound
//! let g1 = table.admit(&t1);
//! drop((g0, g1));
//! assert_eq!(table.stats().completed, 2);
//! ```

use std::time::Duration;

use parking_lot::{Condvar, Mutex};

/// Counters reported by [`JobTable::stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct JobTableStats {
    /// Tickets handed out so far.
    pub submitted: u64,
    /// Jobs whose admission guard has been dropped.
    pub completed: u64,
    /// Jobs currently admitted (executing).
    pub in_flight: usize,
    /// Jobs registered but not yet admitted.
    pub queued: usize,
    /// Highest concurrent `in_flight` ever observed — always
    /// `<= max_in_flight`, which is the admission-control invariant the
    /// service tests assert.
    pub high_water_in_flight: usize,
    /// The configured bound.
    pub max_in_flight: usize,
    /// Failed executions that were re-admitted per [`RetryPolicy`].
    pub retries: u64,
    /// Jobs that exhausted their retry budget and failed terminally.
    pub failed: u64,
}

/// What [`RetryPolicy::on_failure`] decided about a failed execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetryDecision {
    /// Re-admit the job after waiting `backoff`.
    Retry {
        /// How long to wait before the re-attempt.
        backoff: Duration,
    },
    /// The retry budget is exhausted: fail the job terminally.
    GiveUp {
        /// Total execution attempts consumed (initial run + retries).
        attempts: u32,
    },
}

/// Bounded-exponential-backoff retry policy for failed jobs.
///
/// A job's first execution is attempt 0. After a failure on attempt `a`,
/// [`RetryPolicy::on_failure`] allows a re-admission while `a <
/// max_retries`, with a backoff of `base_backoff * 2^a` capped at
/// `max_backoff` — so a job is executed at most `max_retries + 1` times.
/// [`RetryPolicy::none`] (also [`Default`]) disables retries, which keeps
/// the fail-fast behaviour existing services were built on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-admissions allowed after the initial attempt (0 = fail fast).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent attempt.
    pub base_backoff: Duration,
    /// Upper bound the exponential backoff saturates at.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

impl RetryPolicy {
    /// No retries: a failed job fails terminally at once.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            base_backoff: Duration::ZERO,
            max_backoff: Duration::ZERO,
        }
    }

    /// Up to `max_retries` re-admissions with a 1 ms base backoff capped
    /// at 100 ms — the shape services and tests want by default.
    pub fn retries(max_retries: u32) -> Self {
        RetryPolicy {
            max_retries,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(100),
        }
    }

    /// The backoff before re-admitting a job that failed on `attempt`
    /// (0-based): `base_backoff * 2^attempt`, saturating at `max_backoff`.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let factor = 1u32.checked_shl(attempt.min(31)).unwrap_or(u32::MAX);
        self.base_backoff
            .checked_mul(factor)
            .unwrap_or(self.max_backoff)
            .min(self.max_backoff)
    }

    /// Decides what happens after a failure on `attempt` (0-based).
    pub fn on_failure(&self, attempt: u32) -> RetryDecision {
        if attempt < self.max_retries {
            RetryDecision::Retry {
                backoff: self.backoff(attempt),
            }
        } else {
            RetryDecision::GiveUp {
                attempts: attempt + 1,
            }
        }
    }
}

#[derive(Default)]
struct TableState {
    next_ticket: u64,
    next_admit: u64,
    in_flight: usize,
    completed: u64,
    high_water: usize,
    retries: u64,
    failed: u64,
}

/// Bounded FIFO admission gate for jobs on a persistent runtime (see
/// module docs).
pub struct JobTable {
    max_in_flight: usize,
    state: Mutex<TableState>,
    cv: Condvar,
}

/// Order token handed out by [`JobTable::register`]. Tickets must be
/// admitted in registration order (the table blocks any ticket whose
/// predecessors have not been admitted yet), so register a ticket only
/// once the job it stands for is committed to running.
#[derive(Debug, PartialEq, Eq)]
pub struct JobTicket {
    seq: u64,
}

impl JobTicket {
    /// Position of this job in the global admission order (0-based).
    pub fn seq(&self) -> u64 {
        self.seq
    }
}

/// RAII in-flight slot: dropping it completes the job and unblocks the
/// next ticket in line.
#[must_use = "dropping the guard immediately releases the admission slot"]
pub struct AdmitGuard<'a> {
    table: &'a JobTable,
}

impl Drop for AdmitGuard<'_> {
    fn drop(&mut self) {
        let mut st = self.table.state.lock();
        st.in_flight -= 1;
        st.completed += 1;
        drop(st);
        self.table.cv.notify_all();
    }
}

impl JobTable {
    /// Creates a table admitting at most `max_in_flight` concurrent jobs
    /// (clamped to at least 1).
    pub fn new(max_in_flight: usize) -> Self {
        JobTable {
            max_in_flight: max_in_flight.max(1),
            state: Mutex::new(TableState::default()),
            cv: Condvar::new(),
        }
    }

    /// The configured in-flight bound.
    pub fn max_in_flight(&self) -> usize {
        self.max_in_flight
    }

    /// Registers a job, fixing its position in the admission order.
    pub fn register(&self) -> JobTicket {
        let mut st = self.state.lock();
        let seq = st.next_ticket;
        st.next_ticket += 1;
        JobTicket { seq }
    }

    /// Bounded registration: registers a job only while fewer than
    /// `max_queued` tickets are waiting for admission (registered but not
    /// yet admitted; executing jobs do not count). Refusal returns the
    /// waiting-line depth observed under the lock at that instant — the
    /// backpressure signal a service front-end turns into an explicit
    /// retry instead of buffering without bound. The check and the
    /// registration are one atomic step, so concurrent callers cannot
    /// overshoot the bound.
    ///
    /// `max_queued == 0` always refuses.
    ///
    /// ```
    /// use swan::JobTable;
    ///
    /// let table = JobTable::new(1);
    /// let head = table.try_register(1).expect("empty queue accepts");
    /// // `head` is waiting (not admitted), so the queue is now full.
    /// assert_eq!(table.try_register(1), Err(1));
    /// let guard = table.admit(&head);
    /// // Admission moved `head` out of the waiting line.
    /// assert!(table.try_register(1).is_ok());
    /// drop(guard);
    /// ```
    pub fn try_register(&self, max_queued: usize) -> Result<JobTicket, usize> {
        let mut st = self.state.lock();
        let queued = (st.next_ticket - st.next_admit) as usize;
        if queued >= max_queued {
            return Err(queued);
        }
        let seq = st.next_ticket;
        st.next_ticket += 1;
        Ok(JobTicket { seq })
    }

    /// Blocks until `ticket` is at the head of the FIFO **and** an
    /// in-flight slot is free, then occupies the slot until the returned
    /// guard drops.
    pub fn admit(&self, ticket: &JobTicket) -> AdmitGuard<'_> {
        let mut st = self.state.lock();
        while ticket.seq != st.next_admit || st.in_flight >= self.max_in_flight {
            self.cv.wait(&mut st);
        }
        st.next_admit += 1;
        st.in_flight += 1;
        st.high_water = st.high_water.max(st.in_flight);
        drop(st);
        // A successor ticket may already be waiting purely on the FIFO
        // head moving (its slot check can still pass).
        self.cv.notify_all();
        AdmitGuard { table: self }
    }

    /// Records that a failed execution was re-admitted per the service's
    /// [`RetryPolicy`] (surfaced as [`JobTableStats::retries`]).
    pub fn note_retry(&self) {
        self.state.lock().retries += 1;
    }

    /// Records a terminal job failure — the retry budget (if any) is
    /// exhausted (surfaced as [`JobTableStats::failed`]).
    pub fn note_failed(&self) {
        self.state.lock().failed += 1;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> JobTableStats {
        let st = self.state.lock();
        JobTableStats {
            submitted: st.next_ticket,
            completed: st.completed,
            in_flight: st.in_flight,
            queued: (st.next_ticket - st.next_admit) as usize,
            high_water_in_flight: st.high_water,
            max_in_flight: self.max_in_flight,
            retries: st.retries,
            failed: st.failed,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn admission_is_fifo_and_bounded() {
        let table = Arc::new(JobTable::new(2));
        let running = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let order = Arc::new(Mutex::new(Vec::new()));
        // Register all tickets up front (fixing FIFO order), then admit
        // them from racing threads.
        let tickets: Vec<JobTicket> = (0..16).map(|_| table.register()).collect();
        let handles: Vec<_> = tickets
            .into_iter()
            .map(|t| {
                let (table, running, peak, order) = (
                    Arc::clone(&table),
                    Arc::clone(&running),
                    Arc::clone(&peak),
                    Arc::clone(&order),
                );
                std::thread::spawn(move || {
                    let _g = table.admit(&t);
                    order.lock().push(t.seq());
                    let now = running.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_micros(200));
                    running.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "in-flight bound violated");
        // The recording happens after `admit` returns, so two tickets
        // admitted into the same in-flight window may log out of order —
        // but a ticket can never be overtaken by one outside its window.
        let admitted = order.lock().clone();
        for (pos, seq) in admitted.iter().enumerate() {
            assert!(
                seq.abs_diff(pos as u64) < 2,
                "ticket {seq} recorded at position {pos}: overtaken beyond \
                 the in-flight window, admission is not FIFO"
            );
        }
        let s = table.stats();
        assert_eq!((s.submitted, s.completed), (16, 16));
        assert_eq!(s.in_flight, 0);
        assert!(s.high_water_in_flight <= 2);
    }

    #[test]
    fn admission_with_bound_one_is_strictly_serial() {
        // With max_in_flight = 1, ticket n+1 cannot be admitted until
        // ticket n's guard drops, so even the post-admit recording is
        // strictly ordered.
        let table = Arc::new(JobTable::new(1));
        let order = Arc::new(Mutex::new(Vec::new()));
        let tickets: Vec<JobTicket> = (0..12).map(|_| table.register()).collect();
        let handles: Vec<_> = tickets
            .into_iter()
            .map(|t| {
                let (table, order) = (Arc::clone(&table), Arc::clone(&order));
                std::thread::spawn(move || {
                    let _g = table.admit(&t);
                    order.lock().push(t.seq());
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*order.lock(), (0..12).collect::<Vec<u64>>());
        assert_eq!(table.stats().high_water_in_flight, 1);
    }

    #[test]
    fn stats_track_queue_depth() {
        let table = JobTable::new(1);
        let t0 = table.register();
        let _t1 = table.register();
        let g = table.admit(&t0);
        let s = table.stats();
        assert_eq!((s.in_flight, s.queued), (1, 1));
        drop(g);
        assert_eq!(table.stats().in_flight, 0);
    }

    #[test]
    fn bound_is_clamped_to_one() {
        assert_eq!(JobTable::new(0).max_in_flight(), 1);
    }

    #[test]
    fn retry_policy_backs_off_exponentially_and_gives_up() {
        let p = RetryPolicy {
            max_retries: 3,
            base_backoff: Duration::from_millis(2),
            max_backoff: Duration::from_millis(10),
        };
        assert_eq!(
            p.on_failure(0),
            RetryDecision::Retry {
                backoff: Duration::from_millis(2)
            }
        );
        assert_eq!(
            p.on_failure(1),
            RetryDecision::Retry {
                backoff: Duration::from_millis(4)
            }
        );
        // 2 ms * 2^2 = 8 ms, then the cap bites.
        assert_eq!(
            p.on_failure(2),
            RetryDecision::Retry {
                backoff: Duration::from_millis(8)
            }
        );
        assert_eq!(p.on_failure(3), RetryDecision::GiveUp { attempts: 4 });
        assert_eq!(p.backoff(40), Duration::from_millis(10), "cap saturates");
        assert_eq!(
            RetryPolicy::none().on_failure(0),
            RetryDecision::GiveUp { attempts: 1 }
        );
    }

    #[test]
    fn retry_counters_surface_in_stats() {
        let table = JobTable::new(1);
        table.note_retry();
        table.note_retry();
        table.note_failed();
        let s = table.stats();
        assert_eq!((s.retries, s.failed), (2, 1));
    }

    #[test]
    fn try_register_bounds_the_waiting_line() {
        let table = JobTable::new(2);
        // Two tickets waiting: the line is at its bound of 2.
        let t0 = table.try_register(2).unwrap();
        let _t1 = table.try_register(2).unwrap();
        assert_eq!(table.try_register(2), Err(2), "waiting line over bound");
        assert_eq!(table.try_register(0), Err(2), "max_queued == 0 refuses");
        // Admitting t0 frees one waiting slot (admitted jobs do not count).
        let g0 = table.admit(&t0);
        let t2 = table.try_register(2).unwrap();
        assert_eq!(t2.seq(), 2, "bounded tickets share the global order");
        assert_eq!(table.try_register(2), Err(2));
        drop(g0);
        let s = table.stats();
        assert_eq!((s.submitted, s.queued), (3, 2));
    }
}
