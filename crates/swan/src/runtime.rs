//! The runtime: worker pool, task execution, and the blocking/help protocol.
//!
//! # Scheduling discipline
//!
//! This is a *help-first* (child-stealing) runtime: `spawn` enqueues the
//! child and the parent keeps running. Cilk/Swan are *work-first*
//! (continuation-stealing), which stock Rust cannot express safely. The
//! difference matters in exactly one place: what a **blocked** worker is
//! allowed to run on top of its stack. Under work-first, stacks naturally
//! hold earlier work above later work, which is the property that makes the
//! paper's blocking `empty()` deadlock-free (§4.5). We restore that
//! property with *filtered help*:
//!
//! * blocked at `sync` → may run only **descendants** of the syncing frame;
//! * blocked in a queue operation → may run descendants or any task whose
//!   subtree **strictly precedes** the blocked frame in program order
//!   (exactly the tasks that can still produce values the consumer waits
//!   for).
//!
//! Both filters preserve the invariant "every native stack is ordered
//! earlier-above-later (with ancestors below their descendants)", so a
//! blocked frame never waits on work buried beneath it. Combined with the
//! paper's observation that hyperqueue dependences respect the serial
//! elision's total order, this yields deadlock freedom.

use std::cell::Cell;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::config::{RuntimeConfig, SchedulerPolicy};
use crate::frame::{Frame, FrameId, HelpMode};
use crate::metrics::{Metrics, MetricsSnapshot};
use crate::sched::{Deque, Injector, Registry, Ring, RunnableTask, Sleeper, WorkerQueue};
use crate::scope::Scope;
use crate::util::{Backoff, XorShift64};

/// Capacity of each per-worker queue (ring or deque); overflow goes to
/// the unbounded global injector.
const QUEUE_CAPACITY: usize = 512;

thread_local! {
    /// Queue index of the current worker thread (None on external threads).
    static WORKER_INDEX: Cell<Option<usize>> = const { Cell::new(None) };
    /// Nesting depth of help-execution on this thread's stack.
    static HELP_DEPTH: Cell<usize> = const { Cell::new(0) };
}

pub(crate) struct RtInner {
    pub(crate) config: RuntimeConfig,
    pub(crate) registry: Registry,
    pub(crate) injector: Injector,
    /// One injector per worker group when grouping is on (DESIGN.md
    /// §7.1): pinned tasks enqueue to their group's injector, and worker
    /// `idx` (group `idx % len`) drains its own group's injector ahead of
    /// the global one. Empty when `worker_groups <= 1`.
    pub(crate) group_injectors: Vec<Injector>,
    pub(crate) queues: Vec<WorkerQueue>,
    pub(crate) sleeper: Sleeper,
    pub(crate) metrics: Metrics,
    /// Elastic worker target: the worker on queue `idx` retires as soon as
    /// it observes `idx >= target_workers` (see `worker_main`). Always in
    /// `1..=queues.len()`.
    target_workers: AtomicUsize,
    /// Scopes currently open on this runtime (see [`Runtime::quiesce`]).
    open_scopes: AtomicUsize,
    next_id: AtomicU64,
    shutdown: AtomicBool,
}

impl RtInner {
    pub(crate) fn alloc_id(&self) -> FrameId {
        FrameId(self.next_id.fetch_add(1, Ordering::Relaxed))
    }

    /// Makes task `id` runnable: local queue if on a worker, else injector.
    pub(crate) fn enqueue(&self, id: FrameId) {
        let pushed = WORKER_INDEX.with(|w| match w.get() {
            Some(idx) => self.queues[idx].push(id.0).is_ok(),
            None => false,
        });
        if !pushed {
            self.injector.push(id.0);
        }
        self.sleeper.notify_all();
    }

    /// [`RtInner::enqueue`] with a worker-group pin: a pinned task lands
    /// in the local queue only if the current worker belongs to the
    /// task's group; otherwise it rides the group's injector so a
    /// same-group worker picks it up first (DESIGN.md §7.1). Unpinned
    /// tasks (or ungrouped runtimes) take the plain path.
    pub(crate) fn enqueue_to(&self, id: FrameId, group: Option<u32>) {
        let n = self.group_injectors.len();
        if n > 1 {
            if let Some(g) = group {
                let g = g as usize % n;
                let pushed = WORKER_INDEX.with(|w| match w.get() {
                    Some(idx) if idx % n == g => self.queues[idx].push(id.0).is_ok(),
                    _ => false,
                });
                if !pushed {
                    self.group_injectors[g].push(id.0);
                }
                self.sleeper.notify_all();
                return;
            }
        }
        self.enqueue(id);
    }

    fn chaos_delay(&self, id: FrameId) {
        if let Some(chaos) = &self.config.chaos {
            let mut rng = XorShift64::new(chaos.seed ^ id.0.wrapping_mul(0x9E37_79B9));
            let delay_us = rng.next_u64() % (chaos.max_delay_us + 1);
            if delay_us > 0 {
                let start = std::time::Instant::now();
                while (start.elapsed().as_micros() as u64) < delay_us {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Runs a claimed task to completion: body, implicit sync over its
    /// children, release callbacks (dataflow/hyperqueue completion
    /// handling), successor notification, and parent bookkeeping.
    pub(crate) fn execute(self: &Arc<Self>, task: RunnableTask) {
        self.chaos_delay(task.id);
        let frame = Arc::clone(&task.frame);
        let body = task.body;
        if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(body)) {
            frame.record_panic(payload);
        }
        // Implicit sync: a procedure completes only after all children have
        // (Cilk's implicit sync at function end). Panics propagate to the
        // parent rather than unwinding the worker.
        self.wait_children(&frame, false);
        // Release callbacks run *after* the implicit sync: this is the
        // "task completion" moment of §4.2 where views are reduced.
        for release in task.releases {
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(release)) {
                frame.record_panic(payload);
            }
        }
        let now_ready = self.registry.complete(task.id);
        for (id, group) in now_ready {
            self.enqueue_to(id, group);
        }
        if let Some(parent) = &frame.parent {
            if let Some(payload) = frame.take_panic() {
                parent.record_panic(payload);
            }
            parent.child_completed();
        }
        Metrics::incr(&self.metrics.tasks_executed);
        self.sleeper.notify_all();
    }

    /// Passively waits for `frame`'s children without executing tasks.
    /// Used by the scope root on a non-worker thread: "P workers" must
    /// mean P executing threads, so the caller parks instead of becoming
    /// an extra worker (it still helps inside blocking *operations* like
    /// an owner-side `pop`, where its progress is semantically needed).
    pub(crate) fn wait_children_passive(&self, frame: &Arc<Frame>) {
        let mut backoff = Backoff::new();
        while frame.children_active() > 0 {
            if backoff.is_completed() {
                self.sleeper.park(self.config.park_timeout);
            } else {
                backoff.snooze();
            }
        }
    }

    /// Blocks until `frame` has no active children, helping with
    /// descendants meanwhile. With `rethrow`, resumes any panic collected
    /// from the subtree (used by explicit `sync` and scope roots).
    pub(crate) fn wait_children(self: &Arc<Self>, frame: &Arc<Frame>, rethrow: bool) {
        if frame.children_active() > 0 {
            let mut backoff = Backoff::new();
            loop {
                if frame.children_active() == 0 {
                    break;
                }
                if self.try_help(frame, HelpMode::Descendants) {
                    backoff.reset();
                    continue;
                }
                if backoff.is_completed() {
                    Metrics::incr(&self.metrics.parks);
                    self.sleeper.park(self.config.park_timeout);
                } else {
                    backoff.snooze();
                }
            }
        }
        if rethrow {
            if let Some(payload) = frame.take_panic() {
                panic::resume_unwind(payload);
            }
        }
    }

    /// Blocks until `cond` returns true, helping with `mode`-eligible tasks
    /// meanwhile. This is the waiting engine behind hyperqueue `empty()` /
    /// `pop()` and selective sync.
    pub(crate) fn block_until(
        self: &Arc<Self>,
        frame: &Arc<Frame>,
        mode: HelpMode,
        mut cond: impl FnMut() -> bool,
    ) {
        let mut backoff = Backoff::new();
        loop {
            if cond() {
                return;
            }
            if self.try_help(frame, mode) {
                backoff.reset();
                continue;
            }
            if backoff.is_completed() {
                Metrics::incr(&self.metrics.parks);
                self.sleeper.park(self.config.park_timeout);
            } else {
                backoff.snooze();
            }
        }
    }

    /// Claims and executes one help-eligible task. Returns false if none is
    /// eligible or the help stack is already `max_help_depth` deep.
    fn try_help(self: &Arc<Self>, blocked: &Arc<Frame>, mode: HelpMode) -> bool {
        let depth = HELP_DEPTH.with(Cell::get);
        if depth >= self.config.max_help_depth {
            return false;
        }
        let Some(task) = self.registry.claim_filtered(mode, blocked) else {
            return false;
        };
        match mode {
            HelpMode::Descendants => Metrics::incr(&self.metrics.helps_sync),
            HelpMode::Preceding => Metrics::incr(&self.metrics.helps_queue),
        }
        HELP_DEPTH.with(|d| d.set(depth + 1));
        self.execute(task);
        HELP_DEPTH.with(|d| d.set(depth));
        true
    }

    /// Worker's task-finding policy (DESIGN.md §3.1). Both policies drain
    /// the local queue first; they differ in what comes next:
    ///
    /// * **help-first** — injector before stealing, single-task steals.
    ///   External submissions and overflow stay ahead of other workers'
    ///   backlogs, approximating program order.
    /// * **steal-first** — steal-half batches before the injector. An
    ///   idle worker first rebalances in-flight work (the Cilk regime),
    ///   touching the shared injector only when every victim probe fails.
    ///
    /// With worker groups on: pinned work bound for this worker's own
    /// group comes right after the local queue, and foreign groups'
    /// injectors are the liveness fallback of last resort (counted as
    /// cross-group steals; keeps pinned work flowing even when its group
    /// is unstaffed, e.g. after an elastic shrink).
    fn find_task(&self, idx: usize, rng: &mut XorShift64) -> Option<RunnableTask> {
        while let Some(id) = self.queues[idx].pop() {
            if let Some(task) = self.registry.claim(id) {
                return Some(task);
            }
        }
        if let Some(task) = self.pop_own_group_injector(idx) {
            return Some(task);
        }
        let found = match self.config.scheduler {
            SchedulerPolicy::HelpFirst => self.pop_injector().or_else(|| self.steal(idx, rng, 1)),
            SchedulerPolicy::StealFirst { steal_batch } => self
                .steal(idx, rng, steal_batch.max(1))
                .or_else(|| self.pop_injector()),
        };
        found.or_else(|| self.pop_foreign_group_injectors(idx))
    }

    /// Claims the next runnable task from the global injector.
    fn pop_injector(&self) -> Option<RunnableTask> {
        while let Some(id) = self.injector.pop() {
            if let Some(task) = self.registry.claim(id) {
                return Some(task);
            }
        }
        None
    }

    /// Claims the next runnable task pinned to this worker's own group.
    fn pop_own_group_injector(&self, idx: usize) -> Option<RunnableTask> {
        let n = self.group_injectors.len();
        if n <= 1 {
            return None;
        }
        while let Some(id) = self.group_injectors[idx % n].pop() {
            if let Some(task) = self.registry.claim(id) {
                return Some(task);
            }
        }
        None
    }

    /// Last-resort scan of the other groups' injectors, in ring order
    /// from this worker's group. Each success counts as a cross-group
    /// steal: nonzero means the placement left some group idle while
    /// another had a backlog.
    fn pop_foreign_group_injectors(&self, idx: usize) -> Option<RunnableTask> {
        let n = self.group_injectors.len();
        if n <= 1 {
            return None;
        }
        let own = idx % n;
        for off in 1..n {
            let g = (own + off) % n;
            while let Some(id) = self.group_injectors[g].pop() {
                if let Some(task) = self.registry.claim(id) {
                    Metrics::incr(&self.metrics.cross_group_steals);
                    return Some(task);
                }
            }
        }
        None
    }

    /// Random victim probes (a couple of rounds; the worker loop
    /// retries). Steals up to `batch` ids per successful probe; extras
    /// land in this worker's own queue. With worker groups on, the first
    /// round of probes stays inside this worker's group — cross-group
    /// steals are a fallback and counted as such (DESIGN.md §7.1).
    fn steal(&self, idx: usize, rng: &mut XorShift64, batch: usize) -> Option<RunnableTask> {
        let n = self.queues.len();
        if n <= 1 {
            return None;
        }
        let groups = self.group_injectors.len();
        let probes = if groups > 1 { 3 * n } else { 2 * n };
        for probe in 0..probes {
            let victim = rng.next_below(n);
            if victim == idx {
                continue;
            }
            let cross = groups > 1 && victim % groups != idx % groups;
            if cross && probe < n {
                continue; // first round: same-group victims only
            }
            let (first, stolen) = self.queues[victim].steal_batch_into(&self.queues[idx], batch);
            let Some(first) = first else {
                Metrics::incr(&self.metrics.steal_failures);
                continue;
            };
            Metrics::incr(&self.metrics.steals);
            Metrics::add(&self.metrics.steal_batch_items, stolen as u64);
            if cross {
                Metrics::incr(&self.metrics.cross_group_steals);
            }
            if let Some(task) = self.registry.claim(first) {
                return Some(task);
            }
            // The first id was stale; any extras landed in our own queue —
            // drain them through the normal local path before re-probing.
            while let Some(id) = self.queues[idx].pop() {
                if let Some(task) = self.registry.claim(id) {
                    return Some(task);
                }
            }
        }
        None
    }

    fn worker_main(self: Arc<Self>, idx: usize) {
        WORKER_INDEX.with(|w| w.set(Some(idx)));
        let mut rng =
            XorShift64::new(0xC0FF_EE00 ^ (idx as u64 + 1).wrapping_mul(0x1234_5678_9ABC));
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            // Elastic shrink: retire promptly (before claiming more work)
            // so a later grow can re-staff this slot without waiting out a
            // backlog. Anything left in this worker's queue stays stealable
            // by the survivors; queue 0 never retires (target >= 1).
            if idx >= self.target_workers.load(Ordering::Acquire) {
                break;
            }
            if let Some(task) = self.find_task(idx, &mut rng) {
                self.execute(task);
                continue;
            }
            Metrics::incr(&self.metrics.parks);
            self.sleeper.park(self.config.park_timeout);
        }
        WORKER_INDEX.with(|w| w.set(None));
    }
}

/// Spawns the worker thread for queue slot `idx`.
fn spawn_worker(inner: &Arc<RtInner>, idx: usize) -> JoinHandle<()> {
    let rt = Arc::clone(inner);
    std::thread::Builder::new()
        .name(format!("swan-worker-{idx}"))
        .spawn(move || rt.worker_main(idx))
        .expect("failed to spawn worker thread")
}

/// A work-stealing task-dataflow runtime, in the mold of Swan.
///
/// Create one per process (or per benchmark configuration), then open
/// [`Runtime::scope`]s to spawn tasks. Dropping the runtime joins all
/// workers.
///
/// ```
/// let rt = swan::Runtime::with_workers(4);
/// let mut x = 0u64;
/// rt.scope(|s| {
///     s.spawn((), |_, ()| { /* runs in parallel */ });
///     x = 42; // the closure may borrow the environment
/// });
/// assert_eq!(x, 42);
/// ```
pub struct Runtime {
    inner: Arc<RtInner>,
    /// One slot per worker queue; `None` for slots whose worker is not
    /// currently staffed (never started, or retired by an elastic shrink).
    threads: Mutex<Vec<Option<JoinHandle<()>>>>,
}

impl Runtime {
    /// Builds a runtime from a configuration.
    pub fn new(config: RuntimeConfig) -> Self {
        let workers = config.workers.max(1);
        let max_workers = config.max_workers.max(workers);
        let queues = (0..max_workers)
            .map(|_| match config.scheduler {
                SchedulerPolicy::HelpFirst => {
                    WorkerQueue::Fifo(Ring::with_capacity(QUEUE_CAPACITY))
                }
                SchedulerPolicy::StealFirst { .. } => {
                    WorkerQueue::Deque(Deque::with_capacity(QUEUE_CAPACITY))
                }
            })
            .collect();
        // Worker groups beyond the queue count would be permanently
        // unstaffed; clamp so every group owns at least one worker slot.
        let groups = config.worker_groups.clamp(1, max_workers);
        let group_injectors = if groups > 1 {
            (0..groups).map(|_| Injector::new()).collect()
        } else {
            Vec::new()
        };
        let inner = Arc::new(RtInner {
            config,
            registry: Registry::new(),
            injector: Injector::new(),
            group_injectors,
            queues,
            sleeper: Sleeper::new(),
            metrics: Metrics::default(),
            target_workers: AtomicUsize::new(workers),
            open_scopes: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            shutdown: AtomicBool::new(false),
        });
        let threads = (0..max_workers)
            .map(|idx| (idx < workers).then(|| spawn_worker(&inner, idx)))
            .collect();
        Self {
            inner,
            threads: Mutex::new(threads),
        }
    }

    /// Runtime with `workers` threads and default settings.
    pub fn with_workers(workers: usize) -> Self {
        Self::new(RuntimeConfig::new().workers(workers))
    }

    /// A long-lived **service** runtime: one worker per machine core, kept
    /// hot across jobs (idle workers park on the sleeper, costing nothing
    /// between jobs), with elastic headroom to [`Runtime::resize_workers`]
    /// anywhere in `1..=max(cores, 8)`. Because hyperqueue programs are
    /// scale-free, resizing never changes observable job output — only
    /// throughput.
    pub fn persistent() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self::new(RuntimeConfig::new().workers(cores..=cores.max(8)))
    }

    /// Number of worker threads the runtime was configured with (the
    /// initial staffing; see [`Runtime::active_workers`] for the current
    /// elastic target).
    pub fn workers(&self) -> usize {
        self.inner.config.workers
    }

    /// Current elastic worker target (threads serving tasks right now,
    /// modulo retirements still in flight).
    pub fn active_workers(&self) -> usize {
        self.inner.target_workers.load(Ordering::Acquire)
    }

    /// Upper bound for [`Runtime::resize_workers`].
    pub fn max_workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// The worker-loop scheduling policy this runtime runs.
    pub fn scheduler(&self) -> SchedulerPolicy {
        self.inner.config.scheduler
    }

    /// Number of worker groups available for partition pinning (1 when
    /// grouping is off; see [`crate::RuntimeConfig::worker_groups`]).
    pub fn worker_groups(&self) -> usize {
        self.inner.group_injectors.len().max(1)
    }

    /// Elastically grows or shrinks the worker pool to `n` threads
    /// (clamped to `1..=max_workers`); returns the applied target.
    ///
    /// Shrinking is asynchronous: surplus workers retire as soon as they
    /// next look for work, and any tasks left in their queues remain
    /// stealable by the survivors. Growing first joins the retired threads
    /// of the re-staffed slots, then spawns fresh ones. Determinism is
    /// unaffected — programs on this runtime are scale-free, so a resize
    /// (even mid-job) changes throughput, never output.
    pub fn resize_workers(&self, n: usize) -> usize {
        let n = n.clamp(1, self.inner.queues.len());
        let mut threads = self.threads.lock();
        let cur = self.inner.target_workers.load(Ordering::Acquire);
        if n > cur {
            // Re-staffed slots may still hold a retiring thread from an
            // earlier shrink: join it before handing the queue to a new
            // one (retirement is prompt — checked before claiming work).
            for slot in threads[cur..n].iter_mut() {
                if let Some(h) = slot.take() {
                    let _ = h.join();
                }
            }
            self.inner.target_workers.store(n, Ordering::Release);
            for (off, slot) in threads[cur..n].iter_mut().enumerate() {
                *slot = Some(spawn_worker(&self.inner, cur + off));
            }
        } else if n < cur {
            self.inner.target_workers.store(n, Ordering::Release);
            // Wake parked surplus workers so they notice and retire.
            self.inner.sleeper.notify_all();
        }
        n
    }

    /// Opens a scope: tasks spawned within may borrow from the enclosing
    /// environment; the scope returns only after every transitively spawned
    /// task has completed (this is the `sync` at the end of the paper's
    /// top-level procedure). Panics from tasks resurface here.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: FnOnce(&Scope<'env>) -> R,
    {
        // Open-scope accounting for `quiesce`: the decrement lives in a
        // drop guard so panicking scopes are counted out too, and it
        // notifies the sleeper so a quiescing thread re-checks promptly.
        struct OpenScope<'rt>(&'rt RtInner);
        impl Drop for OpenScope<'_> {
            fn drop(&mut self) {
                self.0.open_scopes.fetch_sub(1, Ordering::SeqCst);
                self.0.sleeper.notify_all();
            }
        }
        self.inner.open_scopes.fetch_add(1, Ordering::SeqCst);
        let _open = OpenScope(&self.inner);
        let root = Frame::new_root(self.inner.alloc_id());
        let scope = Scope::new(Arc::clone(&self.inner), Arc::clone(&root));
        let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Always wait — spawned tasks may borrow the environment. The
        // caller parks rather than helping: the configured worker count is
        // the whole compute budget (Cilk counts the caller as one of its P
        // workers; we keep it out of the pool instead so `with_workers(c)`
        // means exactly c executing threads).
        self.inner.wait_children_passive(&root);
        match result {
            Ok(value) => {
                if let Some(payload) = root.take_panic() {
                    panic::resume_unwind(payload);
                }
                value
            }
            Err(payload) => panic::resume_unwind(payload),
        }
    }

    /// Scopes currently open on this runtime (jobs, in service terms).
    pub fn open_scopes(&self) -> usize {
        self.inner.open_scopes.load(Ordering::SeqCst)
    }

    /// Drains the runtime: blocks until every currently open
    /// [`Runtime::scope`] has returned. This is the graceful-shutdown
    /// primitive for persistent services (see [`Runtime::persistent`]):
    /// stop submitting new work first (quiescing does not fence new
    /// scopes), then `quiesce()` guarantees all in-flight jobs have fully
    /// drained before the process tears the service down.
    ///
    /// The caller parks on the runtime's sleeper between checks, so
    /// waiting costs nothing while jobs run.
    pub fn quiesce(&self) {
        while self.inner.open_scopes.load(Ordering::SeqCst) > 0 {
            self.inner.sleeper.park(self.inner.config.park_timeout);
        }
    }

    /// Bounded [`Runtime::quiesce`]: `true` if the runtime drained within
    /// `timeout`, `false` if scopes were still open when it elapsed.
    pub fn quiesce_timeout(&self, timeout: std::time::Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        while self.inner.open_scopes.load(Ordering::SeqCst) > 0 {
            let now = std::time::Instant::now();
            if now >= deadline {
                return false;
            }
            self.inner
                .sleeper
                .park((deadline - now).min(self.inner.config.park_timeout));
        }
        true
    }

    /// A snapshot of the scheduler counters.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }

    /// A cheap handle for use by dependency objects (hyperqueues).
    pub fn handle(&self) -> RuntimeHandle {
        RuntimeHandle {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        self.inner.sleeper.notify_all();
        for t in self.threads.get_mut().iter_mut().filter_map(Option::take) {
            let _ = t.join();
        }
    }
}

/// A cheap, clonable reference to a runtime, used by dependency objects
/// (notably hyperqueues) to access the blocking/help protocol without a
/// lifetime tie to the [`Runtime`] value.
#[derive(Clone)]
pub struct RuntimeHandle {
    pub(crate) inner: Arc<RtInner>,
}

impl RuntimeHandle {
    /// Blocks the calling worker until `cond` holds, executing only
    /// help-eligible tasks meanwhile (see module docs). This implements the
    /// paper's design choice of *blocking the worker* on `empty()` (§4.5)
    /// while remaining deadlock-free under help-first scheduling.
    pub fn block_until(&self, frame: &Arc<Frame>, mode: HelpMode, cond: impl FnMut() -> bool) {
        self.inner.block_until(frame, mode, cond);
    }

    /// Wakes parked workers; called e.g. after a hyperqueue push so blocked
    /// consumers re-check their condition. Returns `false` when the wake
    /// was suppressed because no worker was parked (the common steady-state
    /// case) — callers may count suppressions for observability.
    pub fn notify(&self) -> bool {
        self.inner.sleeper.notify_all()
    }

    /// Number of worker threads in the runtime.
    pub fn workers(&self) -> usize {
        self.inner.config.workers
    }

    /// Scheduler metrics snapshot.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.inner.metrics.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn runtime_starts_and_stops() {
        let rt = Runtime::with_workers(2);
        assert_eq!(rt.workers(), 2);
        drop(rt);
    }

    #[test]
    fn scope_runs_simple_task() {
        let rt = Runtime::with_workers(2);
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..10 {
                s.spawn((), |_, ()| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn scope_allows_borrowing_environment() {
        let rt = Runtime::with_workers(2);
        let data = [1u64, 2, 3, 4];
        let sum = AtomicU64::new(0);
        let sum_ref = &sum;
        rt.scope(|s| {
            for chunk in data.chunks(2) {
                s.spawn((), move |_, ()| {
                    // `chunk` borrows `data` from outside the scope.
                    sum_ref.fetch_add(chunk.iter().sum::<u64>(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(sum.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn nested_spawns_complete_before_scope_returns() {
        let rt = Runtime::with_workers(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c2 = Arc::clone(&counter);
        rt.scope(move |s| {
            let c3 = c2;
            s.spawn((), move |s, ()| {
                for _ in 0..8 {
                    let c = Arc::clone(&c3);
                    s.spawn((), move |_, ()| {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn deep_recursion_fork_join() {
        // fib via counting: fib(n) equals the number of `1` leaves reached.
        fn go<'s>(s: &crate::scope::Scope<'s>, n: u64, out: &'s AtomicU64) {
            if n < 2 {
                out.fetch_add(n, Ordering::Relaxed);
                return;
            }
            s.spawn((), move |s, ()| go(s, n - 1, out));
            go(s, n - 2, out);
        }
        let rt = Runtime::with_workers(4);
        let out = AtomicU64::new(0);
        rt.scope(|s| go(s, 15, &out));
        assert_eq!(out.load(Ordering::SeqCst), 610); // fib(15)
    }

    #[test]
    fn panic_in_task_propagates_to_scope() {
        let rt = Runtime::with_workers(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|s| {
                s.spawn((), |_, ()| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        // The runtime must still be usable afterwards.
        let ok = AtomicUsize::new(0);
        rt.scope(|s| {
            s.spawn((), |_, ()| {
                ok.fetch_add(1, Ordering::SeqCst);
            });
        });
        assert_eq!(ok.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn single_worker_runtime_makes_progress() {
        let rt = Runtime::with_workers(1);
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..100 {
                s.spawn((), |_, ()| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn elastic_resize_grows_and_shrinks_between_work() {
        let rt = Runtime::new(RuntimeConfig::new().workers(1..=4));
        assert_eq!((rt.active_workers(), rt.max_workers()), (1, 4));
        let run_batch = |expect: usize| {
            let counter = AtomicUsize::new(0);
            rt.scope(|s| {
                for _ in 0..expect {
                    s.spawn((), |_, ()| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(counter.load(Ordering::SeqCst), expect);
        };
        run_batch(32);
        assert_eq!(rt.resize_workers(4), 4);
        run_batch(32);
        assert_eq!(rt.resize_workers(2), 2);
        run_batch(32);
        // Grow again: re-staffs slots whose threads retired above.
        assert_eq!(rt.resize_workers(3), 3);
        run_batch(32);
        // Clamping: 0 -> 1, beyond max -> max.
        assert_eq!(rt.resize_workers(0), 1);
        assert_eq!(rt.resize_workers(99), 4);
        run_batch(32);
    }

    #[test]
    fn resize_mid_job_does_not_lose_tasks() {
        let rt = Runtime::new(RuntimeConfig::new().workers(4..=8));
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for i in 0..256 {
                s.spawn((), |_, ()| {
                    let mut x = 0u64;
                    for j in 0..20_000u64 {
                        x = x.wrapping_mul(31).wrapping_add(j);
                    }
                    std::hint::black_box(x);
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                if i == 64 {
                    rt.resize_workers(1);
                }
                if i == 128 {
                    rt.resize_workers(8);
                }
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 256);
    }

    #[test]
    fn persistent_runtime_serves_scopes_from_multiple_threads() {
        let rt = Arc::new(Runtime::persistent());
        assert!(rt.max_workers() >= rt.active_workers());
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let (rt, total) = (Arc::clone(&rt), Arc::clone(&total));
                std::thread::spawn(move || {
                    for _ in 0..8 {
                        rt.scope(|s| {
                            for _ in 0..4 {
                                let t = Arc::clone(&total);
                                s.spawn((), move |_, ()| {
                                    t.fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::SeqCst), 4 * 8 * 4);
    }

    #[test]
    fn quiesce_waits_for_open_scopes() {
        let rt = Arc::new(Runtime::with_workers(2));
        assert_eq!(rt.open_scopes(), 0);
        rt.quiesce(); // idle runtime: returns immediately
        let release = Arc::new(AtomicBool::new(false));
        let (rt2, release2) = (Arc::clone(&rt), Arc::clone(&release));
        let worker = std::thread::spawn(move || {
            rt2.scope(|s| {
                s.spawn((), move |_, ()| {
                    while !release2.load(Ordering::Acquire) {
                        std::thread::sleep(std::time::Duration::from_millis(1));
                    }
                });
            });
        });
        // The scope above is held open by its spinning task.
        while rt.open_scopes() == 0 {
            std::thread::yield_now();
        }
        assert!(
            !rt.quiesce_timeout(std::time::Duration::from_millis(30)),
            "quiesce must not report drained while a scope is open"
        );
        release.store(true, Ordering::Release);
        rt.quiesce();
        assert_eq!(rt.open_scopes(), 0);
        worker.join().unwrap();
    }

    #[test]
    fn quiesce_counts_out_panicking_scopes() {
        let rt = Runtime::with_workers(2);
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|s| {
                s.spawn((), |_, ()| panic!("boom"));
            });
        }));
        assert!(result.is_err());
        assert_eq!(rt.open_scopes(), 0, "panicked scope still counted open");
        assert!(rt.quiesce_timeout(std::time::Duration::from_secs(1)));
    }

    fn steal_first_rt(workers: usize) -> Runtime {
        Runtime::new(
            RuntimeConfig::new()
                .workers(workers)
                .scheduler(SchedulerPolicy::StealFirst { steal_batch: 4 }),
        )
    }

    #[test]
    fn steal_first_runs_simple_and_nested_tasks() {
        for workers in [1usize, 2, 4] {
            let rt = steal_first_rt(workers);
            assert_eq!(
                rt.scheduler(),
                SchedulerPolicy::StealFirst { steal_batch: 4 }
            );
            let counter = Arc::new(AtomicUsize::new(0));
            let c2 = Arc::clone(&counter);
            rt.scope(move |s| {
                let c3 = c2;
                s.spawn((), move |s, ()| {
                    for _ in 0..32 {
                        let c = Arc::clone(&c3);
                        s.spawn((), move |_, ()| {
                            c.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            });
            assert_eq!(counter.load(Ordering::SeqCst), 32, "{workers} workers");
        }
    }

    #[test]
    fn steal_first_deep_fork_join() {
        fn go<'s>(s: &crate::scope::Scope<'s>, n: u64, out: &'s AtomicU64) {
            if n < 2 {
                out.fetch_add(n, Ordering::Relaxed);
                return;
            }
            s.spawn((), move |s, ()| go(s, n - 1, out));
            go(s, n - 2, out);
        }
        let rt = steal_first_rt(4);
        let out = AtomicU64::new(0);
        rt.scope(|s| go(s, 15, &out));
        assert_eq!(out.load(Ordering::SeqCst), 610); // fib(15)
    }

    #[test]
    fn steal_first_resize_mid_job_does_not_lose_tasks() {
        let rt = Runtime::new(
            RuntimeConfig::new()
                .workers(4..=8)
                .scheduler(SchedulerPolicy::StealFirst { steal_batch: 16 }),
        );
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for i in 0..256 {
                s.spawn((), |_, ()| {
                    let mut x = 0u64;
                    for j in 0..20_000u64 {
                        x = x.wrapping_mul(31).wrapping_add(j);
                    }
                    std::hint::black_box(x);
                    counter.fetch_add(1, Ordering::SeqCst);
                });
                if i == 64 {
                    rt.resize_workers(1);
                }
                if i == 128 {
                    rt.resize_workers(8);
                }
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 256);
    }

    #[test]
    fn steal_first_overflow_spills_to_injector() {
        // Spawn far more tasks than one deque holds (capacity 512) from a
        // single frame: the overflow must ride the injector, and every
        // task must still run exactly once.
        let rt = steal_first_rt(2);
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            s.spawn((), |s, ()| {
                for _ in 0..2000 {
                    s.spawn((), |_, ()| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 2000);
    }

    #[test]
    fn pinned_tasks_run_on_grouped_runtimes() {
        for (workers, groups) in [(4usize, 2usize), (2, 2), (1, 2), (4, 4)] {
            let rt = Runtime::new(RuntimeConfig::new().workers(workers).worker_groups(groups));
            assert_eq!(rt.worker_groups(), groups.min(workers).max(1));
            let counter = AtomicUsize::new(0);
            rt.scope(|s| {
                for i in 0..64u32 {
                    s.spawn_pinned(i % groups as u32, (), |_, ()| {
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            assert_eq!(
                counter.load(Ordering::SeqCst),
                64,
                "workers={workers} groups={groups}"
            );
        }
    }

    #[test]
    fn pinning_is_advisory_on_ungrouped_runtimes() {
        let rt = Runtime::with_workers(2);
        assert_eq!(rt.worker_groups(), 1);
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..16 {
                s.spawn_pinned(7, (), |_, ()| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn children_inherit_the_group_pin() {
        let rt = Runtime::new(RuntimeConfig::new().workers(4).worker_groups(2));
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            s.spawn_pinned(1, (), |s, ()| {
                assert_eq!(s.frame().group, Some(1));
                for _ in 0..8 {
                    s.spawn((), |s, ()| {
                        assert_eq!(s.frame().group, Some(1), "children inherit the pin");
                        counter.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        });
        assert_eq!(counter.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn unstaffed_group_work_is_rescued_cross_group() {
        // Two groups but a single worker (group 0): everything pinned to
        // group 1 must still run, via the foreign-injector fallback, and
        // the cross-group counter must show it.
        let rt = Runtime::new(RuntimeConfig::new().workers(1..=2).worker_groups(2));
        let counter = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..32 {
                s.spawn_pinned(1, (), |_, ()| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 32);
        assert!(
            rt.metrics().cross_group_steals > 0,
            "rescuing group-1 work from the lone group-0 worker must count"
        );
    }

    #[test]
    fn grouped_steal_first_completes_fork_join() {
        let rt = Runtime::new(
            RuntimeConfig::new()
                .workers(4)
                .worker_groups(2)
                .scheduler(SchedulerPolicy::StealFirst { steal_batch: 4 }),
        );
        let out = AtomicU64::new(0);
        let out_ref = &out;
        rt.scope(|s| {
            for g in 0..2u32 {
                s.spawn_pinned(g, (), move |s, ()| {
                    for i in 0..16u64 {
                        s.spawn((), move |_, ()| {
                            out_ref.fetch_add(i, Ordering::Relaxed);
                        });
                    }
                });
            }
        });
        assert_eq!(out.load(Ordering::SeqCst), 2 * (0..16).sum::<u64>());
    }

    #[test]
    fn work_is_actually_stolen_across_workers() {
        // A chain of sequentially-spawning tasks from one frame, each doing
        // real work, should exercise the rings; with several workers some
        // steals or injector traffic must occur. We assert the weaker
        // property that all tasks ran and multiple workers participated.
        let rt = Runtime::with_workers(4);
        let ids = parking_lot::Mutex::new(std::collections::HashSet::new());
        rt.scope(|s| {
            for _ in 0..64 {
                s.spawn((), |_, ()| {
                    let mut x = 0u64;
                    for i in 0..200_000u64 {
                        x = x.wrapping_mul(31).wrapping_add(i);
                    }
                    std::hint::black_box(x);
                    ids.lock().insert(std::thread::current().id());
                });
            }
        });
        let n = ids.lock().len();
        assert!(n >= 2, "expected multiple workers to run tasks, got {n}");
    }
}
