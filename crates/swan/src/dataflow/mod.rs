//! Dataflow dependence machinery: the generic engine plus versioned
//! objects.

pub mod engine;
pub mod versioned;

pub use engine::{AcquireCtx, DepArg, DepList};
pub use versioned::{next_object_id, InDep, InOutDep, OutDep, ReadGuard, Versioned, WriteGuard};
