//! The generic dependence engine.
//!
//! Swan decides when a spawned task may start from the *access modes* of its
//! arguments (`indep`/`outdep`/`inoutdep` on versioned objects,
//! `pushdep`/`popdep`/`pushpopdep` on hyperqueues — paper §2.3). This module
//! keeps the runtime object-agnostic: an argument is anything implementing
//! [`DepArg`]. At spawn time the argument's `acquire` runs **in program
//! order with respect to its object** (guaranteed because only the task
//! holding privileges on an object can spawn accessors to it — paper §2.3,
//! ref \[10\]); it names predecessor tasks, may register completion callbacks,
//! and returns the guard value handed to the task body.

use std::sync::Arc;

use crate::frame::{Frame, FrameId};
use crate::runtime::{RtInner, RuntimeHandle};
use crate::sched::ReleaseFn;

/// Context available to [`DepArg::acquire`] during a spawn.
pub struct AcquireCtx<'a> {
    pub(crate) rt: &'a Arc<RtInner>,
    pub(crate) task: FrameId,
    pub(crate) frame: &'a Arc<Frame>,
    pub(crate) parent: &'a Arc<Frame>,
    pub(crate) preds: Vec<FrameId>,
    pub(crate) releases: Vec<ReleaseFn>,
}

impl<'a> AcquireCtx<'a> {
    pub(crate) fn new(
        rt: &'a Arc<RtInner>,
        task: FrameId,
        frame: &'a Arc<Frame>,
        parent: &'a Arc<Frame>,
    ) -> Self {
        Self {
            rt,
            task,
            frame,
            parent,
            preds: Vec::new(),
            releases: Vec::new(),
        }
    }

    /// Id of the task being spawned.
    pub fn task_id(&self) -> FrameId {
        self.task
    }

    /// The frame of the task being spawned.
    pub fn frame(&self) -> &Arc<Frame> {
        self.frame
    }

    /// The spawning (parent) frame.
    pub fn parent_frame(&self) -> &Arc<Frame> {
        self.parent
    }

    /// Declares that the spawned task must wait for `pred` to complete.
    /// Predecessors that already completed are ignored by the registry.
    pub fn add_predecessor(&mut self, pred: FrameId) {
        self.preds.push(pred);
    }

    /// Registers a callback to run when the spawned task completes (after
    /// its body and its implicit sync — the §4.2 "task completion" moment).
    pub fn on_release(&mut self, f: impl FnOnce() + Send + 'static) {
        self.releases.push(Box::new(f));
    }

    /// A runtime handle, for dependency objects that need the blocking/help
    /// protocol at run time (hyperqueues).
    pub fn runtime(&self) -> RuntimeHandle {
        RuntimeHandle {
            inner: Arc::clone(self.rt),
        }
    }
}

/// A spawn argument with an access mode.
///
/// `acquire` is called on the spawning thread, in spawn (program) order with
/// respect to the underlying object, *before* the task can run. It returns
/// the guard moved into the task body.
pub trait DepArg {
    /// What the task body receives for this argument.
    type Guard: Send;
    /// Performs object-side bookkeeping; see trait docs.
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> Self::Guard;
}

/// A dynamic, homogeneous dependency list: every element is acquired in
/// vector (= program) order and the task body receives one guard per
/// element. This is what graph-shaped pipelines need — a fan-in or fan-out
/// stage's edge count is data, not program text, so it cannot be spelled as
/// a tuple.
///
/// ```
/// use swan::{Runtime, Versioned};
///
/// let rt = Runtime::with_workers(2);
/// let cells: Vec<Versioned<u32>> = (0..4).map(Versioned::new).collect();
/// let sum = Versioned::new(0u32);
/// rt.scope(|s| {
///     let reads: Vec<_> = cells.iter().map(|c| c.read()).collect();
///     s.spawn((reads, sum.write()), |_, (guards, mut out)| {
///         *out = guards.iter().map(|g| **g).sum();
///     });
/// });
/// assert_eq!(sum.read_latest(), 0 + 1 + 2 + 3);
/// ```
impl<D: DepArg> DepArg for Vec<D> {
    type Guard = Vec<D::Guard>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> Self::Guard {
        self.into_iter().map(|d| d.acquire(ctx)).collect()
    }
}

/// A (possibly empty) tuple of [`DepArg`]s.
pub trait DepList {
    /// Tuple of guards, one per argument.
    type Guards: Send;
    /// Acquires every argument, left to right (program order).
    fn acquire_all(self, ctx: &mut AcquireCtx<'_>) -> Self::Guards;
}

impl DepList for () {
    type Guards = ();
    fn acquire_all(self, _ctx: &mut AcquireCtx<'_>) -> Self::Guards {}
}

macro_rules! impl_deplist {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: DepArg),+> DepList for ($($name,)+) {
            type Guards = ($($name::Guard,)+);
            fn acquire_all(self, ctx: &mut AcquireCtx<'_>) -> Self::Guards {
                ($(self.$idx.acquire(ctx),)+)
            }
        }
    };
}

impl_deplist!(A: 0);
impl_deplist!(A: 0, B: 1);
impl_deplist!(A: 0, B: 1, C: 2);
impl_deplist!(A: 0, B: 1, C: 2, D: 3);
impl_deplist!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_deplist!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);
impl_deplist!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6);
impl_deplist!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// A trivial DepArg that records acquire order and declares no
    /// predecessors.
    struct Probe<'a>(&'a AtomicUsize, usize);

    impl DepArg for Probe<'_> {
        type Guard = usize;
        fn acquire(self, _ctx: &mut AcquireCtx<'_>) -> usize {
            let order = self.0.fetch_add(1, Ordering::SeqCst);
            assert_eq!(order, self.1, "acquire must run left to right");
            self.1
        }
    }

    #[test]
    fn tuple_acquire_is_left_to_right() {
        let rt = Runtime::with_workers(1);
        let order = AtomicUsize::new(0);
        rt.scope(|s| {
            s.spawn(
                (Probe(&order, 0), Probe(&order, 1), Probe(&order, 2)),
                |_, (a, b, c)| {
                    assert_eq!((a, b, c), (0, 1, 2));
                },
            );
        });
        assert_eq!(order.load(Ordering::SeqCst), 3);
    }
}
