//! Versioned objects: the paper's `versioned<T>` with `indep`, `outdep`
//! and `inoutdep` access modes (Figure 1, §1).
//!
//! A versioned object tracks, per *current version*: the last writer task
//! and the reader tasks spawned since. Access-mode semantics:
//!
//! * **indep** (read): depends on the last writer of the current version.
//! * **outdep** (write): *renames* — a fresh version is allocated and
//!   becomes current, so the writer needs **no** predecessors. This is the
//!   paper's "automatic memory management … to break write-after-read
//!   dependences" (§1): older readers keep their version alive via `Arc`.
//! * **inoutdep** (read-modify-write): operates in place on the current
//!   version; depends on the last writer *and* all readers spawned since.
//!
//! Safety note: guards give `&T`/`&mut T` into an `UnsafeCell` without a
//! lock. This is sound because the dependence engine schedules conflicting
//! accessors strictly after one another — precisely the guarantee the
//! paper's runtime provides — and because readers of *descendant* tasks are
//! covered transitively: a reader's children complete before the reader
//! does (implicit sync), and the reader itself is a named predecessor of
//! the next writer.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::dataflow::engine::{AcquireCtx, DepArg};
use crate::frame::FrameId;

/// Global object-id allocator shared by all dependency-object kinds
/// (versioned objects, hyperqueues). Ids label selective-sync counters and
/// debugging output.
static NEXT_OBJECT_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a fresh dependency-object id.
pub fn next_object_id() -> u64 {
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}

struct VersionCell<T> {
    data: UnsafeCell<T>,
}

// SAFETY: access to `data` is serialized by the dependence engine (see
// module docs); the cell itself is shared freely.
unsafe impl<T: Send> Send for VersionCell<T> {}
unsafe impl<T: Send> Sync for VersionCell<T> {}

struct VState<T> {
    current: Arc<VersionCell<T>>,
    last_writer: Option<FrameId>,
    /// Reader tasks spawned since the last writer (direct children of
    /// privilege holders; descendants are covered transitively).
    readers: Vec<FrameId>,
}

struct VersionedInner<T> {
    id: u64,
    state: Mutex<VState<T>>,
}

/// A dataflow variable: spawn arguments are created with [`Versioned::read`]
/// (`indep`), [`Versioned::write`] (`outdep`) and [`Versioned::update`]
/// (`inoutdep`).
///
/// ```
/// use swan::{Runtime, Versioned};
/// let rt = Runtime::with_workers(2);
/// let v: Versioned<u64> = Versioned::new(0);
/// rt.scope(|s| {
///     s.spawn((v.update(),), |_, (mut g,)| *g += 1);
///     s.spawn((v.update(),), |_, (mut g,)| *g *= 10);
///     s.spawn((v.read(),), |_, (g,)| assert_eq!(*g, 10));
/// });
/// assert_eq!(v.read_latest(), 10);
/// ```
pub struct Versioned<T> {
    inner: Arc<VersionedInner<T>>,
}

impl<T> Clone for Versioned<T> {
    fn clone(&self) -> Self {
        Self {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + 'static> Versioned<T> {
    /// Creates a versioned object holding `value`.
    pub fn new(value: T) -> Self {
        Self {
            inner: Arc::new(VersionedInner {
                id: next_object_id(),
                state: Mutex::new(VState {
                    current: Arc::new(VersionCell {
                        data: UnsafeCell::new(value),
                    }),
                    last_writer: None,
                    readers: Vec::new(),
                }),
            }),
        }
    }

    /// Object id (diagnostics, selective sync labels).
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }

    /// `indep` access for a spawn.
    pub fn read(&self) -> InDep<T> {
        InDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `inoutdep` access for a spawn.
    pub fn update(&self) -> InOutDep<T> {
        InOutDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Reads the latest version. Intended for use *after* a `sync` (or
    /// outside any scope): racing this against in-flight writers returns
    /// whichever version is current at the instant of the call.
    pub fn read_latest(&self) -> T
    where
        T: Clone,
    {
        let state = self.inner.state.lock();
        // SAFETY: shared read of the current version; callers only use this
        // after synchronization with writers (documented contract).
        unsafe { (*state.current.data.get()).clone() }
    }
}

impl<T: Send + Default + 'static> Versioned<T> {
    /// `outdep` access for a spawn: the task receives a **fresh**
    /// `T::default()` version (renaming).
    pub fn write(&self) -> OutDep<T> {
        OutDep {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T: Send + Default + 'static> Default for Versioned<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

/// `indep` spawn argument. Created by [`Versioned::read`].
pub struct InDep<T> {
    inner: Arc<VersionedInner<T>>,
}

/// `outdep` spawn argument. Created by [`Versioned::write`].
pub struct OutDep<T> {
    inner: Arc<VersionedInner<T>>,
}

/// `inoutdep` spawn argument. Created by [`Versioned::update`].
pub struct InOutDep<T> {
    inner: Arc<VersionedInner<T>>,
}

/// Shared read access to one version of a [`Versioned`] object.
pub struct ReadGuard<T> {
    cell: Arc<VersionCell<T>>,
}

/// Exclusive write access to one version of a [`Versioned`] object.
pub struct WriteGuard<T> {
    cell: Arc<VersionCell<T>>,
}

// SAFETY: guards are moved into exactly one task; the dependence engine
// serializes conflicting access (module docs).
unsafe impl<T: Send> Send for ReadGuard<T> {}
unsafe impl<T: Send> Send for WriteGuard<T> {}

impl<T> Deref for ReadGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: scheduled strictly after the version's writer completed;
        // concurrent readers only take shared references.
        unsafe { &*self.cell.data.get() }
    }
}

impl<T> Deref for WriteGuard<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: exclusive by scheduling (last_writer/readers protocol).
        unsafe { &*self.cell.data.get() }
    }
}

impl<T> DerefMut for WriteGuard<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: as above.
        unsafe { &mut *self.cell.data.get() }
    }
}

impl<T: Send + 'static> DepArg for InDep<T> {
    type Guard = ReadGuard<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> Self::Guard {
        let mut state = self.inner.state.lock();
        if let Some(w) = state.last_writer {
            ctx.add_predecessor(w);
        }
        let me = ctx.task_id();
        state.readers.push(me);
        ReadGuard {
            cell: Arc::clone(&state.current),
        }
    }
}

impl<T: Send + Default + 'static> DepArg for OutDep<T> {
    type Guard = WriteGuard<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> Self::Guard {
        let mut state = self.inner.state.lock();
        // Renaming: fresh version, no predecessors.
        let cell = Arc::new(VersionCell {
            data: UnsafeCell::new(T::default()),
        });
        state.current = Arc::clone(&cell);
        state.last_writer = Some(ctx.task_id());
        state.readers.clear();
        WriteGuard { cell }
    }
}

impl<T: Send + 'static> DepArg for InOutDep<T> {
    type Guard = WriteGuard<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> Self::Guard {
        let mut state = self.inner.state.lock();
        if let Some(w) = state.last_writer {
            ctx.add_predecessor(w);
        }
        for r in state.readers.drain(..) {
            ctx.add_predecessor(r);
        }
        state.last_writer = Some(ctx.task_id());
        WriteGuard {
            cell: Arc::clone(&state.current),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Runtime;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn object_ids_are_unique() {
        let a: Versioned<u32> = Versioned::new(0);
        let b: Versioned<u32> = Versioned::new(0);
        assert_ne!(a.object_id(), b.object_id());
    }

    #[test]
    fn inout_chain_serializes() {
        // 100 increments through inoutdep must all be observed: any lost
        // update means two writers overlapped.
        let rt = Runtime::with_workers(8);
        let v: Versioned<u64> = Versioned::new(0);
        rt.scope(|s| {
            for _ in 0..100 {
                s.spawn((v.update(),), |_, (mut g,)| {
                    let cur = *g;
                    // Widen the race window.
                    std::hint::black_box(cur);
                    *g = cur + 1;
                });
            }
        });
        assert_eq!(v.read_latest(), 100);
    }

    #[test]
    fn readers_wait_for_writer() {
        let rt = Runtime::with_workers(8);
        let v: Versioned<u64> = Versioned::new(0);
        let seen = AtomicUsize::new(0);
        rt.scope(|s| {
            s.spawn((v.update(),), |_, (mut g,)| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                *g = 7;
            });
            for _ in 0..10 {
                s.spawn((v.read(),), |_, (g,)| {
                    assert_eq!(*g, 7, "reader ran before writer");
                    seen.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(seen.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn writer_after_readers_waits_for_them_inout() {
        let rt = Runtime::with_workers(8);
        let v: Versioned<Vec<u64>> = Versioned::new(vec![1, 2, 3]);
        let reads_done = AtomicUsize::new(0);
        rt.scope(|s| {
            for _ in 0..5 {
                s.spawn((v.read(),), |_, (g,)| {
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    assert_eq!(g.len(), 3);
                    reads_done.fetch_add(1, Ordering::SeqCst);
                });
            }
            s.spawn((v.update(),), |_, (mut g,)| {
                // All 5 readers must have finished (inout waits for them).
                assert_eq!(reads_done.load(Ordering::SeqCst), 5);
                g.push(4);
            });
        });
        assert_eq!(v.read_latest().len(), 4);
    }

    #[test]
    fn outdep_renames_so_writer_skips_waiting() {
        // A writer with outdep must NOT wait for prior readers: renaming
        // breaks the WAR dependence. Readers spawned before the writer still
        // see the old version.
        let rt = Runtime::with_workers(4);
        let v: Versioned<u64> = Versioned::new(1);
        let old_reads = AtomicUsize::new(0);
        rt.scope(|s| {
            let gate = &*Box::leak(Box::new(std::sync::atomic::AtomicBool::new(false)));
            s.spawn((v.read(),), |_, (g,)| {
                // Block until the writer has definitely spawned and run.
                while !gate.load(Ordering::Acquire) {
                    std::hint::spin_loop();
                }
                assert_eq!(*g, 1, "reader must see the old version");
                old_reads.fetch_add(1, Ordering::SeqCst);
            });
            s.spawn((v.write(),), move |_, (mut g,)| {
                *g = 99; // fresh version; runs despite the blocked reader
                gate.store(true, Ordering::Release);
            });
        });
        assert_eq!(old_reads.load(Ordering::SeqCst), 1);
        assert_eq!(v.read_latest(), 99);
    }

    #[test]
    fn figure1_two_stage_pipeline_with_objects() {
        // The paper's Figure 1: produce(outdep value); consume(indep value,
        // inoutdep fd). Consumes must run in order (inout chain); produces
        // may run in parallel (renaming).
        let rt = Runtime::with_workers(8);
        let total = 50u64;
        let value: Versioned<u64> = Versioned::new(0);
        let fd: Versioned<Vec<u64>> = Versioned::new(Vec::new());
        rt.scope(|s| {
            for i in 0..total {
                s.spawn((value.write(),), move |_, (mut g,)| {
                    *g = i * i;
                });
                s.spawn((value.read(), fd.update()), move |_, (v, mut log)| {
                    log.push(*v);
                });
            }
        });
        let log = fd.read_latest();
        let expect: Vec<u64> = (0..total).map(|i| i * i).collect();
        assert_eq!(log, expect, "consume stage must observe serial order");
    }
}
