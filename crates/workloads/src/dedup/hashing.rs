//! SHA-1 and SHA-256, implemented from scratch (FIPS 180-4).
//!
//! PARSEC's dedup fingerprints chunks with **SHA-1**, and so does our
//! Deduplicate stage (matching both the role and the cost profile of
//! Table 2). SHA-256 is provided as well — the store is digest-agnostic —
//! and both are validated against the standard test vectors below.
//! (SHA-1 is cryptographically broken for adversarial collisions; for
//! content-addressed dedup of non-adversarial data it remains the
//! reference choice PARSEC made.)

/// Digest type used by the dedup store (SHA-1's 20 bytes, zero-padded so
/// either hash fits).
pub type Digest = [u8; 32];

const K: [u32; 64] = [
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4, 0xab1c5ed5,
    0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174,
    0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967,
    0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85,
    0xa2bfe8a1, 0xa81a664b, 0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
    0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
];

const H0: [u32; 8] = [
    0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab, 0x5be0cd19,
];

/// Streaming SHA-256 state.
pub struct Sha256 {
    h: [u32; 8],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Sha256 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            h: H0,
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let need = 64 - self.buf_len;
            let take = need.min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes and returns the digest.
    pub fn finalize(mut self) -> Digest {
        let bit_len = self.total_len.wrapping_mul(8);
        // Padding: 0x80, zeros, 64-bit big-endian length.
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        // Manual length append (update would recount it).
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 32];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 64];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16]
                .wrapping_add(s0)
                .wrapping_add(w[i - 7])
                .wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut h] = self.h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = h
                .wrapping_add(s1)
                .wrapping_add(ch)
                .wrapping_add(K[i])
                .wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            h = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
        self.h[5] = self.h[5].wrapping_add(f);
        self.h[6] = self.h[6].wrapping_add(g);
        self.h[7] = self.h[7].wrapping_add(h);
    }
}

impl Default for Sha256 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot convenience.
pub fn sha256(data: &[u8]) -> Digest {
    let mut h = Sha256::new();
    h.update(data);
    h.finalize()
}

// ---------------------------------------------------------------------------
// SHA-1
// ---------------------------------------------------------------------------

/// Streaming SHA-1 state (FIPS 180-4 §6.1).
pub struct Sha1 {
    h: [u32; 5],
    buf: [u8; 64],
    buf_len: usize,
    total_len: u64,
}

impl Sha1 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Self {
            h: [0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0],
            buf: [0; 64],
            buf_len: 0,
            total_len: 0,
        }
    }

    /// Absorbs `data`.
    pub fn update(&mut self, mut data: &[u8]) {
        self.total_len = self.total_len.wrapping_add(data.len() as u64);
        if self.buf_len > 0 {
            let take = (64 - self.buf_len).min(data.len());
            self.buf[self.buf_len..self.buf_len + take].copy_from_slice(&data[..take]);
            self.buf_len += take;
            data = &data[take..];
            if self.buf_len == 64 {
                let block = self.buf;
                self.compress(&block);
                self.buf_len = 0;
            }
        }
        while data.len() >= 64 {
            let (block, rest) = data.split_at(64);
            let mut b = [0u8; 64];
            b.copy_from_slice(block);
            self.compress(&b);
            data = rest;
        }
        if !data.is_empty() {
            self.buf[..data.len()].copy_from_slice(data);
            self.buf_len = data.len();
        }
    }

    /// Finishes, returning the 20-byte digest.
    pub fn finalize(mut self) -> [u8; 20] {
        let bit_len = self.total_len.wrapping_mul(8);
        self.update(&[0x80]);
        while self.buf_len != 56 {
            self.update(&[0]);
        }
        self.buf[56..64].copy_from_slice(&bit_len.to_be_bytes());
        let block = self.buf;
        self.compress(&block);
        let mut out = [0u8; 20];
        for (i, w) in self.h.iter().enumerate() {
            out[i * 4..i * 4 + 4].copy_from_slice(&w.to_be_bytes());
        }
        out
    }

    fn compress(&mut self, block: &[u8; 64]) {
        let mut w = [0u32; 80];
        for i in 0..16 {
            w[i] = u32::from_be_bytes([
                block[i * 4],
                block[i * 4 + 1],
                block[i * 4 + 2],
                block[i * 4 + 3],
            ]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let [mut a, mut b, mut c, mut d, mut e] = self.h;
        for (i, &wi) in w.iter().enumerate() {
            let (f, k) = match i {
                0..=19 => ((b & c) | (!b & d), 0x5A827999u32),
                20..=39 => (b ^ c ^ d, 0x6ED9EBA1),
                40..=59 => ((b & c) | (b & d) | (c & d), 0x8F1BBCDC),
                _ => (b ^ c ^ d, 0xCA62C1D6),
            };
            let tmp = a
                .rotate_left(5)
                .wrapping_add(f)
                .wrapping_add(e)
                .wrapping_add(k)
                .wrapping_add(wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        self.h[0] = self.h[0].wrapping_add(a);
        self.h[1] = self.h[1].wrapping_add(b);
        self.h[2] = self.h[2].wrapping_add(c);
        self.h[3] = self.h[3].wrapping_add(d);
        self.h[4] = self.h[4].wrapping_add(e);
    }
}

impl Default for Sha1 {
    fn default() -> Self {
        Self::new()
    }
}

/// One-shot SHA-1, widened into the store's [`Digest`] type (zero-padded).
pub fn sha1(data: &[u8]) -> Digest {
    let mut h = Sha1::new();
    h.update(data);
    let d20 = h.finalize();
    let mut out = [0u8; 32];
    out[..20].copy_from_slice(&d20);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hex(d: &Digest) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn fips_vector_empty() {
        assert_eq!(
            hex(&sha256(b"")),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
        );
    }

    #[test]
    fn fips_vector_abc() {
        assert_eq!(
            hex(&sha256(b"abc")),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
        );
    }

    #[test]
    fn fips_vector_448_bits() {
        assert_eq!(
            hex(&sha256(
                b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"
            )),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
        );
    }

    #[test]
    fn million_a() {
        let mut h = Sha256::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex(&h.finalize()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0"
        );
    }

    fn hex20(d: &[u8; 20]) -> String {
        d.iter().map(|b| format!("{b:02x}")).collect()
    }

    #[test]
    fn sha1_fips_vectors() {
        let one = |data: &[u8]| {
            let mut h = Sha1::new();
            h.update(data);
            hex20(&h.finalize())
        };
        assert_eq!(one(b""), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
        assert_eq!(one(b"abc"), "a9993e364706816aba3e25717850c26c9cd0d89d");
        assert_eq!(
            one(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
        );
    }

    #[test]
    fn sha1_million_a() {
        let mut h = Sha1::new();
        let chunk = [b'a'; 1000];
        for _ in 0..1000 {
            h.update(&chunk);
        }
        assert_eq!(
            hex20(&h.finalize()),
            "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
        );
    }

    #[test]
    fn sha1_digest_widening_pads_with_zeros() {
        let d = sha1(b"abc");
        assert_eq!(&d[20..], &[0u8; 12]);
        assert_ne!(&d[..20], &[0u8; 20]);
    }

    #[test]
    fn streaming_matches_oneshot_at_odd_boundaries() {
        let data: Vec<u8> = (0..997u32).map(|i| (i * 31 % 251) as u8).collect();
        let oneshot = sha256(&data);
        for split in [1usize, 63, 64, 65, 500, 996] {
            let mut h = Sha256::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finalize(), oneshot, "split at {split}");
        }
    }
}
