//! Dedup stage kernels, corpus synthesis, and the archive format.
//!
//! Pipeline (Figure 9): Fragment → FragmentRefine → Deduplicate →
//! Compress → Output, with Fragment and Output serial. FragmentRefine
//! emits a *variable* number of fine chunks per coarse chunk, and Compress
//! is skipped for duplicates — the two properties that break rigid
//! pipeline models (§6.2).

use std::sync::Arc;

use crate::dedup::compress::{compress, decompress, DecompressError};
use crate::dedup::hashing::sha1;
use crate::dedup::rolling::{chunk_boundaries, ChunkParams};
use crate::dedup::store::{ChunkRecord, DedupStore};
use crate::util::SplitMix64;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct DedupConfig {
    /// Total corpus size in bytes.
    pub total_bytes: usize,
    /// Coarse chunk ("large chunk") size for the Fragment stage.
    pub coarse_size: usize,
    /// Fine chunking parameters for FragmentRefine.
    pub chunking: ChunkParams,
    /// Corpus: average record length (repeatable units).
    pub record_len: usize,
    /// Corpus: probability (percent) that a record repeats an earlier one.
    pub dup_percent: u64,
    /// Seed.
    pub seed: u64,
}

impl Default for DedupConfig {
    fn default() -> Self {
        Self {
            // Scaled-down "native": the paper's 672 MB input keeps ~550
            // fine chunks per coarse chunk (2 MB coarse / ~3.6 KB fine);
            // we preserve that ratio — it is what breaks the nested-
            // pipeline formulations (§6.2) — at a laptop-scale input.
            total_bytes: 48 << 20,
            coarse_size: 768 << 10,
            chunking: ChunkParams::default(),
            record_len: 14 * 1024,
            dup_percent: 68,
            seed: 0x000D_ED09,
        }
    }
}

impl DedupConfig {
    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            total_bytes: 1 << 20,
            coarse_size: (1 << 20) / 16,
            chunking: ChunkParams {
                min_size: 256,
                mask_bits: 9,
                max_size: 8192,
                window: 32,
            },
            record_len: 8 * 1024,
            dup_percent: 68,
            seed: 0x000D_ED09,
        }
    }

    /// Bench configuration with a given corpus size.
    pub fn bench(total_bytes: usize) -> Self {
        Self {
            total_bytes,
            coarse_size: (total_bytes / 336).max(768 << 10),
            ..Self::default()
        }
    }
}

/// Generates the synthetic corpus: a stream of records drawn from a pool
/// with reuse, so content-defined chunking finds genuine duplicates at the
/// paper's ~45% unique rate (Table 2: 168k unique of 370k chunks).
pub fn corpus(cfg: &DedupConfig) -> Arc<Vec<u8>> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut data = Vec::with_capacity(cfg.total_bytes);
    let mut pool: Vec<Vec<u8>> = Vec::new();
    while data.len() < cfg.total_bytes {
        let reuse = !pool.is_empty() && rng.next_below(100) < cfg.dup_percent;
        if reuse {
            let i = rng.next_below(pool.len() as u64) as usize;
            data.extend_from_slice(&pool[i]);
        } else {
            let jitter = rng.next_below((cfg.record_len / 2) as u64) as usize;
            let len = cfg.record_len / 2 + jitter;
            let mut rec = vec![0u8; len];
            rng.fill(&mut rec);
            // Make records internally compressible (text-like entropy).
            for b in rec.iter_mut() {
                *b %= 64;
            }
            pool.push(rec.clone());
            data.extend_from_slice(&rec);
        }
    }
    data.truncate(cfg.total_bytes);
    Arc::new(data)
}

// ---------------------------------------------------------------------------
// Pipeline item types.
// ---------------------------------------------------------------------------

/// Fragment output: one coarse chunk.
#[derive(Clone, Debug)]
pub struct CoarseChunk {
    /// Position in serial order.
    pub seq: u64,
    /// Byte range of the corpus (start, end).
    pub range: (usize, usize),
}

/// FragmentRefine output: one fine chunk.
#[derive(Clone, Debug)]
pub struct FineChunk {
    /// Coarse chunk this came from.
    pub coarse_seq: u64,
    /// Index within the coarse chunk.
    pub fine_idx: u32,
    /// True for the last fine chunk of its coarse chunk (drives the
    /// two-level reorder logic of the pthreads driver).
    pub last_in_coarse: bool,
    /// The raw bytes.
    pub data: Vec<u8>,
}

/// Deduplicate/Compress output: the chunk's shared record plus ordering
/// metadata.
pub struct ProcessedChunk {
    /// Coarse chunk this came from.
    pub coarse_seq: u64,
    /// Index within the coarse chunk.
    pub fine_idx: u32,
    /// See [`FineChunk::last_in_coarse`].
    pub last_in_coarse: bool,
    /// Shared dedup record (compressed bytes inside).
    pub record: Arc<ChunkRecord>,
}

// ---------------------------------------------------------------------------
// Stage kernels.
// ---------------------------------------------------------------------------

/// Fragment: split the corpus into coarse chunks at *content-defined*
/// anchors (PARSEC's first rolling-hash pass — serial, but it reads every
/// byte, which is why Table 2 charges it ~3%).
pub fn fragment(cfg: &DedupConfig, corpus: &[u8]) -> Vec<CoarseChunk> {
    let bits = (cfg.coarse_size.max(2) as f64).log2() as u32;
    let params = ChunkParams {
        min_size: cfg.coarse_size / 2,
        mask_bits: bits.clamp(8, 30),
        max_size: cfg.coarse_size * 2,
        window: 48,
    };
    let ends = chunk_boundaries(corpus, &params);
    let mut out = Vec::with_capacity(ends.len());
    let mut start = 0usize;
    for (seq, &end) in ends.iter().enumerate() {
        out.push(CoarseChunk {
            seq: seq as u64,
            range: (start, end),
        });
        start = end;
    }
    out
}

/// FragmentRefine: content-defined chunking of one coarse chunk.
pub fn refine(cfg: &DedupConfig, corpus: &[u8], coarse: &CoarseChunk) -> Vec<FineChunk> {
    let (s, e) = coarse.range;
    let slice = &corpus[s..e];
    let ends = chunk_boundaries(slice, &cfg.chunking);
    let n = ends.len();
    let mut out = Vec::with_capacity(n);
    let mut prev = 0usize;
    for (i, &end) in ends.iter().enumerate() {
        out.push(FineChunk {
            coarse_seq: coarse.seq,
            fine_idx: i as u32,
            last_in_coarse: i + 1 == n,
            data: slice[prev..end].to_vec(),
        });
        prev = end;
    }
    out
}

/// Deduplicate: fingerprint (SHA-1, as in PARSEC) + global store lookup.
/// Returns the shared record and whether this caller is responsible for
/// compressing.
pub fn deduplicate(store: &DedupStore, chunk: &FineChunk) -> (Arc<ChunkRecord>, bool) {
    let hash = sha1(&chunk.data);
    store.insert_or_get(hash, chunk.data.len())
}

/// Compress: fulfill the record's promise (only the inserting caller runs
/// this — "the compression stage is skipped for duplicate chunks").
pub fn compress_into(record: &ChunkRecord, chunk: &FineChunk) {
    record.compressed.set(Arc::new(compress(&chunk.data)));
}

/// The fused Deduplicate+Compress step used by the drivers that keep the
/// two adjacent (see `store.rs` deadlock discipline).
pub fn dedup_and_compress(store: &DedupStore, chunk: FineChunk) -> ProcessedChunk {
    let (record, inserted) = deduplicate(store, &chunk);
    if inserted {
        compress_into(&record, &chunk);
    }
    ProcessedChunk {
        coarse_seq: chunk.coarse_seq,
        fine_idx: chunk.fine_idx,
        last_in_coarse: chunk.last_in_coarse,
        record,
    }
}

// ---------------------------------------------------------------------------
// Output stage: archive encoding (and decoding, for verification).
// ---------------------------------------------------------------------------

const MAGIC: &[u8; 4] = b"DDUP";
const TAG_UNIQUE: u8 = 1;
const TAG_REF: u8 = 2;

/// Serial, in-order output writer. Assigns unique-chunk ids in *serial
/// order of first appearance*, which makes the archive byte-identical
/// across all drivers and worker counts.
pub struct ArchiveWriter {
    out: Vec<u8>,
    ids: std::collections::HashMap<[u8; 32], u32>,
    next_id: u32,
    total_chunks: u64,
}

impl ArchiveWriter {
    /// Starts an archive for `original_len` bytes of input.
    pub fn new(original_len: u64) -> Self {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&original_len.to_le_bytes());
        Self {
            out,
            ids: std::collections::HashMap::new(),
            next_id: 0,
            total_chunks: 0,
        }
    }

    /// Appends one processed chunk (must be called in serial chunk order).
    /// `compressed` must be the record's fulfilled promise value.
    pub fn write(&mut self, record: &ChunkRecord, compressed: &[u8]) {
        self.total_chunks += 1;
        if let Some(&id) = self.ids.get(&record.hash) {
            self.out.push(TAG_REF);
            self.out.extend_from_slice(&id.to_le_bytes());
            return;
        }
        let id = self.next_id;
        self.next_id += 1;
        self.ids.insert(record.hash, id);
        self.out.push(TAG_UNIQUE);
        self.out
            .extend_from_slice(&(compressed.len() as u32).to_le_bytes());
        self.out
            .extend_from_slice(&(record.raw_len as u32).to_le_bytes());
        self.out.extend_from_slice(compressed);
    }

    /// Finishes the archive.
    pub fn finish(self) -> Archive {
        Archive {
            bytes: self.out,
            unique_chunks: self.next_id as u64,
            total_chunks: self.total_chunks,
        }
    }
}

/// A finished archive.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Archive {
    /// The encoded bytes.
    pub bytes: Vec<u8>,
    /// Number of unique chunks stored.
    pub unique_chunks: u64,
    /// Total chunks (unique + refs).
    pub total_chunks: u64,
}

impl Archive {
    /// Order-sensitive checksum.
    pub fn checksum(&self) -> u64 {
        crate::util::fnv1a(&self.bytes)
    }
}

/// Errors from [`unarchive`].
#[derive(Debug)]
pub enum ArchiveError {
    /// Bad magic or truncated header/entry.
    Malformed,
    /// A chunk failed to decompress.
    Chunk(DecompressError),
    /// Reference to an id that has not appeared yet.
    DanglingRef(u32),
    /// Total length disagrees with the header.
    LengthMismatch,
}

/// Decodes an archive back to the original bytes (the verification path —
/// PARSEC ships the matching `-u` mode).
pub fn unarchive(bytes: &[u8]) -> Result<Vec<u8>, ArchiveError> {
    if bytes.len() < 12 || &bytes[..4] != MAGIC {
        return Err(ArchiveError::Malformed);
    }
    let expect = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes")) as usize;
    // Untrusted header: cap the pre-allocation hint (the Vec still grows
    // to the real size if the archive is genuine).
    let mut out = Vec::with_capacity(expect.min(bytes.len().saturating_mul(256)).min(1 << 28));
    let mut chunks: Vec<Arc<Vec<u8>>> = Vec::new();
    let mut pos = 12usize;
    while pos < bytes.len() {
        match bytes[pos] {
            TAG_UNIQUE => {
                if pos + 9 > bytes.len() {
                    return Err(ArchiveError::Malformed);
                }
                let clen =
                    u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4")) as usize;
                let rlen =
                    u32::from_le_bytes(bytes[pos + 5..pos + 9].try_into().expect("4")) as usize;
                pos += 9;
                if pos + clen > bytes.len() {
                    return Err(ArchiveError::Malformed);
                }
                let raw = decompress(&bytes[pos..pos + clen]).map_err(ArchiveError::Chunk)?;
                if raw.len() != rlen {
                    return Err(ArchiveError::LengthMismatch);
                }
                pos += clen;
                out.extend_from_slice(&raw);
                chunks.push(Arc::new(raw));
            }
            TAG_REF => {
                if pos + 5 > bytes.len() {
                    return Err(ArchiveError::Malformed);
                }
                let id = u32::from_le_bytes(bytes[pos + 1..pos + 5].try_into().expect("4"));
                pos += 5;
                let chunk = chunks
                    .get(id as usize)
                    .ok_or(ArchiveError::DanglingRef(id))?;
                out.extend_from_slice(chunk);
            }
            _ => return Err(ArchiveError::Malformed),
        }
    }
    if out.len() != expect {
        return Err(ArchiveError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let cfg = DedupConfig::small();
        let a = corpus(&cfg);
        let b = corpus(&cfg);
        assert_eq!(a, b);
        assert_eq!(a.len(), cfg.total_bytes);
    }

    #[test]
    fn fragment_covers_corpus() {
        let cfg = DedupConfig::small();
        let data = corpus(&cfg);
        let coarse = fragment(&cfg, &data);
        assert!(!coarse.is_empty());
        let mut pos = 0usize;
        for (i, c) in coarse.iter().enumerate() {
            assert_eq!(c.seq, i as u64);
            assert_eq!(c.range.0, pos);
            pos = c.range.1;
        }
        assert_eq!(pos, data.len());
    }

    #[test]
    fn refine_reconstructs_coarse_chunk() {
        let cfg = DedupConfig::small();
        let data = corpus(&cfg);
        let coarse = fragment(&cfg, &data);
        let fine = refine(&cfg, &data, &coarse[0]);
        assert!(fine.len() > 1, "expected multiple fine chunks");
        let glued: Vec<u8> = fine.iter().flat_map(|c| c.data.iter().copied()).collect();
        assert_eq!(&glued[..], &data[coarse[0].range.0..coarse[0].range.1]);
        assert!(fine.last().unwrap().last_in_coarse);
        assert!(fine[..fine.len() - 1].iter().all(|c| !c.last_in_coarse));
    }

    #[test]
    fn corpus_contains_real_duplicates() {
        let cfg = DedupConfig::small();
        let data = corpus(&cfg);
        let store = DedupStore::new(16);
        let mut total = 0usize;
        for c in fragment(&cfg, &data) {
            for f in refine(&cfg, &data, &c) {
                total += 1;
                let _ = dedup_and_compress(&store, f);
            }
        }
        let unique = store.unique_chunks();
        let ratio = unique as f64 / total as f64;
        assert!(
            ratio > 0.2 && ratio < 0.8,
            "unique ratio {ratio:.2} out of calibration range ({unique}/{total})"
        );
    }

    #[test]
    fn archive_roundtrips() {
        let cfg = DedupConfig::small();
        let data = corpus(&cfg);
        let store = DedupStore::new(16);
        let mut w = ArchiveWriter::new(data.len() as u64);
        for c in fragment(&cfg, &data) {
            for f in refine(&cfg, &data, &c) {
                let p = dedup_and_compress(&store, f);
                let comp = p.record.compressed.wait();
                w.write(&p.record, &comp);
            }
        }
        let arch = w.finish();
        assert!(arch.unique_chunks < arch.total_chunks, "no dedup happened");
        assert!(
            arch.bytes.len() < data.len(),
            "archive larger than input: {} vs {}",
            arch.bytes.len(),
            data.len()
        );
        let restored = unarchive(&arch.bytes).expect("unarchive");
        assert_eq!(&restored[..], &data[..]);
    }

    #[test]
    fn unarchive_rejects_garbage() {
        assert!(matches!(unarchive(b"nope"), Err(ArchiveError::Malformed)));
        assert!(matches!(
            unarchive(b"DDUPxxxxyyyy\x07"),
            Err(ArchiveError::Malformed)
        ));
    }
}
