//! The dedup workload: deduplicating compression over a 5-stage pipeline
//! (paper §6.2, Figure 9, Table 2, Figures 10-11).
//!
//! Stage schematic (Figure 9):
//!
//! ```text
//! Fragment → FragmentRefine → Deduplicate → Compress → Output
//! serial        ∥ (1→many)       ∥          ∥ (skipped   serial,
//!                                              for dups)  in order
//! ```
//!
//! The variable-rate refine stage and the skip-for-duplicates compress
//! stage are what make dedup awkward for rigid pipeline models and are the
//! paper's showcase for hyperqueues (Figure 10).

pub mod compress;
pub mod drivers;
pub mod hashing;
pub mod rolling;
pub mod stages;
pub mod store;

pub use drivers::{
    run_hyperqueue, run_objects, run_pthread, run_serial, run_tbb, DedupTuning, TwoLevelReorder,
};
pub use stages::{corpus, unarchive, Archive, DedupConfig};
pub use store::DedupStore;
