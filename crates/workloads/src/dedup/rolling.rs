//! Content-defined chunking with a rolling hash (the FragmentRefine
//! kernel).
//!
//! A buzhash-style rolling hash over a sliding window declares a chunk
//! boundary whenever the low `mask_bits` of the hash are all ones, subject
//! to minimum and maximum chunk sizes. Identical content produces identical
//! boundaries (after the window re-synchronizes), which is what makes
//! deduplication find repeated regions regardless of their alignment —
//! the property fixed-size chunking lacks.

/// Chunking parameters.
#[derive(Clone, Copy, Debug)]
pub struct ChunkParams {
    /// Minimum chunk size in bytes.
    pub min_size: usize,
    /// A boundary fires with probability `2^-mask_bits` per byte, so the
    /// average chunk size is roughly `min_size + 2^mask_bits`.
    pub mask_bits: u32,
    /// Hard maximum chunk size.
    pub max_size: usize,
    /// Rolling window width.
    pub window: usize,
}

impl Default for ChunkParams {
    fn default() -> Self {
        Self {
            min_size: 512,
            mask_bits: 11, // ~2 KiB average, like PARSEC's fine chunks
            max_size: 16 * 1024,
            window: 48,
        }
    }
}

impl ChunkParams {
    /// Small chunks for unit tests.
    pub fn tiny() -> Self {
        Self {
            min_size: 32,
            mask_bits: 6,
            max_size: 1024,
            window: 16,
        }
    }
}

/// The byte-substitution table for buzhash, generated once from a fixed
/// seed (SplitMix64) so chunking is deterministic across runs and builds.
fn buz_table() -> &'static [u64; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u64; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut rng = crate::util::SplitMix64::new(0xB022_7AB1E);
        let mut t = [0u64; 256];
        for e in t.iter_mut() {
            *e = rng.next();
        }
        t
    })
}

/// The rolling hasher itself (exposed for tests and reuse).
pub struct RollingHash {
    window: usize,
    hash: u64,
    ring: Vec<u8>,
    pos: usize,
    fill: usize,
}

impl RollingHash {
    /// Creates a hasher with the given window width.
    pub fn new(window: usize) -> Self {
        Self {
            window: window.max(2),
            hash: 0,
            ring: vec![0; window.max(2)],
            pos: 0,
            fill: 0,
        }
    }

    /// Rolls one byte in (and the oldest byte out, once warm). Returns the
    /// updated hash.
    #[inline]
    pub fn roll(&mut self, byte: u8) -> u64 {
        let t = buz_table();
        if self.fill == self.window {
            let out = self.ring[self.pos];
            // `out` entered `window` steps ago, so its contribution in the
            // current hash is its table value rotated `window - 1` times
            // (one rotation per subsequent insertion). Cancel it before
            // this insertion's rotation.
            self.hash ^= t[out as usize].rotate_left(((self.window - 1) % 64) as u32);
        } else {
            self.fill += 1;
        }
        self.hash = self.hash.rotate_left(1) ^ t[byte as usize];
        self.ring[self.pos] = byte;
        self.pos = (self.pos + 1) % self.window;
        self.hash
    }

    /// Resets the window state.
    pub fn reset(&mut self) {
        self.hash = 0;
        self.fill = 0;
        self.pos = 0;
        self.ring.fill(0);
    }
}

/// Splits `data` into content-defined chunks; returns end offsets
/// (exclusive), covering all of `data`.
pub fn chunk_boundaries(data: &[u8], p: &ChunkParams) -> Vec<usize> {
    let mut ends = Vec::new();
    if data.is_empty() {
        return ends;
    }
    let mask = (1u64 << p.mask_bits) - 1;
    let mut hasher = RollingHash::new(p.window);
    let mut start = 0usize;
    // A boundary cannot fire before `min_size`, so skip hashing until the
    // window can influence an eligible position (the standard chunker
    // optimization; PARSEC's anchor pass does the same jump).
    let skip = p.min_size.saturating_sub(p.window);
    let mut i = skip.min(data.len());
    while i < data.len() {
        let h = hasher.roll(data[i]);
        let len = i - start + 1;
        if (len >= p.min_size && (h & mask) == mask) || len >= p.max_size {
            ends.push(i + 1);
            start = i + 1;
            hasher.reset();
            i += 1 + skip;
            continue;
        }
        i += 1;
    }
    if start < data.len() {
        ends.push(data.len());
    }
    ends
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    fn random_bytes(n: usize, seed: u64) -> Vec<u8> {
        let mut v = vec![0u8; n];
        SplitMix64::new(seed).fill(&mut v);
        v
    }

    #[test]
    fn boundaries_cover_input_exactly() {
        let data = random_bytes(20_000, 1);
        let p = ChunkParams::tiny();
        let ends = chunk_boundaries(&data, &p);
        assert_eq!(*ends.last().unwrap(), data.len());
        let mut prev = 0;
        for &e in &ends {
            assert!(e > prev);
            let len = e - prev;
            assert!(len <= p.max_size, "over-long chunk {len}");
            prev = e;
        }
    }

    #[test]
    fn average_chunk_size_in_expected_range() {
        let data = random_bytes(1 << 20, 2);
        let p = ChunkParams::default();
        let ends = chunk_boundaries(&data, &p);
        let avg = data.len() / ends.len();
        let expect = p.min_size + (1 << p.mask_bits);
        assert!(
            avg > expect / 3 && avg < expect * 3,
            "avg {avg}, expected around {expect}"
        );
    }

    #[test]
    fn identical_content_chunks_identically() {
        let data = random_bytes(50_000, 3);
        let p = ChunkParams::tiny();
        let a = chunk_boundaries(&data, &p);
        let b = chunk_boundaries(&data, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn repeated_region_produces_duplicate_chunks() {
        // Two copies of the same 8 KiB block, far apart and misaligned:
        // the chunker must emit at least one identical chunk from each.
        let block = random_bytes(8192, 4);
        let mut data = random_bytes(5000, 5);
        data.extend_from_slice(&block);
        data.extend(random_bytes(3333, 6)); // misalign the second copy
        data.extend_from_slice(&block);
        data.extend(random_bytes(2000, 7));

        let p = ChunkParams::tiny();
        let ends = chunk_boundaries(&data, &p);
        let mut seen = std::collections::HashSet::new();
        let mut dup = 0;
        let mut prev = 0;
        for &e in &ends {
            if !seen.insert(data[prev..e].to_vec()) {
                dup += 1;
            }
            prev = e;
        }
        assert!(dup >= 2, "content-defined chunking found no duplicates");
    }

    #[test]
    fn rolling_hash_slides_correctly() {
        // Hash of a window must depend only on the window contents: roll
        // two different prefixes followed by the same window and compare.
        let w = 16;
        let win = random_bytes(w, 8);
        let mut h1 = RollingHash::new(w);
        let mut h2 = RollingHash::new(w);
        for b in random_bytes(100, 9) {
            h1.roll(b);
        }
        for b in random_bytes(57, 10) {
            h2.roll(b);
        }
        let (mut a, mut b) = (0, 0);
        for &x in &win {
            a = h1.roll(x);
            b = h2.roll(x);
        }
        assert_eq!(a, b, "hash must be a function of the window only");
    }
}
