//! The global deduplication store shared by all Deduplicate-stage workers.
//!
//! Maps content hash → a shared [`ChunkRecord`]. The *inserting* worker
//! compresses the chunk and fulfills the record's promise; every duplicate
//! holder shares the record, so the Output stage can emit identical bytes
//! no matter which worker won the insertion race — this is what makes the
//! dedup output byte-deterministic across all programming models.
//!
//! Deadlock discipline (see `drivers.rs`): every driver compresses a chunk
//! *immediately after* inserting its record, within the same task or
//! filter execution, so a promise observed by a duplicate is always being
//! fulfilled by already-running code.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};

use crate::dedup::hashing::Digest;

/// A write-once cell with blocking read (tiny promise/future).
pub struct Promise<T> {
    slot: Mutex<Option<T>>,
    ready: Condvar,
}

impl<T: Clone> Promise<T> {
    /// Empty promise.
    pub fn new() -> Self {
        Self {
            slot: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    /// Fulfills the promise. Panics if called twice.
    pub fn set(&self, value: T) {
        let mut slot = self.slot.lock();
        assert!(slot.is_none(), "promise fulfilled twice");
        *slot = Some(value);
        drop(slot);
        self.ready.notify_all();
    }

    /// Non-blocking read.
    pub fn try_get(&self) -> Option<T> {
        self.slot.lock().clone()
    }

    /// Blocking read.
    pub fn wait(&self) -> T {
        let mut slot = self.slot.lock();
        loop {
            if let Some(v) = &*slot {
                return v.clone();
            }
            self.ready.wait(&mut slot);
        }
    }
}

impl<T: Clone> Default for Promise<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Shared per-unique-chunk state.
pub struct ChunkRecord {
    /// Content hash of the raw chunk.
    pub hash: Digest,
    /// Raw (uncompressed) length.
    pub raw_len: usize,
    /// Compressed bytes, fulfilled by the inserting worker.
    pub compressed: Promise<Arc<Vec<u8>>>,
}

/// Sharded hash → record map.
pub struct DedupStore {
    shards: Vec<Mutex<HashMap<Digest, Arc<ChunkRecord>>>>,
}

impl DedupStore {
    /// Creates a store with a power-of-two shard count.
    pub fn new(shards: usize) -> Arc<Self> {
        let n = shards.next_power_of_two().max(1);
        Arc::new(Self {
            shards: (0..n).map(|_| Mutex::new(HashMap::new())).collect(),
        })
    }

    fn shard(&self, hash: &Digest) -> &Mutex<HashMap<Digest, Arc<ChunkRecord>>> {
        let idx = u64::from_le_bytes(hash[..8].try_into().expect("8 bytes")) as usize
            & (self.shards.len() - 1);
        &self.shards[idx]
    }

    /// Returns the record for `hash`, inserting a fresh one if absent.
    /// The boolean is `true` iff this call inserted (the caller is then
    /// responsible for compressing and fulfilling the promise).
    pub fn insert_or_get(&self, hash: Digest, raw_len: usize) -> (Arc<ChunkRecord>, bool) {
        let mut shard = self.shard(&hash).lock();
        if let Some(r) = shard.get(&hash) {
            return (Arc::clone(r), false);
        }
        let r = Arc::new(ChunkRecord {
            hash,
            raw_len,
            compressed: Promise::new(),
        });
        shard.insert(hash, Arc::clone(&r));
        (r, true)
    }

    /// Number of unique chunks seen.
    pub fn unique_chunks(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn promise_set_then_get() {
        let p = Promise::new();
        assert!(p.try_get().is_none());
        p.set(42u32);
        assert_eq!(p.try_get(), Some(42));
        assert_eq!(p.wait(), 42);
    }

    #[test]
    fn promise_wait_blocks_until_set() {
        let p = Arc::new(Promise::<u32>::new());
        let p2 = Arc::clone(&p);
        let h = std::thread::spawn(move || p2.wait());
        std::thread::sleep(std::time::Duration::from_millis(20));
        p.set(7);
        assert_eq!(h.join().unwrap(), 7);
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn promise_double_set_panics() {
        let p = Promise::new();
        p.set(1u8);
        p.set(2u8);
    }

    #[test]
    fn store_dedups_by_hash() {
        let store = DedupStore::new(8);
        let h1 = [1u8; 32];
        let h2 = [2u8; 32];
        let (r1, ins1) = store.insert_or_get(h1, 100);
        assert!(ins1);
        let (r1b, ins1b) = store.insert_or_get(h1, 100);
        assert!(!ins1b);
        assert!(Arc::ptr_eq(&r1, &r1b));
        let (_, ins2) = store.insert_or_get(h2, 50);
        assert!(ins2);
        assert_eq!(store.unique_chunks(), 2);
    }

    #[test]
    fn store_concurrent_insertions_have_one_winner() {
        let store = DedupStore::new(16);
        let winners = Arc::new(std::sync::atomic::AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let store = Arc::clone(&store);
                let winners = Arc::clone(&winners);
                s.spawn(move || {
                    for i in 0..1000u32 {
                        let mut h = [0u8; 32];
                        h[..4].copy_from_slice(&i.to_le_bytes());
                        let (_, inserted) = store.insert_or_get(h, 1);
                        if inserted {
                            winners.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert_eq!(winners.load(std::sync::atomic::Ordering::Relaxed), 1000);
        assert_eq!(store.unique_chunks(), 1000);
    }
}
