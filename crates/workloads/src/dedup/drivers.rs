//! Dedup drivers: one per programming model of Figure 11.
//!
//! Every driver produces a **byte-identical archive**: unique-chunk ids are
//! assigned by the serial-order output stage, and compressed bytes live in
//! records shared across duplicate instances (see `store.rs`). The test
//! suite asserts equality against the serial driver and round-trips the
//! archive back to the original corpus.

use std::collections::BTreeMap;
use std::sync::Arc;

use parking_lot::{Condvar, Mutex};
use swan::{Runtime, Versioned};

use crate::dedup::stages::*;
use crate::dedup::store::DedupStore;
use crate::timing::StageClock;

fn store_for(cfg: &DedupConfig) -> Arc<DedupStore> {
    // Shard roughly with corpus size to keep lock contention flat.
    let shards = (cfg.total_bytes / (1 << 20))
        .next_power_of_two()
        .clamp(8, 256);
    DedupStore::new(shards)
}

// ---------------------------------------------------------------------------
// Serial driver (+ Table 2 characterization).
// ---------------------------------------------------------------------------

/// Runs dedup serially with per-stage timing — regenerates Table 2.
/// `data` is the input corpus (built once via [`corpus`]; input
/// preparation is not pipeline time in the paper either — PARSEC mmaps
/// the input file).
pub fn run_serial(cfg: &DedupConfig, data: &Arc<Vec<u8>>) -> (Archive, StageClock) {
    let data = Arc::clone(data);
    let store = store_for(cfg);
    let mut clock = StageClock::new();
    let coarse = {
        let t0 = std::time::Instant::now();
        let c = fragment(cfg, &data);
        clock.add("Fragment", c.len() as u64, t0.elapsed());
        c
    };
    let mut writer = ArchiveWriter::new(data.len() as u64);
    for c in &coarse {
        let fines = clock.time("FragmentRefine", || refine(cfg, &data, c));
        for f in fines {
            let (record, inserted) = clock.time("Deduplicate", || deduplicate(&store, &f));
            if inserted {
                clock.time("Compress", || compress_into(&record, &f));
            }
            clock.time("Output", || {
                let comp = record.compressed.wait();
                writer.write(&record, &comp);
            });
        }
    }
    (writer.finish(), clock)
}

// ---------------------------------------------------------------------------
// Two-level reorder (pthreads output ordering).
// ---------------------------------------------------------------------------

/// Restores `(coarse_seq, fine_idx)` order for streams where the number of
/// fine chunks per coarse chunk is unknown until the `last_in_coarse`
/// marker arrives — the dedup-specific ordering problem the PARSEC
/// pthreads code solves with its two-level sequence numbers.
pub struct TwoLevelReorder<T> {
    state: Mutex<TlrState<T>>,
    ready: Condvar,
}

struct TlrState<T> {
    parked: BTreeMap<(u64, u32), (bool, T)>,
    next: (u64, u32),
    total_coarse: u64,
}

impl<T> TwoLevelReorder<T> {
    /// Creates a reorderer expecting `total_coarse` coarse groups.
    pub fn new(total_coarse: u64) -> Self {
        Self {
            state: Mutex::new(TlrState {
                parked: BTreeMap::new(),
                next: (0, 0),
                total_coarse,
            }),
            ready: Condvar::new(),
        }
    }

    /// Inserts an item tagged with its coarse/fine position.
    pub fn insert(&self, coarse: u64, fine: u32, last_in_coarse: bool, value: T) {
        let mut st = self.state.lock();
        st.parked.insert((coarse, fine), (last_in_coarse, value));
        drop(st);
        self.ready.notify_all();
    }

    /// Blocks for the next in-order item; `None` after the last chunk of
    /// the last coarse group.
    pub fn recv(&self) -> Option<T> {
        let mut st = self.state.lock();
        loop {
            if st.next.0 >= st.total_coarse {
                return None;
            }
            let key = st.next;
            if let Some((last, v)) = st.parked.remove(&key) {
                st.next = if last {
                    (key.0 + 1, 0)
                } else {
                    (key.0, key.1 + 1)
                };
                return Some(v);
            }
            self.ready.wait(&mut st);
        }
    }
}

// ---------------------------------------------------------------------------
// Pthreads-style driver.
// ---------------------------------------------------------------------------

/// Thread tuning for the pthreads dedup driver.
#[derive(Clone, Debug)]
pub struct DedupTuning {
    /// FragmentRefine threads.
    pub refine_threads: usize,
    /// Deduplicate threads.
    pub dedup_threads: usize,
    /// Compress threads.
    pub compress_threads: usize,
    /// Inter-stage queue capacity.
    pub queue_capacity: usize,
}

impl DedupTuning {
    /// PARSEC-style oversubscription scaled to `cores`.
    pub fn oversubscribed(cores: usize) -> Self {
        let t = ((cores * 7) / 8).max(1);
        DedupTuning {
            refine_threads: t.div_ceil(4).max(1),
            dedup_threads: t.div_ceil(2).max(1),
            compress_threads: t,
            queue_capacity: (4 * cores).max(16),
        }
    }
}

/// Runs dedup with explicit stage threads and bounded queues.
pub fn run_pthread(cfg: &DedupConfig, data: &Arc<Vec<u8>>, tuning: &DedupTuning) -> Archive {
    let data = Arc::clone(data);
    let store = store_for(cfg);
    let coarse = fragment(cfg, &data);
    let total_coarse = coarse.len() as u64;
    let cap = tuning.queue_capacity;

    let (coarse_tx, coarse_rx) = pipelines::channel::<CoarseChunk>(cap);
    let (fine_tx, fine_rx) = pipelines::channel::<FineChunk>(cap);
    let (comp_tx, comp_rx) =
        pipelines::channel::<(FineChunk, Arc<crate::dedup::store::ChunkRecord>)>(cap);
    let reorder = Arc::new(TwoLevelReorder::<ProcessedChunk>::new(total_coarse));

    let mut archive = None;
    std::thread::scope(|scope| {
        // Fragment (serial).
        scope.spawn(move || {
            for c in coarse {
                coarse_tx.send(c);
            }
        });
        // FragmentRefine pool.
        for _ in 0..tuning.refine_threads {
            let rx = coarse_rx.clone();
            let tx = fine_tx.clone();
            let data = Arc::clone(&data);
            scope.spawn(move || {
                while let Some(c) = rx.recv() {
                    for f in refine(cfg, &data, &c) {
                        tx.send(f);
                    }
                }
            });
        }
        // Deduplicate pool: uniques go to compress, duplicates straight to
        // the output reorderer (PARSEC's exact topology).
        for _ in 0..tuning.dedup_threads {
            let rx = fine_rx.clone();
            let tx = comp_tx.clone();
            let ro = Arc::clone(&reorder);
            let store = Arc::clone(&store);
            scope.spawn(move || {
                while let Some(f) = rx.recv() {
                    let (record, inserted) = deduplicate(&store, &f);
                    if inserted {
                        tx.send((f, record));
                    } else {
                        ro.insert(
                            f.coarse_seq,
                            f.fine_idx,
                            f.last_in_coarse,
                            ProcessedChunk {
                                coarse_seq: f.coarse_seq,
                                fine_idx: f.fine_idx,
                                last_in_coarse: f.last_in_coarse,
                                record,
                            },
                        );
                    }
                }
            });
        }
        // Compress pool.
        for _ in 0..tuning.compress_threads {
            let rx = comp_rx.clone();
            let ro = Arc::clone(&reorder);
            scope.spawn(move || {
                while let Some((f, record)) = rx.recv() {
                    compress_into(&record, &f);
                    ro.insert(
                        f.coarse_seq,
                        f.fine_idx,
                        f.last_in_coarse,
                        ProcessedChunk {
                            coarse_seq: f.coarse_seq,
                            fine_idx: f.fine_idx,
                            last_in_coarse: f.last_in_coarse,
                            record,
                        },
                    );
                }
            });
        }
        drop(coarse_rx);
        drop(fine_tx);
        drop(fine_rx);
        drop(comp_tx);
        drop(comp_rx);
        // Output (serial, two-level in-order).
        let ro = Arc::clone(&reorder);
        let len = data.len() as u64;
        let out = scope.spawn(move || {
            let mut w = ArchiveWriter::new(len);
            while let Some(p) = ro.recv() {
                let comp = p.record.compressed.wait();
                w.write(&p.record, &comp);
            }
            w.finish()
        });
        archive = Some(out.join().expect("output thread"));
    });
    archive.expect("archive produced")
}

// ---------------------------------------------------------------------------
// TBB-style driver: the nested-pipeline formulation (Figure 10(a)).
// ---------------------------------------------------------------------------

/// Runs dedup on the TBB clone using Reed et al.'s nested-pipeline
/// factoring: the parallel filter runs refine+dedup+compress for a whole
/// coarse chunk and hands the output stage a *gathered list* — so the
/// writer waits for entire coarse chunks (the §6.2 scalability limit).
pub fn run_tbb(cfg: &DedupConfig, data: &Arc<Vec<u8>>, threads: usize, tokens: usize) -> Archive {
    let data = Arc::clone(data);
    let store = store_for(cfg);
    let coarse = fragment(cfg, &data);
    let len = data.len() as u64;
    let mut iter = coarse.into_iter();
    let writer = Arc::new(Mutex::new(Some(ArchiveWriter::new(len))));
    let writer2 = Arc::clone(&writer);
    let data2 = Arc::clone(&data);
    let store2 = Arc::clone(&store);
    let cfg2 = cfg.clone();

    pipelines::TbbPipeline::input(move || iter.next().map(|c| Box::new(c) as pipelines::Item))
        .parallel(move |item| {
            let c = *item.downcast::<CoarseChunk>().expect("CoarseChunk");
            // The whole inner pipeline, gathered into a list.
            let list: Vec<ProcessedChunk> = refine(&cfg2, &data2, &c)
                .into_iter()
                .map(|f| dedup_and_compress(&store2, f))
                .collect();
            Box::new(list) as pipelines::Item
        })
        .serial_in_order(move |item| {
            let list = item.downcast_ref::<Vec<ProcessedChunk>>().expect("list");
            let mut guard = writer2.lock();
            let w = guard.as_mut().expect("writer still open");
            for p in list {
                let comp = p.record.compressed.wait();
                w.write(&p.record, &comp);
            }
            item
        })
        .run(threads, tokens);

    let w = writer.lock().take().expect("writer present");
    w.finish()
}

// ---------------------------------------------------------------------------
// Swan objects driver (dataflow without hyperqueues).
// ---------------------------------------------------------------------------

/// Runs dedup on versioned-object dataflow: one task per coarse chunk
/// produces a gathered list (the model cannot stream a variable number of
/// outputs — §1), and an inout chain serializes the writer in order.
pub fn run_objects(cfg: &DedupConfig, data: &Arc<Vec<u8>>, rt: &Runtime) -> Archive {
    let data = Arc::clone(data);
    let store = store_for(cfg);
    let coarse = fragment(cfg, &data);
    let writer = Arc::new(Mutex::new(ArchiveWriter::new(data.len() as u64)));
    let order: Versioned<()> = Versioned::new(());
    rt.scope(|s| {
        for c in coarse {
            let res: Versioned<Vec<ProcessedChunk>> = Versioned::new(Vec::new());
            let data = Arc::clone(&data);
            let store = Arc::clone(&store);
            s.spawn((res.write(),), move |_, (mut w,)| {
                *w = refine(cfg, &data, &c)
                    .into_iter()
                    .map(|f| dedup_and_compress(&store, f))
                    .collect();
            });
            let writer = Arc::clone(&writer);
            s.spawn((res.read(), order.update()), move |_, (list, _guard)| {
                let mut w = writer.lock();
                for p in list.iter() {
                    let comp = p.record.compressed.wait();
                    w.write(&p.record, &comp);
                }
            });
        }
    });
    Arc::try_unwrap(writer)
        .map(|m| m.into_inner())
        .unwrap_or_else(|_| panic!("writer still shared"))
        .finish()
}

// ---------------------------------------------------------------------------
// Hyperqueue driver (Figure 10(b)/(c)).
// ---------------------------------------------------------------------------

/// Runs dedup with hyperqueues, following Figure 10(c) literally: the
/// Fragment task builds a *local* hyperqueue per coarse chunk connecting
/// FragmentRefine to a fused Deduplicate+Compress task, which streams
/// finished chunks onto the global write queue; the Output task consumes
/// the write queue concurrently with everything else.
pub fn run_hyperqueue(cfg: &DedupConfig, data: &Arc<Vec<u8>>, rt: &Runtime) -> Archive {
    let data = Arc::clone(data);
    let store = store_for(cfg);
    let len = data.len() as u64;
    let mut archive = None;
    let arch_ref = &mut archive;
    rt.scope(move |s| {
        let write_q = hyperqueue::Hyperqueue::<ProcessedChunk>::with_segment_capacity(s, 256);
        // Fragment: iterates coarse chunks, wiring a nested pipeline per
        // chunk through a local hyperqueue.
        {
            let data = Arc::clone(&data);
            let store = Arc::clone(&store);
            s.spawn((write_q.pushdep(),), move |s, (mut wq,)| {
                for c in fragment(cfg, &data) {
                    let local = hyperqueue::Hyperqueue::<FineChunk>::with_segment_capacity(s, 64);
                    {
                        let data = Arc::clone(&data);
                        s.spawn((local.pushdep(),), move |_, (mut push,)| {
                            // One write-slice publication per run of fine
                            // chunks instead of one per chunk.
                            push.push_iter(refine(cfg, &data, &c));
                        });
                    }
                    {
                        let store = Arc::clone(&store);
                        s.spawn(
                            (local.popdep(), wq.pushdep()),
                            move |_, (mut pop, mut push)| loop {
                                let fines = pop.pop_batch(32);
                                if fines.is_empty() {
                                    break; // permanently empty
                                }
                                push.push_iter(
                                    fines.into_iter().map(|f| dedup_and_compress(&store, f)),
                                );
                            },
                        );
                    }
                    // `local` drops here; its storage lives on in the
                    // children's tokens until they complete (§2.1).
                }
            });
        }
        // Output: a single serial consumer of the global write queue,
        // draining batch-wise (records are written by reference, so the
        // read-slice path avoids moving them at all).
        s.spawn((write_q.popdep(),), move |_, (mut pop,)| {
            let mut w = ArchiveWriter::new(len);
            pop.for_each_batch(64, |chunks| {
                for p in chunks {
                    let comp = p.record.compressed.wait();
                    w.write(&p.record, &comp);
                }
            });
            *arch_ref = Some(w.finish());
        });
    });
    archive.expect("output task ran")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_drivers_produce_identical_archives() {
        let cfg = DedupConfig::small();
        let data = corpus(&cfg);
        let (serial, clock) = run_serial(&cfg, &data);
        assert!(clock.total().as_nanos() > 0);
        assert!(serial.unique_chunks > 0);
        assert!(serial.unique_chunks < serial.total_chunks);

        let pthread = run_pthread(&cfg, &data, &DedupTuning::oversubscribed(4));
        assert_eq!(pthread.checksum(), serial.checksum(), "pthread diverged");

        let tbb = run_tbb(&cfg, &data, 4, 8);
        assert_eq!(tbb.checksum(), serial.checksum(), "tbb diverged");

        let rt = Runtime::with_workers(4);
        let objects = run_objects(&cfg, &data, &rt);
        assert_eq!(objects.checksum(), serial.checksum(), "objects diverged");

        let hq = run_hyperqueue(&cfg, &data, &rt);
        assert_eq!(hq.checksum(), serial.checksum(), "hyperqueue diverged");
    }

    #[test]
    fn serial_archive_roundtrips_to_corpus() {
        let cfg = DedupConfig::small();
        let data = corpus(&cfg);
        let (arch, _) = run_serial(&cfg, &data);
        let restored = unarchive(&arch.bytes).expect("unarchive");
        assert_eq!(&restored[..], &data[..]);
        assert!(arch.bytes.len() < data.len(), "no compression achieved");
    }

    #[test]
    fn hyperqueue_archive_roundtrips_and_is_deterministic() {
        let cfg = DedupConfig::small();
        let data = corpus(&cfg);
        let mut checksums = Vec::new();
        for workers in [1, 2, 8] {
            let rt = Runtime::with_workers(workers);
            let arch = run_hyperqueue(&cfg, &data, &rt);
            let restored = unarchive(&arch.bytes).expect("unarchive");
            assert_eq!(&restored[..], &data[..], "round-trip at {workers} workers");
            checksums.push(arch.checksum());
        }
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "archive differs across worker counts: {checksums:?}"
        );
    }

    #[test]
    fn two_level_reorder_handles_unknown_group_sizes() {
        let ro = TwoLevelReorder::<(u64, u32)>::new(3);
        // Group sizes 2, 1, 3 — inserted out of order.
        ro.insert(2, 1, false, (2, 1));
        ro.insert(0, 1, true, (0, 1));
        ro.insert(1, 0, true, (1, 0));
        ro.insert(0, 0, false, (0, 0));
        ro.insert(2, 0, false, (2, 0));
        ro.insert(2, 2, true, (2, 2));
        let mut got = Vec::new();
        while let Some(v) = ro.recv() {
            got.push(v);
        }
        assert_eq!(got, vec![(0, 0), (0, 1), (1, 0), (2, 0), (2, 1), (2, 2)]);
    }
}
