//! A deflate-style byte compressor (the Compress kernel), with its
//! decompressor.
//!
//! Two phases, as in zlib: an LZ77 pass (hash-chain matching with lazy
//! evaluation, 16-bit offsets — plenty for dedup's ≤16 KiB chunks)
//! producing a token stream, then a canonical-Huffman entropy pass over
//! that stream. A stored-mode tag keeps incompressible chunks from
//! inflating. Both phases are what give the kernel zlib's role *and* cost
//! profile in the dedup pipeline (Compress dominates Table 2).

use crate::entropy::{BitReader, BitWriter, HuffmanCode};

const MIN_MATCH: usize = 4;
const HASH_BITS: u32 = 15;
/// How many hash-chain candidates the matcher examines per position.
const MAX_CHAIN: usize = 256;
/// Entropy-pass alphabet: LZ bytes 0..=255 plus an end marker.
const LZ_EOB: u16 = 256;
const LZ_ALPHABET: usize = 257;
/// Mode tags (first output byte).
const MODE_STORED: u8 = 0;
const MODE_HUFFMAN: u8 = 1;

#[inline]
fn hash4(b: &[u8]) -> usize {
    let v = u32::from_le_bytes([b[0], b[1], b[2], b[3]]);
    (v.wrapping_mul(0x9E37_79B1) >> (32 - HASH_BITS)) as usize
}

fn write_varint(out: &mut Vec<u8>, mut v: usize) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Option<usize> {
    let mut v = 0usize;
    let mut shift = 0u32;
    loop {
        let b = *data.get(*pos)?;
        *pos += 1;
        v |= ((b & 0x7f) as usize) << shift;
        if b & 0x80 == 0 {
            return Some(v);
        }
        shift += 7;
        if shift > 42 {
            return None; // malformed
        }
    }
}

/// Packs code lengths (< 64) at 6 bits apiece.
fn pack_lengths(lengths: &[u8]) -> Vec<u8> {
    let mut w = BitWriter::new();
    for &l in lengths {
        debug_assert!(l < 64, "Huffman length {l} exceeds 6-bit packing");
        w.write(l as u64, 6);
    }
    w.finish()
}

/// Inverse of [`pack_lengths`].
fn unpack_lengths(data: &[u8], n: usize) -> Option<Vec<u8>> {
    let mut r = BitReader::new(data);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut v = 0u8;
        for _ in 0..6 {
            v = (v << 1) | r.read_bit()?;
        }
        out.push(v);
    }
    Some(out)
}

/// Compresses `input`. The output always round-trips through
/// [`decompress`].
pub fn compress(input: &[u8]) -> Vec<u8> {
    let lz = lz_compress(input);
    // Entropy pass over the LZ stream (zlib's second phase).
    let mut freqs = vec![0u64; LZ_ALPHABET];
    for &b in &lz {
        freqs[b as usize] += 1;
    }
    freqs[LZ_EOB as usize] += 1;
    let code = HuffmanCode::from_frequencies(&freqs);
    let mut w = BitWriter::new();
    let symbols: Vec<u16> = lz.iter().map(|&b| b as u16).chain([LZ_EOB]).collect();
    code.encode(&symbols, &mut w);
    let payload = w.finish();
    let table = pack_lengths(&code.lengths);
    if 1 + table.len() + payload.len() < 1 + lz.len() {
        let mut out = Vec::with_capacity(1 + table.len() + payload.len());
        out.push(MODE_HUFFMAN);
        out.extend_from_slice(&table);
        out.extend_from_slice(&payload);
        out
    } else {
        let mut out = Vec::with_capacity(1 + lz.len());
        out.push(MODE_STORED);
        out.extend_from_slice(&lz);
        out
    }
}

/// Decompresses a [`compress`] stream.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let (&mode, rest) = data.split_first().ok_or(DecompressError::Truncated)?;
    match mode {
        MODE_STORED => lz_decompress(rest),
        MODE_HUFFMAN => {
            let table_bytes = (LZ_ALPHABET * 6).div_ceil(8);
            if rest.len() < table_bytes {
                return Err(DecompressError::Truncated);
            }
            let lengths = unpack_lengths(&rest[..table_bytes], LZ_ALPHABET)
                .ok_or(DecompressError::Truncated)?;
            let code = HuffmanCode::from_lengths(lengths);
            let mut r = BitReader::new(&rest[table_bytes..]);
            let symbols = code
                .decode_until(&mut r, LZ_EOB)
                .ok_or(DecompressError::Truncated)?;
            let lz: Vec<u8> = symbols
                .iter()
                .take_while(|&&s| s != LZ_EOB)
                .map(|&s| s as u8)
                .collect();
            lz_decompress(&lz)
        }
        _ => Err(DecompressError::Truncated),
    }
}

/// LZ77 pass: hash-chain matching with lazy evaluation.
fn lz_compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    write_varint(&mut out, input.len());
    if input.is_empty() {
        return out;
    }
    // Hash-chain matcher: `head` maps a 4-byte hash to the most recent
    // position, `prev` links each position to the previous one with the
    // same hash (zlib's structure).
    let mut head = vec![u32::MAX; 1 << HASH_BITS];
    let mut prev = vec![u32::MAX; input.len()];
    let insert = |head: &mut [u32], prev: &mut [u32], pos: usize, data: &[u8]| {
        let h = hash4(&data[pos..]);
        prev[pos] = head[h];
        head[h] = pos as u32;
    };
    // Finds the longest match for position `i` by walking the hash chain.
    let find_match = |head: &[u32], prev: &[u32], i: usize| -> (usize, usize) {
        let h = hash4(&input[i..]);
        let mut cand = head[h];
        let mut best_len = 0usize;
        let mut best_pos = 0usize;
        let max = input.len() - i;
        for _ in 0..MAX_CHAIN {
            if cand == u32::MAX {
                break;
            }
            let c = cand as usize;
            if i - c > u16::MAX as usize {
                break; // chain is recency-ordered; older ones are farther
            }
            if input[c..c + MIN_MATCH] == input[i..i + MIN_MATCH] {
                let mut l = MIN_MATCH;
                while l < max && input[c + l] == input[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_pos = c;
                    if l == max {
                        break;
                    }
                }
            }
            cand = prev[c];
        }
        (best_len, best_pos)
    };
    let mut i = 0usize;
    let mut lit_start = 0usize;
    while i + MIN_MATCH <= input.len() {
        let (mut best_len, mut best_pos) = find_match(&head, &prev, i);
        insert(&mut head, &mut prev, i, input);
        // Lazy matching (zlib): if the *next* position matches longer,
        // emit this byte as a literal and take the later match.
        if best_len >= MIN_MATCH && i + 1 + MIN_MATCH <= input.len() {
            let (next_len, next_pos) = find_match(&head, &prev, i + 1);
            if next_len > best_len {
                insert(&mut head, &mut prev, i + 1, input);
                i += 1;
                best_len = next_len;
                best_pos = next_pos;
            }
        }
        if best_len >= MIN_MATCH {
            // Token: literal run, then the match.
            write_varint(&mut out, i - lit_start);
            out.extend_from_slice(&input[lit_start..i]);
            write_varint(&mut out, best_len - MIN_MATCH);
            out.extend_from_slice(&((i - best_pos) as u16).to_le_bytes());
            // Index every position inside the match (full chain insertion,
            // as zlib does below its "fast" levels).
            let mut j = i + 1;
            while j + MIN_MATCH <= input.len() && j < i + best_len {
                insert(&mut head, &mut prev, j, input);
                j += 1;
            }
            i += best_len;
            lit_start = i;
        } else {
            i += 1;
        }
    }
    // Trailing literals; omitted entirely when the input ends on a match,
    // so every byte of the stream is load-bearing (truncation detectable).
    if lit_start < input.len() {
        write_varint(&mut out, input.len() - lit_start);
        out.extend_from_slice(&input[lit_start..]);
    }
    out
}

/// Errors from [`decompress`].
#[derive(Debug, PartialEq, Eq)]
pub enum DecompressError {
    /// Input ended unexpectedly or a varint was malformed.
    Truncated,
    /// A back-reference pointed before the start of the buffer.
    BadOffset,
    /// Decompressed length does not match the header.
    LengthMismatch,
}

/// Inverse of the LZ77 pass.
fn lz_decompress(data: &[u8]) -> Result<Vec<u8>, DecompressError> {
    let mut pos = 0usize;
    let expect = read_varint(data, &mut pos).ok_or(DecompressError::Truncated)?;
    // The header is untrusted: use it only as a capped capacity *hint* so
    // corrupt input cannot demand an absurd allocation up front.
    let mut out = Vec::with_capacity(expect.min(data.len().saturating_mul(256)).min(1 << 28));
    while out.len() < expect {
        let lit = read_varint(data, &mut pos).ok_or(DecompressError::Truncated)?;
        if pos + lit > data.len() {
            return Err(DecompressError::Truncated);
        }
        out.extend_from_slice(&data[pos..pos + lit]);
        pos += lit;
        if out.len() >= expect {
            break;
        }
        let extra = read_varint(data, &mut pos).ok_or(DecompressError::Truncated)?;
        if pos + 2 > data.len() {
            return Err(DecompressError::Truncated);
        }
        let off = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
        pos += 2;
        let match_len = extra + MIN_MATCH;
        // A match may never run past the declared output length; without
        // this check a truncated/corrupted varint could demand an
        // arbitrarily large allocation.
        if match_len > expect - out.len() {
            return Err(DecompressError::Truncated);
        }
        if off == 0 || off > out.len() {
            return Err(DecompressError::BadOffset);
        }
        let start = out.len() - off;
        for k in 0..match_len {
            let b = out[start + k];
            out.push(b);
        }
    }
    if out.len() != expect {
        return Err(DecompressError::LengthMismatch);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("decompress");
        assert_eq!(d, data, "round-trip failed for len {}", data.len());
    }

    #[test]
    fn empty_and_tiny_inputs() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"aaaa");
    }

    #[test]
    fn highly_repetitive_input_compresses_well() {
        let data = b"abcabcabcabcabcabcabcabcabcabcabcabc".repeat(100);
        let c = compress(&data);
        assert!(
            c.len() < data.len() / 4,
            "repetitive data barely compressed: {} -> {}",
            data.len(),
            c.len()
        );
        roundtrip(&data);
    }

    #[test]
    fn random_input_roundtrips() {
        let mut rng = SplitMix64::new(11);
        for len in [1usize, 100, 4096, 70_000] {
            let mut data = vec![0u8; len];
            rng.fill(&mut data);
            roundtrip(&data);
        }
    }

    #[test]
    fn text_like_input_roundtrips_and_shrinks() {
        let text = "the quick brown fox jumps over the lazy dog. ".repeat(200);
        let c = compress(text.as_bytes());
        assert!(c.len() < text.len());
        roundtrip(text.as_bytes());
    }

    #[test]
    fn overlapping_matches_decode_correctly() {
        // "aaaa..." exercises the overlapping-copy path (offset 1).
        let data = vec![b'x'; 5000];
        roundtrip(&data);
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let c = compress(b"hello hello hello hello hello");
        for cut in 1..c.len().min(10) {
            assert!(
                decompress(&c[..c.len() - cut]).is_err(),
                "truncation by {cut} not detected"
            );
        }
    }

    #[test]
    fn mixed_structured_input() {
        let mut rng = SplitMix64::new(21);
        let mut data = Vec::new();
        let mut block = vec![0u8; 512];
        rng.fill(&mut block);
        for i in 0..50 {
            if i % 3 == 0 {
                data.extend_from_slice(&block);
            } else {
                let mut fresh = vec![0u8; 300 + (i * 17) % 400];
                rng.fill(&mut fresh);
                data.extend_from_slice(&fresh);
            }
        }
        let c = compress(&data);
        assert!(c.len() < data.len());
        roundtrip(&data);
    }
}
