//! Canonical Huffman coding over arbitrary `u16` symbol alphabets, plus
//! the bit-level I/O it needs. Shared by the bzip2 block coder (alphabet
//! 258: MTF bytes + RUNA/RUNB + EOB) and the dedup chunk compressor
//! (alphabet 257: LZ bytes + EOB).

/// Append-only bit buffer (MSB-first within each byte).
pub struct BitWriter {
    bytes: Vec<u8>,
    bit_pos: u8,
}

impl BitWriter {
    /// Empty writer.
    pub fn new() -> Self {
        Self {
            bytes: Vec::new(),
            bit_pos: 0,
        }
    }

    /// Writes the low `len` bits of `code`, MSB first.
    pub fn write(&mut self, code: u64, len: u8) {
        for i in (0..len).rev() {
            let bit = (code >> i) & 1;
            if self.bit_pos == 0 {
                self.bytes.push(0);
            }
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= (bit as u8) << (7 - self.bit_pos);
            self.bit_pos = (self.bit_pos + 1) % 8;
        }
    }

    /// Finishes, returning the padded byte buffer.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }
}

impl Default for BitWriter {
    fn default() -> Self {
        Self::new()
    }
}

/// Bit-level reader matching [`BitWriter`].
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> BitReader<'a> {
    /// Reads from `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Next bit; `None` at end of input.
    #[inline]
    pub fn read_bit(&mut self) -> Option<u8> {
        let byte = *self.bytes.get(self.pos / 8)?;
        let bit = (byte >> (7 - (self.pos % 8))) & 1;
        self.pos += 1;
        Some(bit)
    }
}

/// A canonical Huffman code: lengths per symbol plus assigned codes.
pub struct HuffmanCode {
    /// Code length per symbol (0 = unused).
    pub lengths: Vec<u8>,
    /// 64-bit so that *untrusted* length tables (up to 63 via the 6-bit
    /// packing used by the dedup chunk format) cannot overflow the
    /// canonical assignment; garbage tables then merely fail to decode.
    codes: Vec<u64>,
}

impl HuffmanCode {
    /// Builds a code from symbol frequencies (heap Huffman, then
    /// canonicalized). Symbols with zero frequency get no code.
    pub fn from_frequencies(freqs: &[u64]) -> Self {
        let alphabet = freqs.len();
        let present: Vec<usize> = (0..alphabet).filter(|&s| freqs[s] > 0).collect();
        let mut lengths = vec![0u8; alphabet];
        match present.len() {
            0 => {}
            1 => lengths[present[0]] = 1,
            _ => {
                // Heap Huffman over (weight, node). Node: leaf or internal.
                #[derive(PartialEq, Eq)]
                struct Item(u64, usize); // weight, node index
                impl Ord for Item {
                    fn cmp(&self, o: &Self) -> std::cmp::Ordering {
                        o.0.cmp(&self.0).then(o.1.cmp(&self.1)) // min-heap
                    }
                }
                impl PartialOrd for Item {
                    fn partial_cmp(&self, o: &Self) -> Option<std::cmp::Ordering> {
                        Some(self.cmp(o))
                    }
                }
                let mut parent = vec![usize::MAX; 2 * present.len()];
                let mut heap = std::collections::BinaryHeap::new();
                for (node, &sym) in present.iter().enumerate() {
                    heap.push(Item(freqs[sym], node));
                }
                let mut next = present.len();
                while heap.len() > 1 {
                    let a = heap.pop().expect("len>1");
                    let b = heap.pop().expect("len>1");
                    parent[a.1] = next;
                    parent[b.1] = next;
                    heap.push(Item(a.0 + b.0, next));
                    next += 1;
                }
                for (node, &sym) in present.iter().enumerate() {
                    let mut depth = 0u8;
                    let mut p = parent[node];
                    while p != usize::MAX {
                        depth += 1;
                        p = parent[p];
                    }
                    lengths[sym] = depth.max(1);
                }
            }
        }
        Self::from_lengths(lengths)
    }

    /// Builds the canonical code table from lengths. Accepts untrusted
    /// tables (lengths up to 63): malformed ones produce codes that fail
    /// to decode rather than panicking or overflowing.
    pub fn from_lengths(lengths: Vec<u8>) -> Self {
        let mut codes = vec![0u64; lengths.len()];
        // Canonical assignment: sort by (length, symbol).
        let mut order: Vec<usize> = (0..lengths.len()).filter(|&s| lengths[s] > 0).collect();
        order.sort_unstable_by_key(|&s| (lengths[s], s));
        let mut code = 0u64;
        let mut prev_len = 0u8;
        for &s in &order {
            code = code
                .checked_shl((lengths[s] - prev_len) as u32)
                .unwrap_or(0);
            codes[s] = code;
            code += 1;
            prev_len = lengths[s];
        }
        Self { lengths, codes }
    }

    /// Encodes `symbols` into `w`.
    pub fn encode(&self, symbols: &[u16], w: &mut BitWriter) {
        for &s in symbols {
            let s = s as usize;
            debug_assert!(self.lengths[s] > 0, "symbol {s} has no code");
            w.write(self.codes[s], self.lengths[s]);
        }
    }

    /// Decodes until (and including) `stop_symbol`; `None` on malformed
    /// input.
    pub fn decode_until(&self, r: &mut BitReader<'_>, stop_symbol: u16) -> Option<Vec<u16>> {
        // Canonical decode tables: first code and first index per length.
        let max_len = *self.lengths.iter().max()? as usize;
        if max_len == 0 {
            return Some(Vec::new());
        }
        let mut order: Vec<usize> = (0..self.lengths.len())
            .filter(|&s| self.lengths[s] > 0)
            .collect();
        order.sort_unstable_by_key(|&s| (self.lengths[s], s));
        let mut first_code = vec![0u64; max_len + 2];
        let mut first_idx = vec![0usize; max_len + 2];
        let mut count = vec![0usize; max_len + 2];
        for &s in &order {
            count[self.lengths[s] as usize] += 1;
        }
        {
            let mut code = 0u64;
            let mut idx = 0usize;
            for len in 1..=max_len {
                first_code[len] = code;
                first_idx[len] = idx;
                code = (code + count[len] as u64) << 1;
                idx += count[len];
            }
        }
        let mut out = Vec::new();
        'outer: loop {
            let mut code = 0u64;
            for len in 1..=max_len {
                code = (code << 1) | r.read_bit()? as u64;
                if count[len] > 0
                    && code < first_code[len] + count[len] as u64
                    && code >= first_code[len]
                {
                    let sym = order[first_idx[len] + (code - first_code[len]) as usize] as u16;
                    out.push(sym);
                    if sym == stop_symbol {
                        break 'outer;
                    }
                    continue 'outer;
                }
            }
            return None; // code longer than any assigned length
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bzip2::mtf::EOB;
    use crate::util::SplitMix64;

    const ALPHABET: usize = 258;

    fn code_for(symbols: &[u16]) -> HuffmanCode {
        let mut freqs = vec![0u64; ALPHABET];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        HuffmanCode::from_frequencies(&freqs)
    }

    fn roundtrip(mut symbols: Vec<u16>) {
        if symbols.last() != Some(&EOB) {
            symbols.push(EOB);
        }
        let code = code_for(&symbols);
        let mut w = BitWriter::new();
        code.encode(&symbols, &mut w);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let decoded = code.decode_until(&mut r, EOB).expect("decodes");
        assert_eq!(decoded, symbols);
    }

    #[test]
    fn bitio_roundtrip() {
        let mut w = BitWriter::new();
        w.write(0b101, 3);
        w.write(0b1, 1);
        w.write(0b0110_1001_0110_1001, 16);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        let mut got = 0u32;
        for _ in 0..20 {
            got = (got << 1) | r.read_bit().unwrap() as u32;
        }
        assert_eq!(got, 0b1011_0110_1001_0110_1001);
    }

    #[test]
    fn single_symbol_stream() {
        roundtrip(vec![42, 42, 42, 42]);
    }

    #[test]
    fn two_symbol_stream() {
        roundtrip(vec![0, 1, 0, 0, 1, 0]);
    }

    #[test]
    fn skewed_frequencies() {
        let mut syms = vec![7u16; 10_000];
        syms.extend([1u16, 2, 3, 4, 5, 6, 8, 9, 10]);
        roundtrip(syms);
    }

    #[test]
    fn random_symbol_streams() {
        let mut rng = SplitMix64::new(5);
        for len in [1usize, 10, 1000, 20_000] {
            let syms: Vec<u16> = (0..len).map(|_| (rng.next_below(256)) as u16).collect();
            roundtrip(syms);
        }
    }

    #[test]
    fn canonical_codes_are_prefix_free() {
        let mut freqs = vec![0u64; ALPHABET];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = (i as u64 % 17) + 1; // all symbols present, varied freqs
        }
        let code = HuffmanCode::from_frequencies(&freqs);
        // Check prefix-freedom pairwise on (code, len).
        let entries: Vec<(u64, u8)> = (0..ALPHABET)
            .map(|s| (code.codes[s], code.lengths[s]))
            .collect();
        for (i, &(ca, la)) in entries.iter().enumerate() {
            for &(cb, lb) in entries.iter().skip(i + 1) {
                let l = la.min(lb);
                assert!(
                    ca >> (la - l) != cb >> (lb - l),
                    "prefix violation between codes"
                );
            }
        }
    }

    #[test]
    fn skewed_code_stays_decodable() {
        // Fibonacci-ish frequencies produce deep trees; they must still
        // round-trip through the canonical tables.
        let mut freqs = vec![0u64; ALPHABET];
        let (mut a, mut b) = (1u64, 1u64);
        for f in freqs.iter_mut().take(40) {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        freqs[EOB as usize] = 1;
        let code = HuffmanCode::from_frequencies(&freqs);
        let symbols: Vec<u16> = (0..40).chain([EOB]).collect();
        let mut w = BitWriter::new();
        code.encode(&symbols, &mut w);
        let bytes = w.finish();
        let decoded = code
            .decode_until(&mut BitReader::new(&bytes), EOB)
            .expect("decodes");
        assert_eq!(decoded, symbols);
    }
}
