//! Small shared utilities for workload synthesis.

/// SplitMix64: tiny, high-quality seedable PRNG for deterministic data
/// synthesis (not security-relevant).
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

#[allow(clippy::should_implement_trait)] // not an Iterator: never exhausts
impl SplitMix64 {
    /// Creates a generator from any seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next 64-bit value.
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value below `bound` (`bound` 0 yields 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next() % bound
        }
    }

    /// Fills `buf` with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let b = self.next().to_le_bytes();
            rem.copy_from_slice(&b[..rem.len()]);
        }
    }
}

/// FNV-1a over bytes: cheap, deterministic checksumming for outputs.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// FNV-1a over a sequence of strings (order-sensitive).
pub fn fnv1a_lines<S: AsRef<str>>(lines: &[S]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for l in lines {
        for &b in l.as_ref().as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        h ^= 0x0a;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..64 {
            assert_eq!(a.next(), b.next());
        }
    }

    #[test]
    fn fill_covers_non_multiple_lengths() {
        let mut r = SplitMix64::new(3);
        let mut buf = vec![0u8; 13];
        r.fill(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    fn fnv_distinguishes_order() {
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        assert_ne!(fnv1a_lines(&["a", "b"]), fnv1a_lines(&["b", "a"]));
        assert_ne!(fnv1a_lines(&["ab"]), fnv1a_lines(&["a", "b"]));
    }
}
