//! Per-block compression (RLE1 → BWT → MTF → ZLE → Huffman) and the block
//! wire format, plus CRC-32 integrity checking — the Compress-stage kernel
//! of the 3-stage bzip2 pipeline.

use crate::bzip2::bwt::{bwt, ibwt};
use crate::bzip2::mtf::{imtf, mtf, zle_decode, zle_encode, ALPHABET, EOB};
use crate::bzip2::rle::{rle1_decode, rle1_encode};
use crate::entropy::{BitReader, BitWriter, HuffmanCode};

/// Table-driven CRC-32 (IEEE 802.3 polynomial).
pub fn crc32(data: &[u8]) -> u32 {
    fn table() -> &'static [u32; 256] {
        use std::sync::OnceLock;
        static T: OnceLock<[u32; 256]> = OnceLock::new();
        T.get_or_init(|| {
            let mut t = [0u32; 256];
            for (i, e) in t.iter_mut().enumerate() {
                let mut c = i as u32;
                for _ in 0..8 {
                    c = if c & 1 != 0 {
                        0xEDB8_8320 ^ (c >> 1)
                    } else {
                        c >> 1
                    };
                }
                *e = c;
            }
            t
        })
    }
    let t = table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = t[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Errors from [`decompress_block`] / stream decoding.
#[derive(Debug)]
pub enum BlockError {
    /// Header shorter than the fixed fields.
    Truncated,
    /// Huffman payload malformed.
    BadPayload,
    /// Intermediate lengths disagree.
    LengthMismatch,
    /// CRC-32 of the reconstructed block does not match.
    CrcMismatch,
}

/// Compresses one raw block.
///
/// Layout: `raw_len u32 | rle1_len u32 | bwt_idx u32 | crc u32 |
/// code-lengths [u8; 258] | huffman bitstream`.
pub fn compress_block(raw: &[u8]) -> Vec<u8> {
    let crc = crc32(raw);
    let rle1 = rle1_encode(raw);
    let (last, idx) = bwt(&rle1);
    let m = mtf(&last);
    let symbols = zle_encode(&m);
    let mut freqs = vec![0u64; ALPHABET];
    for &s in &symbols {
        freqs[s as usize] += 1;
    }
    let code = HuffmanCode::from_frequencies(&freqs);
    let mut w = BitWriter::new();
    code.encode(&symbols, &mut w);
    let payload = w.finish();

    let mut out = Vec::with_capacity(payload.len() + ALPHABET + 16);
    out.extend_from_slice(&(raw.len() as u32).to_le_bytes());
    out.extend_from_slice(&(rle1.len() as u32).to_le_bytes());
    out.extend_from_slice(&idx.to_le_bytes());
    out.extend_from_slice(&crc.to_le_bytes());
    out.extend_from_slice(&code.lengths);
    out.extend_from_slice(&payload);
    out
}

/// Decompresses one block produced by [`compress_block`].
pub fn decompress_block(data: &[u8]) -> Result<Vec<u8>, BlockError> {
    if data.len() < 16 + ALPHABET {
        return Err(BlockError::Truncated);
    }
    let raw_len = u32::from_le_bytes(data[0..4].try_into().expect("4")) as usize;
    let rle1_len = u32::from_le_bytes(data[4..8].try_into().expect("4")) as usize;
    let idx = u32::from_le_bytes(data[8..12].try_into().expect("4"));
    let crc = u32::from_le_bytes(data[12..16].try_into().expect("4"));
    let lengths = data[16..16 + ALPHABET].to_vec();
    let payload = &data[16 + ALPHABET..];

    let code = HuffmanCode::from_lengths(lengths);
    let mut r = BitReader::new(payload);
    let symbols = code
        .decode_until(&mut r, EOB)
        .ok_or(BlockError::BadPayload)?;
    let m = zle_decode(&symbols);
    let last = imtf(&m);
    if last.len() != rle1_len {
        return Err(BlockError::LengthMismatch);
    }
    let rle1 = ibwt(&last, idx);
    let raw = rle1_decode(&rle1);
    if raw.len() != raw_len {
        return Err(BlockError::LengthMismatch);
    }
    if crc32(&raw) != crc {
        return Err(BlockError::CrcMismatch);
    }
    Ok(raw)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    fn roundtrip(data: &[u8]) {
        let c = compress_block(data);
        let d = decompress_block(&c).expect("block decodes");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_small_blocks() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"hello world");
    }

    #[test]
    fn text_block_compresses() {
        let text = "pipeline parallelism with hyperqueues is deterministic. "
            .repeat(400)
            .into_bytes();
        let c = compress_block(&text);
        assert!(
            c.len() < text.len() / 3,
            "text barely compressed: {} -> {}",
            text.len(),
            c.len()
        );
        roundtrip(&text);
    }

    #[test]
    fn random_block_roundtrips() {
        let mut rng = SplitMix64::new(123);
        for len in [1usize, 777, 16 * 1024] {
            let mut v = vec![0u8; len];
            rng.fill(&mut v);
            roundtrip(&v);
        }
    }

    #[test]
    fn degenerate_runs_roundtrip() {
        roundtrip(&vec![0u8; 50_000]);
        roundtrip(&b"ab".repeat(10_000));
    }

    #[test]
    fn corruption_is_detected() {
        let text = b"deterministic scale-free pipeline parallelism".repeat(50);
        let mut c = compress_block(&text);
        // Flip a bit in the payload (past the header+lengths).
        let at = 16 + ALPHABET + 5;
        c[at] ^= 0x10;
        assert!(
            decompress_block(&c).is_err(),
            "corrupted block decoded silently"
        );
    }
}
