//! bzip2 drivers (§6.3): a 3-stage serial/parallel/serial pipeline.
//!
//! The paper compares the hyperqueue formulation against the
//! versioned-objects dataflow baseline (which prior work showed handles
//! bzip2 well) and reports two hyperqueue variants: the naive one-task-per-
//! stage version and the loop-split version of §5.4 (Figure 5) that bounds
//! queue growth. We implement all of them plus the serial baseline; every
//! driver emits a byte-identical stream that really decompresses.

use std::sync::Arc;

use parking_lot::Mutex;
use swan::{Runtime, Versioned};

use crate::bzip2::block::{compress_block, decompress_block, BlockError};
use crate::timing::StageClock;
use crate::util::SplitMix64;

/// Workload parameters.
#[derive(Clone, Debug)]
pub struct Bzip2Config {
    /// Total input size.
    pub total_bytes: usize,
    /// Compression block size (bzip2's -9 uses 900k; we default smaller so
    /// a block is a few milliseconds of work).
    pub block_size: usize,
    /// Corpus seed.
    pub seed: u64,
}

impl Default for Bzip2Config {
    fn default() -> Self {
        Self {
            total_bytes: 24 << 20,
            block_size: 128 << 10,
            seed: 0xB21A,
        }
    }
}

impl Bzip2Config {
    /// Small configuration for tests.
    pub fn small() -> Self {
        Self {
            total_bytes: 192 << 10,
            block_size: 16 << 10,
            seed: 0xB21A,
        }
    }

    /// Bench configuration with a given input size.
    pub fn bench(total_bytes: usize) -> Self {
        Self {
            total_bytes,
            ..Self::default()
        }
    }
}

/// Deterministic text-like corpus (word soup over a fixed dictionary, so
/// the BWT stage has realistic structure to exploit).
pub fn corpus(cfg: &Bzip2Config) -> Arc<Vec<u8>> {
    let mut rng = SplitMix64::new(cfg.seed);
    // Dictionary of 256 pseudo-words.
    let words: Vec<Vec<u8>> = (0..256)
        .map(|_| {
            let len = 3 + rng.next_below(7) as usize;
            (0..len)
                .map(|_| b'a' + (rng.next_below(26) as u8))
                .collect()
        })
        .collect();
    let mut out = Vec::with_capacity(cfg.total_bytes + 16);
    while out.len() < cfg.total_bytes {
        // Zipf-ish pick: min of two uniforms skews toward low indices.
        let i = rng.next_below(256).min(rng.next_below(256)) as usize;
        out.extend_from_slice(&words[i]);
        out.push(if rng.next_below(12) == 0 { b'\n' } else { b' ' });
    }
    out.truncate(cfg.total_bytes);
    Arc::new(out)
}

const STREAM_MAGIC: &[u8; 4] = b"BZRS";

fn stream_header(cfg: &Bzip2Config, original_len: u64) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(STREAM_MAGIC);
    out.extend_from_slice(&(cfg.block_size as u32).to_le_bytes());
    out.extend_from_slice(&original_len.to_le_bytes());
    out
}

fn append_block(stream: &mut Vec<u8>, compressed: &[u8]) {
    stream.extend_from_slice(&(compressed.len() as u32).to_le_bytes());
    stream.extend_from_slice(compressed);
}

/// Decompresses a stream produced by any driver.
pub fn decompress_stream(bytes: &[u8]) -> Result<Vec<u8>, BlockError> {
    if bytes.len() < 16 || &bytes[..4] != STREAM_MAGIC {
        return Err(BlockError::Truncated);
    }
    let expect = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
    let mut out = Vec::with_capacity(expect.min(bytes.len().saturating_mul(512)).min(1 << 28));
    let mut pos = 16usize;
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            return Err(BlockError::Truncated);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return Err(BlockError::Truncated);
        }
        out.extend_from_slice(&decompress_block(&bytes[pos..pos + len])?);
        pos += len;
    }
    if out.len() != expect {
        return Err(BlockError::LengthMismatch);
    }
    Ok(out)
}

fn blocks_of(cfg: &Bzip2Config, data: &[u8]) -> Vec<Vec<u8>> {
    data.chunks(cfg.block_size).map(|c| c.to_vec()).collect()
}

/// Parallel decompression with hyperqueues — a natural extension beyond
/// the paper's evaluation. A serial frame scan validates and splits the
/// stream; one decode task per block runs in parallel, each carrying the
/// output queue's push privilege so the plaintext reassembles in frame
/// order; a serial writer concatenates (or fails fast on the first bad
/// block). Same 3-stage scale-free shape as compression.
pub fn decompress_hyperqueue(bytes: &[u8], rt: &Runtime) -> Result<Vec<u8>, BlockError> {
    if bytes.len() < 16 || &bytes[..4] != STREAM_MAGIC {
        return Err(BlockError::Truncated);
    }
    let expect = u64::from_le_bytes(bytes[8..16].try_into().expect("8")) as usize;
    // Frame scan (cheap, serial): collect block extents up front so a
    // malformed frame fails before any task is spawned.
    let mut extents = Vec::new();
    let mut pos = 16usize;
    while pos < bytes.len() {
        if pos + 4 > bytes.len() {
            return Err(BlockError::Truncated);
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
        pos += 4;
        if pos + len > bytes.len() {
            return Err(BlockError::Truncated);
        }
        extents.push((pos, pos + len));
        pos += len;
    }
    let mut out: Result<Vec<u8>, BlockError> = Err(BlockError::Truncated);
    {
        let out_ref = &mut out;
        rt.scope(move |s| {
            let q =
                hyperqueue::Hyperqueue::<Result<Vec<u8>, BlockError>>::with_segment_capacity(s, 16);
            // One decode task per block (the owner holds push privileges
            // and delegates one grant per task — order is frame order).
            for (lo, hi) in extents {
                s.spawn((q.pushdep(),), move |_, (mut p,)| {
                    p.push(decompress_block(&bytes[lo..hi]));
                });
            }
            // Serial writer, in order, failing fast on the first error;
            // blocks arrive in batches to amortize queue traffic.
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                let mut acc = Vec::with_capacity(expect.min(1 << 28));
                let mut failed = None;
                loop {
                    let batch = c.pop_batch(16);
                    if batch.is_empty() {
                        break; // permanently empty
                    }
                    for r in batch {
                        match r {
                            Ok(block) if failed.is_none() => acc.extend_from_slice(&block),
                            Ok(_) => {}
                            Err(e) => failed = failed.or(Some(e)),
                        }
                    }
                }
                *out_ref = match failed {
                    Some(e) => Err(e),
                    None if acc.len() == expect => Ok(acc),
                    None => Err(BlockError::LengthMismatch),
                };
            });
        });
    }
    out
}

// ---------------------------------------------------------------------------
// Serial driver (characterization for §6.3).
// ---------------------------------------------------------------------------

/// Runs bzip2 serially, timing the three stages. `data` is the input
/// (built once via [`corpus`]).
pub fn run_serial(cfg: &Bzip2Config, data: &Arc<Vec<u8>>) -> (Vec<u8>, StageClock) {
    let data = Arc::clone(data);
    let mut clock = StageClock::new();
    let blocks = clock.time("Read", || blocks_of(cfg, &data));
    let mut stream = stream_header(cfg, data.len() as u64);
    for b in &blocks {
        let c = clock.time("Compress", || compress_block(b));
        clock.time("Write", || append_block(&mut stream, &c));
    }
    (stream, clock)
}

// ---------------------------------------------------------------------------
// Versioned-objects dataflow driver (the paper's baseline for bzip2).
// ---------------------------------------------------------------------------

/// Runs bzip2 on versioned-object dataflow: one compress task per block
/// (outdep renaming gives block-level parallelism), writer ordered by an
/// inout chain.
pub fn run_objects(cfg: &Bzip2Config, data: &Arc<Vec<u8>>, rt: &Runtime) -> Vec<u8> {
    let data = Arc::clone(data);
    let blocks = blocks_of(cfg, &data);
    let stream = Arc::new(Mutex::new(stream_header(cfg, data.len() as u64)));
    let order: Versioned<()> = Versioned::new(());
    rt.scope(|s| {
        for b in blocks {
            let res: Versioned<Vec<u8>> = Versioned::new(Vec::new());
            s.spawn((res.write(),), move |_, (mut w,)| {
                *w = compress_block(&b);
            });
            let stream = Arc::clone(&stream);
            s.spawn((res.read(), order.update()), move |_, (c, _g)| {
                append_block(&mut stream.lock(), &c);
            });
        }
    });
    Arc::try_unwrap(stream)
        .map(|m| m.into_inner())
        .unwrap_or_else(|_| panic!("stream still shared"))
}

// ---------------------------------------------------------------------------
// Hyperqueue v1: one task per stage, two hyperqueues.
// ---------------------------------------------------------------------------

/// Runs bzip2 with hyperqueues, first formulation of §6.3: reader task →
/// input queue → stage-2 task that spawns one compressor per block (each
/// carrying the output queue's push privilege) → writer task.
pub fn run_hyperqueue(cfg: &Bzip2Config, data: &Arc<Vec<u8>>, rt: &Runtime) -> Vec<u8> {
    let data = Arc::clone(data);
    let mut out = None;
    let out_ref = &mut out;
    let header = stream_header(cfg, data.len() as u64);
    rt.scope(move |s| {
        let in_q = hyperqueue::Hyperqueue::<Vec<u8>>::with_segment_capacity(s, 32);
        let out_q = hyperqueue::Hyperqueue::<Vec<u8>>::with_segment_capacity(s, 32);
        {
            let data = Arc::clone(&data);
            let cfg = cfg.clone();
            s.spawn((in_q.pushdep(),), move |_, (mut push,)| {
                // Batched reader: one publication per write slice instead
                // of one per block.
                push.push_iter(data.chunks(cfg.block_size).map(|b| b.to_vec()));
            });
        }
        s.spawn(
            (in_q.popdep(), out_q.pushdep()),
            move |s, (mut pop, mut push)| loop {
                let blocks = pop.pop_batch(8);
                if blocks.is_empty() {
                    break; // permanently empty
                }
                for block in blocks {
                    s.spawn((push.pushdep(),), move |_, (mut p,)| {
                        p.push(compress_block(&block));
                    });
                }
            },
        );
        s.spawn((out_q.popdep(),), move |_, (mut pop,)| {
            let mut stream = header;
            pop.for_each_batch(16, |blocks| {
                for c in blocks {
                    append_block(&mut stream, c);
                }
            });
            *out_ref = Some(stream);
        });
    });
    out.expect("writer ran")
}

// ---------------------------------------------------------------------------
// Hyperqueue v2: loop split (§5.4, Figure 5).
// ---------------------------------------------------------------------------

/// Runs bzip2 with the §5.4 loop-split idiom: the owner pushes blocks in
/// batches ("the producer is called once for every 10 elements") and
/// spawns a consumer task per batch; rule 3 serializes the batch consumers
/// in order, bounding queue growth by one batch under serial execution.
pub fn run_hyperqueue_split(
    cfg: &Bzip2Config,
    data: &Arc<Vec<u8>>,
    rt: &Runtime,
    batch: usize,
) -> Vec<u8> {
    let data = Arc::clone(data);
    let batch = batch.max(1);
    let stream = Arc::new(Mutex::new(stream_header(cfg, data.len() as u64)));
    rt.scope(|s| {
        let in_q = hyperqueue::Hyperqueue::<Vec<u8>>::with_segment_capacity(s, batch.max(8));
        let out_q = hyperqueue::Hyperqueue::<Vec<u8>>::with_segment_capacity(s, batch.max(8));
        let blocks = blocks_of(cfg, &data);
        let total = blocks.len();
        let mut queued = 0usize;
        for b in blocks {
            // Inline producer (a "call with push privileges", Fig. 5).
            in_q.push(b);
            queued += 1;
            if queued.is_multiple_of(batch) || queued == total {
                let n = if queued.is_multiple_of(batch) {
                    batch
                } else {
                    queued % batch
                };
                // Batch dispatcher: pops exactly its batch (values pushed
                // later are invisible to it anyway — rule 4).
                s.spawn(
                    (in_q.popdep(), out_q.pushdep()),
                    move |s, (mut pop, mut push)| {
                        let mut left = n;
                        while left > 0 {
                            let blocks = pop.pop_batch(left);
                            assert!(!blocks.is_empty(), "batch underflow");
                            left -= blocks.len();
                            for block in blocks {
                                s.spawn((push.pushdep(),), move |_, (mut p,)| {
                                    p.push(compress_block(&block));
                                });
                            }
                        }
                    },
                );
                // Batch writer: rule 3 chains these in order.
                let stream = Arc::clone(&stream);
                s.spawn((out_q.popdep(),), move |_, (mut pop,)| {
                    let mut left = n;
                    while left > 0 {
                        let done = pop.pop_batch(left);
                        assert!(!done.is_empty(), "batch underflow");
                        left -= done.len();
                        let mut guard = stream.lock();
                        for c in &done {
                            append_block(&mut guard, c);
                        }
                    }
                });
            }
        }
    });
    Arc::try_unwrap(stream)
        .map(|m| m.into_inner())
        .unwrap_or_else(|_| panic!("stream still shared"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::fnv1a;

    #[test]
    fn serial_stream_roundtrips_and_compresses() {
        let cfg = Bzip2Config::small();
        let data = corpus(&cfg);
        let (stream, clock) = run_serial(&cfg, &data);
        assert!(clock.total().as_nanos() > 0);
        assert!(
            stream.len() < data.len() / 2,
            "poor compression: {} -> {}",
            data.len(),
            stream.len()
        );
        let restored = decompress_stream(&stream).expect("decompress");
        assert_eq!(&restored[..], &data[..]);
    }

    #[test]
    fn all_drivers_emit_identical_streams() {
        let cfg = Bzip2Config::small();
        let data = corpus(&cfg);
        let (serial, _) = run_serial(&cfg, &data);
        let rt = Runtime::with_workers(4);

        let objects = run_objects(&cfg, &data, &rt);
        assert_eq!(fnv1a(&objects), fnv1a(&serial), "objects diverged");

        let hq = run_hyperqueue(&cfg, &data, &rt);
        assert_eq!(fnv1a(&hq), fnv1a(&serial), "hyperqueue diverged");

        let hq2 = run_hyperqueue_split(&cfg, &data, &rt, 4);
        assert_eq!(fnv1a(&hq2), fnv1a(&serial), "loop-split diverged");
    }

    #[test]
    fn hyperqueue_split_deterministic_across_workers_and_batches() {
        let cfg = Bzip2Config::small();
        let data = corpus(&cfg);
        let (serial, _) = run_serial(&cfg, &data);
        for workers in [1, 2, 8] {
            for batch in [1, 3, 16] {
                let rt = Runtime::with_workers(workers);
                let out = run_hyperqueue_split(&cfg, &data, &rt, batch);
                assert_eq!(
                    fnv1a(&out),
                    fnv1a(&serial),
                    "diverged at workers={workers} batch={batch}"
                );
            }
        }
    }

    #[test]
    fn parallel_decompression_roundtrips_and_matches_serial() {
        let cfg = Bzip2Config::small();
        let data = corpus(&cfg);
        let (stream, _) = run_serial(&cfg, &data);
        for workers in [1, 4, 8] {
            let rt = Runtime::with_workers(workers);
            let restored = decompress_hyperqueue(&stream, &rt).expect("parallel decode");
            assert_eq!(&restored[..], &data[..], "at {workers} workers");
        }
    }

    #[test]
    fn parallel_decompression_rejects_corruption() {
        let cfg = Bzip2Config::small();
        let data = corpus(&cfg);
        let (mut stream, _) = run_serial(&cfg, &data);
        let rt = Runtime::with_workers(4);
        // Corrupt a whole span inside some block payload (a single bit can
        // land in format slack — unused code-length entries or post-EOB
        // padding — which the format legitimately ignores).
        let at = stream.len() / 2;
        for b in stream[at..at + 32].iter_mut() {
            *b ^= 0x5A;
        }
        assert!(
            decompress_hyperqueue(&stream, &rt).is_err(),
            "corruption must be detected in parallel decode too"
        );
        // Truncation is caught by the frame scan, before any task runs.
        assert!(decompress_hyperqueue(&stream[..stream.len() - 2], &rt).is_err());
    }

    #[test]
    fn decompress_rejects_truncation() {
        let cfg = Bzip2Config::small();
        let data = corpus(&cfg);
        let (stream, _) = run_serial(&cfg, &data);
        assert!(decompress_stream(&stream[..stream.len() - 3]).is_err());
        assert!(decompress_stream(b"BZRSxx").is_err());
        assert!(decompress_stream(b"nope").is_err());
    }
}
