//! Burrows-Wheeler transform and its inverse.
//!
//! Forward: sort all rotations of the block (prefix-doubling over rotation
//! ranks, O(n log² n)) and emit the last column plus the index of the
//! original rotation. Inverse: the classic LF-mapping reconstruction.

/// Forward BWT: returns (last column, index of the original rotation).
pub fn bwt(block: &[u8]) -> (Vec<u8>, u32) {
    let n = block.len();
    if n == 0 {
        return (Vec::new(), 0);
    }
    if n == 1 {
        return (block.to_vec(), 0);
    }
    // rank[i] = equivalence class of rotation i under the first k chars.
    let mut rank: Vec<u32> = block.iter().map(|&b| b as u32).collect();
    let mut order: Vec<u32> = (0..n as u32).collect();
    let mut next_rank = vec![0u32; n];
    let mut k = 1usize;
    loop {
        // Sort rotations by (rank[i], rank[i+k mod n]).
        let key = |i: u32| -> (u32, u32) {
            let i = i as usize;
            (rank[i], rank[(i + k) % n])
        };
        order.sort_unstable_by_key(|&i| key(i));
        // Re-rank.
        next_rank[order[0] as usize] = 0;
        let mut r = 0u32;
        for w in order.windows(2) {
            if key(w[1]) != key(w[0]) {
                r += 1;
            }
            next_rank[w[1] as usize] = r;
        }
        std::mem::swap(&mut rank, &mut next_rank);
        if r as usize == n - 1 {
            break; // all distinct
        }
        k *= 2;
        if k >= 2 * n {
            break; // cyclic duplicates (periodic block): ranks are stable
        }
    }
    // For periodic inputs ties remain; break them by index for stability.
    order.sort_unstable_by_key(|&i| (rank[i as usize], i));
    let mut last = Vec::with_capacity(n);
    let mut idx = 0u32;
    for (pos, &i) in order.iter().enumerate() {
        let i = i as usize;
        last.push(block[(i + n - 1) % n]);
        if i == 0 {
            idx = pos as u32;
        }
    }
    (last, idx)
}

/// Inverse BWT.
pub fn ibwt(last: &[u8], idx: u32) -> Vec<u8> {
    let n = last.len();
    if n == 0 {
        return Vec::new();
    }
    // Count occurrences and compute, for each position in `last`, its
    // position in the sorted first column (LF mapping).
    let mut counts = [0usize; 256];
    for &b in last {
        counts[b as usize] += 1;
    }
    let mut starts = [0usize; 256];
    let mut acc = 0usize;
    for b in 0..256 {
        starts[b] = acc;
        acc += counts[b];
    }
    let mut lf = vec![0u32; n];
    let mut seen = [0usize; 256];
    for (i, &b) in last.iter().enumerate() {
        lf[i] = (starts[b as usize] + seen[b as usize]) as u32;
        seen[b as usize] += 1;
    }
    // Walk the cycle. `idx` is the row of the original string; its last
    // character is last[idx], and LF jumps to the row of the rotation one
    // step earlier, so walking LF yields the text right-to-left.
    let mut out = vec![0u8; n];
    let mut row = idx as usize;
    for slot in out.iter_mut().rev() {
        *slot = last[row];
        row = lf[row] as usize;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    fn roundtrip(data: &[u8]) {
        let (last, idx) = bwt(data);
        assert_eq!(last.len(), data.len());
        let back = ibwt(&last, idx);
        assert_eq!(back, data, "BWT round-trip failed (len {})", data.len());
    }

    #[test]
    fn classic_banana() {
        // The textbook example: rotations of "banana".
        let (last, idx) = bwt(b"banana");
        assert_eq!(ibwt(&last, idx), b"banana");
        assert_eq!(&last, b"nnbaaa");
    }

    #[test]
    fn empty_single_and_tiny() {
        roundtrip(b"");
        roundtrip(b"x");
        roundtrip(b"ab");
        roundtrip(b"aa");
        roundtrip(b"abab");
    }

    #[test]
    fn periodic_inputs() {
        roundtrip(&b"ab".repeat(500));
        roundtrip(&[7u8; 1000]);
        roundtrip(&b"abc".repeat(333));
    }

    #[test]
    fn random_blocks() {
        let mut rng = SplitMix64::new(42);
        for len in [10usize, 100, 1000, 10_000] {
            let mut v = vec![0u8; len];
            rng.fill(&mut v);
            roundtrip(&v);
        }
    }

    #[test]
    fn text_like_block_groups_symbols() {
        // BWT of repetitive text should create long runs (that's its job).
        let text = b"the quick brown fox jumps over the lazy dog. ".repeat(50);
        let (last, idx) = bwt(&text);
        let runs = last.windows(2).filter(|w| w[0] == w[1]).count();
        let baseline = text.windows(2).filter(|w| w[0] == w[1]).count();
        assert!(
            runs > baseline * 3,
            "BWT failed to concentrate runs: {runs} vs {baseline}"
        );
        assert_eq!(ibwt(&last, idx), text);
    }
}
