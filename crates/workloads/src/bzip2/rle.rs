//! Initial run-length encoding (bzip2's "RLE1").
//!
//! Runs of 4-259 identical bytes become the 4 bytes followed by a count
//! byte (0-255 extra repetitions). This bounds the damage degenerate
//! inputs can do to the rotation sort and is exactly bzip2's scheme.

/// RLE1-encodes `data`.
pub fn rle1_encode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() + 8);
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        let mut run = 1usize;
        while i + run < data.len() && data[i + run] == b && run < 259 {
            run += 1;
        }
        if run >= 4 {
            out.extend_from_slice(&[b, b, b, b]);
            out.push((run - 4) as u8);
        } else {
            for _ in 0..run {
                out.push(b);
            }
        }
        i += run;
    }
    out
}

/// Inverse of [`rle1_encode`].
pub fn rle1_decode(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 2);
    let mut i = 0usize;
    while i < data.len() {
        let b = data[i];
        // Detect an encoded run: four identical bytes then a count.
        if i + 3 < data.len() && data[i + 1] == b && data[i + 2] == b && data[i + 3] == b {
            let extra = *data.get(i + 4).unwrap_or(&0) as usize;
            for _ in 0..4 + extra {
                out.push(b);
            }
            i += 5;
        } else {
            out.push(b);
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    fn roundtrip(data: &[u8]) {
        assert_eq!(rle1_decode(&rle1_encode(data)), data);
    }

    #[test]
    fn no_runs_passthrough() {
        roundtrip(b"abcdefg");
        assert_eq!(rle1_encode(b"abcdefg"), b"abcdefg");
    }

    #[test]
    fn exact_run_lengths() {
        for len in 1..=20usize {
            let v = vec![b'z'; len];
            roundtrip(&v);
        }
        roundtrip(&vec![b'q'; 259]);
        roundtrip(&vec![b'q'; 260]);
        roundtrip(&vec![b'q'; 1000]);
    }

    #[test]
    fn long_runs_shrink() {
        let v = vec![0u8; 100_000];
        let e = rle1_encode(&v);
        assert!(e.len() < 3000, "run encoding ineffective: {}", e.len());
        roundtrip(&v);
    }

    #[test]
    fn mixed_content() {
        let mut rng = SplitMix64::new(77);
        let mut v = Vec::new();
        for i in 0..200 {
            if i % 3 == 0 {
                v.extend(std::iter::repeat_n((i % 251) as u8, (i * 7) % 40 + 1));
            } else {
                let mut r = vec![0u8; (i * 13) % 50 + 1];
                rng.fill(&mut r);
                v.extend(r);
            }
        }
        roundtrip(&v);
    }

    #[test]
    fn three_byte_runs_not_escaped() {
        // Exactly three identical bytes stay literal (no count byte).
        assert_eq!(rle1_encode(b"aaab"), b"aaab");
        roundtrip(b"aaab");
    }
}
