//! The bzip2 workload: block compression over a 3-stage pipeline
//! (paper §6.3).
//!
//! ```text
//! Read → Compress → Write
//! serial    ∥        serial, in order
//! ```
//!
//! The Compress kernel is a real block compressor (RLE1 → BWT → MTF →
//! zero-run encoding → canonical Huffman, with CRC-32 integrity), so the
//! middle stage carries genuine, verifiable work.

pub mod block;
pub mod bwt;
pub mod drivers;
pub mod mtf;
pub mod rle;

/// Canonical Huffman + bit I/O now live in [`crate::entropy`]; re-exported
/// here because the block coder is their original home.
pub mod huffman {
    pub use crate::entropy::{BitReader, BitWriter, HuffmanCode};
}

pub use block::{compress_block, crc32, decompress_block, BlockError};
pub use drivers::{
    corpus, decompress_hyperqueue, decompress_stream, run_hyperqueue, run_hyperqueue_split,
    run_objects, run_serial, Bzip2Config,
};
