//! Move-to-front transform and zero-run-length encoding (bzip2's MTF +
//! RUNA/RUNB stage).

/// MTF-encodes `data` (byte → its index in a most-recently-used list).
pub fn mtf(data: &[u8]) -> Vec<u8> {
    let mut table: [u8; 256] = core::array::from_fn(|i| i as u8);
    data.iter()
        .map(|&b| {
            let pos = table.iter().position(|&x| x == b).expect("byte in table") as u8;
            // Move to front.
            let mut i = pos as usize;
            while i > 0 {
                table[i] = table[i - 1];
                i -= 1;
            }
            table[0] = b;
            pos
        })
        .collect()
}

/// Inverse MTF.
pub fn imtf(codes: &[u8]) -> Vec<u8> {
    let mut table: [u8; 256] = core::array::from_fn(|i| i as u8);
    codes
        .iter()
        .map(|&c| {
            let b = table[c as usize];
            let mut i = c as usize;
            while i > 0 {
                table[i] = table[i - 1];
                i -= 1;
            }
            table[0] = b;
            b
        })
        .collect()
}

/// Post-MTF symbols: `RUNA`/`RUNB` encode zero runs in bijective base 2;
/// byte value `b > 0` becomes symbol `b + 1`; `EOB` terminates the block.
pub const RUNA: u16 = 0;
/// Second zero-run digit.
pub const RUNB: u16 = 1;
/// End-of-block symbol.
pub const EOB: u16 = 257;
/// Total alphabet size for the entropy coder.
pub const ALPHABET: usize = 258;

/// Encodes MTF output into the RUNA/RUNB symbol stream (always ends with
/// [`EOB`]).
pub fn zle_encode(mtf_codes: &[u8]) -> Vec<u16> {
    let mut out = Vec::with_capacity(mtf_codes.len() / 2 + 2);
    let mut run = 0u64;
    let flush = |run: &mut u64, out: &mut Vec<u16>| {
        // Bijective base-2: run lengths 1,2,3,4,5… → A,B,AA,BA,AB,…
        let mut n = *run;
        while n > 0 {
            if n & 1 == 1 {
                out.push(RUNA);
                n = (n - 1) >> 1;
            } else {
                out.push(RUNB);
                n = (n - 2) >> 1;
            }
        }
        *run = 0;
    };
    for &c in mtf_codes {
        if c == 0 {
            run += 1;
        } else {
            flush(&mut run, &mut out);
            out.push(c as u16 + 1);
        }
    }
    flush(&mut run, &mut out);
    out.push(EOB);
    out
}

/// Decodes a RUNA/RUNB symbol stream back to MTF codes. Stops at EOB.
pub fn zle_decode(symbols: &[u16]) -> Vec<u8> {
    let mut out = Vec::with_capacity(symbols.len() * 2);
    let mut run = 0u64;
    let mut weight = 1u64;
    let flush = |run: &mut u64, weight: &mut u64, out: &mut Vec<u8>| {
        for _ in 0..*run {
            out.push(0);
        }
        *run = 0;
        *weight = 1;
    };
    for &s in symbols {
        match s {
            RUNA => {
                run += weight;
                weight <<= 1;
            }
            RUNB => {
                run += 2 * weight;
                weight <<= 1;
            }
            EOB => break,
            b => {
                flush(&mut run, &mut weight, &mut out);
                out.push((b - 1) as u8);
            }
        }
    }
    flush(&mut run, &mut 1, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::SplitMix64;

    #[test]
    fn mtf_roundtrip_random() {
        let mut rng = SplitMix64::new(1);
        for len in [0usize, 1, 100, 5000] {
            let mut v = vec![0u8; len];
            rng.fill(&mut v);
            assert_eq!(imtf(&mtf(&v)), v);
        }
    }

    #[test]
    fn mtf_maps_runs_to_zeros() {
        let data = b"aaaaabbbbbaaaaa";
        let m = mtf(data);
        let zeros = m.iter().filter(|&&c| c == 0).count();
        assert!(zeros >= 11, "runs must become zeros, got {m:?}");
    }

    #[test]
    fn zle_roundtrip_various_runs() {
        for run_len in [0usize, 1, 2, 3, 4, 7, 8, 100, 1000] {
            let mut codes = vec![5u8, 9];
            codes.extend(std::iter::repeat_n(0u8, run_len));
            codes.push(3);
            let enc = zle_encode(&codes);
            assert_eq!(*enc.last().unwrap(), EOB);
            assert_eq!(zle_decode(&enc), codes, "run_len {run_len}");
        }
    }

    #[test]
    fn zle_trailing_zero_run() {
        let codes = vec![1u8, 0, 0, 0, 0, 0];
        assert_eq!(zle_decode(&zle_encode(&codes)), codes);
    }

    #[test]
    fn zle_compresses_zero_heavy_streams() {
        let mut codes = vec![0u8; 10_000];
        codes[5000] = 17;
        let enc = zle_encode(&codes);
        assert!(
            enc.len() < 50,
            "10k zeros should need ~log2 symbols, got {}",
            enc.len()
        );
    }

    #[test]
    fn full_mtf_zle_roundtrip() {
        let mut rng = SplitMix64::new(9);
        let mut data = vec![0u8; 4096];
        rng.fill(&mut data);
        for b in data.iter_mut() {
            *b %= 16; // low-entropy, run-prone
        }
        let m = mtf(&data);
        let z = zle_encode(&m);
        assert_eq!(imtf(&zle_decode(&z)), data);
    }
}
