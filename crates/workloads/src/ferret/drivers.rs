//! Ferret drivers: one per programming model of Figure 8.
//!
//! All drivers run the identical stage kernels and must produce
//! byte-identical output (asserted by the test-suite), except that this is
//! *guaranteed* only for the deterministic ones (serial, hyperqueue, and —
//! by construction of its in-order stages — objects). The pthreads and TBB
//! drivers restore output order with reorder buffers / serial in-order
//! filters, as the PARSEC codes do.

use std::sync::Arc;

use parking_lot::Mutex;
use swan::{Runtime, Versioned};

use crate::ferret::data::{build_tree, traverse, DirNode, OwnedTreeIter};
use crate::ferret::stages::*;
use crate::timing::StageClock;
use crate::util::fnv1a_lines;

/// The ordered result lines of a ferret run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FerretOutput {
    /// One line per image, in serial input order.
    pub lines: Vec<String>,
}

impl FerretOutput {
    /// Order-sensitive checksum for cross-driver comparison.
    pub fn checksum(&self) -> u64 {
        fnv1a_lines(&self.lines)
    }
}

/// Builds the shared corpus tree for `cfg`.
pub fn corpus(cfg: &FerretConfig) -> Arc<DirNode> {
    Arc::new(build_tree(cfg.total_images, cfg.seed))
}

// ---------------------------------------------------------------------------
// Serial driver (+ Table 1 characterization).
// ---------------------------------------------------------------------------

/// Runs ferret serially, timing each stage — regenerates Table 1.
pub fn run_serial(cfg: &FerretConfig) -> (FerretOutput, StageClock) {
    let tree = corpus(cfg);
    let db = FerretDb::build(cfg);
    let mut clock = StageClock::new();
    let mut lines = Vec::with_capacity(cfg.total_images);

    // Input = traversal + load/decode, measured as one serial stage with a
    // single "iteration", as in Table 1.
    let t0 = std::time::Instant::now();
    let mut images = Vec::with_capacity(cfg.total_images);
    traverse(&tree, &mut |r| images.push(load(cfg, r)));
    clock.add("Input", 1, t0.elapsed());

    for img in images {
        let seg = clock.time("Segmentation", || segment(cfg, img));
        let ex = clock.time("Extraction", || extract(cfg, seg));
        let q = clock.time("Vectorizing", || vectorize(cfg, ex));
        let r = clock.time("Ranking", || rank(cfg, &db, q));
        let line = clock.time("Output", || output_line(&r));
        lines.push(line);
    }
    (FerretOutput { lines }, clock)
}

// ---------------------------------------------------------------------------
// Pthreads-style driver.
// ---------------------------------------------------------------------------

/// Thread-count tuning for the pthreads driver — the per-machine knob the
/// paper criticizes (§6.1: "for best performance, the number of threads
/// per stage needs to be tuned individually"; they settled on 28 per
/// parallel stage for 32 cores).
#[derive(Clone, Debug)]
pub struct PthreadTuning {
    /// Threads for the segmentation stage.
    pub seg_threads: usize,
    /// Threads for the extraction stage.
    pub extract_threads: usize,
    /// Threads for the vectorizing stage.
    pub vect_threads: usize,
    /// Threads for the ranking stage.
    pub rank_threads: usize,
    /// Capacity of inter-stage queues.
    pub queue_capacity: usize,
}

impl PthreadTuning {
    /// The paper's recipe scaled to `cores`: heavy oversubscription, most
    /// threads on every parallel stage (28-of-32 ≈ 7/8).
    pub fn oversubscribed(cores: usize) -> Self {
        let t = ((cores * 7) / 8).max(1);
        PthreadTuning {
            seg_threads: t,
            extract_threads: t,
            vect_threads: t,
            rank_threads: t,
            queue_capacity: (2 * cores).max(8),
        }
    }

    /// A deliberately mis-tuned configuration (one thread per stage) used
    /// by the tuning-sensitivity experiment.
    pub fn one_thread_per_stage() -> Self {
        PthreadTuning {
            seg_threads: 1,
            extract_threads: 1,
            vect_threads: 1,
            rank_threads: 1,
            queue_capacity: 8,
        }
    }
}

/// Runs ferret with explicit threads and bounded queues (PARSEC pthreads
/// shape).
pub fn run_pthread(cfg: &FerretConfig, tuning: &PthreadTuning) -> FerretOutput {
    let tree = corpus(cfg);
    let db = FerretDb::build(cfg);
    let cap = tuning.queue_capacity;
    let (in_tx, in_rx) = pipelines::channel::<LoadedImage>(cap);
    let (seg_tx, seg_rx) = pipelines::channel::<SegmentedImage>(cap);
    let (ex_tx, ex_rx) = pipelines::channel::<ExtractedImage>(cap);
    let (vec_tx, vec_rx) = pipelines::channel::<QueryVectors>(cap);
    let reorder = Arc::new(pipelines::ReorderQueue::<RankResult>::new());
    let total = cfg.total_images as u64;

    let mut lines = Vec::with_capacity(cfg.total_images);
    std::thread::scope(|scope| {
        // Input: serial recursive traversal, unchanged from the serial code
        // (this is the natural shape hyperqueues also keep).
        {
            let tree = Arc::clone(&tree);
            scope.spawn(move || {
                traverse(&tree, &mut |r| in_tx.send(load(cfg, r)));
                // in_tx drops here → channel closes.
            });
        }
        for _ in 0..tuning.seg_threads {
            let rx = in_rx.clone();
            let tx = seg_tx.clone();
            scope.spawn(move || {
                while let Some(img) = rx.recv() {
                    tx.send(segment(cfg, img));
                }
            });
        }
        for _ in 0..tuning.extract_threads {
            let rx = seg_rx.clone();
            let tx = ex_tx.clone();
            scope.spawn(move || {
                while let Some(s) = rx.recv() {
                    tx.send(extract(cfg, s));
                }
            });
        }
        for _ in 0..tuning.vect_threads {
            let rx = ex_rx.clone();
            let tx = vec_tx.clone();
            scope.spawn(move || {
                while let Some(e) = rx.recv() {
                    tx.send(vectorize(cfg, e));
                }
            });
        }
        for _ in 0..tuning.rank_threads {
            let rx = vec_rx.clone();
            let ro = Arc::clone(&reorder);
            let db = Arc::clone(&db);
            scope.spawn(move || {
                while let Some(q) = rx.recv() {
                    let r = rank(cfg, &db, q);
                    ro.insert(r.id as u64, r);
                }
            });
        }
        // Drop the original sender clones so stages can terminate.
        drop(in_rx);
        drop(seg_tx);
        drop(seg_rx);
        drop(ex_tx);
        drop(ex_rx);
        drop(vec_tx);
        drop(vec_rx);
        // Output: serial, in order.
        reorder.close_at(total);
        let ro = Arc::clone(&reorder);
        let out = scope.spawn(move || {
            let mut lines = Vec::new();
            while let Some(r) = ro.recv() {
                lines.push(output_line(&r));
            }
            lines
        });
        lines = out.join().expect("output thread");
    });
    FerretOutput { lines }
}

// ---------------------------------------------------------------------------
// TBB-style driver.
// ---------------------------------------------------------------------------

/// Runs ferret on the TBB `parallel_pipeline` clone. Note the input stage
/// had to be restructured into an explicit-state iterator (§6.1).
pub fn run_tbb(cfg: &FerretConfig, threads: usize, tokens: usize) -> FerretOutput {
    let tree = corpus(cfg);
    let db = FerretDb::build(cfg);
    let lines = Arc::new(Mutex::new(Vec::with_capacity(cfg.total_images)));
    let lines2 = Arc::clone(&lines);
    let mut iter = OwnedTreeIter::new(tree);
    let cfg = cfg.clone();
    let cfg_seg = cfg.clone();
    let cfg_ex = cfg.clone();
    let cfg_vec = cfg.clone();
    let cfg_rank = cfg.clone();

    pipelines::TbbPipeline::input(move || {
        iter.next()
            .map(|r| Box::new(load(&cfg, &r)) as pipelines::Item)
    })
    .parallel(move |item| {
        let img = *item.downcast::<LoadedImage>().expect("LoadedImage");
        Box::new(segment(&cfg_seg, img)) as pipelines::Item
    })
    .parallel(move |item| {
        let s = *item.downcast::<SegmentedImage>().expect("SegmentedImage");
        Box::new(extract(&cfg_ex, s)) as pipelines::Item
    })
    .parallel(move |item| {
        let e = *item.downcast::<ExtractedImage>().expect("ExtractedImage");
        Box::new(vectorize(&cfg_vec, e)) as pipelines::Item
    })
    .parallel(move |item| {
        let q = *item.downcast::<QueryVectors>().expect("QueryVectors");
        Box::new(rank(&cfg_rank, &db, q)) as pipelines::Item
    })
    .serial_in_order(move |item| {
        let r = item.downcast_ref::<RankResult>().expect("RankResult");
        lines2.lock().push(output_line(r));
        item
    })
    .run(threads, tokens);

    let lines = Arc::try_unwrap(lines)
        .map(|m| m.into_inner())
        .unwrap_or_else(|a| a.lock().clone());
    FerretOutput { lines }
}

// ---------------------------------------------------------------------------
// Swan objects (task dataflow without hyperqueues).
// ---------------------------------------------------------------------------

/// Runs ferret on versioned-object dataflow *without* hyperqueues. As in
/// the paper's "objects" version, the input stage is not overlapped with
/// the pipeline (the baseline dataflow model cannot express the
/// variable-rate traversal as a task), which caps scalability (Fig. 8).
pub fn run_objects(cfg: &FerretConfig, rt: &Runtime) -> FerretOutput {
    let tree = corpus(cfg);
    let db = FerretDb::build(cfg);
    // Phase 1 (serial, unoverlapped): the input stage.
    let mut images = Vec::with_capacity(cfg.total_images);
    traverse(&tree, &mut |r| images.push(load(cfg, r)));
    // Phase 2: per-image dataflow tasks; output ordered by an inout chain.
    let out: Versioned<Vec<String>> = Versioned::new(Vec::with_capacity(cfg.total_images));
    rt.scope(|s| {
        for img in images.drain(..) {
            let res: Versioned<Option<RankResult>> = Versioned::new(None);
            let db = Arc::clone(&db);
            s.spawn((res.write(),), move |_, (mut w,)| {
                *w = Some(process_image(cfg, &db, img));
            });
            s.spawn((res.read(), out.update()), move |_, (r, mut o)| {
                o.push(output_line(r.as_ref().expect("writer ran first")));
            });
        }
    });
    FerretOutput {
        lines: out.read_latest(),
    }
}

// ---------------------------------------------------------------------------
// Hyperqueue driver (the paper's version).
// ---------------------------------------------------------------------------

/// Runs ferret with hyperqueues: the unmodified recursive traversal feeds
/// an input hyperqueue; per-image tasks carry the output hyperqueue's push
/// privilege so results reassemble in serial order; a single output task
/// drains in order (§6.1).
pub fn run_hyperqueue(cfg: &FerretConfig, rt: &Runtime) -> FerretOutput {
    let tree = corpus(cfg);
    let db = FerretDb::build(cfg);
    let mut lines = Vec::with_capacity(cfg.total_images);
    let lines_ref = &mut lines;
    rt.scope(move |s| {
        let in_q = hyperqueue::Hyperqueue::<LoadedImage>::with_segment_capacity(s, 64);
        let out_q = hyperqueue::Hyperqueue::<RankResult>::with_segment_capacity(s, 64);
        // Stage 1: input — the *unchanged* recursive traversal (§6.1),
        // buffered into small runs so loads publish one write slice at a
        // time instead of one index update per image.
        {
            let tree = Arc::clone(&tree);
            s.spawn((in_q.pushdep(),), move |_, (mut push,)| {
                let mut buf = Vec::with_capacity(16);
                traverse(&tree, &mut |r| {
                    buf.push(load(cfg, r));
                    if buf.len() == 16 {
                        push.push_iter(buf.drain(..));
                    }
                });
                push.push_iter(buf);
            });
        }
        // Stages 2-5: a dispatcher pops image batches and spawns one task
        // per image; each task holds a push grant on the output queue, so
        // the hyperqueue reduction restores serial order automatically.
        {
            let db = Arc::clone(&db);
            s.spawn(
                (in_q.popdep(), out_q.pushdep()),
                move |s, (mut pop, mut push)| loop {
                    let images = pop.pop_batch(8);
                    if images.is_empty() {
                        break; // permanently empty
                    }
                    for img in images {
                        let db = Arc::clone(&db);
                        s.spawn((push.pushdep(),), move |_, (mut p,)| {
                            p.push(process_image(cfg, &db, img));
                        });
                    }
                },
            );
        }
        // Stage 6: output — one coarse task iterating the queue (§6.1:
        // "a single large task is spawned for this stage which iterates
        // over all elements in the queue"), draining batch-wise.
        s.spawn((out_q.popdep(),), move |_, (mut pop,)| {
            pop.for_each_batch(32, |results| {
                for r in results {
                    lines_ref.push(output_line(r));
                }
            });
        });
    });
    FerretOutput { lines }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_drivers_agree_with_serial() {
        let cfg = FerretConfig::small();
        let (serial, clock) = run_serial(&cfg);
        assert_eq!(serial.lines.len(), cfg.total_images);
        assert!(clock.total().as_nanos() > 0);

        let pthread = run_pthread(&cfg, &PthreadTuning::oversubscribed(4));
        assert_eq!(pthread.checksum(), serial.checksum(), "pthread diverged");

        let tbb = run_tbb(&cfg, 4, 16);
        assert_eq!(tbb.checksum(), serial.checksum(), "tbb diverged");

        let rt = Runtime::with_workers(4);
        let objects = run_objects(&cfg, &rt);
        assert_eq!(objects.checksum(), serial.checksum(), "objects diverged");

        let hq = run_hyperqueue(&cfg, &rt);
        assert_eq!(hq.checksum(), serial.checksum(), "hyperqueue diverged");
    }

    #[test]
    fn hyperqueue_deterministic_across_worker_counts() {
        let cfg = FerretConfig::small();
        let (serial, _) = run_serial(&cfg);
        for workers in [1, 2, 8] {
            let rt = Runtime::with_workers(workers);
            let out = run_hyperqueue(&cfg, &rt);
            assert_eq!(
                out.lines, serial.lines,
                "hyperqueue output differs at {workers} workers"
            );
        }
    }

    #[test]
    fn mis_tuned_pthread_still_correct() {
        let cfg = FerretConfig::small();
        let (serial, _) = run_serial(&cfg);
        let out = run_pthread(&cfg, &PthreadTuning::one_thread_per_stage());
        assert_eq!(out.checksum(), serial.checksum());
    }
}
