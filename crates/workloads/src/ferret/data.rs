//! Synthetic ferret dataset: a deterministic directory tree of
//! deterministic "images".
//!
//! The PARSEC `native` input is a directory tree of JPEGs plus an image
//! database. The pipeline-scheduling behaviour the paper measures depends
//! on (a) the *recursive traversal* shape of the input stage — the
//! programmability problem §6.1 centres on — and (b) per-stage compute
//! ratios, not on actual image content. We synthesize both: the tree is
//! generated from a seed, and each "image" is a seeded PRNG raster
//! "decoded" (smoothed) at load time to model JPEG decode cost.

use crate::util::SplitMix64;

/// Reference to an image file discovered during traversal.
#[derive(Clone, Debug, PartialEq)]
pub struct ImageRef {
    /// Dense id in traversal (serial program) order.
    pub id: u32,
    /// Simulated file path.
    pub path: String,
    /// Seed from which pixels are generated at "load" time.
    pub seed: u64,
}

/// A node of the synthetic directory tree.
#[derive(Debug)]
pub struct DirNode {
    /// Directory name.
    pub name: String,
    /// Sub-directories.
    pub dirs: Vec<DirNode>,
    /// Images directly in this directory.
    pub images: Vec<ImageRef>,
}

impl DirNode {
    /// Total image count in this subtree.
    pub fn total_images(&self) -> usize {
        self.images.len() + self.dirs.iter().map(|d| d.total_images()).sum::<usize>()
    }
}

/// Builds a deterministic tree containing exactly `total` images.
///
/// The shape mimics an image corpus: a few levels of directories with a
/// geometric spread, images at the leaves.
pub fn build_tree(total: usize, seed: u64) -> DirNode {
    let mut rng = SplitMix64::new(seed);
    let mut next_id = 0u32;
    let root = build_node("corpus", total, 0, &mut rng, &mut next_id);
    debug_assert_eq!(root.total_images(), total);
    root
}

fn build_node(
    name: &str,
    budget: usize,
    depth: usize,
    rng: &mut SplitMix64,
    next_id: &mut u32,
) -> DirNode {
    let mut node = DirNode {
        name: name.to_string(),
        dirs: Vec::new(),
        images: Vec::new(),
    };
    if budget == 0 {
        return node;
    }
    // Leaf directories hold up to 16 images; inner nodes split the budget
    // over 2-4 children plus a few local images.
    if depth >= 3 || budget <= 16 {
        for _ in 0..budget {
            node.images.push(make_image(&node.name, rng, next_id));
        }
        return node;
    }
    let local = (rng.next_below(4) as usize).min(budget);
    for _ in 0..local {
        node.images.push(make_image(&node.name, rng, next_id));
    }
    let mut rest = budget - local;
    let children = 2 + rng.next_below(3) as usize; // 2..=4
    for c in 0..children {
        if rest == 0 {
            break;
        }
        let share = if c + 1 == children {
            rest
        } else {
            let s = rest / (children - c);
            // jitter the split so the tree is irregular like a real corpus
            let jitter = rng.next_below((s / 2).max(1) as u64 + 1) as usize;
            (s + jitter).min(rest)
        };
        let child_name = format!("{name}/d{c}");
        node.dirs
            .push(build_node(&child_name, share, depth + 1, rng, next_id));
        rest -= share;
    }
    // Any unassigned remainder becomes local images.
    for _ in 0..rest {
        node.images.push(make_image(&node.name, rng, next_id));
    }
    node
}

fn make_image(dir: &str, rng: &mut SplitMix64, next_id: &mut u32) -> ImageRef {
    let id = *next_id;
    *next_id += 1;
    ImageRef {
        id,
        path: format!("{dir}/img{id:05}.jpg"),
        seed: rng.next(),
    }
}

/// Recursive traversal in serial program order, calling `f` on each image.
/// This is the "natural" recursive shape that the pthreads and hyperqueue
/// versions keep, and that TBB forces the programmer to restructure (§6.1).
pub fn traverse(node: &DirNode, f: &mut impl FnMut(&ImageRef)) {
    for img in &node.images {
        f(img);
    }
    for d in &node.dirs {
        traverse(d, f);
    }
}

/// The restructured traversal: an explicit-stack iterator, i.e. the state
/// machine §6.1 says is "all but rocket science … but tedious and
/// error-prone". Required by the TBB driver, whose input filter must be
/// callable once per item.
pub struct TreeIter<'t> {
    /// Stack of (node, next-image-index, next-dir-index).
    stack: Vec<(&'t DirNode, usize, usize)>,
}

impl<'t> TreeIter<'t> {
    /// Starts a traversal equivalent to [`traverse`].
    pub fn new(root: &'t DirNode) -> Self {
        Self {
            stack: vec![(root, 0, 0)],
        }
    }
}

impl<'t> Iterator for TreeIter<'t> {
    type Item = &'t ImageRef;

    fn next(&mut self) -> Option<&'t ImageRef> {
        loop {
            let &(node, img_idx, dir_idx) = self.stack.last()?;
            if img_idx < node.images.len() {
                self.stack.last_mut().expect("nonempty").1 += 1;
                return Some(&node.images[img_idx]);
            }
            if dir_idx < node.dirs.len() {
                self.stack.last_mut().expect("nonempty").2 += 1;
                self.stack.push((&node.dirs[dir_idx], 0, 0));
                continue;
            }
            self.stack.pop();
        }
    }
}

/// Owned variant of [`TreeIter`] for contexts that demand `'static`
/// closures (the TBB input filter). Addresses nodes by index paths instead
/// of borrows — more of the restructuring tax §6.1 talks about.
pub struct OwnedTreeIter {
    tree: std::sync::Arc<DirNode>,
    /// Stack of (index path from root, next-image, next-dir).
    stack: Vec<(Vec<usize>, usize, usize)>,
}

impl OwnedTreeIter {
    /// Starts an owned traversal equivalent to [`traverse`].
    pub fn new(tree: std::sync::Arc<DirNode>) -> Self {
        Self {
            tree,
            stack: vec![(Vec::new(), 0, 0)],
        }
    }

    fn resolve(&self, path: &[usize]) -> &DirNode {
        let mut n: &DirNode = &self.tree;
        for &i in path {
            n = &n.dirs[i];
        }
        n
    }
}

impl Iterator for OwnedTreeIter {
    type Item = ImageRef;

    fn next(&mut self) -> Option<ImageRef> {
        loop {
            let (path, img_idx, dir_idx) = self.stack.last()?.clone();
            let node = self.resolve(&path);
            if img_idx < node.images.len() {
                let img = node.images[img_idx].clone();
                self.stack.last_mut().expect("nonempty").1 += 1;
                return Some(img);
            }
            if dir_idx < node.dirs.len() {
                self.stack.last_mut().expect("nonempty").2 += 1;
                let mut child = path.clone();
                child.push(dir_idx);
                self.stack.push((child, 0, 0));
                continue;
            }
            self.stack.pop();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_has_exact_image_count() {
        for total in [0, 1, 16, 100, 357] {
            let t = build_tree(total, 42);
            assert_eq!(t.total_images(), total);
        }
    }

    #[test]
    fn tree_is_deterministic() {
        let a = build_tree(200, 7);
        let b = build_tree(200, 7);
        let mut ia = Vec::new();
        let mut ib = Vec::new();
        traverse(&a, &mut |i| ia.push(i.clone()));
        traverse(&b, &mut |i| ib.push(i.clone()));
        assert_eq!(ia, ib);
    }

    #[test]
    fn traversal_ids_are_in_discovery_order() {
        // Ids are assigned during construction in the same recursive order
        // the traversal visits, so they must come out sorted.
        let t = build_tree(300, 99);
        let mut ids = Vec::new();
        traverse(&t, &mut |i| ids.push(i.id));
        assert_eq!(ids.len(), 300);
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "recursive order must match id order");
    }

    #[test]
    fn iterator_matches_recursive_traversal() {
        let t = build_tree(250, 1234);
        let mut rec = Vec::new();
        traverse(&t, &mut |i| rec.push(i.id));
        let via_iter: Vec<u32> = TreeIter::new(&t).map(|i| i.id).collect();
        assert_eq!(rec, via_iter, "restructured traversal diverges (§6.1!)");
    }

    #[test]
    fn tree_is_actually_nested() {
        let t = build_tree(500, 5);
        assert!(!t.dirs.is_empty(), "want a real tree, not a flat dir");
        assert!(
            t.dirs.iter().any(|d| !d.dirs.is_empty()),
            "want at least two levels"
        );
    }
}
