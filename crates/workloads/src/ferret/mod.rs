//! The ferret workload: content-based image similarity search over a
//! 6-stage pipeline (paper §6.1, Figure 7, Table 1, Figure 8).
//!
//! Stage schematic (Figure 7):
//!
//! ```text
//! input → seg → extr → vect → rank → out
//! serial   ∥      ∥      ∥      ∥    serial(in order)
//! ```
//!
//! `input` is a recursive directory traversal (the §6.1 programmability
//! crux); `rank` dominates the serial profile (Table 1).

pub mod data;
pub mod drivers;
pub mod stages;

pub use data::{build_tree, traverse, DirNode, ImageRef, OwnedTreeIter, TreeIter};
pub use drivers::{
    corpus, run_hyperqueue, run_objects, run_pthread, run_serial, run_tbb, FerretOutput,
    PthreadTuning,
};
pub use stages::{FerretConfig, FerretDb};
