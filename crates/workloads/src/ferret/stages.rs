//! The six ferret stage kernels (Figure 7): input → segmentation →
//! extraction → vectorizing → ranking → output.
//!
//! Each kernel is *algorithmically real* (k-means segmentation, moment
//! features, gradient-histogram descriptors, weighted nearest-neighbour
//! ranking) but runs on synthetic images. Default cost knobs in
//! [`FerretConfig`] are calibrated so the serial stage-time breakdown
//! approximates Table 1 of the paper (ranking ≈ 75%, vectorizing ≈ 16%,
//! input ≈ 4.5%, …); the `table1` harness prints the achieved split.

use std::sync::Arc;

use crate::ferret::data::ImageRef;
use crate::util::SplitMix64;

/// Workload parameters. Cost knobs are documented with the stage they
/// feed.
#[derive(Clone, Debug)]
pub struct FerretConfig {
    /// Number of images in the corpus (paper: 3500).
    pub total_images: usize,
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// "JPEG decode" smoothing passes at load time (input-stage cost).
    pub decode_passes: usize,
    /// K-means cluster count (number of segments per image).
    pub clusters: usize,
    /// K-means iterations (segmentation cost).
    pub kmeans_iters: usize,
    /// Descriptor dimensionality.
    pub vector_dim: usize,
    /// Gradient-histogram passes (vectorizing cost).
    pub vectorize_passes: usize,
    /// Database entries compared per query (ranking cost).
    pub db_entries: usize,
    /// Results reported per image.
    pub top_k: usize,
    /// Dataset seed.
    pub seed: u64,
}

impl Default for FerretConfig {
    fn default() -> Self {
        // Calibrated against Table 1 (see EXPERIMENTS.md): ranking
        // dominates, vectorizing second, extraction tiny.
        Self {
            total_images: 3500,
            width: 48,
            height: 48,
            decode_passes: 7,
            clusters: 8,
            kmeans_iters: 2,
            vector_dim: 32,
            vectorize_passes: 10,
            db_entries: 7000,
            top_k: 10,
            seed: 0xFE44E7,
        }
    }
}

impl FerretConfig {
    /// A fast configuration for unit/integration tests.
    pub fn small() -> Self {
        Self {
            total_images: 60,
            width: 16,
            height: 16,
            decode_passes: 2,
            clusters: 4,
            kmeans_iters: 3,
            vector_dim: 8,
            vectorize_passes: 2,
            db_entries: 50,
            top_k: 5,
            seed: 0xFE44E7,
        }
    }

    /// A mid-size configuration for the speedup harness (so a full core
    /// sweep finishes in minutes, not hours).
    pub fn bench(total_images: usize) -> Self {
        Self {
            total_images,
            ..Self::default()
        }
    }
}

/// A loaded ("decoded") image.
#[derive(Clone, Debug)]
pub struct LoadedImage {
    /// Dense id in serial order.
    pub id: u32,
    /// Simulated path (appears in output lines).
    pub path: String,
    /// Grayscale pixels, row-major.
    pub pixels: Vec<u8>,
    /// Width in pixels.
    pub width: usize,
    /// Height in pixels.
    pub height: usize,
}

/// Segmentation output: per-pixel cluster labels.
#[derive(Clone, Debug)]
pub struct SegmentedImage {
    /// The underlying image.
    pub img: LoadedImage,
    /// Per-pixel cluster label.
    pub labels: Vec<u8>,
    /// Number of clusters.
    pub clusters: usize,
}

/// Per-segment moment features.
#[derive(Clone, Debug)]
pub struct SegmentFeatures {
    /// Pixel count.
    pub area: u32,
    /// Mean intensity.
    pub mean: f32,
    /// Intensity variance.
    pub var: f32,
    /// Centroid (x, y).
    pub centroid: (f32, f32),
}

/// Extraction output.
#[derive(Clone, Debug)]
pub struct ExtractedImage {
    /// Segmented image (kept: vectorizing needs the raster).
    pub seg: SegmentedImage,
    /// One feature record per segment.
    pub feats: Vec<SegmentFeatures>,
}

/// Vectorizing output: the query descriptor set for ranking.
#[derive(Clone, Debug)]
pub struct QueryVectors {
    /// Image id.
    pub id: u32,
    /// Image path.
    pub path: String,
    /// One descriptor per segment.
    pub vectors: Vec<Vec<f32>>,
}

/// Ranking output: top-K most similar database entries.
#[derive(Clone, Debug)]
pub struct RankResult {
    /// Image id.
    pub id: u32,
    /// Image path.
    pub path: String,
    /// `(db entry id, distance)`, ascending by distance.
    pub top: Vec<(u32, f32)>,
}

/// The image database queried by the ranking stage.
pub struct FerretDb {
    entries: Vec<Vec<f32>>,
}

impl FerretDb {
    /// Builds the deterministic database for `cfg`.
    pub fn build(cfg: &FerretConfig) -> Arc<FerretDb> {
        let mut rng = SplitMix64::new(cfg.seed ^ 0xDB);
        let entries = (0..cfg.db_entries)
            .map(|_| {
                (0..cfg.vector_dim)
                    .map(|_| (rng.next_below(1000) as f32) / 1000.0)
                    .collect()
            })
            .collect();
        Arc::new(FerretDb { entries })
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the database is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Stage kernels.
// ---------------------------------------------------------------------------

/// Input-stage kernel: "load and decode" one image (generate + smooth).
pub fn load(cfg: &FerretConfig, r: &ImageRef) -> LoadedImage {
    let n = cfg.width * cfg.height;
    let mut pixels = vec![0u8; n];
    let mut rng = SplitMix64::new(r.seed);
    rng.fill(&mut pixels);
    // "Decode": box-smoothing passes to model JPEG decode cost and give
    // the raster spatial structure for segmentation.
    let w = cfg.width;
    let h = cfg.height;
    let mut tmp = pixels.clone();
    for _ in 0..cfg.decode_passes {
        for y in 0..h {
            for x in 0..w {
                let xm = x.saturating_sub(1);
                let xp = (x + 1).min(w - 1);
                let ym = y.saturating_sub(1);
                let yp = (y + 1).min(h - 1);
                let sum = pixels[y * w + xm] as u32
                    + pixels[y * w + xp] as u32
                    + pixels[ym * w + x] as u32
                    + pixels[yp * w + x] as u32
                    + pixels[y * w + x] as u32;
                tmp[y * w + x] = (sum / 5) as u8;
            }
        }
        std::mem::swap(&mut pixels, &mut tmp);
    }
    LoadedImage {
        id: r.id,
        path: r.path.clone(),
        pixels,
        width: w,
        height: h,
    }
}

/// Segmentation kernel: 1-D k-means over intensities.
pub fn segment(cfg: &FerretConfig, img: LoadedImage) -> SegmentedImage {
    let k = cfg.clusters.max(1);
    let mut centroids: Vec<f32> = (0..k)
        .map(|i| (i as f32 + 0.5) * 256.0 / k as f32)
        .collect();
    let mut labels = vec![0u8; img.pixels.len()];
    for _ in 0..cfg.kmeans_iters {
        // Assign.
        for (i, &p) in img.pixels.iter().enumerate() {
            let v = p as f32;
            let mut best = 0usize;
            let mut bestd = f32::MAX;
            for (c, &cv) in centroids.iter().enumerate() {
                let d = (v - cv) * (v - cv);
                if d < bestd {
                    bestd = d;
                    best = c;
                }
            }
            labels[i] = best as u8;
        }
        // Update.
        let mut sum = vec![0f64; k];
        let mut cnt = vec![0u32; k];
        for (i, &l) in labels.iter().enumerate() {
            sum[l as usize] += img.pixels[i] as f64;
            cnt[l as usize] += 1;
        }
        for c in 0..k {
            if cnt[c] > 0 {
                centroids[c] = (sum[c] / cnt[c] as f64) as f32;
            }
        }
    }
    SegmentedImage {
        img,
        labels,
        clusters: k,
    }
}

/// Extraction kernel: per-segment moments (cheap — 0.35% in Table 1).
pub fn extract(_cfg: &FerretConfig, seg: SegmentedImage) -> ExtractedImage {
    let k = seg.clusters;
    let w = seg.img.width;
    let mut area = vec![0u32; k];
    let mut sum = vec![0f64; k];
    let mut sum2 = vec![0f64; k];
    let mut cx = vec![0f64; k];
    let mut cy = vec![0f64; k];
    for (i, &l) in seg.labels.iter().enumerate() {
        let l = l as usize;
        let v = seg.img.pixels[i] as f64;
        area[l] += 1;
        sum[l] += v;
        sum2[l] += v * v;
        cx[l] += (i % w) as f64;
        cy[l] += (i / w) as f64;
    }
    let feats = (0..k)
        .map(|c| {
            let n = area[c].max(1) as f64;
            let mean = sum[c] / n;
            SegmentFeatures {
                area: area[c],
                mean: mean as f32,
                var: (sum2[c] / n - mean * mean) as f32,
                centroid: ((cx[c] / n) as f32, (cy[c] / n) as f32),
            }
        })
        .collect();
    ExtractedImage { seg, feats }
}

/// Vectorizing kernel: gradient-orientation histograms per segment,
/// seeded by the moment features (16% of serial time in Table 1).
pub fn vectorize(cfg: &FerretConfig, ex: ExtractedImage) -> QueryVectors {
    let dim = cfg.vector_dim.max(4);
    let k = ex.seg.clusters;
    let w = ex.seg.img.width;
    let h = ex.seg.img.height;
    let px = &ex.seg.img.pixels;
    let mut vectors = vec![vec![0f32; dim]; k];
    for _pass in 0..cfg.vectorize_passes.max(1) {
        for y in 1..h - 1 {
            for x in 1..w - 1 {
                let i = y * w + x;
                let dx = px[i + 1] as f32 - px[i - 1] as f32;
                let dy = px[i + w] as f32 - px[i - w] as f32;
                let mag = (dx * dx + dy * dy).sqrt();
                // Orientation bin without atan2: quantize the (dx, dy)
                // octant then refine by ratio — deterministic and cheap.
                let bin = gradient_bin(dx, dy, dim);
                let seg_id = ex.seg.labels[i] as usize;
                vectors[seg_id][bin] += mag;
            }
        }
    }
    // Blend in the moment features and L2-normalize.
    for (c, v) in vectors.iter_mut().enumerate() {
        let f = &ex.feats[c];
        v[0] += f.mean;
        v[1 % dim] += f.var.sqrt();
        v[2 % dim] += f.area as f32;
        let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    QueryVectors {
        id: ex.seg.img.id,
        path: ex.seg.img.path.clone(),
        vectors,
    }
}

fn gradient_bin(dx: f32, dy: f32, dim: usize) -> usize {
    // Map direction to [0, dim) deterministically.
    let ax = dx.abs();
    let ay = dy.abs();
    let (oct, ratio) = match (dx >= 0.0, dy >= 0.0, ax >= ay) {
        (true, true, true) => (0, ay / ax.max(1e-6)),
        (true, true, false) => (1, ax / ay.max(1e-6)),
        (false, true, false) => (2, ax / ay.max(1e-6)),
        (false, true, true) => (3, ay / ax.max(1e-6)),
        (false, false, true) => (4, ay / ax.max(1e-6)),
        (false, false, false) => (5, ax / ay.max(1e-6)),
        (true, false, false) => (6, ax / ay.max(1e-6)),
        (true, false, true) => (7, ay / ax.max(1e-6)),
    };
    let fine = (ratio.clamp(0.0, 1.0) * (dim as f32 / 8.0)) as usize;
    (oct * dim / 8 + fine).min(dim - 1)
}

/// Ranking kernel: weighted nearest-segment distance against every
/// database entry, keep top-K (the 75% stage of Table 1).
pub fn rank(cfg: &FerretConfig, db: &FerretDb, q: QueryVectors) -> RankResult {
    let mut top: Vec<(u32, f32)> = Vec::with_capacity(cfg.top_k + 1);
    for (eid, entry) in db.entries.iter().enumerate() {
        // Distance: sum over query segments of the L2 distance to the
        // entry descriptor (EMD-flavoured "many-to-one" matching).
        let mut dist = 0f32;
        for v in &q.vectors {
            let mut d = 0f32;
            for (a, b) in v.iter().zip(entry.iter()) {
                let x = a - b;
                d += x * x;
            }
            dist += d.sqrt();
        }
        // Insert into the running top-K (ties broken by id: determinism).
        let pos = top
            .binary_search_by(|probe| {
                probe
                    .1
                    .partial_cmp(&dist)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(probe.0.cmp(&(eid as u32)))
            })
            .unwrap_or_else(|p| p);
        if pos < cfg.top_k {
            top.insert(pos, (eid as u32, dist));
            top.truncate(cfg.top_k);
        }
    }
    RankResult {
        id: q.id,
        path: q.path,
        top,
    }
}

/// Output kernel: format one result line (0.1% stage).
pub fn output_line(r: &RankResult) -> String {
    use std::fmt::Write;
    let mut s = String::with_capacity(64);
    let _ = write!(s, "{}:", r.path);
    for (id, d) in &r.top {
        let _ = write!(s, " {id}({d:.4})");
    }
    s
}

/// Convenience: the full middle of the pipeline (segment → … → rank), used
/// by drivers that fuse the parallel stages into one task per image.
pub fn process_image(cfg: &FerretConfig, db: &FerretDb, img: LoadedImage) -> RankResult {
    rank(cfg, db, vectorize(cfg, extract(cfg, segment(cfg, img))))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ferret::data::build_tree;
    use crate::ferret::data::traverse;

    fn one_image(cfg: &FerretConfig) -> LoadedImage {
        let tree = build_tree(1, cfg.seed);
        let mut img = None;
        traverse(&tree, &mut |r| img = Some(load(cfg, r)));
        img.unwrap()
    }

    #[test]
    fn load_is_deterministic() {
        let cfg = FerretConfig::small();
        let a = one_image(&cfg);
        let b = one_image(&cfg);
        assert_eq!(a.pixels, b.pixels);
    }

    #[test]
    fn segment_labels_all_pixels_within_cluster_range() {
        let cfg = FerretConfig::small();
        let seg = segment(&cfg, one_image(&cfg));
        assert_eq!(seg.labels.len(), cfg.width * cfg.height);
        assert!(seg.labels.iter().all(|&l| (l as usize) < cfg.clusters));
        // More than one cluster should actually be used on random-ish data.
        let distinct: std::collections::HashSet<u8> = seg.labels.iter().copied().collect();
        assert!(distinct.len() > 1, "degenerate segmentation");
    }

    #[test]
    fn extract_areas_sum_to_pixel_count() {
        let cfg = FerretConfig::small();
        let ex = extract(&cfg, segment(&cfg, one_image(&cfg)));
        let total: u32 = ex.feats.iter().map(|f| f.area).sum();
        assert_eq!(total as usize, cfg.width * cfg.height);
    }

    #[test]
    fn vectors_are_normalized() {
        let cfg = FerretConfig::small();
        let q = vectorize(&cfg, extract(&cfg, segment(&cfg, one_image(&cfg))));
        assert_eq!(q.vectors.len(), cfg.clusters);
        for v in &q.vectors {
            let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
            assert!((norm - 1.0).abs() < 1e-3, "norm = {norm}");
        }
    }

    #[test]
    fn rank_returns_sorted_topk_with_deterministic_ties() {
        let cfg = FerretConfig::small();
        let db = FerretDb::build(&cfg);
        let q = vectorize(&cfg, extract(&cfg, segment(&cfg, one_image(&cfg))));
        let r = rank(&cfg, &db, q.clone());
        assert_eq!(r.top.len(), cfg.top_k.min(db.len()));
        for w in r.top.windows(2) {
            assert!(w[0].1 <= w[1].1, "top-K not sorted");
        }
        // Re-ranking must give the identical answer (pure function).
        let r2 = rank(&cfg, &db, q);
        assert_eq!(r.top, r2.top);
    }

    #[test]
    fn gradient_bin_in_range() {
        for dim in [8usize, 16, 32] {
            for &(dx, dy) in &[
                (1.0f32, 0.0f32),
                (-1.0, 0.5),
                (0.3, -0.9),
                (-0.7, -0.7),
                (0.0, 0.0),
            ] {
                assert!(gradient_bin(dx, dy, dim) < dim);
            }
        }
    }

    #[test]
    fn output_line_contains_path_and_ids() {
        let r = RankResult {
            id: 3,
            path: "x/y.jpg".into(),
            top: vec![(7, 0.5), (2, 0.75)],
        };
        let line = output_line(&r);
        assert!(line.starts_with("x/y.jpg:"));
        assert!(line.contains("7(0.5000)"));
        assert!(line.contains("2(0.7500)"));
    }
}
