//! Wire codecs for the network ingress: how [`crate::service`] jobs
//! travel over the `hqd` framed protocol.
//!
//! The ingress layer ([`pipelines::ingress`]) is payload-agnostic; these
//! [`JobCodec`] implementations pin the byte formats for the two service
//! workloads:
//!
//! * **submit payload** (both workloads): the job's input lines as
//!   UTF-8, each **terminated** by `\n` (an empty payload is an empty
//!   job; `"\n"` is a job of one empty line — termination rather than
//!   joining keeps the encoding injective). Decoding is lenient about a
//!   missing final `\n`. Invalid UTF-8 is rejected, which the server
//!   surfaces as an `Error` frame.
//! * **wordcount result**: one `word count\n` line per (word, count)
//!   pair, in the graph's output order (sorted by word);
//! * **logstream result**: one 16-digit lower-hex line per digest, in
//!   serial order.
//!
//! Both encodings are injective on the graph output, so the protocol's
//! byte-identical-responses guarantee reduces to the graphs' determinism
//! guarantee. The `expected_*` helpers compute the exact bytes a job must
//! come back as (via the serial elisions), which is what the load
//! generator and the ingress tests verify responses against.

use std::fmt::Write as _;

use pipelines::ingress::JobCodec;

use crate::service::{logstream_digest_serial, wordcount_serial};

/// Encodes job input lines as a submit-frame payload: each line followed
/// by `\n`. Terminating (not joining) makes the encoding injective —
/// an empty job (`[]` → `""`) is distinguishable from a job of one empty
/// line (`[""]` → `"\n"`).
pub fn encode_lines(lines: &[String]) -> Vec<u8> {
    let mut out = Vec::with_capacity(lines.iter().map(|l| l.len() + 1).sum());
    for line in lines {
        out.extend_from_slice(line.as_bytes());
        out.push(b'\n');
    }
    out
}

/// Decodes a submit-frame payload back into job input lines. Lenient
/// about a missing final `\n` (hand-written clients), strict about
/// UTF-8.
pub fn decode_lines(payload: &[u8]) -> Result<Vec<String>, String> {
    if payload.is_empty() {
        return Ok(Vec::new());
    }
    let text = std::str::from_utf8(payload).map_err(|e| format!("payload is not UTF-8: {e}"))?;
    let text = text.strip_suffix('\n').unwrap_or(text);
    Ok(text.split('\n').map(str::to_string).collect())
}

/// Wire codec for the wordcount service
/// ([`crate::service::wordcount_spec`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct WordcountCodec;

impl JobCodec for WordcountCodec {
    type In = String;
    type Out = (String, u64);

    fn decode_job(&self, payload: &[u8]) -> Result<Vec<String>, String> {
        decode_lines(payload)
    }

    fn encode_result(&self, out: &[(String, u64)], buf: &mut Vec<u8>) {
        let mut text = String::new();
        for (word, count) in out {
            let _ = writeln!(text, "{word} {count}");
        }
        buf.extend_from_slice(text.as_bytes());
    }
}

/// Wire codec for the logstream-digest service
/// ([`crate::service::logstream_digest_spec`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct LogstreamCodec;

impl JobCodec for LogstreamCodec {
    type In = String;
    type Out = u64;

    fn decode_job(&self, payload: &[u8]) -> Result<Vec<String>, String> {
        decode_lines(payload)
    }

    fn encode_result(&self, out: &[u64], buf: &mut Vec<u8>) {
        let mut text = String::new();
        for digest in out {
            let _ = writeln!(text, "{digest:016x}");
        }
        buf.extend_from_slice(text.as_bytes());
    }
}

/// The exact result bytes a wordcount job over `lines` must produce
/// (serial elision, then [`WordcountCodec::encode_result`]).
pub fn expected_wordcount_bytes(lines: &[String]) -> Vec<u8> {
    let mut buf = Vec::new();
    WordcountCodec.encode_result(&wordcount_serial(lines), &mut buf);
    buf
}

/// The exact result bytes a logstream-digest job over `lines` must
/// produce at the given `parse_work` setting.
pub fn expected_logstream_bytes(lines: &[String], parse_work: u32) -> Vec<u8> {
    let mut buf = Vec::new();
    LogstreamCodec.encode_result(&logstream_digest_serial(lines, parse_work), &mut buf);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{job_lines, ServiceWorkloadConfig};

    #[test]
    fn line_payloads_roundtrip() {
        let lines: Vec<String> = ["alpha bravo", "", "charlie"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(decode_lines(&encode_lines(&lines)).unwrap(), lines);
        // The encoding is injective on the edge cases: an empty job and a
        // job of one empty line are different jobs with different bytes.
        assert_eq!(encode_lines(&[]), b"");
        assert_eq!(encode_lines(&["".to_string()]), b"\n");
        assert_eq!(decode_lines(b"").unwrap(), Vec::<String>::new());
        assert_eq!(decode_lines(b"\n").unwrap(), vec![String::new()]);
        // Lenient decode: a missing final newline still parses.
        assert_eq!(decode_lines(b"alpha\nbravo").unwrap(), ["alpha", "bravo"]);
    }

    #[test]
    fn invalid_utf8_is_rejected_not_mangled() {
        let err = WordcountCodec.decode_job(&[0xFF, 0xFE, b'a']).unwrap_err();
        assert!(err.contains("UTF-8"), "unhelpful error: {err}");
    }

    #[test]
    fn expected_bytes_match_the_serial_elision_encodings() {
        let cfg = ServiceWorkloadConfig::small();
        let lines = job_lines(&cfg, 3);
        let wc = expected_wordcount_bytes(&lines);
        let text = String::from_utf8(wc).expect("wordcount results are UTF-8");
        // One "word count" pair per line, sorted by word.
        let words: Vec<&str> = text
            .lines()
            .map(|l| l.split_once(' ').expect("word count").0)
            .collect();
        let mut sorted = words.clone();
        sorted.sort_unstable();
        assert_eq!(words, sorted, "wordcount output must be word-sorted");

        let ls = expected_logstream_bytes(&lines, 7);
        let text = String::from_utf8(ls).expect("digests are UTF-8");
        assert_eq!(text.lines().count(), lines.len());
        assert!(text.lines().all(|l| l.len() == 16));
    }
}
