//! Per-stage timing for the serial characterization runs (Tables 1 and 2
//! of the paper).

use std::time::{Duration, Instant};

/// Accumulates wall-clock time and iteration counts per pipeline stage.
#[derive(Clone, Debug, Default)]
pub struct StageClock {
    entries: Vec<StageEntry>,
}

/// One row of a characterization table.
#[derive(Clone, Debug)]
pub struct StageEntry {
    /// Stage name as the paper prints it.
    pub name: &'static str,
    /// Number of stage invocations ("Iterations" column).
    pub iterations: u64,
    /// Accumulated time.
    pub time: Duration,
}

impl StageClock {
    /// Creates an empty clock.
    pub fn new() -> Self {
        Self::default()
    }

    /// Runs `f`, attributing its wall time to `stage`.
    pub fn time<R>(&mut self, stage: &'static str, f: impl FnOnce() -> R) -> R {
        let t0 = Instant::now();
        let r = f();
        self.add(stage, 1, t0.elapsed());
        r
    }

    /// Adds a manual measurement.
    pub fn add(&mut self, stage: &'static str, iterations: u64, time: Duration) {
        if let Some(e) = self.entries.iter_mut().find(|e| e.name == stage) {
            e.iterations += iterations;
            e.time += time;
        } else {
            self.entries.push(StageEntry {
                name: stage,
                iterations,
                time,
            });
        }
    }

    /// The accumulated rows, in first-recorded order.
    pub fn entries(&self) -> &[StageEntry] {
        &self.entries
    }

    /// Total time across stages.
    pub fn total(&self) -> Duration {
        self.entries.iter().map(|e| e.time).sum()
    }

    /// Renders the table in the paper's format (iterations, seconds, %).
    pub fn render(&self, title: &str) -> String {
        use std::fmt::Write;
        let total = self.total().as_secs_f64().max(1e-12);
        let mut out = String::new();
        let _ = writeln!(out, "{title}");
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>12} {:>9}",
            "Stage", "Iterations", "Time (s)", "Time (%)"
        );
        for e in &self.entries {
            let secs = e.time.as_secs_f64();
            let _ = writeln!(
                out,
                "{:<16} {:>10} {:>12.3} {:>8.2}%",
                e.name,
                e.iterations,
                secs,
                100.0 * secs / total
            );
        }
        let _ = writeln!(
            out,
            "{:<16} {:>10} {:>12.3} {:>8.2}%",
            "Total", "", total, 100.0
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_stage() {
        let mut c = StageClock::new();
        c.add("a", 1, Duration::from_millis(10));
        c.add("b", 2, Duration::from_millis(30));
        c.add("a", 1, Duration::from_millis(10));
        assert_eq!(c.entries().len(), 2);
        let a = &c.entries()[0];
        assert_eq!(a.iterations, 2);
        assert_eq!(a.time, Duration::from_millis(20));
        assert_eq!(c.total(), Duration::from_millis(50));
    }

    #[test]
    fn time_measures_closure() {
        let mut c = StageClock::new();
        let v = c.time("work", || {
            std::thread::sleep(Duration::from_millis(5));
            42
        });
        assert_eq!(v, 42);
        assert!(c.total() >= Duration::from_millis(4));
    }

    #[test]
    fn render_contains_all_stages() {
        let mut c = StageClock::new();
        c.add("Input", 1, Duration::from_millis(5));
        c.add("Ranking", 35, Duration::from_millis(75));
        let s = c.render("Table: test");
        assert!(s.contains("Input"));
        assert!(s.contains("Ranking"));
        assert!(s.contains("Time (%)"));
    }
}
