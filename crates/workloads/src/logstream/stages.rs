//! The logstream stage kernels: field-by-field parsing, windowed
//! per-service aggregation, summary formatting, and the firehose digest.
//!
//! Every driver — serial, linear chain, fan-out graph — runs exactly these
//! functions; the drivers differ only in how the kernels are wired.

use std::collections::BTreeMap;

use crate::logstream::LogConfig;
use crate::util::fnv1a;

/// Severity of a parsed line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Level {
    /// Routine traffic.
    Info,
    /// Suspicious but non-failing.
    Warn,
    /// A failed request (counted per window).
    Error,
}

/// One parsed log line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogRecord {
    /// Clock tick the line was emitted at.
    pub tick: u64,
    /// Service index (parsed back out of the `svc-NN` name).
    pub service: u32,
    /// Severity.
    pub level: Level,
    /// Request latency in microseconds.
    pub latency_us: u64,
    /// Digest of the raw line (folded into per-window signatures).
    pub digest: u64,
}

fn field<'l>(line: &'l str, key: &str) -> &'l str {
    let start = line
        .find(key)
        .unwrap_or_else(|| panic!("malformed log line: missing {key}: {line}"))
        + key.len();
    let rest = &line[start..];
    &rest[..rest.find(' ').unwrap_or(rest.len())]
}

/// Parses one log line, charging `cfg.parse_work` extra rounds of digest
/// mixing (the workload's CPU knob).
pub fn parse_line(cfg: &LogConfig, line: &str) -> LogRecord {
    let tick: u64 = field(line, "tick=").parse().expect("tick field");
    let service: u32 = field(line, "svc=svc-").parse().expect("svc field");
    let level = match field(line, "level=") {
        "ERROR" => Level::Error,
        "WARN" => Level::Warn,
        _ => Level::Info,
    };
    let latency_us: u64 = field(line, "latency_us=").parse().expect("latency field");
    let mut digest = fnv1a(line.as_bytes());
    for _ in 0..cfg.parse_work {
        // splitmix-style avalanche rounds: deterministic busywork standing
        // in for the enrichment real log pipelines do per record.
        digest = digest.wrapping_add(0x9E37_79B9_7F4A_7C15);
        digest = (digest ^ (digest >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        digest = (digest ^ (digest >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        digest ^= digest >> 31;
    }
    LogRecord {
        tick,
        service,
        level,
        latency_us,
        digest,
    }
}

/// Extracts the routing key (service index) from a *raw* line without a
/// full parse — what a keyed fan-out distributor does to route records
/// before the expensive per-record work runs on the shards. The
/// distributor is a serial section of the fan-out, so this takes the
/// fixed-offset fast path the generator's fixed-width fields permit
/// (`tick=NNNNNN svc=svc-DD …`), falling back to a field scan for
/// free-form lines.
pub fn service_key(line: &str) -> u64 {
    let b = line.as_bytes();
    // "tick=NNNNNN svc=svc-" is 20 bytes; exactly two service digits must
    // follow (a third digit means a wider id — fall back to the scan).
    if b.len() > 22 && &b[12..20] == b"svc=svc-" && !b[22].is_ascii_digit() {
        let (d1, d0) = (b[20].wrapping_sub(b'0'), b[21].wrapping_sub(b'0'));
        if d1 < 10 && d0 < 10 {
            return (d1 * 10 + d0) as u64;
        }
    }
    field(line, "svc=svc-").parse().expect("svc field")
}

/// Cheap order-sensitive digest of a raw line (the firehose branch).
pub fn line_digest(line: &str) -> u64 {
    fnv1a(line.as_bytes())
}

/// Folds one more line digest into the firehose checksum (order matters).
pub fn firehose_fold(acc: u64, digest: u64) -> u64 {
    acc.rotate_left(5) ^ digest.wrapping_mul(0x1000_0000_01b3)
}

/// A tumbling aggregation window: `(window index, service)`.
pub type WindowKey = (u64, u32);

/// Aggregated statistics of one `(window, service)` cell.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WindowAgg {
    /// Lines observed.
    pub count: u64,
    /// `ERROR` lines observed.
    pub errors: u64,
    /// Sum of latencies (for the mean).
    pub latency_sum: u64,
    /// Maximum latency.
    pub latency_max: u64,
    /// Order-sensitive digest of the cell's records — equal across
    /// drivers only if each cell sees its records in serial order.
    pub signature: u64,
}

/// Folds `rec` into its window cell. The map is ordered by [`WindowKey`],
/// so flushing it yields the globally sorted summary stream.
pub fn fold_record(cfg: &LogConfig, map: &mut BTreeMap<WindowKey, WindowAgg>, rec: &LogRecord) {
    let window = rec.tick / cfg.window_ticks.max(1);
    let cell = map.entry((window, rec.service)).or_default();
    cell.count += 1;
    if rec.level == Level::Error {
        cell.errors += 1;
    }
    cell.latency_sum += rec.latency_us;
    cell.latency_max = cell.latency_max.max(rec.latency_us);
    cell.signature = firehose_fold(cell.signature, rec.digest);
}

/// Renders one summary line (the pipeline's ordered output).
pub fn summary_line(key: &WindowKey, agg: &WindowAgg) -> String {
    let mean = agg.latency_sum / agg.count.max(1);
    format!(
        "window={:04} svc=svc-{:02} n={} err={} lat_mean_us={} lat_max_us={} sig={:016x}",
        key.0, key.1, agg.count, agg.errors, mean, agg.latency_max, agg.signature
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logstream::{corpus, LogConfig};

    #[test]
    fn parse_roundtrips_generated_lines() {
        let cfg = LogConfig::small();
        let lines = corpus(&cfg);
        assert_eq!(lines.len(), cfg.records);
        for (i, line) in lines.iter().enumerate() {
            let rec = parse_line(&cfg, line);
            assert_eq!(rec.tick, (i / cfg.records_per_tick) as u64);
            assert!((rec.service as usize) < cfg.services);
            assert_eq!(rec.service as u64, service_key(line));
            assert!(rec.latency_us < 250_000);
        }
    }

    #[test]
    fn service_key_handles_wide_service_ids() {
        // 3-digit ids defeat the fixed-offset fast path; the scan fallback
        // must still return the full index.
        let cfg = LogConfig {
            services: 200,
            ..LogConfig::small()
        };
        let lines = corpus(&cfg);
        for line in lines.iter().take(500) {
            assert_eq!(
                service_key(line),
                parse_line(&cfg, line).service as u64,
                "key mismatch on {line}"
            );
        }
        assert_eq!(
            service_key("tick=000001 svc=svc-123 level=INFO latency_us=000001 req=00000000"),
            123
        );
    }

    #[test]
    fn parse_work_changes_digest_only() {
        let cfg0 = LogConfig {
            parse_work: 0,
            ..LogConfig::small()
        };
        let cfg9 = LogConfig {
            parse_work: 9,
            ..LogConfig::small()
        };
        let line = "tick=000001 svc=svc-03 level=ERROR latency_us=000777 req=deadbeef";
        let (a, b) = (parse_line(&cfg0, line), parse_line(&cfg9, line));
        assert_ne!(a.digest, b.digest);
        assert_eq!(
            (a.tick, a.service, a.level, a.latency_us),
            (b.tick, b.service, b.level, b.latency_us)
        );
    }

    #[test]
    fn aggregation_is_order_sensitive_within_a_cell() {
        let cfg = LogConfig::small();
        let l1 = "tick=000000 svc=svc-00 level=INFO latency_us=000010 req=00000001";
        let l2 = "tick=000000 svc=svc-00 level=ERROR latency_us=000020 req=00000002";
        let (r1, r2) = (parse_line(&cfg, l1), parse_line(&cfg, l2));
        let mut fwd = BTreeMap::new();
        fold_record(&cfg, &mut fwd, &r1);
        fold_record(&cfg, &mut fwd, &r2);
        let mut rev = BTreeMap::new();
        fold_record(&cfg, &mut rev, &r2);
        fold_record(&cfg, &mut rev, &r1);
        let (f, r) = (fwd[&(0, 0)], rev[&(0, 0)]);
        assert_eq!(
            (f.count, f.errors, f.latency_sum),
            (r.count, r.errors, r.latency_sum)
        );
        assert_ne!(f.signature, r.signature, "signature must expose reordering");
    }
}
