//! logstream — streaming log analytics, the graph-shaped workload.
//!
//! The paper's three workloads (ferret, dedup, bzip2) are straight
//! chains; this one *needs* a DAG and exists to exercise
//! `pipelines::graph`:
//!
//! ```text
//!                      ┌─ keyed fan-out ─ shard 0: parse + window agg ─┐
//! source ── tee ── A ──┼─ (by service)  ─ shard 1: parse + window agg ─┼─ merge_by_key ─ emit
//!            │         └─ …                                            ┘   (ordered summaries)
//!            └─── B ── round-robin fan-out ── digest replicas ── seq merge ── firehose checksum
//! ```
//!
//! Branch A shards a windowed per-service aggregation by service key and
//! rejoins the sorted shard outputs into one globally ordered summary
//! stream; branch B fans the raw firehose across replica digest stages
//! and rejoins in serial order. Every driver (serial, linear chain,
//! fan-out graph at any degree) must produce byte-identical output at any
//! worker count — asserted by `tests/pipeline_shapes.rs`.
//!
//! As with the other workloads the input is synthetic but the kernels are
//! real: lines are actually formatted and actually parsed field by field,
//! and the aggregation computes real windowed statistics.

mod drivers;
mod stages;

pub use drivers::{run_graph, run_linear, run_serial, LogOutput};
pub use stages::{
    firehose_fold, fold_record, line_digest, parse_line, service_key, summary_line, Level,
    LogRecord, WindowAgg, WindowKey,
};

use crate::util::SplitMix64;

/// Sizing and determinism knobs for the logstream workload.
#[derive(Clone, Debug)]
pub struct LogConfig {
    /// Number of log lines.
    pub records: usize,
    /// Number of distinct services emitting lines.
    pub services: usize,
    /// Log lines per clock tick (ticks drive windowing).
    pub records_per_tick: usize,
    /// Window length in ticks for the tumbling aggregation windows.
    pub window_ticks: u64,
    /// Fan-out degree for the sharded aggregation (branch A) and the
    /// digest replicas (branch B).
    pub shards: usize,
    /// Reorder/read-ahead window for the merges.
    pub merge_window: usize,
    /// Extra per-record CPU (rounds of digest mixing in the parse kernel):
    /// the knob that makes the pipeline compute-bound for the speedup
    /// benchmarks.
    pub parse_work: u32,
    /// Seed for the synthetic corpus.
    pub seed: u64,
}

impl LogConfig {
    /// Test-sized: a few thousand records, small enough for property
    /// sweeps.
    pub fn small() -> Self {
        LogConfig {
            records: 4_000,
            services: 16,
            records_per_tick: 8,
            window_ticks: 16,
            shards: 4,
            merge_window: 32,
            parse_work: 0,
            seed: 0x10c5_7e41,
        }
    }

    /// Bench-sized: `records` lines with enough per-record work that the
    /// parse+enrich stage dominates the pipeline (real log pipelines do
    /// per-record enrichment — geo/session lookups, PII scrubbing — that
    /// dwarfs field splitting; `parse_work` stands in for it).
    pub fn bench(records: usize) -> Self {
        LogConfig {
            records,
            services: 64,
            records_per_tick: 32,
            window_ticks: 32,
            shards: 4,
            merge_window: 64,
            parse_work: 300,
            seed: 0x10c5_7e41,
        }
    }
}

/// Generates the deterministic synthetic log corpus for `cfg`.
///
/// Lines look like real structured logs and must really be parsed:
/// `tick=000123 svc=svc-07 level=WARN latency_us=003456 req=9f3a77c2`.
pub fn corpus(cfg: &LogConfig) -> Vec<String> {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut lines = Vec::with_capacity(cfg.records);
    for i in 0..cfg.records {
        let tick = (i / cfg.records_per_tick.max(1)) as u64;
        let svc = rng.next_below(cfg.services as u64);
        let level = match rng.next_below(100) {
            0..=4 => "ERROR",
            5..=19 => "WARN",
            _ => "INFO",
        };
        let latency = rng.next_below(250_000);
        let req = rng.next() & 0xffff_ffff;
        lines.push(format!(
            "tick={tick:06} svc=svc-{svc:02} level={level} latency_us={latency:06} req={req:08x}"
        ));
    }
    lines
}
