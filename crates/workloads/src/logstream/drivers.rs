//! logstream drivers: serial reference, linear hyperqueue chain, and the
//! fan-out/fan-in graph — all producing byte-identical output.

use std::collections::BTreeMap;

use pipelines::graph::{GraphBuilder, Partition};
use swan::Runtime;

use crate::logstream::stages::{
    firehose_fold, fold_record, line_digest, parse_line, service_key, summary_line, WindowAgg,
    WindowKey,
};
use crate::logstream::LogConfig;
use crate::timing::StageClock;
use crate::util::fnv1a_lines;

/// The observable output of a logstream run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LogOutput {
    /// Ordered window summaries (ascending `(window, service)`).
    pub summaries: Vec<String>,
    /// Order-sensitive digest of the raw firehose.
    pub firehose: u64,
}

impl LogOutput {
    /// Order-sensitive checksum for cross-driver comparison.
    pub fn checksum(&self) -> u64 {
        fnv1a_lines(&self.summaries) ^ self.firehose.rotate_left(17)
    }
}

/// Runs the workload serially, timing each stage (the characterization
/// profile `table1 --workload logstream` prints).
pub fn run_serial(cfg: &LogConfig, lines: &[String]) -> (LogOutput, StageClock) {
    let mut clock = StageClock::new();

    let t0 = std::time::Instant::now();
    let records: Vec<_> = lines.iter().map(|l| parse_line(cfg, l)).collect();
    clock.add("Parse", lines.len() as u64, t0.elapsed());

    let t0 = std::time::Instant::now();
    let mut agg: BTreeMap<WindowKey, WindowAgg> = BTreeMap::new();
    for rec in &records {
        fold_record(cfg, &mut agg, rec);
    }
    clock.add("Aggregate", records.len() as u64, t0.elapsed());

    let t0 = std::time::Instant::now();
    let mut firehose = 0u64;
    for line in lines {
        firehose = firehose_fold(firehose, line_digest(line));
    }
    clock.add("Firehose", lines.len() as u64, t0.elapsed());

    let t0 = std::time::Instant::now();
    let summaries: Vec<String> = agg.iter().map(|(k, a)| summary_line(k, a)).collect();
    clock.add("Emit", summaries.len() as u64, t0.elapsed());

    (
        LogOutput {
            summaries,
            firehose,
        },
        clock,
    )
}

/// The linear hyperqueue chain: source → parse stage → aggregation sink,
/// with the firehose folded on the tee'd second branch. This is the
/// degree-independent baseline the fan-out graph must beat.
pub fn run_linear(cfg: &LogConfig, lines: &[String], rt: &Runtime) -> LogOutput {
    let mut agg: BTreeMap<WindowKey, WindowAgg> = BTreeMap::new();
    let mut firehose = 0u64;
    let (agg_ref, fire_ref) = (&mut agg, &mut firehose);
    rt.scope(move |s| {
        let gb = GraphBuilder::on(s).io_batch(64);
        let (a, b) = gb.source_iter(0u64..lines.len() as u64).tee();
        a.map(move |i| parse_line(cfg, &lines[i as usize]))
            .for_each(move |rec| fold_record(cfg, agg_ref, &rec));
        b.for_each(move |i| {
            *fire_ref = firehose_fold(*fire_ref, line_digest(&lines[i as usize]));
        });
    });
    LogOutput {
        summaries: agg.iter().map(|(k, a)| summary_line(k, a)).collect(),
        firehose,
    }
}

/// The DAG driver: keyed fan-out across `degree` aggregation shards with
/// an ordered key-merge (branch A), and a round-robin digest fan-out with
/// a sequence-tag merge (branch B). Output is byte-identical to
/// [`run_serial`] and [`run_linear`] at every degree and worker count.
pub fn run_graph(cfg: &LogConfig, lines: &[String], rt: &Runtime, degree: usize) -> LogOutput {
    let mut summaries: Vec<String> = Vec::new();
    let mut firehose = 0u64;
    let (sum_ref, fire_ref) = (&mut summaries, &mut firehose);
    rt.scope(move |s| {
        let gb = GraphBuilder::on(s).io_batch(64);
        let (a, b) = gb.source_iter(0u64..lines.len() as u64).tee();
        // Branch A: parse + windowed aggregation, sharded by service so
        // every (window, service) cell lives on exactly one shard and sees
        // its records in serial order.
        a.split(
            degree,
            Partition::keyed(move |&i: &u64| service_key(&lines[i as usize])),
        )
        .shard(
            |_idx| BTreeMap::<WindowKey, WindowAgg>::new(),
            move |map, t, _emit| {
                let rec = parse_line(cfg, &lines[t.value as usize]);
                fold_record(cfg, map, &rec);
            },
            |map, emit| emit.extend(map),
        )
        .merge_by_key(cfg.merge_window, |&(k, _)| k)
        .map(|(k, a)| summary_line(&k, &a))
        .collect_into(sum_ref);
        // Branch B: the raw firehose digest, fanned round-robin and
        // rejoined in serial order by sequence tag.
        b.split(degree, Partition::RoundRobin)
            .map(move |i| line_digest(&lines[i as usize]))
            .merge(cfg.merge_window)
            .for_each(move |d| *fire_ref = firehose_fold(*fire_ref, d));
    });
    LogOutput {
        summaries,
        firehose,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::logstream::corpus;

    #[test]
    fn all_drivers_agree_with_serial() {
        let cfg = LogConfig::small();
        let lines = corpus(&cfg);
        let (serial, clock) = run_serial(&cfg, &lines);
        assert!(!serial.summaries.is_empty());
        assert!(clock.total().as_nanos() > 0);

        let rt = Runtime::with_workers(4);
        let linear = run_linear(&cfg, &lines, &rt);
        assert_eq!(linear, serial, "linear chain diverged");
        for degree in [1, 2, 4, 7] {
            let graph = run_graph(&cfg, &lines, &rt, degree);
            assert_eq!(graph, serial, "graph at degree {degree} diverged");
        }
    }

    #[test]
    fn graph_deterministic_across_worker_counts() {
        let cfg = LogConfig::small();
        let lines = corpus(&cfg);
        let (serial, _) = run_serial(&cfg, &lines);
        for workers in [1, 2, 8] {
            let rt = Runtime::with_workers(workers);
            let out = run_graph(&cfg, &lines, &rt, cfg.shards);
            assert_eq!(out, serial, "graph output differs at {workers} workers");
        }
    }

    #[test]
    fn summaries_are_globally_sorted() {
        let cfg = LogConfig::small();
        let lines = corpus(&cfg);
        let rt = Runtime::with_workers(4);
        let out = run_graph(&cfg, &lines, &rt, 3);
        let mut sorted = out.summaries.clone();
        sorted.sort();
        assert_eq!(out.summaries, sorted, "merge_by_key must emit sorted");
    }
}
