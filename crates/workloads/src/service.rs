//! service — the persistent-pipeline service workload.
//!
//! Where the other workloads measure *one* heavy pipeline run, this one
//! measures a **service**: a [`CompiledGraph`] kept hot on a persistent
//! runtime while thousands of small, independent jobs are fired at it by
//! closed-loop clients. Two job shapes:
//!
//! * **wordcount** — tokenize each job's lines, shard the counting by
//!   word hash, k-way merge the sorted shard outputs (the stateful
//!   sharded-aggregation shape);
//! * **logstream digest** — per-line digest with optional enrichment
//!   work, fanned round-robin across replicas and rejoined in serial
//!   order (the stateless fan-out shape).
//!
//! Every job's output is checked against its serial elision, so the
//! throughput and latency numbers (p50/p95/p99 into `BENCH_service.json`)
//! describe *correct* executions. The harness also reports the graph's
//! storage counters: after warm-up + [`CompiledGraph::prewarm`], the
//! steady state allocates **zero** segments per job.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipelines::graph::{Admission, CompiledGraph, GraphSpec, ServiceConfig};
use pipelines::service::ServiceStorageStats;
use swan::{JobTableStats, Runtime};

use crate::logstream::line_digest;
use crate::util::{fnv1a, SplitMix64};

/// Sizing knobs for the service workload.
#[derive(Clone, Debug)]
pub struct ServiceWorkloadConfig {
    /// Total jobs each measurement fires at the graph.
    pub jobs: usize,
    /// Input lines per job (jobs are deliberately small — the point is
    /// per-job overhead, not per-job bandwidth).
    pub job_lines: usize,
    /// Fan-out degree / shard count inside each job's graph.
    pub degree: usize,
    /// Reorder/read-ahead window for the merges.
    pub window: usize,
    /// Admission bound (max concurrently executing jobs).
    pub max_in_flight: usize,
    /// Closed-loop client threads submitting jobs back-to-back.
    pub clients: usize,
    /// Segment capacity of every graph edge.
    pub segment_capacity: usize,
    /// Per-round stage batch size.
    pub io_batch: usize,
    /// Extra per-line digest rounds in the logstream job (stands in for
    /// enrichment work).
    pub parse_work: u32,
    /// Corpus seed; job `j` derives its lines from `seed ^ j`.
    pub seed: u64,
}

impl ServiceWorkloadConfig {
    /// Test-sized: enough jobs to exercise admission and reuse, small
    /// enough for debug-build suites.
    pub fn small() -> Self {
        ServiceWorkloadConfig {
            jobs: 64,
            job_lines: 48,
            degree: 3,
            window: 16,
            max_in_flight: 4,
            clients: 4,
            segment_capacity: 32,
            io_batch: 16,
            parse_work: 0,
            seed: 0x5e21_11ce,
        }
    }

    /// Bench-sized: thousands of small jobs.
    pub fn bench(jobs: usize) -> Self {
        ServiceWorkloadConfig {
            jobs,
            job_lines: 96,
            degree: 4,
            window: 32,
            max_in_flight: 4,
            clients: 4,
            segment_capacity: 64,
            io_batch: 32,
            parse_work: 40,
            seed: 0x5e21_11ce,
        }
    }

    fn service_config(&self) -> ServiceConfig {
        ServiceConfig {
            max_in_flight: self.max_in_flight,
            dispatchers: 0,
            segment_capacity: self.segment_capacity,
            io_batch: self.io_batch,
            ..ServiceConfig::default()
        }
    }

    /// Worst-case segments any job can chain on one edge — the
    /// [`CompiledGraph::prewarm`] depth for deterministic zero-allocation
    /// steady state. Wordcount expands each line into its words, so size
    /// by tokens, not lines.
    pub fn prewarm_depth(&self) -> usize {
        let max_items = self.job_lines * (WORDS_PER_LINE_MAX + 1);
        let per_job = max_items / self.segment_capacity.max(2) + 3;
        per_job * self.max_in_flight.max(1) + 4
    }
}

// ---------------------------------------------------------------------------
// Deterministic per-job corpus.
// ---------------------------------------------------------------------------

const VOCABULARY: [&str; 24] = [
    "alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel", "india", "juliett",
    "kilo", "lima", "mike", "november", "oscar", "papa", "quebec", "romeo", "sierra", "tango",
    "uniform", "victor", "whiskey", "xray",
];

const WORDS_PER_LINE_MAX: usize = 9;

/// The lines of job `job` under `cfg` — a pure function of `(seed, job)`,
/// so clients, checkers and serial elisions all agree on the input.
pub fn job_lines(cfg: &ServiceWorkloadConfig, job: usize) -> Vec<String> {
    let mut rng = SplitMix64::new(cfg.seed ^ (job as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    (0..cfg.job_lines)
        .map(|_| {
            let words = 4 + rng.next_below((WORDS_PER_LINE_MAX - 4) as u64 + 1) as usize;
            let mut line = String::new();
            for w in 0..words {
                if w > 0 {
                    line.push(' ');
                }
                line.push_str(VOCABULARY[rng.next_below(VOCABULARY.len() as u64) as usize]);
            }
            line
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Job graphs and their serial elisions.
// ---------------------------------------------------------------------------

/// The wordcount job graph: tokenize, shard the counting by word hash,
/// merge the sorted shard outputs into one globally sorted count list.
pub fn wordcount_spec(degree: usize, window: usize) -> GraphSpec<String, (String, u64)> {
    GraphSpec::<String, String>::new()
        .flat_map(|line: String| line.split_whitespace().map(str::to_string).collect())
        .sharded(
            degree,
            window,
            |word: &String| fnv1a(word.as_bytes()),
            |_idx| BTreeMap::<String, u64>::new(),
            |counts, word, _emit| *counts.entry(word).or_insert(0) += 1,
            |counts, emit| emit.extend(counts),
            |pair: &(String, u64)| pair.0.clone(),
        )
}

/// Serial elision of [`wordcount_spec`].
pub fn wordcount_serial(lines: &[String]) -> Vec<(String, u64)> {
    let mut counts = BTreeMap::<String, u64>::new();
    for line in lines {
        for word in line.split_whitespace() {
            *counts.entry(word.to_string()).or_insert(0) += 1;
        }
    }
    counts.into_iter().collect()
}

/// Per-line digest kernel with `parse_work` extra mixing rounds.
pub fn enriched_digest(line: &str, parse_work: u32) -> u64 {
    let mut d = line_digest(line);
    for _ in 0..parse_work {
        d = d.rotate_left(7) ^ d.wrapping_mul(0x1000_0000_01b3);
    }
    d
}

/// The logstream-digest job graph: stateless per-line digest, fanned
/// round-robin across `degree` replicas, rejoined in serial order.
pub fn logstream_digest_spec(
    degree: usize,
    window: usize,
    parse_work: u32,
) -> GraphSpec<String, u64> {
    GraphSpec::<String, String>::new().fanout_map(degree, window, move |line: String| {
        enriched_digest(&line, parse_work)
    })
}

/// Serial elision of [`logstream_digest_spec`].
pub fn logstream_digest_serial(lines: &[String], parse_work: u32) -> Vec<u64> {
    lines
        .iter()
        .map(|l| enriched_digest(l, parse_work))
        .collect()
}

/// Builds the compiled wordcount service on `rt`.
pub fn build_wordcount_service(
    rt: Arc<Runtime>,
    cfg: &ServiceWorkloadConfig,
) -> CompiledGraph<String, (String, u64)> {
    wordcount_spec(cfg.degree, cfg.window).compile(rt, cfg.service_config())
}

/// Builds the compiled logstream-digest service on `rt`.
pub fn build_logstream_service(
    rt: Arc<Runtime>,
    cfg: &ServiceWorkloadConfig,
) -> CompiledGraph<String, u64> {
    logstream_digest_spec(cfg.degree, cfg.window, cfg.parse_work).compile(rt, cfg.service_config())
}

// ---------------------------------------------------------------------------
// Closed-loop measurement harness.
// ---------------------------------------------------------------------------

/// What one measured service run produced.
#[derive(Clone, Debug)]
pub struct ServiceReport {
    /// Jobs completed.
    pub jobs: u64,
    /// Wall-clock for the whole run.
    pub elapsed: Duration,
    /// Jobs per second over the run.
    pub throughput_jobs_per_sec: f64,
    /// Median submit→result job latency, microseconds.
    pub p50_us: f64,
    /// 95th-percentile job latency, microseconds.
    pub p95_us: f64,
    /// 99th-percentile job latency, microseconds.
    pub p99_us: f64,
    /// Worst observed job latency, microseconds.
    pub max_us: f64,
    /// Graph storage counters at the end of the run.
    pub storage: ServiceStorageStats,
    /// Heap segment allocations during the measured loop itself (i.e.
    /// after warm-up + prewarm). Zero in the steady state.
    pub steady_segment_allocs: u64,
    /// Admission counters at the end of the run.
    pub admission: JobTableStats,
}

/// Value of the `p`-th percentile (0–100) of `sorted` (ascending).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Fires `cfg.jobs` jobs at `graph` from `cfg.clients` closed-loop client
/// threads (each submits a job, joins it, repeats) and reports throughput
/// plus the latency distribution. `make_input` produces job `j`'s input;
/// `check` sees every job's output (assert correctness there — failures
/// propagate as panics).
pub fn run_closed_loop<I, O>(
    graph: &CompiledGraph<I, O>,
    cfg: &ServiceWorkloadConfig,
    make_input: impl Fn(usize) -> Vec<I> + Sync,
    check: impl Fn(usize, &[O]) + Sync,
) -> ServiceReport
where
    I: Clone + Send + 'static,
    O: Send + 'static,
{
    let allocs_before = graph.telemetry().storage.segments_allocated;
    let next = AtomicUsize::new(0);
    let completed = AtomicU64::new(0);
    let latencies = parking_lot::Mutex::new(Vec::with_capacity(cfg.jobs));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..cfg.clients.max(1) {
            s.spawn(|| {
                let mut local = Vec::new();
                loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= cfg.jobs {
                        break;
                    }
                    let input = make_input(j);
                    let submit = Instant::now();
                    let out = graph
                        .submit(input, Admission::Unbounded)
                        .expect_accepted()
                        .join();
                    local.push(submit.elapsed().as_secs_f64() * 1e6);
                    check(j, &out);
                    completed.fetch_add(1, Ordering::Relaxed);
                }
                latencies.lock().extend(local);
            });
        }
    });
    let elapsed = t0.elapsed();
    let mut lat = latencies.into_inner();
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    let jobs = completed.load(Ordering::Relaxed);
    let telemetry = graph.telemetry();
    let storage = telemetry.storage;
    ServiceReport {
        jobs,
        elapsed,
        throughput_jobs_per_sec: jobs as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: percentile(&lat, 50.0),
        p95_us: percentile(&lat, 95.0),
        p99_us: percentile(&lat, 99.0),
        max_us: lat.last().copied().unwrap_or(0.0),
        steady_segment_allocs: storage.segments_allocated.saturating_sub(allocs_before),
        storage,
        admission: telemetry.admission,
    }
}

/// One-call wordcount measurement: builds the service, warms it, fires
/// the closed loop with per-job output verification.
pub fn run_wordcount_service(rt: Arc<Runtime>, cfg: &ServiceWorkloadConfig) -> ServiceReport {
    let graph = build_wordcount_service(rt, cfg);
    warm_up(&graph, cfg, |j| job_lines(cfg, j));
    run_closed_loop(
        &graph,
        cfg,
        |j| job_lines(cfg, j),
        |j, out| {
            assert_eq!(
                out,
                wordcount_serial(&job_lines(cfg, j)),
                "wordcount job {j} diverged from its serial elision"
            );
        },
    )
}

/// One-call logstream-digest measurement (see [`run_wordcount_service`]).
pub fn run_logstream_service(rt: Arc<Runtime>, cfg: &ServiceWorkloadConfig) -> ServiceReport {
    let graph = build_logstream_service(rt, cfg);
    warm_up(&graph, cfg, |j| job_lines(cfg, j));
    run_closed_loop(
        &graph,
        cfg,
        |j| job_lines(cfg, j),
        |j, out| {
            assert_eq!(
                out,
                logstream_digest_serial(&job_lines(cfg, j), cfg.parse_work),
                "logstream job {j} diverged from its serial elision"
            );
        },
    )
}

/// Runs one job to instantiate the edges, then prewarms every edge pool
/// to the worst-case depth so the measured loop is allocation-free.
fn warm_up<I, O>(
    graph: &CompiledGraph<I, O>,
    cfg: &ServiceWorkloadConfig,
    make_input: impl Fn(usize) -> Vec<I>,
) where
    I: Clone + Send + 'static,
    O: Send + 'static,
{
    graph
        .submit(make_input(0), Admission::Unbounded)
        .expect_accepted()
        .join();
    graph.prewarm(cfg.prewarm_depth());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_per_job() {
        let cfg = ServiceWorkloadConfig::small();
        assert_eq!(job_lines(&cfg, 7), job_lines(&cfg, 7));
        assert_ne!(job_lines(&cfg, 7), job_lines(&cfg, 8));
    }

    #[test]
    fn wordcount_service_matches_serial_elision() {
        let mut cfg = ServiceWorkloadConfig::small();
        cfg.jobs = 12;
        let rt = Arc::new(Runtime::with_workers(2));
        let report = run_wordcount_service(rt, &cfg);
        assert_eq!(report.jobs, 12);
        assert!(report.admission.high_water_in_flight <= cfg.max_in_flight);
    }

    #[test]
    fn logstream_service_matches_serial_elision() {
        let mut cfg = ServiceWorkloadConfig::small();
        cfg.jobs = 12;
        let rt = Arc::new(Runtime::with_workers(2));
        let report = run_logstream_service(rt, &cfg);
        assert_eq!(report.jobs, 12);
        assert!(report.p50_us <= report.p99_us || report.p50_us == report.p99_us);
    }

    #[test]
    fn percentile_handles_edges() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[5.0], 99.0), 5.0);
        let v: Vec<f64> = (1..=101).map(|x| x as f64).collect();
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 51.0);
        assert_eq!(percentile(&v, 100.0), 101.0);
    }
}
