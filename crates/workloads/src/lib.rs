//! # workloads — the paper's evaluation benchmarks, end to end
//!
//! PARSEC-like pipeline workloads with drivers for every programming model
//! the paper compares (§6): serial, pthreads-style, TBB-style, Swan
//! versioned-object dataflow, and hyperqueues.
//!
//! * [`ferret`] — 6-stage image-similarity search (Table 1, Figure 8)
//! * [`dedup`] — 5-stage deduplicating compressor (Table 2, Figure 11)
//! * [`bzip2`] — 3-stage block compressor (§6.3)
//! * [`logstream`] — streaming log analytics over a **graph-shaped**
//!   pipeline (tee + keyed/round-robin fan-out + ordered fan-in), the
//!   workload that exercises `pipelines::graph` beyond the paper's
//!   straight chains
//! * [`service`] — thousands of small wordcount/logstream jobs fired at
//!   a **persistent** compiled graph by closed-loop clients: the
//!   service-runtime workload (throughput + p50/p95/p99 job latency,
//!   zero-allocation steady state)
//! * [`wire`] — the job codecs that put the service workloads on the
//!   `hqd` network-ingress protocol (see `pipelines::ingress`)
//!
//! Every workload is *algorithmically real* (the dedup output really
//! round-trips; bzip2 really compresses via BWT+MTF+Huffman) but runs on
//! deterministic synthetic inputs; see DESIGN.md for the substitutions.

#![warn(missing_docs)]

pub mod bzip2;
pub mod dedup;
pub mod entropy;
pub mod ferret;
pub mod logstream;
pub mod service;
pub mod timing;
pub mod util;
pub mod wire;

pub use timing::{StageClock, StageEntry};
