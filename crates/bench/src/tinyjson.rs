//! A dependency-free JSON reader for the `BENCH_*.json` perf records.
//!
//! The bench harnesses emit JSON by hand (no serde in the offline
//! workspace), and the `bench_check` CI gate needs to read it back. This
//! module parses a useful JSON subset — objects, arrays, numbers,
//! strings, booleans, null — and flattens it to `("a.b.c", value)` pairs,
//! which is all the gate needs to diff medians against a baseline.

use std::collections::BTreeMap;

/// A parsed JSON scalar or container, flattened away by
/// [`flatten_numbers`].
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Number(f64),
    /// A string literal (escapes decoded).
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; key order is not preserved (sorted).
    Object(BTreeMap<String, Value>),
}

/// Parses a JSON document. Returns a human-readable error on malformed
/// input (offset + what was expected).
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

/// Flattens every numeric leaf of `value` into `path -> number` pairs,
/// joining object keys with `.` and array indices as `[i]`.
pub fn flatten_numbers(value: &Value) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    walk(value, String::new(), &mut out);
    out
}

fn walk(value: &Value, path: String, out: &mut BTreeMap<String, f64>) {
    match value {
        Value::Number(n) => {
            out.insert(path, *n);
        }
        Value::Object(map) => {
            for (k, v) in map {
                let p = if path.is_empty() {
                    k.clone()
                } else {
                    format!("{path}.{k}")
                };
                walk(v, p, out);
            }
        }
        Value::Array(items) => {
            for (i, v) in items.iter().enumerate() {
                walk(v, format!("{path}[{i}]"), out);
            }
        }
        _ => {}
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(b, pos),
        Some(b'[') => parse_array(b, pos),
        Some(b'"') => Ok(Value::String(parse_string(b, pos)?)),
        Some(b't') => expect(b, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Value::Bool(false)),
        Some(b'n') => expect(b, pos, "null").map(|()| Value::Null),
        Some(_) => parse_number(b, pos),
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '{'
    let mut map = BTreeMap::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Value::Object(map));
    }
    loop {
        skip_ws(b, pos);
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        expect(b, pos, ":")?;
        let value = parse_value(b, pos)?;
        map.insert(key, value);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Value::Object(map));
            }
            _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Value::Array(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    while let Some(&c) = b.get(*pos) {
        *pos += 1;
        match c {
            b'"' => return Ok(out),
            b'\\' => {
                let esc = *b
                    .get(*pos)
                    .ok_or_else(|| "unterminated escape".to_string())?;
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b't' => out.push('\t'),
                    b'r' => out.push('\r'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let hex = b
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_string())?;
                        let code = u32::from_str_radix(
                            std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                            16,
                        )
                        .map_err(|e| format!("bad \\u escape: {e}"))?;
                        *pos += 4;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(format!("unknown escape `\\{}`", esc as char)),
                }
            }
            _ => {
                // Multi-byte UTF-8: copy the raw continuation bytes.
                let start = *pos - 1;
                let len = utf8_len(c);
                let end = start + len;
                let chunk = b
                    .get(start..end)
                    .ok_or_else(|| "truncated UTF-8".to_string())?;
                out.push_str(std::str::from_utf8(chunk).map_err(|_| "invalid UTF-8")?);
                *pos = end;
            }
        }
    }
    Err("unterminated string".to_string())
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| "invalid number")?;
    text.parse::<f64>()
        .map(Value::Number)
        .map_err(|e| format!("bad number `{text}` at byte {start}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_bench_record() {
        let json = r#"{
            "bench": "queue_ops",
            "items": 1000000,
            "median_ns_per_op": { "steady_state_per_item": 4.03, "batched": 0.5 },
            "speedup": 8.06,
            "flags": [true, null, "x"]
        }"#;
        let v = parse(json).expect("valid json");
        let flat = flatten_numbers(&v);
        assert_eq!(flat["items"], 1_000_000.0);
        assert_eq!(flat["median_ns_per_op.steady_state_per_item"], 4.03);
        assert_eq!(flat["median_ns_per_op.batched"], 0.5);
        assert_eq!(flat["speedup"], 8.06);
        assert!(!flat.contains_key("bench"));
    }

    #[test]
    fn parses_nested_arrays_and_escapes() {
        let v = parse(r#"{"a": [1, {"b": 2e1}], "s": "x\nyA"}"#).expect("valid");
        let flat = flatten_numbers(&v);
        assert_eq!(flat["a[0]"], 1.0);
        assert_eq!(flat["a[1].b"], 20.0);
        match &v {
            Value::Object(m) => assert_eq!(m["s"], Value::String("x\nyA".to_string())),
            _ => panic!("object expected"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
    }

    #[test]
    fn negative_and_exponent_numbers() {
        let v = parse(r#"{"a": -3.5, "b": 1.2e-3}"#).expect("valid");
        let flat = flatten_numbers(&v);
        assert_eq!(flat["a"], -3.5);
        assert!((flat["b"] - 0.0012).abs() < 1e-12);
    }
}
