//! Shared helpers for the table/figure harness binaries.
//!
//! Every binary regenerates one artifact of the paper's evaluation
//! (DESIGN.md §4 maps them): `table1`, `table2`, `fig8`, `fig11`,
//! `bzip2_results`, `ablations`. Binaries accept `--scale small|full` and
//! workload-size overrides so the full sweep is tractable on any machine.

use std::time::{Duration, Instant};

pub mod tinyjson;

/// Measures one closure.
pub fn time<R>(f: impl FnOnce() -> R) -> (Duration, R) {
    let t0 = Instant::now();
    let r = f();
    (t0.elapsed(), r)
}

/// Best-of-`n` timing (keeps the minimum, the standard noise reducer for
/// throughput-style runs).
pub fn best_of<R>(n: usize, mut f: impl FnMut() -> R) -> (Duration, R) {
    let mut best: Option<(Duration, R)> = None;
    for _ in 0..n.max(1) {
        let (d, r) = time(&mut f);
        match &best {
            Some((bd, _)) if *bd <= d => {}
            _ => best = Some((d, r)),
        }
    }
    best.expect("n >= 1")
}

/// The core counts a speedup sweep visits: 1, 2, 4, … up to the machine
/// (mirroring the x-axis of Figures 8/11).
pub fn core_sweep(max: usize) -> Vec<usize> {
    let mut v = vec![1usize, 2, 4, 6, 8, 12, 16, 20, 24, 28, 32];
    v.retain(|&c| c <= max);
    if v.last() != Some(&max) {
        v.push(max);
    }
    v
}

/// Number of usable cores.
pub fn machine_cores() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Minimal flag parser: `--key value` pairs.
pub struct Args {
    pairs: Vec<(String, String)>,
}

impl Args {
    /// Parses the process arguments.
    pub fn parse() -> Self {
        let raw: Vec<String> = std::env::args().skip(1).collect();
        let mut pairs = Vec::new();
        let mut i = 0;
        while i < raw.len() {
            if let Some(key) = raw[i].strip_prefix("--") {
                let val = raw.get(i + 1).cloned().unwrap_or_default();
                pairs.push((key.to_string(), val));
                i += 2;
            } else {
                i += 1;
            }
        }
        Self { pairs }
    }

    /// String flag.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.pairs
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    /// Numeric flag with default.
    pub fn get_usize(&self, key: &str, default: usize) -> usize {
        self.get(key)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// `--scale small` shrinks workloads for quick runs.
    pub fn is_small(&self) -> bool {
        matches!(self.get("scale"), Some("small"))
            || std::env::var("BENCH_SCALE").as_deref() == Ok("small")
    }
}

impl Default for Args {
    fn default() -> Self {
        Self::parse()
    }
}

/// One series of a speedup figure.
pub struct Series {
    /// Model name as in the paper's legend.
    pub name: &'static str,
    /// (cores, speedup) points.
    pub points: Vec<(usize, f64)>,
}

/// Renders a Figure-8-style speedup table plus a crude ASCII plot.
pub fn render_speedup_figure(title: &str, serial: Duration, series: &[Series]) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = writeln!(out, "{title}");
    let _ = writeln!(out, "serial reference: {:.3}s", serial.as_secs_f64());
    let cores: Vec<usize> = series
        .first()
        .map(|s| s.points.iter().map(|p| p.0).collect())
        .unwrap_or_default();
    let _ = write!(out, "{:<12}", "cores");
    for c in &cores {
        let _ = write!(out, "{c:>8}");
    }
    let _ = writeln!(out);
    for s in series {
        let _ = write!(out, "{:<12}", s.name);
        for &(_, sp) in &s.points {
            let _ = write!(out, "{sp:>8.2}");
        }
        let _ = writeln!(out);
    }
    // ASCII plot: y = speedup, x = cores.
    let max_sp = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.1))
        .fold(1.0f64, f64::max);
    let rows = 12usize;
    let _ = writeln!(out, "\n speedup");
    let marks = ["P", "T", "O", "H", "S", "X"]; // per-series markers
    for row in (1..=rows).rev() {
        let y = max_sp * row as f64 / rows as f64;
        let _ = write!(out, "{y:>7.1} |");
        for (ci, _) in cores.iter().enumerate() {
            let mut ch = ' ';
            for (si, s) in series.iter().enumerate() {
                let sp = s.points[ci].1;
                if (sp / max_sp * rows as f64).round() as usize == row {
                    ch = marks[si % marks.len()].chars().next().expect("mark");
                }
            }
            let _ = write!(out, "{ch:>8}");
        }
        let _ = writeln!(out);
    }
    let _ = write!(out, "        +");
    for _ in &cores {
        let _ = write!(out, "--------");
    }
    let _ = writeln!(out);
    let _ = write!(out, "         ");
    for c in &cores {
        let _ = write!(out, "{c:>8}");
    }
    let _ = writeln!(out, "  (cores)");
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "   {} = {}", marks[si % marks.len()], s.name);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_sweep_is_monotonic_and_capped() {
        let v = core_sweep(24);
        assert_eq!(*v.first().unwrap(), 1);
        assert_eq!(*v.last().unwrap(), 24);
        assert!(v.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(core_sweep(3), vec![1, 2, 3]);
        assert_eq!(core_sweep(1), vec![1]);
    }

    #[test]
    fn best_of_returns_min() {
        let mut calls = 0;
        let (d, _) = best_of(3, || {
            calls += 1;
            std::thread::sleep(Duration::from_millis(calls));
        });
        assert_eq!(calls, 3);
        assert!(d <= Duration::from_millis(3));
    }

    #[test]
    fn figure_rendering_includes_all_series() {
        let s = vec![
            Series {
                name: "Pthreads",
                points: vec![(1, 1.0), (2, 1.9)],
            },
            Series {
                name: "Hyperqueue",
                points: vec![(1, 1.0), (2, 2.0)],
            },
        ];
        let fig = render_speedup_figure("Fig X", Duration::from_secs(1), &s);
        assert!(fig.contains("Pthreads"));
        assert!(fig.contains("Hyperqueue"));
        assert!(fig.contains("cores"));
    }
}
