//! Regenerates **Figure 11**: dedup speedup vs. core count for Pthreads,
//! TBB, Objects and Hyperqueue.
//!
//! ```text
//! cargo run --release -p bench --bin fig11 [--mbytes N] [--max-cores C] [--scale small]
//! ```
//!
//! Expected shape (paper): hyperqueues lead in the 6-8 core region (12-30%
//! over pthreads) because the output stage streams chunk-by-chunk instead
//! of waiting for gathered coarse-chunk lists; TBB trails pthreads; the
//! serial output stage caps everyone (≈12.7 by Table 2's 8.2%).

use swan::Runtime;
use workloads::dedup::{
    corpus, run_hyperqueue, run_objects, run_pthread, run_serial, run_tbb, DedupConfig, DedupTuning,
};

fn main() {
    let args = bench::Args::parse();
    let mbytes = args.get_usize("mbytes", if args.is_small() { 8 } else { 48 });
    let max_cores = args.get_usize("max-cores", bench::machine_cores());
    let cfg = DedupConfig::bench(mbytes << 20);

    eprintln!("figure 11: dedup, {mbytes} MiB, up to {max_cores} cores");
    let data = corpus(&cfg);
    let (serial_time, (serial_arch, _)) = bench::time(|| run_serial(&cfg, &data));
    let reference = serial_arch.checksum();
    eprintln!("serial: {:.3}s", serial_time.as_secs_f64());

    let cores = bench::core_sweep(max_cores);
    let mut pthreads = Vec::new();
    let mut tbb = Vec::new();
    let mut objects = Vec::new();
    let mut hyperqueue = Vec::new();

    for &c in &cores {
        let (t, out) = bench::time(|| run_pthread(&cfg, &data, &DedupTuning::oversubscribed(c)));
        assert_eq!(out.checksum(), reference, "pthread wrong at {c} cores");
        pthreads.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        let (t, out) = bench::time(|| run_tbb(&cfg, &data, c, 4 * c));
        assert_eq!(out.checksum(), reference, "tbb wrong at {c} cores");
        tbb.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        let rt = Runtime::with_workers(c);
        let (t, out) = bench::time(|| run_objects(&cfg, &data, &rt));
        assert_eq!(out.checksum(), reference, "objects wrong at {c} cores");
        objects.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        let (t, out) = bench::time(|| run_hyperqueue(&cfg, &data, &rt));
        assert_eq!(out.checksum(), reference, "hyperqueue wrong at {c} cores");
        hyperqueue.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        eprintln!(
            "  {c:>2} cores: pthreads {:.2} tbb {:.2} objects {:.2} hyperqueue {:.2}",
            pthreads.last().unwrap().1,
            tbb.last().unwrap().1,
            objects.last().unwrap().1,
            hyperqueue.last().unwrap().1
        );
    }

    let series = vec![
        bench::Series {
            name: "Pthreads",
            points: pthreads,
        },
        bench::Series {
            name: "TBB",
            points: tbb,
        },
        bench::Series {
            name: "Objects",
            points: objects,
        },
        bench::Series {
            name: "Hyperqueue",
            points: hyperqueue,
        },
    ];
    println!(
        "{}",
        bench::render_speedup_figure(
            &format!("Figure 11: Dedup speedup by programming model ({mbytes} MiB)"),
            serial_time,
            &series
        )
    );
}
