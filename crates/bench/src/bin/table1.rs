//! Regenerates **Table 1**: characterization of ferret's pipeline
//! (iterations, per-stage time, percentage of serial execution time).
//!
//! ```text
//! cargo run --release -p bench --bin table1 [--images N] [--scale small]
//! cargo run --release -p bench --bin table1 -- --workload logstream [--records N]
//! ```
//!
//! The paper's percentages (on PARSEC `native`, 3500 images) are printed
//! alongside for comparison; our calibration targets the *shape* (ranking
//! dominant, vectorizing second), not the absolute seconds.
//!
//! `--workload logstream` prints the same characterization for the
//! graph-shaped logstream workload instead (the profile that motivates
//! sharding its parse+aggregate stage).

use workloads::ferret::{run_serial, FerretConfig};
use workloads::logstream;

/// Paper reference: (stage, iterations, seconds, percent).
const PAPER: &[(&str, u64, f64, f64)] = &[
    ("Input", 1, 34.000, 4.48),
    ("Segmentation", 3500, 26.800, 3.57),
    ("Extraction", 3500, 2.773, 0.35),
    ("Vectorizing", 3500, 133.939, 16.20),
    ("Ranking", 3500, 603.286, 75.30),
    ("Output", 3500, 2.000, 0.10),
];

fn main() {
    let args = bench::Args::parse();
    if args.get("workload") == Some("logstream") {
        return logstream_profile(&args);
    }
    let mut cfg = if args.is_small() {
        FerretConfig::bench(args.get_usize("images", 350))
    } else {
        FerretConfig::bench(args.get_usize("images", 3500))
    };
    cfg.seed = args.get_usize("seed", cfg.seed as usize) as u64;

    eprintln!(
        "running serial ferret on {} images ({}x{} px, db {})...",
        cfg.total_images, cfg.width, cfg.height, cfg.db_entries
    );
    let (out, clock) = run_serial(&cfg);
    println!(
        "{}",
        clock.render("Table 1: Characterization of ferret's pipeline (measured)")
    );
    println!("output checksum: {:#018x}\n", out.checksum());

    println!("Paper reference (PARSEC native, 2x Opteron 6272):");
    println!(
        "{:<16} {:>10} {:>12} {:>9}",
        "Stage", "Iterations", "Time (s)", "Time (%)"
    );
    for (name, iters, secs, pct) in PAPER {
        println!("{name:<16} {iters:>10} {secs:>12.3} {pct:>8.2}%");
    }

    // Shape comparison: measured% vs paper%.
    println!("\nShape comparison (measured% vs paper%):");
    let total = clock.total().as_secs_f64();
    for (name, _, _, paper_pct) in PAPER {
        let measured = clock
            .entries()
            .iter()
            .find(|e| e.name == *name)
            .map(|e| 100.0 * e.time.as_secs_f64() / total)
            .unwrap_or(0.0);
        println!("{name:<16} measured {measured:>6.2}%   paper {paper_pct:>6.2}%");
    }
}

/// The logstream characterization: the serial stage profile that shows
/// parse+aggregate dominating — the case for the keyed fan-out in the
/// graph driver (`pipelines::graph`).
fn logstream_profile(args: &bench::Args) {
    let records = args.get_usize("records", if args.is_small() { 40_000 } else { 400_000 });
    let mut cfg = logstream::LogConfig::bench(records);
    cfg.seed = args.get_usize("seed", cfg.seed as usize) as u64;
    eprintln!(
        "running serial logstream on {} records ({} services, {}-tick windows)...",
        cfg.records, cfg.services, cfg.window_ticks
    );
    let lines = logstream::corpus(&cfg);
    let (out, clock) = logstream::run_serial(&cfg, &lines);
    println!(
        "{}",
        clock.render("Table 1 (logstream): Characterization of the log-analytics pipeline")
    );
    println!("summaries: {}", out.summaries.len());
    println!("output checksum: {:#018x}", out.checksum());
}
