//! Ablation studies for the design choices DESIGN.md calls out (beyond the
//! paper's own figures):
//!
//! 1. queue segment capacity sweep (§5.1 says programmers should tune it);
//! 2. drained-segment recycling on/off (§3.2's zero-allocation claim);
//! 3. slice API vs per-element push/pop (§5.2);
//! 4. pthreads thread-count tuning sensitivity (the scale-free argument:
//!    mis-tuned pthreads loses performance, hyperqueues have no knob).
//!
//! ```text
//! cargo run --release -p bench --bin ablations [--scale small]
//! ```

use hyperqueue::Hyperqueue;
use swan::Runtime;
use workloads::ferret::{run_hyperqueue, run_pthread, run_serial, FerretConfig, PthreadTuning};

fn pipe_elems(
    rt: &Runtime,
    cap: usize,
    recycle: bool,
    items: u64,
    use_slices: bool,
) -> std::time::Duration {
    let (d, _) = bench::time(|| {
        rt.scope(|s| {
            let q = Hyperqueue::<u64>::with_config(s, cap, recycle);
            s.spawn((q.pushdep(),), move |_, (mut p,)| {
                if use_slices {
                    let mut i = 0u64;
                    while i < items {
                        let mut ws = p.write_slice(256);
                        let n = ws.capacity().min((items - i) as usize);
                        for _ in 0..n {
                            ws.push(i);
                            i += 1;
                        }
                    }
                } else {
                    for i in 0..items {
                        p.push(i);
                    }
                }
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                let mut sum = 0u64;
                if use_slices {
                    while let Some(rs) = c.read_slice(256) {
                        sum += rs.as_slice().iter().sum::<u64>();
                    }
                } else {
                    while !c.empty() {
                        sum += c.pop();
                    }
                }
                assert_eq!(sum, items * (items - 1) / 2);
            });
        });
    });
    d
}

fn main() {
    let args = bench::Args::parse();
    let items: u64 = if args.is_small() {
        2_000_000
    } else {
        20_000_000
    };
    let rt = Runtime::with_workers(2);

    println!("Ablation 1: segment capacity sweep ({items} u64 items, 1 producer + 1 consumer)");
    println!("{:<10} {:>12} {:>14}", "capacity", "time (ms)", "Melems/s");
    for cap in [16usize, 64, 256, 1024, 4096, 16384] {
        let d = pipe_elems(&rt, cap, true, items, false);
        println!(
            "{:<10} {:>12.1} {:>14.1}",
            cap,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("\nAblation 2: drained-segment recycling (capacity 256)");
    for (label, recycle) in [("recycle on", true), ("recycle off", false)] {
        let d = pipe_elems(&rt, 256, recycle, items, false);
        println!(
            "{:<12} {:>10.1} ms {:>10.1} Melems/s",
            label,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("\nAblation 3: per-element ops vs slices (§5.2, capacity 1024)");
    for (label, slices) in [("push/pop", false), ("slices", true)] {
        let d = pipe_elems(&rt, 1024, true, items, slices);
        println!(
            "{:<12} {:>10.1} ms {:>10.1} Melems/s",
            label,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("\nAblation 4: pthreads tuning sensitivity vs scale-free hyperqueue (ferret)");
    let cores = bench::machine_cores().min(8);
    let cfg = FerretConfig::bench(if args.is_small() { 150 } else { 600 });
    let (serial_time, _) = bench::time(|| run_serial(&cfg));
    let tunings: Vec<(String, PthreadTuning)> = vec![
        (
            "1 thread/stage".into(),
            PthreadTuning::one_thread_per_stage(),
        ),
        (
            format!("tuned for {} cores", cores / 2),
            PthreadTuning::oversubscribed(cores / 2),
        ),
        (
            format!("tuned for {cores} cores"),
            PthreadTuning::oversubscribed(cores),
        ),
        (
            format!("tuned for {} cores", 4 * cores),
            PthreadTuning::oversubscribed(4 * cores),
        ),
    ];
    println!("machine restricted to {cores} cores for this ablation");
    for (label, tuning) in &tunings {
        let (d, _) = bench::time(|| run_pthread(&cfg, tuning));
        println!(
            "  pthreads {:<22} speedup {:>5.2}",
            label,
            serial_time.as_secs_f64() / d.as_secs_f64()
        );
    }
    let rt = Runtime::with_workers(cores);
    let (d, _) = bench::time(|| run_hyperqueue(&cfg, &rt));
    println!(
        "  hyperqueue (no knob)          speedup {:>5.2}",
        serial_time.as_secs_f64() / d.as_secs_f64()
    );
}
