//! Ablation studies for the design choices DESIGN.md calls out (beyond the
//! paper's own figures):
//!
//! 1. queue segment capacity sweep (§5.1 says programmers should tune it);
//! 2. drained-segment recycling on/off (§3.2's zero-allocation claim);
//! 3. slice API vs per-element push/pop (§5.2);
//! 4. pthreads thread-count tuning sensitivity (the scale-free argument:
//!    mis-tuned pthreads loses performance, hyperqueues have no knob);
//! 5. graph fan-out degree sweep on the logstream DAG workload (how much
//!    the `pipelines::graph` split/merge machinery buys over the linear
//!    chain, and where the distributor/merge overhead bites);
//! 6. scheduler policy sweep (help-first FIFO rings vs steal-first
//!    Chase-Lev deques, DESIGN.md §3.1) over the wordcount and
//!    logstream-digest services — written to `BENCH_sched.json` for the
//!    CI `bench-check` gate alongside the human-readable table.
//!
//! ```text
//! cargo run --release -p bench --bin ablations [--scale small] \
//!     [--sched-only 1] [--out BENCH_sched.json]
//! ```
//!
//! `--sched-only 1` runs just ablation 6 (what CI's bench job uses so the
//! gate gets a fresh record without paying for the full sweep).

use std::sync::Arc;

use hyperqueue::{Hyperqueue, QueueStats};
use swan::{MetricsSnapshot, Runtime, RuntimeConfig, SchedulerPolicy};
use workloads::ferret::{run_hyperqueue, run_pthread, run_serial, FerretConfig, PthreadTuning};
use workloads::logstream;
use workloads::service::{run_logstream_service, run_wordcount_service, ServiceWorkloadConfig};

#[derive(Clone, Copy, PartialEq)]
enum Io {
    /// One `push`/`pop` call per element.
    PerItem,
    /// Explicit write/read slices (§5.2).
    Slices,
    /// The batched convenience API (`push_iter`/`for_each_batch`).
    Batched,
}

fn pipe_elems(
    rt: &Runtime,
    cap: usize,
    recycle: bool,
    items: u64,
    io: Io,
) -> (std::time::Duration, QueueStats) {
    let mut stats = QueueStats::default();
    let stats_ref = &mut stats;
    let (d, _) = bench::time(|| {
        rt.scope(move |s| {
            let q = Hyperqueue::<u64>::with_config(s, cap, recycle);
            s.spawn((q.pushdep(),), move |_, (mut p,)| match io {
                Io::PerItem => {
                    for i in 0..items {
                        p.push(i);
                    }
                }
                Io::Slices => {
                    let mut i = 0u64;
                    while i < items {
                        let mut ws = p.write_slice(256);
                        let n = ws.capacity().min((items - i) as usize);
                        for _ in 0..n {
                            ws.push(i);
                            i += 1;
                        }
                    }
                }
                Io::Batched => {
                    p.push_iter(0..items);
                }
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                let mut sum = 0u64;
                match io {
                    Io::PerItem => {
                        while !c.empty() {
                            sum += c.pop();
                        }
                    }
                    Io::Slices => {
                        while let Some(rs) = c.read_slice(256) {
                            sum += rs.as_slice().iter().sum::<u64>();
                        }
                    }
                    Io::Batched => {
                        c.for_each_batch(256, |vals| sum += vals.iter().sum::<u64>());
                    }
                }
                assert_eq!(sum, items * (items - 1) / 2);
            });
            s.sync();
            *stats_ref = q.stats();
        });
    });
    (d, stats)
}

/// One policy's leg of ablation 6: closed-loop service medians plus the
/// scheduler counters that explain them.
struct SchedLeg {
    label: &'static str,
    wordcount_p50_us: f64,
    logstream_p50_us: f64,
    metrics: MetricsSnapshot,
}

fn sched_leg(
    label: &'static str,
    policy: SchedulerPolicy,
    workers: usize,
    jobs: usize,
) -> SchedLeg {
    let cfg = ServiceWorkloadConfig::bench(jobs);
    let rt = Arc::new(Runtime::new(
        RuntimeConfig::new().workers(workers).scheduler(policy),
    ));
    // Each run verifies every job against its serial elision inside the
    // harness, so a policy that broke determinism would fail here, not
    // just score differently.
    let wc = run_wordcount_service(Arc::clone(&rt), &cfg);
    let ls = run_logstream_service(Arc::clone(&rt), &cfg);
    SchedLeg {
        label,
        wordcount_p50_us: wc.p50_us,
        logstream_p50_us: ls.p50_us,
        metrics: rt.metrics(),
    }
}

fn counters_block(leg: &SchedLeg) -> String {
    let m = &leg.metrics;
    format!(
        "  \"{}\": {{\n    \"tasks_executed\": {},\n    \"steals\": {},\n    \
         \"steal_batch_items\": {},\n    \"steal_failures\": {},\n    \
         \"helps_sync\": {},\n    \"helps_queue\": {},\n    \"parks\": {}\n  }}",
        leg.label,
        m.tasks_executed,
        m.steals,
        m.steal_batch_items,
        m.steal_failures,
        m.helps_sync,
        m.helps_queue,
        m.parks,
    )
}

/// Ablation 6: scheduler policy sweep. Prints the table and writes the
/// `BENCH_sched.json` perf record (gated by CI's bench-check).
fn sched_policy_sweep(args: &bench::Args) {
    let jobs = if args.is_small() { 150 } else { 1_000 };
    let workers = bench::machine_cores().clamp(2, 8);
    let steal_batch = SchedulerPolicy::DEFAULT_STEAL_BATCH;
    println!("\nAblation 6: scheduler policy (help-first vs steal-first, {workers} workers)");
    let legs = [
        sched_leg("help_first", SchedulerPolicy::HelpFirst, workers, jobs),
        sched_leg(
            "steal_first",
            SchedulerPolicy::StealFirst { steal_batch },
            workers,
            jobs,
        ),
    ];
    println!(
        "{:<14} {:>16} {:>16} {:>10} {:>12} {:>10}",
        "policy", "wordcount p50", "logstream p50", "steals", "batch items", "parks"
    );
    for leg in &legs {
        println!(
            "{:<14} {:>13.1} us {:>13.1} us {:>10} {:>12} {:>10}",
            leg.label,
            leg.wordcount_p50_us,
            leg.logstream_p50_us,
            leg.metrics.steals,
            leg.metrics.steal_batch_items,
            leg.metrics.parks,
        );
    }

    let out_path = args.get("out").unwrap_or("BENCH_sched.json");
    let json = format!(
        "{{\n  \"bench\": \"sched\",\n  \"jobs\": {jobs},\n  \"workers\": {workers},\n  \
         \"steal_batch\": {steal_batch},\n  \"machine_cores\": {},\n  \
         \"median_us\": {{\n    \"wordcount_p50_help_first\": {:.1},\n    \
         \"wordcount_p50_steal_first\": {:.1},\n    \
         \"logstream_p50_help_first\": {:.1},\n    \
         \"logstream_p50_steal_first\": {:.1}\n  }},\n{},\n{}\n}}\n",
        bench::machine_cores(),
        legs[0].wordcount_p50_us,
        legs[1].wordcount_p50_us,
        legs[0].logstream_p50_us,
        legs[1].logstream_p50_us,
        counters_block(&legs[0]),
        counters_block(&legs[1]),
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "
{out_path}:
{json}"
    );
}

fn main() {
    let args = bench::Args::parse();
    if args.get("sched-only").is_some() {
        sched_policy_sweep(&args);
        return;
    }
    let items: u64 = if args.is_small() {
        2_000_000
    } else {
        20_000_000
    };
    let rt = Runtime::with_workers(2);

    println!("Ablation 1: segment capacity sweep ({items} u64 items, 1 producer + 1 consumer)");
    println!("{:<10} {:>12} {:>14}", "capacity", "time (ms)", "Melems/s");
    for cap in [16usize, 64, 256, 1024, 4096, 16384] {
        let (d, _) = pipe_elems(&rt, cap, true, items, Io::PerItem);
        println!(
            "{:<10} {:>12.1} {:>14.1}",
            cap,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("\nAblation 2: drained-segment recycling (capacity 256)");
    for (label, recycle) in [("recycle on", true), ("recycle off", false)] {
        let (d, _) = pipe_elems(&rt, 256, recycle, items, Io::PerItem);
        println!(
            "{:<12} {:>10.1} ms {:>10.1} Melems/s",
            label,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("\nAblation 3: per-element ops vs slices vs batched (§5.2, capacity 1024)");
    println!(
        "{:<12} {:>10} {:>12}   {:>6} {:>8} {:>10}",
        "mode", "time(ms)", "Melems/s", "locks", "advances", "suppressed"
    );
    for (label, io) in [
        ("push/pop", Io::PerItem),
        ("slices", Io::Slices),
        ("batched", Io::Batched),
    ] {
        let (d, st) = pipe_elems(&rt, 1024, true, items, io);
        println!(
            "{:<12} {:>10.1} {:>12.1}   {:>6} {:>8} {:>10}",
            label,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6,
            st.lock_acquisitions,
            st.chain_advances,
            st.notifies_suppressed
        );
    }

    println!("\nAblation 4: pthreads tuning sensitivity vs scale-free hyperqueue (ferret)");
    let cores = bench::machine_cores().min(8);
    let cfg = FerretConfig::bench(if args.is_small() { 150 } else { 600 });
    let (serial_time, _) = bench::time(|| run_serial(&cfg));
    let tunings: Vec<(String, PthreadTuning)> = vec![
        (
            "1 thread/stage".into(),
            PthreadTuning::one_thread_per_stage(),
        ),
        (
            format!("tuned for {} cores", cores / 2),
            PthreadTuning::oversubscribed(cores / 2),
        ),
        (
            format!("tuned for {cores} cores"),
            PthreadTuning::oversubscribed(cores),
        ),
        (
            format!("tuned for {} cores", 4 * cores),
            PthreadTuning::oversubscribed(4 * cores),
        ),
    ];
    println!("machine restricted to {cores} cores for this ablation");
    for (label, tuning) in &tunings {
        let (d, _) = bench::time(|| run_pthread(&cfg, tuning));
        println!(
            "  pthreads {:<22} speedup {:>5.2}",
            label,
            serial_time.as_secs_f64() / d.as_secs_f64()
        );
    }
    let rt = Runtime::with_workers(cores);
    let (d, _) = bench::time(|| run_hyperqueue(&cfg, &rt));
    println!(
        "  hyperqueue (no knob)          speedup {:>5.2}",
        serial_time.as_secs_f64() / d.as_secs_f64()
    );

    println!("\nAblation 5: graph fan-out degree (logstream DAG workload, {cores} workers)");
    let lcfg = logstream::LogConfig::bench(if args.is_small() { 30_000 } else { 150_000 });
    let lines = logstream::corpus(&lcfg);
    let (lserial, _) = bench::time(|| logstream::run_serial(&lcfg, &lines));
    let (dlin, linear_out) = bench::time(|| logstream::run_linear(&lcfg, &lines, &rt));
    println!(
        "  {:<18} {:>9.1} ms  speedup vs serial {:>5.2}",
        "linear chain",
        dlin.as_secs_f64() * 1e3,
        lserial.as_secs_f64() / dlin.as_secs_f64()
    );
    for degree in [1usize, 2, 4, 8] {
        let (d, out) = bench::time(|| logstream::run_graph(&lcfg, &lines, &rt, degree));
        assert_eq!(
            out.checksum(),
            linear_out.checksum(),
            "fan-out degree {degree} diverged"
        );
        println!(
            "  {:<18} {:>9.1} ms  speedup vs serial {:>5.2}   vs linear {:>5.2}",
            format!("fan-out degree {degree}"),
            d.as_secs_f64() * 1e3,
            lserial.as_secs_f64() / d.as_secs_f64(),
            dlin.as_secs_f64() / d.as_secs_f64()
        );
    }

    sched_policy_sweep(&args);
}
