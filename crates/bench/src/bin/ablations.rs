//! Ablation studies for the design choices DESIGN.md calls out (beyond the
//! paper's own figures):
//!
//! 1. queue segment capacity sweep (§5.1 says programmers should tune it);
//! 2. drained-segment recycling on/off (§3.2's zero-allocation claim);
//! 3. slice API vs per-element push/pop (§5.2);
//! 4. pthreads thread-count tuning sensitivity (the scale-free argument:
//!    mis-tuned pthreads loses performance, hyperqueues have no knob);
//! 5. graph fan-out degree sweep on the logstream DAG workload (how much
//!    the `pipelines::graph` split/merge machinery buys over the linear
//!    chain, and where the distributor/merge overhead bites);
//! 6. scheduler policy sweep (help-first FIFO rings vs steal-first
//!    Chase-Lev deques, DESIGN.md §3.1) over the wordcount and
//!    logstream-digest services — written to `BENCH_sched.json` for the
//!    CI `bench-check` gate alongside the human-readable table;
//! 7. partition phase (DESIGN.md §7): the deterministic stage
//!    partitioner's quality on the real wordcount graph (cut, balance,
//!    refinement rounds, cross-group steals under pinning) plus the
//!    routing overhead of `hqrouter`-style sharding — the same closed
//!    loop against one direct daemon vs a `Router` over two in-process
//!    backends, byte-identity checked — written to
//!    `BENCH_partition.json` for the gate.
//!
//! ```text
//! cargo run --release -p bench --bin ablations [--scale small] \
//!     [--sched-only 1 | --partition-only 1] [--out BENCH_….json]
//! ```
//!
//! `--sched-only 1` / `--partition-only 1` run just that ablation (what
//! CI's bench job uses so each gate gets a fresh record without paying
//! for the full sweep).

use std::sync::Arc;
use std::time::Instant;

use hyperqueue::{Hyperqueue, QueueStats};
use pipelines::graph::{Admission, ServiceConfig};
use pipelines::ingress::{
    IngressClient, IngressConfig, IngressServer, JobOutcome, Router, RouterConfig,
};
use swan::{MetricsSnapshot, Runtime, RuntimeConfig, SchedulerPolicy};
use workloads::ferret::{run_hyperqueue, run_pthread, run_serial, FerretConfig, PthreadTuning};
use workloads::logstream;
use workloads::service::{
    job_lines, percentile, run_logstream_service, run_wordcount_service, wordcount_spec,
    ServiceWorkloadConfig,
};
use workloads::util::fnv1a;
use workloads::wire::{encode_lines, WordcountCodec};

#[derive(Clone, Copy, PartialEq)]
enum Io {
    /// One `push`/`pop` call per element.
    PerItem,
    /// Explicit write/read slices (§5.2).
    Slices,
    /// The batched convenience API (`push_iter`/`for_each_batch`).
    Batched,
}

fn pipe_elems(
    rt: &Runtime,
    cap: usize,
    recycle: bool,
    items: u64,
    io: Io,
) -> (std::time::Duration, QueueStats) {
    let mut stats = QueueStats::default();
    let stats_ref = &mut stats;
    let (d, _) = bench::time(|| {
        rt.scope(move |s| {
            let q = Hyperqueue::<u64>::with_config(s, cap, recycle);
            s.spawn((q.pushdep(),), move |_, (mut p,)| match io {
                Io::PerItem => {
                    for i in 0..items {
                        p.push(i);
                    }
                }
                Io::Slices => {
                    let mut i = 0u64;
                    while i < items {
                        let mut ws = p.write_slice(256);
                        let n = ws.capacity().min((items - i) as usize);
                        for _ in 0..n {
                            ws.push(i);
                            i += 1;
                        }
                    }
                }
                Io::Batched => {
                    p.push_iter(0..items);
                }
            });
            s.spawn((q.popdep(),), move |_, (mut c,)| {
                let mut sum = 0u64;
                match io {
                    Io::PerItem => {
                        while !c.empty() {
                            sum += c.pop();
                        }
                    }
                    Io::Slices => {
                        while let Some(rs) = c.read_slice(256) {
                            sum += rs.as_slice().iter().sum::<u64>();
                        }
                    }
                    Io::Batched => {
                        c.for_each_batch(256, |vals| sum += vals.iter().sum::<u64>());
                    }
                }
                assert_eq!(sum, items * (items - 1) / 2);
            });
            s.sync();
            *stats_ref = q.stats();
        });
    });
    (d, stats)
}

/// One policy's leg of ablation 6: closed-loop service medians plus the
/// scheduler counters that explain them.
struct SchedLeg {
    label: &'static str,
    wordcount_p50_us: f64,
    logstream_p50_us: f64,
    metrics: MetricsSnapshot,
}

fn sched_leg(
    label: &'static str,
    policy: SchedulerPolicy,
    workers: usize,
    jobs: usize,
) -> SchedLeg {
    let cfg = ServiceWorkloadConfig::bench(jobs);
    let rt = Arc::new(Runtime::new(
        RuntimeConfig::new().workers(workers).scheduler(policy),
    ));
    // Each run verifies every job against its serial elision inside the
    // harness, so a policy that broke determinism would fail here, not
    // just score differently.
    let wc = run_wordcount_service(Arc::clone(&rt), &cfg);
    let ls = run_logstream_service(Arc::clone(&rt), &cfg);
    SchedLeg {
        label,
        wordcount_p50_us: wc.p50_us,
        logstream_p50_us: ls.p50_us,
        metrics: rt.metrics(),
    }
}

fn counters_block(leg: &SchedLeg) -> String {
    let m = &leg.metrics;
    format!(
        "  \"{}\": {{\n    \"tasks_executed\": {},\n    \"steals\": {},\n    \
         \"steal_batch_items\": {},\n    \"steal_failures\": {},\n    \
         \"helps_sync\": {},\n    \"helps_queue\": {},\n    \"parks\": {}\n  }}",
        leg.label,
        m.tasks_executed,
        m.steals,
        m.steal_batch_items,
        m.steal_failures,
        m.helps_sync,
        m.helps_queue,
        m.parks,
    )
}

/// Ablation 6: scheduler policy sweep. Prints the table and writes the
/// `BENCH_sched.json` perf record (gated by CI's bench-check).
fn sched_policy_sweep(args: &bench::Args) {
    let jobs = if args.is_small() { 150 } else { 1_000 };
    let workers = bench::machine_cores().clamp(2, 8);
    let steal_batch = SchedulerPolicy::DEFAULT_STEAL_BATCH;
    println!("\nAblation 6: scheduler policy (help-first vs steal-first, {workers} workers)");
    let legs = [
        sched_leg("help_first", SchedulerPolicy::HelpFirst, workers, jobs),
        sched_leg(
            "steal_first",
            SchedulerPolicy::StealFirst { steal_batch },
            workers,
            jobs,
        ),
    ];
    println!(
        "{:<14} {:>16} {:>16} {:>10} {:>12} {:>10}",
        "policy", "wordcount p50", "logstream p50", "steals", "batch items", "parks"
    );
    for leg in &legs {
        println!(
            "{:<14} {:>13.1} us {:>13.1} us {:>10} {:>12} {:>10}",
            leg.label,
            leg.wordcount_p50_us,
            leg.logstream_p50_us,
            leg.metrics.steals,
            leg.metrics.steal_batch_items,
            leg.metrics.parks,
        );
    }

    let out_path = args.get("out").unwrap_or("BENCH_sched.json");
    let json = format!(
        "{{\n  \"bench\": \"sched\",\n  \"jobs\": {jobs},\n  \"workers\": {workers},\n  \
         \"steal_batch\": {steal_batch},\n  \"machine_cores\": {},\n  \
         \"median_us\": {{\n    \"wordcount_p50_help_first\": {:.1},\n    \
         \"wordcount_p50_steal_first\": {:.1},\n    \
         \"logstream_p50_help_first\": {:.1},\n    \
         \"logstream_p50_steal_first\": {:.1}\n  }},\n{},\n{}\n}}\n",
        bench::machine_cores(),
        legs[0].wordcount_p50_us,
        legs[1].wordcount_p50_us,
        legs[0].logstream_p50_us,
        legs[1].logstream_p50_us,
        counters_block(&legs[0]),
        counters_block(&legs[1]),
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "
{out_path}:
{json}"
    );
}

/// One closed-loop wordcount client against `addr`: returns (sorted
/// latencies µs, per-job response hashes) — the hashes are the
/// byte-identity witness between the direct and routed phases.
fn wordcount_loop(
    addr: std::net::SocketAddr,
    cfg: &ServiceWorkloadConfig,
    jobs: usize,
) -> (Vec<f64>, Vec<u64>) {
    let mut client = IngressClient::connect(addr).expect("connect closed-loop client");
    let mut latencies = Vec::with_capacity(jobs);
    let mut hashes = Vec::with_capacity(jobs);
    for j in 0..jobs {
        let payload = encode_lines(&job_lines(cfg, j));
        let t = Instant::now();
        match client.submit_and_wait(j as u64, &payload, std::time::Duration::from_micros(200)) {
            Ok(JobOutcome::Result(bytes)) => {
                latencies.push(t.elapsed().as_secs_f64() * 1e6);
                hashes.push(fnv1a(&bytes));
            }
            other => panic!("ablation 7: job {j} did not produce a result: {other:?}"),
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    (latencies, hashes)
}

/// A loopback wordcount ingress daemon for ablation 7; the caller owns
/// shutdown order (server first, then runtime quiesce).
fn wordcount_daemon(cfg: &ServiceWorkloadConfig) -> (IngressServer, Arc<Runtime>) {
    let rt = Arc::new(Runtime::with_workers(2));
    let graph = Arc::new(wordcount_spec(cfg.degree, cfg.window).compile(
        Arc::clone(&rt),
        ServiceConfig {
            max_in_flight: cfg.max_in_flight,
            segment_capacity: cfg.segment_capacity,
            io_batch: cfg.io_batch,
            ..ServiceConfig::default()
        },
    ));
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(WordcountCodec),
        IngressConfig::default(),
    )
    .expect("bind loopback ingress");
    (server, rt)
}

/// Ablation 7: the deterministic partition's quality on the real
/// wordcount graph, and the routing overhead of sharding — direct
/// daemon vs a `Router` over two backends, byte-identity checked.
/// Writes the `BENCH_partition.json` perf record (gated by bench-check).
fn partition_sweep(args: &bench::Args) {
    let jobs = if args.is_small() { 150 } else { 600 };
    let cfg = ServiceWorkloadConfig::bench(jobs);
    println!("\nAblation 7: deterministic partition + routed vs direct ingress ({jobs} jobs)");

    // --- Partition quality: pin the wordcount stages to 2 worker groups,
    // run traffic, then rebalance from the measured edge counters.
    let rt = Arc::new(Runtime::new(
        RuntimeConfig::new().workers(2).worker_groups(2),
    ));
    let graph = wordcount_spec(cfg.degree, cfg.window).compile(
        Arc::clone(&rt),
        ServiceConfig {
            partitions: 2,
            segment_capacity: cfg.segment_capacity,
            ..ServiceConfig::default()
        },
    );
    for j in 0..jobs.min(64) {
        graph
            .submit(job_lines(&cfg, j), Admission::Unbounded)
            .expect_accepted()
            .join();
    }
    let part = graph
        .rebalance()
        .expect("partition telemetry present when partitions >= 2");
    let cross_group_steals = rt.metrics().cross_group_steals;
    println!(
        "  partition: parts {}  cut {}  max part weight {}  rounds {}  \
         cross-group steals {}",
        part.parts, part.cut, part.max_part_weight, part.rounds, cross_group_steals,
    );
    drop(graph);
    rt.quiesce();

    // --- Routing overhead: the same closed loop direct vs through a
    // Router over two backends. Same job ids ⇒ the response streams must
    // hash identically (sharding is invisible at the byte level).
    let (direct_srv, direct_rt) = wordcount_daemon(&cfg);
    let (direct_lat, direct_hashes) = wordcount_loop(direct_srv.local_addr(), &cfg, jobs);
    direct_srv.shutdown();
    direct_rt.quiesce();

    let (a_srv, a_rt) = wordcount_daemon(&cfg);
    let (b_srv, b_rt) = wordcount_daemon(&cfg);
    let router = Router::bind(
        "127.0.0.1:0",
        RouterConfig::to([
            a_srv.local_addr().to_string(),
            b_srv.local_addr().to_string(),
        ]),
    )
    .expect("bind router");
    let (routed_lat, routed_hashes) = wordcount_loop(router.local_addr(), &cfg, jobs);
    let rstats = router.shutdown();
    a_srv.shutdown();
    b_srv.shutdown();
    a_rt.quiesce();
    b_rt.quiesce();
    assert_eq!(
        direct_hashes, routed_hashes,
        "ablation 7: routed responses diverged from the direct daemon"
    );
    assert_eq!(rstats.shard_failures, 0, "backends must stay healthy");

    let direct_p50 = percentile(&direct_lat, 50.0);
    let routed_p50 = percentile(&routed_lat, 50.0);
    let overhead_pct = (routed_p50 - direct_p50) / direct_p50 * 100.0;
    println!(
        "  routing: direct p50 {direct_p50:.0}µs  routed p50 {routed_p50:.0}µs \
         ({overhead_pct:+.1}%), responses byte-identical ✓"
    );

    let out_path = args.get("out").unwrap_or("BENCH_partition.json");
    let json = format!(
        "{{\n  \"bench\": \"partition\",\n  \"jobs\": {jobs},\n  \"machine_cores\": {},\n  \
         \"median_us\": {{\n    \"wordcount_p50_direct\": {direct_p50:.1},\n    \
         \"wordcount_p50_routed\": {routed_p50:.1}\n  }},\n  \
         \"routing_overhead_pct\": {overhead_pct:.2},\n  \
         \"byte_identical_direct_vs_routed\": true,\n  \
         \"partition\": {{\n    \"parts\": {},\n    \"cut\": {},\n    \
         \"max_part_weight\": {},\n    \"rounds\": {},\n    \
         \"cross_group_steals\": {}\n  }}\n}}\n",
        bench::machine_cores(),
        part.parts,
        part.cut,
        part.max_part_weight,
        part.rounds,
        cross_group_steals,
    );
    std::fs::write(out_path, &json).unwrap_or_else(|e| panic!("write {out_path}: {e}"));
    println!(
        "
{out_path}:
{json}"
    );
}

fn main() {
    let args = bench::Args::parse();
    if args.get("sched-only").is_some() {
        sched_policy_sweep(&args);
        return;
    }
    if args.get("partition-only").is_some() {
        partition_sweep(&args);
        return;
    }
    let items: u64 = if args.is_small() {
        2_000_000
    } else {
        20_000_000
    };
    let rt = Runtime::with_workers(2);

    println!("Ablation 1: segment capacity sweep ({items} u64 items, 1 producer + 1 consumer)");
    println!("{:<10} {:>12} {:>14}", "capacity", "time (ms)", "Melems/s");
    for cap in [16usize, 64, 256, 1024, 4096, 16384] {
        let (d, _) = pipe_elems(&rt, cap, true, items, Io::PerItem);
        println!(
            "{:<10} {:>12.1} {:>14.1}",
            cap,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("\nAblation 2: drained-segment recycling (capacity 256)");
    for (label, recycle) in [("recycle on", true), ("recycle off", false)] {
        let (d, _) = pipe_elems(&rt, 256, recycle, items, Io::PerItem);
        println!(
            "{:<12} {:>10.1} ms {:>10.1} Melems/s",
            label,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6
        );
    }

    println!("\nAblation 3: per-element ops vs slices vs batched (§5.2, capacity 1024)");
    println!(
        "{:<12} {:>10} {:>12}   {:>6} {:>8} {:>10}",
        "mode", "time(ms)", "Melems/s", "locks", "advances", "suppressed"
    );
    for (label, io) in [
        ("push/pop", Io::PerItem),
        ("slices", Io::Slices),
        ("batched", Io::Batched),
    ] {
        let (d, st) = pipe_elems(&rt, 1024, true, items, io);
        println!(
            "{:<12} {:>10.1} {:>12.1}   {:>6} {:>8} {:>10}",
            label,
            d.as_secs_f64() * 1e3,
            items as f64 / d.as_secs_f64() / 1e6,
            st.lock_acquisitions,
            st.chain_advances,
            st.notifies_suppressed
        );
    }

    println!("\nAblation 4: pthreads tuning sensitivity vs scale-free hyperqueue (ferret)");
    let cores = bench::machine_cores().min(8);
    let cfg = FerretConfig::bench(if args.is_small() { 150 } else { 600 });
    let (serial_time, _) = bench::time(|| run_serial(&cfg));
    let tunings: Vec<(String, PthreadTuning)> = vec![
        (
            "1 thread/stage".into(),
            PthreadTuning::one_thread_per_stage(),
        ),
        (
            format!("tuned for {} cores", cores / 2),
            PthreadTuning::oversubscribed(cores / 2),
        ),
        (
            format!("tuned for {cores} cores"),
            PthreadTuning::oversubscribed(cores),
        ),
        (
            format!("tuned for {} cores", 4 * cores),
            PthreadTuning::oversubscribed(4 * cores),
        ),
    ];
    println!("machine restricted to {cores} cores for this ablation");
    for (label, tuning) in &tunings {
        let (d, _) = bench::time(|| run_pthread(&cfg, tuning));
        println!(
            "  pthreads {:<22} speedup {:>5.2}",
            label,
            serial_time.as_secs_f64() / d.as_secs_f64()
        );
    }
    let rt = Runtime::with_workers(cores);
    let (d, _) = bench::time(|| run_hyperqueue(&cfg, &rt));
    println!(
        "  hyperqueue (no knob)          speedup {:>5.2}",
        serial_time.as_secs_f64() / d.as_secs_f64()
    );

    println!("\nAblation 5: graph fan-out degree (logstream DAG workload, {cores} workers)");
    let lcfg = logstream::LogConfig::bench(if args.is_small() { 30_000 } else { 150_000 });
    let lines = logstream::corpus(&lcfg);
    let (lserial, _) = bench::time(|| logstream::run_serial(&lcfg, &lines));
    let (dlin, linear_out) = bench::time(|| logstream::run_linear(&lcfg, &lines, &rt));
    println!(
        "  {:<18} {:>9.1} ms  speedup vs serial {:>5.2}",
        "linear chain",
        dlin.as_secs_f64() * 1e3,
        lserial.as_secs_f64() / dlin.as_secs_f64()
    );
    for degree in [1usize, 2, 4, 8] {
        let (d, out) = bench::time(|| logstream::run_graph(&lcfg, &lines, &rt, degree));
        assert_eq!(
            out.checksum(),
            linear_out.checksum(),
            "fan-out degree {degree} diverged"
        );
        println!(
            "  {:<18} {:>9.1} ms  speedup vs serial {:>5.2}   vs linear {:>5.2}",
            format!("fan-out degree {degree}"),
            d.as_secs_f64() * 1e3,
            lserial.as_secs_f64() / d.as_secs_f64(),
            dlin.as_secs_f64() / d.as_secs_f64()
        );
    }

    sched_policy_sweep(&args);
    partition_sweep(&args);
}
