//! bench-check: the CI perf-regression gate.
//!
//! Diffs the freshly produced `BENCH_*.json` perf records against the
//! committed baselines in `crates/bench/baselines/` and fails (exit 1)
//! when any gated metric regresses by more than the threshold.
//!
//! What is gated: every numeric leaf under a `median_*` object
//! (`median_ns_per_op`, `median_ms`, `median_us`). Medians only — p95/p99
//! and speedup ratios are recorded for humans but too noisy to gate.
//!
//! When the gate **skips** (exit 0 with a notice):
//! * the machine has fewer than `--min-cores` cores (default 4): perf on
//!   a starved runner measures the runner, not the change;
//! * a record and its baseline disagree on `machine_cores`: the baseline
//!   came from a different runner class and must be refreshed (see
//!   README "Refreshing the bench baselines").
//!
//! Verification hooks:
//! * `--inject-slowdown 2.0` multiplies every fresh median before the
//!   comparison — run it locally to prove the gate trips;
//! * `--min-cores 1` lets the gate run on small machines for that check.
//!
//! Usage (CI): `bench_check --baseline-dir crates/bench/baselines
//! --fresh-dir crates/bench [--threshold 0.25]`

use std::collections::BTreeMap;
use std::path::Path;
use std::process::ExitCode;

use bench::tinyjson::{flatten_numbers, parse, Value};

const RECORDS: [&str; 7] = [
    "BENCH_queue_ops.json",
    "BENCH_pipegraph.json",
    "BENCH_service.json",
    "BENCH_ingress.json",
    "BENCH_journal.json",
    "BENCH_sched.json",
    "BENCH_partition.json",
];

fn load(path: &Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    parse(&text).map_err(|e| format!("cannot parse {}: {e}", path.display()))
}

fn machine_cores_of(v: &Value) -> Option<f64> {
    flatten_numbers(v).get("machine_cores").copied()
}

/// The gated medians of a record: numeric leaves under a `median_*` object.
fn gated_medians(v: &Value) -> BTreeMap<String, f64> {
    flatten_numbers(v)
        .into_iter()
        .filter(|(path, _)| {
            path.split('.')
                .next()
                .is_some_and(|head| head.starts_with("median_"))
        })
        .collect()
}

fn main() -> ExitCode {
    let args = bench::Args::parse();
    let baseline_dir = args.get("baseline-dir").unwrap_or("crates/bench/baselines");
    let fresh_dir = args.get("fresh-dir").unwrap_or("crates/bench");
    let threshold: f64 = args
        .get("threshold")
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.25);
    let min_cores = args.get_usize("min-cores", 4);
    let inject: f64 = args
        .get("inject-slowdown")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);

    let cores = bench::machine_cores();
    if cores < min_cores {
        println!(
            "bench-check: SKIPPED — this machine has {cores} core(s), below the \
             --min-cores {min_cores} floor. Perf medians on a starved runner measure \
             the runner, not the change; the gate only runs on >= {min_cores} cores."
        );
        return ExitCode::SUCCESS;
    }
    if inject != 1.0 {
        println!("bench-check: injecting a synthetic {inject}x slowdown into every fresh median");
    }

    let mut failures = 0usize;
    let mut compared = 0usize;
    for record in RECORDS {
        let fresh_path = Path::new(fresh_dir).join(record);
        let base_path = Path::new(baseline_dir).join(record);
        let fresh = match load(&fresh_path) {
            Ok(v) => v,
            Err(e) => {
                println!("bench-check: FAIL — {e} (did the bench harness run?)");
                failures += 1;
                continue;
            }
        };
        let base = match load(&base_path) {
            Ok(v) => v,
            Err(e) => {
                println!(
                    "bench-check: FAIL — {e}\n  refresh procedure: run the bench harness on a \
                     standard runner and commit the record to {baseline_dir}/ (see README)"
                );
                failures += 1;
                continue;
            }
        };
        // Medians are only comparable within one runner class, so both
        // sides must declare machine_cores and agree on it. A missing
        // field means the record predates the gate — skip rather than
        // compare apples to oranges.
        match (machine_cores_of(&fresh), machine_cores_of(&base)) {
            (Some(f), Some(b)) if f == b => {}
            (f, b) => {
                let show = |v: Option<f64>| {
                    v.map(|c| format!("{c}-core"))
                        .unwrap_or_else(|| "unknown-machine".to_string())
                };
                println!(
                    "bench-check: {record}: SKIPPED — baseline is {} and this run is {}; \
                     medians are not comparable across runner classes. Refresh the \
                     baseline (README).",
                    show(b),
                    show(f)
                );
                continue;
            }
        }
        let base_medians = gated_medians(&base);
        let fresh_medians = gated_medians(&fresh);
        for (key, base_val) in &base_medians {
            let Some(&fresh_val) = fresh_medians.get(key) else {
                println!("bench-check: FAIL — {record}: gated metric `{key}` disappeared");
                failures += 1;
                continue;
            };
            if *base_val <= 0.0 {
                continue; // cannot ratio against a zero baseline
            }
            let ratio = fresh_val * inject / base_val;
            compared += 1;
            let verdict = if ratio > 1.0 + threshold {
                failures += 1;
                "REGRESSION"
            } else {
                "ok"
            };
            println!(
                "bench-check: {record}: {key}: baseline {base_val:.2}, fresh {:.2} \
                 ({ratio:.2}x) .. {verdict}",
                fresh_val * inject
            );
        }
        for key in fresh_medians.keys() {
            if !base_medians.contains_key(key) {
                println!(
                    "bench-check: note — {record}: new gated metric `{key}` has no \
                     baseline yet (add it on the next refresh)"
                );
            }
        }
    }

    if failures > 0 {
        println!(
            "bench-check: FAILED — {failures} problem(s) across {compared} compared \
             median(s); threshold {:.0}%",
            threshold * 100.0
        );
        ExitCode::FAILURE
    } else {
        println!(
            "bench-check: PASSED — {compared} median(s) within {:.0}% of baseline",
            threshold * 100.0
        );
        ExitCode::SUCCESS
    }
}
