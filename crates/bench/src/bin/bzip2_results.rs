//! Regenerates the **§6.3 bzip2 results**: hyperqueue (naive and
//! loop-split §5.4) versus the versioned-objects dataflow baseline.
//!
//! ```text
//! cargo run --release -p bench --bin bzip2_results [--mbytes N] [--max-cores C]
//! ```
//!
//! Expected shape (paper): both scale well; the loop-split hyperqueue
//! matches the objects baseline ("obtained performance equivalent to that
//! of the baseline task dataflow implementation").

use swan::Runtime;
use workloads::bzip2::{
    decompress_stream, run_hyperqueue, run_hyperqueue_split, run_objects, run_serial, Bzip2Config,
};
use workloads::util::fnv1a;

fn main() {
    let args = bench::Args::parse();
    let mbytes = args.get_usize("mbytes", if args.is_small() { 4 } else { 16 });
    let max_cores = args.get_usize("max-cores", bench::machine_cores());
    let batch = args.get_usize("batch", 0); // 0 = scale with cores
    let cfg = Bzip2Config::bench(mbytes << 20);

    eprintln!(
        "bzip2 (§6.3): {mbytes} MiB, up to {max_cores} cores, split batch {batch} (0 = 2x cores)"
    );
    let original = workloads::bzip2::corpus(&cfg);
    let (serial_time, (stream, _)) = bench::time(|| run_serial(&cfg, &original));
    let reference = fnv1a(&stream);
    assert_eq!(
        decompress_stream(&stream).expect("stream decodes")[..],
        original[..]
    );
    eprintln!(
        "serial: {:.3}s ({:.2}x compression)",
        serial_time.as_secs_f64(),
        original.len() as f64 / stream.len() as f64
    );

    let cores = bench::core_sweep(max_cores);
    let mut objects = Vec::new();
    let mut hq = Vec::new();
    let mut hq_split = Vec::new();

    for &c in &cores {
        let rt = Runtime::with_workers(c);
        let (t, out) = bench::time(|| run_objects(&cfg, &original, &rt));
        assert_eq!(fnv1a(&out), reference, "objects wrong at {c}");
        objects.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        let (t, out) = bench::time(|| run_hyperqueue(&cfg, &original, &rt));
        assert_eq!(fnv1a(&out), reference, "hyperqueue wrong at {c}");
        hq.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        // The loop-split batch bounds the exposed parallelism, so it must
        // scale with the core count (the paper tunes it likewise).
        let b = if batch == 0 { (2 * c).max(8) } else { batch };
        let (t, out) = bench::time(|| run_hyperqueue_split(&cfg, &original, &rt, b));
        assert_eq!(fnv1a(&out), reference, "loop-split wrong at {c}");
        hq_split.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        eprintln!(
            "  {c:>2} cores: objects {:.2} hyperqueue {:.2} hq-split {:.2}",
            objects.last().unwrap().1,
            hq.last().unwrap().1,
            hq_split.last().unwrap().1
        );
    }

    let series = vec![
        bench::Series {
            name: "Objects",
            points: objects,
        },
        bench::Series {
            name: "Hyperqueue",
            points: hq,
        },
        bench::Series {
            name: "HQ loop-split",
            points: hq_split,
        },
    ];
    println!(
        "{}",
        bench::render_speedup_figure(
            &format!("bzip2 (§6.3): speedup by implementation ({mbytes} MiB)"),
            serial_time,
            &series
        )
    );
}
