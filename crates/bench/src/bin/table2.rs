//! Regenerates **Table 2**: characterization of the dedup pipeline.
//!
//! ```text
//! cargo run --release -p bench --bin table2 [--mbytes N] [--scale small]
//! ```

use workloads::dedup::{corpus, run_serial, DedupConfig};

/// Paper reference: (stage, iterations, seconds, percent).
const PAPER: &[(&str, u64, f64, f64)] = &[
    ("Fragment", 336, 1.900, 3.08),
    ("FragmentRefine", 336, 3.916, 6.35),
    ("Deduplicate", 369_950, 4.854, 7.90),
    ("Compress", 168_364, 45.881, 74.48),
    ("Output", 369_950, 5.049, 8.19),
];

fn main() {
    let args = bench::Args::parse();
    let mbytes = args.get_usize("mbytes", if args.is_small() { 8 } else { 48 });
    let cfg = DedupConfig::bench(mbytes << 20);

    eprintln!(
        "running serial dedup on {} MiB (coarse {} KiB, fine ~{} B avg)...",
        mbytes,
        cfg.coarse_size >> 10,
        cfg.chunking.min_size + (1 << cfg.chunking.mask_bits)
    );
    let data = corpus(&cfg);
    let (arch, clock) = run_serial(&cfg, &data);
    println!(
        "{}",
        clock.render("Table 2: Characterization of the dedup pipeline (measured)")
    );
    println!(
        "archive: {} chunks, {} unique ({:.1}% unique), {:.2} MiB -> {:.2} MiB, checksum {:#018x}\n",
        arch.total_chunks,
        arch.unique_chunks,
        100.0 * arch.unique_chunks as f64 / arch.total_chunks as f64,
        (mbytes as f64),
        arch.bytes.len() as f64 / (1 << 20) as f64,
        arch.checksum()
    );

    println!("Paper reference (PARSEC native, 672 MB):");
    println!(
        "{:<16} {:>10} {:>12} {:>9}",
        "Stage", "Iterations", "Time (s)", "Time (%)"
    );
    for (name, iters, secs, pct) in PAPER {
        println!("{name:<16} {iters:>10} {secs:>12.3} {pct:>8.2}%");
    }

    println!("\nShape comparison (measured% vs paper%):");
    let total = clock.total().as_secs_f64();
    for (name, _, _, paper_pct) in PAPER {
        let measured = clock
            .entries()
            .iter()
            .find(|e| e.name == *name)
            .map(|e| 100.0 * e.time.as_secs_f64() / total)
            .unwrap_or(0.0);
        println!("{name:<16} measured {measured:>6.2}%   paper {paper_pct:>6.2}%");
    }
}
