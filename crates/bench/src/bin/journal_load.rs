//! journal_load — write-ahead-journal throughput, group-commit latency,
//! and recovery-replay speed (DESIGN.md §6.4).
//!
//! Three phases, all against a real `pipelines::journal::Journal` on a
//! scratch directory:
//!
//! * **Depth sweep**: `1`, `8` and `32` concurrent appender threads each
//!   running the durable hot path (`append_sync`: stage a record, block
//!   until the group-commit fsync covering it lands). Depth 1 pays
//!   roughly one fsync per record; at depth 32 the flusher amortizes one
//!   fsync across the whole waiting cohort — the run *fails* unless
//!   fsyncs-per-append < 1.0 there, which is the journal's reason to
//!   exist.
//! * **Replay**: time `replay_dir` over everything the sweep wrote plus
//!   a results pass — the crash-recovery startup cost per record.
//!
//! Emits `BENCH_journal.json` (append throughput, p50/p95/p99
//! group-commit latency per depth, replay ms) for CI's `bench_check`
//! gate; medians live under `median_us` / `median_ms`.

use std::io::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use pipelines::journal::{replay_dir, JobReplayStatus, Journal, JournalConfig, RecordKind};
use workloads::service::percentile;

const BODY_BYTES: usize = 256;

struct DepthReport {
    depth: usize,
    elapsed: Duration,
    /// Sorted per-append_sync latencies, µs.
    latencies: Vec<f64>,
    fsyncs: u64,
    appends: u64,
}

impl DepthReport {
    fn appends_per_sec(&self) -> f64 {
        self.appends as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
    fn fsyncs_per_append(&self) -> f64 {
        self.fsyncs as f64 / (self.appends as f64).max(1.0)
    }
}

/// `appends` durable records through `depth` concurrent appenders, each
/// blocking on its record's group commit.
fn run_depth(dir: &std::path::Path, depth: usize, appends: usize) -> DepthReport {
    let (journal, _) = Journal::open(JournalConfig::at(dir)).expect("open journal");
    let body = vec![0xA5u8; BODY_BYTES];
    let next = AtomicUsize::new(0);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(appends));
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..depth {
            let (next, latencies, journal, body) = (&next, &latencies, &journal, &body);
            s.spawn(move || {
                let mut local = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= appends {
                        break;
                    }
                    let t = Instant::now();
                    journal.append_sync(RecordKind::Submit, i as u64 + 1, body);
                    local.push(t.elapsed().as_secs_f64() * 1e6);
                }
                latencies.lock().expect("no poisoned lock").extend(local);
            });
        }
    });
    let elapsed = t0.elapsed();
    let stats = journal.stats();
    drop(journal);
    let mut lat = latencies.into_inner().expect("no poisoned lock");
    assert_eq!(lat.len(), appends, "every append must be measured");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    DepthReport {
        depth,
        elapsed,
        latencies: lat,
        fsyncs: stats.fsyncs,
        appends: stats.appends,
    }
}

fn depth_block(r: &DepthReport) -> String {
    format!(
        "  \"depth_{}\": {{\n    \"appends_per_sec\": {:.0},\n    \"fsyncs_per_append\": \
         {:.4},\n    \"p95_us\": {:.1},\n    \"p99_us\": {:.1}\n  }}",
        r.depth,
        r.appends_per_sec(),
        r.fsyncs_per_append(),
        percentile(&r.latencies, 95.0),
        percentile(&r.latencies, 99.0),
    )
}

fn main() {
    let args = bench::Args::parse();
    let appends = args.get_usize("appends", if args.is_small() { 800 } else { 4000 });
    let out_path = args.get("out").unwrap_or("BENCH_journal.json");

    let scratch = std::env::temp_dir().join(format!("hq-journal-load-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&scratch);

    // Depth sweep: one subdirectory per depth so replay cost is
    // well-defined and the depth-1 segment files don't pollute depth 32.
    let reports: Vec<DepthReport> = [1usize, 8, 32]
        .iter()
        .map(|&depth| {
            let r = run_depth(&scratch.join(format!("d{depth}")), depth, appends);
            println!(
                "journal_load: depth {depth}: {appends} append_syncs in {:.2}s \
                 ({:.0}/s, p50 {:.0}µs, {:.3} fsyncs/append)",
                r.elapsed.as_secs_f64(),
                r.appends_per_sec(),
                percentile(&r.latencies, 50.0),
                r.fsyncs_per_append(),
            );
            r
        })
        .collect();
    let deep = reports.last().expect("three depths ran");
    if deep.fsyncs_per_append() >= 1.0 {
        eprintln!(
            "journal_load: FAILED — group commit is not amortizing: {:.3} fsyncs/append \
             at depth {} (must be < 1.0)",
            deep.fsyncs_per_append(),
            deep.depth,
        );
        std::process::exit(1);
    }

    // Replay phase: finish half the depth-32 jobs so the fold exercises
    // Submit→Result transitions, then time a cold replay of the dir.
    let replay_src = scratch.join("d32");
    {
        let (journal, _) = Journal::open(JournalConfig::at(&replay_src)).expect("reopen");
        for id in 1..=(appends as u64 / 2) {
            journal.append(RecordKind::Result, id, &[0x5A; 32]);
        }
        journal.append_sync(RecordKind::Ack, 1, &[]);
    }
    let t0 = Instant::now();
    let replay = replay_dir(&replay_src).expect("replay");
    let replay_elapsed = t0.elapsed();
    assert_eq!(replay.jobs.len(), appends, "replay must see every job");
    assert_eq!(replay.corrupt_records, 0, "clean journal must replay clean");
    assert_eq!(replay.jobs[&1].status, JobReplayStatus::Acked);
    assert!(
        matches!(replay.jobs[&2].status, JobReplayStatus::Done(_)),
        "finished jobs must replay as Done"
    );
    let replay_ms = replay_elapsed.as_secs_f64() * 1e3;
    println!(
        "journal_load: replay: {} records ({} jobs) in {:.1}ms ({:.0} records/s)",
        replay.records,
        replay.jobs.len(),
        replay_ms,
        replay.records as f64 / replay_elapsed.as_secs_f64().max(1e-9),
    );
    let _ = std::fs::remove_dir_all(&scratch);

    let json = format!(
        "{{\n  \"bench\": \"journal\",\n  \"appends_per_depth\": {appends},\n  \
         \"body_bytes\": {BODY_BYTES},\n  \"machine_cores\": {},\n  \
         \"depth_32_fsync_amortized\": true,\n  \
         \"median_us\": {{\n    \"append_sync_p50_depth1\": {:.1},\n    \
         \"append_sync_p50_depth8\": {:.1},\n    \"append_sync_p50_depth32\": {:.1}\n  }},\n  \
         \"median_ms\": {{\n    \"replay\": {:.2}\n  }},\n{},\n{},\n{},\n  \
         \"replay\": {{\n    \"records\": {},\n    \"records_per_sec\": {:.0}\n  }}\n}}\n",
        bench::machine_cores(),
        percentile(&reports[0].latencies, 50.0),
        percentile(&reports[1].latencies, 50.0),
        percentile(&reports[2].latencies, 50.0),
        replay_ms,
        depth_block(&reports[0]),
        depth_block(&reports[1]),
        depth_block(&reports[2]),
        replay.records,
        replay.records as f64 / replay_elapsed.as_secs_f64().max(1e-9),
    );
    let mut f = std::fs::File::create(out_path).expect("create BENCH_journal.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_journal.json");
    println!("journal_load: wrote {out_path}");
}
