//! ingress_load — closed-loop load generator for the `hqd` TCP ingress.
//!
//! Two modes:
//!
//! * **In-process sweep** (default): for each worker count in `1, 2, 8`,
//!   stand up a real `IngressServer` on a loopback socket, fire
//!   `--jobs` wordcount + logstream jobs at it over `--connections`
//!   concurrent client connections, verify every response byte-for-byte
//!   against the job's serial elision, and check the full response byte
//!   stream is **identical across all three worker counts**. Then a
//!   **connection sweep** drives wordcount at 64/512/4096 concurrent
//!   connections (the C10K shape the epoll ingress exists for) — at the
//!   top count the phase matrix spans {1,2,8} workers × both scheduler
//!   policies, all byte-identical. Emits `BENCH_ingress.json`
//!   (throughput + p50/p95/p99, plus throughput/p99 vs connections) for
//!   CI's `bench_check` gate.
//! * **Live-daemon mode** (`--addr host:port`): the same closed loop
//!   against an already-running `hqd` (started with matching defaults:
//!   wordcount or logstream, parse-work 40). Verifies responses, prints
//!   a summary, writes no JSON.
//!
//! Exit code 1 on any verification failure.

use std::io::Write as _;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use pipelines::graph::ServiceConfig;
use pipelines::ingress::{FrameKind, IngressClient, IngressConfig, IngressServer, JobOutcome};
use swan::{Runtime, RuntimeConfig, SchedulerPolicy};
use workloads::service::{
    job_lines, logstream_digest_spec, percentile, wordcount_spec, ServiceWorkloadConfig,
};
use workloads::util::fnv1a;
use workloads::wire::{
    encode_lines, expected_logstream_bytes, expected_wordcount_bytes, LogstreamCodec,
    WordcountCodec,
};

const RETRY_BACKOFF: Duration = Duration::from_micros(200);

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Wordcount,
    Logstream,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Wordcount => "wordcount",
            Workload::Logstream => "logstream",
        }
    }
}

/// One measured closed-loop run against one server address.
struct PhaseReport {
    elapsed: Duration,
    /// Sorted job latencies, µs.
    latencies: Vec<f64>,
    /// fnv1a of every job's response bytes, indexed by job id — the
    /// cross-phase byte-identity witness.
    response_hashes: Vec<u64>,
}

impl PhaseReport {
    fn jobs_per_sec(&self) -> f64 {
        self.latencies.len() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Fires `jobs` closed-loop jobs at `addr` over `connections` client
/// threads, verifying every response against `expected(j)`.
fn run_phase(
    addr: std::net::SocketAddr,
    cfg: &ServiceWorkloadConfig,
    connections: usize,
    jobs: usize,
    expected: impl Fn(usize) -> Vec<u8> + Sync,
) -> PhaseReport {
    let next = AtomicUsize::new(0);
    let failures = AtomicU64::new(0);
    let latencies = std::sync::Mutex::new(Vec::with_capacity(jobs));
    let hashes: Vec<AtomicU64> = (0..jobs).map(|_| AtomicU64::new(0)).collect();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for c in 0..connections.max(1) {
            let (next, failures, latencies, hashes, expected, cfg) =
                (&next, &failures, &latencies, &hashes, &expected, cfg);
            // Small stacks: the 4096-connection phases spawn thousands of
            // these, and each needs only a socket loop.
            let spawned = std::thread::Builder::new()
                .stack_size(256 * 1024)
                .spawn_scoped(s, move || {
                    let mut client = match IngressClient::connect(addr) {
                        Ok(c) => c,
                        Err(e) => {
                            eprintln!("ingress_load: connection {c} failed: {e}");
                            failures.fetch_add(1, Ordering::Relaxed);
                            return;
                        }
                    };
                    let mut local = Vec::new();
                    loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs {
                            break;
                        }
                        let payload = encode_lines(&job_lines(cfg, j));
                        let submit = Instant::now();
                        match client.submit_and_wait(j as u64, &payload, RETRY_BACKOFF) {
                            Ok(JobOutcome::Result(bytes)) => {
                                local.push(submit.elapsed().as_secs_f64() * 1e6);
                                if bytes != expected(j) {
                                    eprintln!("ingress_load: job {j}: response != serial elision");
                                    failures.fetch_add(1, Ordering::Relaxed);
                                }
                                hashes[j].store(fnv1a(&bytes), Ordering::Relaxed);
                            }
                            Ok(JobOutcome::Failed(msg)) => {
                                eprintln!("ingress_load: job {j} failed server-side: {msg}");
                                failures.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(e) => {
                                eprintln!("ingress_load: job {j} transport error: {e}");
                                failures.fetch_add(1, Ordering::Relaxed);
                                return;
                            }
                        }
                    }
                    latencies.lock().expect("no poisoned lock").extend(local);
                });
            spawned.expect("spawn client thread");
        }
    });
    let elapsed = t0.elapsed();
    if failures.load(Ordering::Relaxed) > 0 {
        eprintln!("ingress_load: FAILED — responses diverged or transport broke");
        std::process::exit(1);
    }
    let mut lat = latencies.into_inner().expect("no poisoned lock");
    assert_eq!(lat.len(), jobs, "every job must complete exactly once");
    lat.sort_by(|a, b| a.partial_cmp(b).expect("finite latency"));
    PhaseReport {
        elapsed,
        latencies: lat,
        response_hashes: hashes.iter().map(|h| h.load(Ordering::Relaxed)).collect(),
    }
}

/// In-process sweep for one workload: phases at 1/2/8 workers, identity
/// check across phases, returns the final (8-worker) phase's report.
fn sweep_workload(
    workload: Workload,
    cfg: &ServiceWorkloadConfig,
    connections: usize,
    jobs: usize,
) -> PhaseReport {
    let mut last: Option<PhaseReport> = None;
    let mut reference: Option<Vec<u64>> = None;
    for workers in [1usize, 2, 8] {
        let rt = Arc::new(Runtime::with_workers(workers));
        let service_cfg = ServiceConfig {
            max_in_flight: cfg.max_in_flight,
            segment_capacity: cfg.segment_capacity,
            io_batch: cfg.io_batch,
            ..ServiceConfig::default()
        };
        let ingress_cfg = IngressConfig::default();
        let server = match workload {
            Workload::Wordcount => {
                let graph = Arc::new(
                    wordcount_spec(cfg.degree, cfg.window).compile(Arc::clone(&rt), service_cfg),
                );
                IngressServer::bind("127.0.0.1:0", graph, Arc::new(WordcountCodec), ingress_cfg)
            }
            Workload::Logstream => {
                let graph = Arc::new(
                    logstream_digest_spec(cfg.degree, cfg.window, cfg.parse_work)
                        .compile(Arc::clone(&rt), service_cfg),
                );
                IngressServer::bind("127.0.0.1:0", graph, Arc::new(LogstreamCodec), ingress_cfg)
            }
        }
        .expect("bind loopback ingress");
        let report = run_phase(server.local_addr(), cfg, connections, jobs, |j| {
            let lines = job_lines(cfg, j);
            match workload {
                Workload::Wordcount => expected_wordcount_bytes(&lines),
                Workload::Logstream => expected_logstream_bytes(&lines, cfg.parse_work),
            }
        });
        let stats = server.shutdown();
        rt.quiesce();
        assert_eq!(
            stats.jobs_accepted, stats.jobs_completed,
            "every accepted job must drain"
        );
        println!(
            "ingress_load: {} @ {workers} worker(s): {} jobs in {:.2}s \
             ({:.0} jobs/s, p50 {:.0}µs, retries {})",
            workload.name(),
            jobs,
            report.elapsed.as_secs_f64(),
            report.jobs_per_sec(),
            percentile(&report.latencies, 50.0),
            stats.retries_sent,
        );
        match &reference {
            None => reference = Some(report.response_hashes.clone()),
            Some(r) => {
                if *r != report.response_hashes {
                    eprintln!(
                        "ingress_load: FAILED — {} responses at {workers} workers are not \
                         byte-identical to the 1-worker run",
                        workload.name()
                    );
                    std::process::exit(1);
                }
            }
        }
        last = Some(report);
    }
    println!(
        "ingress_load: {}: responses byte-identical across 1/2/8 workers ✓",
        workload.name()
    );
    last.expect("three phases ran")
}

/// One connection-sweep phase: `connections` closed-loop clients against
/// a wordcount server with `workers` workers under `policy`, admission
/// sized to the connection count (`max_queued ≈ C` — the sweep measures
/// multiplexing capacity, not retry storms).
fn connection_phase(
    cfg: &ServiceWorkloadConfig,
    connections: usize,
    jobs: usize,
    workers: usize,
    policy: SchedulerPolicy,
) -> PhaseReport {
    let rt = Arc::new(Runtime::new(
        RuntimeConfig::new()
            .workers(workers..=workers)
            .scheduler(policy),
    ));
    let service_cfg = ServiceConfig {
        max_in_flight: cfg.max_in_flight,
        segment_capacity: cfg.segment_capacity,
        io_batch: cfg.io_batch,
        ..ServiceConfig::default()
    };
    let graph =
        Arc::new(wordcount_spec(cfg.degree, cfg.window).compile(Arc::clone(&rt), service_cfg));
    let server = IngressServer::bind(
        "127.0.0.1:0",
        graph,
        Arc::new(WordcountCodec),
        IngressConfig {
            max_queued: connections.max(64),
            ..IngressConfig::default()
        },
    )
    .expect("bind loopback ingress");
    let report = run_phase(server.local_addr(), cfg, connections, jobs, |j| {
        expected_wordcount_bytes(&job_lines(cfg, j))
    });
    let stats = server.shutdown();
    rt.quiesce();
    assert_eq!(
        stats.jobs_accepted, stats.jobs_completed,
        "every accepted job must drain"
    );
    report
}

/// The connection sweep: wordcount at 64/512/4096 concurrent
/// connections. The lower counts are single measured phases (2 workers,
/// default policy); the top count runs the full determinism matrix —
/// {1,2,8} workers × both scheduler policies — and every phase's
/// responses must hash byte-identical. Returns one report per count.
fn sweep_connections(cfg: &ServiceWorkloadConfig, jobs: usize) -> Vec<(usize, PhaseReport)> {
    let steal_batch = SchedulerPolicy::DEFAULT_STEAL_BATCH;
    let mut out = Vec::new();
    for connections in [64usize, 512, 4096] {
        let jobs_c = jobs.max(connections); // at least one job per connection
        let report = if connections == 4096 {
            let mut reference: Option<Vec<u64>> = None;
            let mut last: Option<PhaseReport> = None;
            for policy in [
                SchedulerPolicy::HelpFirst,
                SchedulerPolicy::StealFirst { steal_batch },
            ] {
                for workers in [1usize, 2, 8] {
                    let r = connection_phase(cfg, connections, jobs_c, workers, policy);
                    match &reference {
                        None => reference = Some(r.response_hashes.clone()),
                        Some(h) => {
                            if *h != r.response_hashes {
                                eprintln!(
                                    "ingress_load: FAILED — responses at {connections} \
                                     connections / {workers} workers / {policy:?} are not \
                                     byte-identical to the first phase"
                                );
                                std::process::exit(1);
                            }
                        }
                    }
                    last = Some(r);
                }
            }
            println!(
                "ingress_load: wordcount @ {connections} connections: byte-identical \
                 across 1/2/8 workers × both scheduler policies ✓"
            );
            last.expect("six phases ran")
        } else {
            connection_phase(cfg, connections, jobs_c, 2, SchedulerPolicy::HelpFirst)
        };
        println!(
            "ingress_load: wordcount @ {connections} connections: {} jobs in {:.2}s \
             ({:.0} jobs/s, p50 {:.0}µs, p99 {:.0}µs)",
            jobs_c,
            report.elapsed.as_secs_f64(),
            report.jobs_per_sec(),
            percentile(&report.latencies, 50.0),
            percentile(&report.latencies, 99.0),
        );
        out.push((connections, report));
    }
    out
}

/// Tick interval the overhead subscriber asks for. 100 ms is the hqtop
/// refresh class; sub-10ms intervals measure encoder spin on starved
/// runners, not the streaming cost a real dashboard imposes.
const OVERHEAD_TICK_MS: u32 = 100;

/// The telemetry-overhead phase: the same wordcount closed loop twice —
/// once bare, once with a live `Subscribe(100ms)` stream being consumed
/// on a side connection — so the cost of streaming stats shows up as a
/// throughput delta between two back-to-back runs on the same machine.
/// Returns (bare, subscribed, ticks consumed).
fn telemetry_overhead_phases(
    cfg: &ServiceWorkloadConfig,
    connections: usize,
    jobs: usize,
) -> (PhaseReport, PhaseReport, u64) {
    let run = |subscriber: bool| -> (PhaseReport, u64) {
        let rt = Arc::new(Runtime::with_workers(2));
        let service_cfg = ServiceConfig {
            max_in_flight: cfg.max_in_flight,
            segment_capacity: cfg.segment_capacity,
            io_batch: cfg.io_batch,
            ..ServiceConfig::default()
        };
        let graph =
            Arc::new(wordcount_spec(cfg.degree, cfg.window).compile(Arc::clone(&rt), service_cfg));
        let server = IngressServer::bind(
            "127.0.0.1:0",
            graph,
            Arc::new(WordcountCodec),
            IngressConfig::default(),
        )
        .expect("bind loopback ingress");
        let addr = server.local_addr();
        let ticks = AtomicU64::new(0);
        let mut report = None;
        std::thread::scope(|s| {
            let watcher = subscriber.then(|| {
                let ticks = &ticks;
                s.spawn(move || {
                    let mut client = IngressClient::connect(addr).expect("subscriber connects");
                    client
                        .subscribe(u64::MAX, OVERHEAD_TICK_MS)
                        .expect("subscribe");
                    // Consume ticks until the server closes the socket at
                    // shutdown; an unread subscriber would measure
                    // backpressure drops, not streaming cost.
                    while let Ok(frame) = client.recv() {
                        if frame.kind == FrameKind::StatsEvent {
                            ticks.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                })
            });
            report = Some(run_phase(addr, cfg, connections, jobs, |j| {
                expected_wordcount_bytes(&job_lines(cfg, j))
            }));
            let stats = server.shutdown();
            assert_eq!(
                stats.jobs_accepted, stats.jobs_completed,
                "every accepted job must drain"
            );
            if let Some(w) = watcher {
                w.join().expect("subscriber thread");
            }
        });
        rt.quiesce();
        (report.expect("phase ran"), ticks.load(Ordering::Relaxed))
    };
    let (bare, _) = run(false);
    let (subscribed, ticks) = run(true);
    assert!(
        ticks >= 1,
        "telemetry_overhead: the subscriber consumed no StatsEvent ticks"
    );
    (bare, subscribed, ticks)
}

fn report_block(name: &str, r: &PhaseReport) -> String {
    format!(
        "  \"{name}\": {{\n    \"jobs_per_sec\": {:.1},\n    \"p95_us\": {:.1},\n    \
         \"p99_us\": {:.1},\n    \"max_us\": {:.1}\n  }}",
        r.jobs_per_sec(),
        percentile(&r.latencies, 95.0),
        percentile(&r.latencies, 99.0),
        r.latencies.last().copied().unwrap_or(0.0),
    )
}

fn main() {
    let args = bench::Args::parse();
    let connections = args.get_usize("connections", 4);
    let jobs = args.get_usize("jobs", if args.is_small() { 200 } else { 1000 });
    let cfg = ServiceWorkloadConfig::bench(jobs);
    // The 4096-connection phases need ~2 fds per connection in this one
    // process; default soft limits (1024 on stock runners) are far short.
    let _ = epoll::raise_nofile_limit(16 * 1024);

    if let Some(addr) = args.get("addr") {
        // Live-daemon mode: one phase against an external hqd.
        let workload = match args.get("workload").unwrap_or("wordcount") {
            "wordcount" => Workload::Wordcount,
            "logstream" => Workload::Logstream,
            other => {
                eprintln!("ingress_load: unknown --workload {other}");
                std::process::exit(2);
            }
        };
        let addr: std::net::SocketAddr = addr.parse().expect("--addr host:port");
        let report = run_phase(addr, &cfg, connections, jobs, |j| {
            let lines = job_lines(&cfg, j);
            match workload {
                Workload::Wordcount => expected_wordcount_bytes(&lines),
                Workload::Logstream => expected_logstream_bytes(&lines, cfg.parse_work),
            }
        });
        println!(
            "ingress_load: live {} @ {addr}: {} jobs over {connections} connections in \
             {:.2}s ({:.0} jobs/s, p50 {:.0}µs p95 {:.0}µs p99 {:.0}µs), all responses \
             matched the serial elision ✓",
            workload.name(),
            jobs,
            report.elapsed.as_secs_f64(),
            report.jobs_per_sec(),
            percentile(&report.latencies, 50.0),
            percentile(&report.latencies, 95.0),
            percentile(&report.latencies, 99.0),
        );
        return;
    }

    // In-process sweep: both workloads, 1/2/8 workers, JSON for bench_check.
    let wc = sweep_workload(Workload::Wordcount, &cfg, connections, jobs);
    let ls = sweep_workload(Workload::Logstream, &cfg, connections, jobs);
    // Connection sweep: throughput and p99 vs concurrent connections.
    let by_conns = sweep_connections(&cfg, jobs);
    // Telemetry overhead: the same loop bare vs with a 100 ms subscriber.
    let (bare, subscribed, ticks) = telemetry_overhead_phases(&cfg, connections, jobs);
    let overhead_pct =
        (bare.jobs_per_sec() - subscribed.jobs_per_sec()) / bare.jobs_per_sec() * 100.0;
    println!(
        "ingress_load: telemetry_overhead: bare {:.0} jobs/s, subscribed {:.0} jobs/s \
         ({overhead_pct:+.1}%, {ticks} ticks consumed){}",
        bare.jobs_per_sec(),
        subscribed.jobs_per_sec(),
        if overhead_pct > 3.0 {
            " .. WARNING: streaming stats cost more than the 3% budget"
        } else {
            " ✓"
        },
    );

    let medians: String = by_conns
        .iter()
        .map(|(c, r)| {
            format!(
                ",\n    \"wordcount_p50_c{c}\": {:.1}",
                percentile(&r.latencies, 50.0)
            )
        })
        .collect();
    let sweep_blocks: String = by_conns
        .iter()
        .map(|(c, r)| {
            format!(
                "\n    \"c{c}\": {{ \"jobs_per_sec\": {:.1}, \"p99_us\": {:.1} }}",
                r.jobs_per_sec(),
                percentile(&r.latencies, 99.0)
            )
        })
        .collect::<Vec<_>>()
        .join(",");
    let out_path = args.get("out").unwrap_or("BENCH_ingress.json");
    let json = format!(
        "{{\n  \"bench\": \"ingress\",\n  \"jobs\": {jobs},\n  \"connections\": \
         {connections},\n  \"job_lines\": {},\n  \"degree\": {},\n  \"machine_cores\": {},\n  \
         \"worker_phases\": [1, 2, 8],\n  \"byte_identical_phases\": true,\n  \
         \"connection_phases\": [64, 512, 4096],\n  \
         \"byte_identical_connection_phases\": true,\n  \
         \"median_us\": {{\n    \"wordcount_p50\": {:.1},\n    \"logstream_p50\": {:.1},\n    \
         \"wordcount_p50_subscribed\": {:.1}{}\n  }},\n  \
         \"telemetry_overhead\": {{\n    \"bare_jobs_per_sec\": {:.1},\n    \
         \"subscribed_jobs_per_sec\": {:.1},\n    \"overhead_pct\": {:.2},\n    \
         \"ticks_consumed\": {ticks}\n  }},\n  \
         \"connection_sweep\": {{{}\n  }},\n{},\n{}\n}}\n",
        cfg.job_lines,
        cfg.degree,
        bench::machine_cores(),
        percentile(&wc.latencies, 50.0),
        percentile(&ls.latencies, 50.0),
        percentile(&subscribed.latencies, 50.0),
        medians,
        bare.jobs_per_sec(),
        subscribed.jobs_per_sec(),
        overhead_pct,
        sweep_blocks,
        report_block("wordcount", &wc),
        report_block("logstream", &ls),
    );
    let mut f = std::fs::File::create(out_path).expect("create BENCH_ingress.json");
    f.write_all(json.as_bytes())
        .expect("write BENCH_ingress.json");
    println!("ingress_load: wrote {out_path}");
}
