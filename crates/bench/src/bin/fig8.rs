//! Regenerates **Figure 8**: ferret speedup vs. core count for Pthreads,
//! TBB, Objects (dataflow without hyperqueues) and Hyperqueue.
//!
//! ```text
//! cargo run --release -p bench --bin fig8 [--images N] [--max-cores C] [--scale small]
//! ```
//!
//! Expected shape (paper): Pthreads/TBB/Hyperqueue track each other;
//! Objects plateaus early because its input stage is not overlapped
//! (Amdahl on the ~4.5% serial input).

use swan::Runtime;
use workloads::ferret::{
    run_hyperqueue, run_objects, run_pthread, run_serial, run_tbb, FerretConfig, PthreadTuning,
};

fn main() {
    let args = bench::Args::parse();
    let images = args.get_usize("images", if args.is_small() { 250 } else { 3500 });
    let max_cores = args.get_usize("max-cores", bench::machine_cores());
    let cfg = FerretConfig::bench(images);

    eprintln!("figure 8: ferret, {images} images, up to {max_cores} cores");
    let (serial_time, (serial_out, _)) = bench::time(|| run_serial(&cfg));
    let reference = serial_out.checksum();
    eprintln!("serial: {:.3}s", serial_time.as_secs_f64());

    let cores = bench::core_sweep(max_cores);
    let mut pthreads = Vec::new();
    let mut tbb = Vec::new();
    let mut objects = Vec::new();
    let mut hyperqueue = Vec::new();

    for &c in &cores {
        let (t, out) = bench::time(|| run_pthread(&cfg, &PthreadTuning::oversubscribed(c)));
        assert_eq!(out.checksum(), reference, "pthread wrong at {c} cores");
        pthreads.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        let (t, out) = bench::time(|| run_tbb(&cfg, c, 4 * c));
        assert_eq!(out.checksum(), reference, "tbb wrong at {c} cores");
        tbb.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        let rt = Runtime::with_workers(c);
        let (t, out) = bench::time(|| run_objects(&cfg, &rt));
        assert_eq!(out.checksum(), reference, "objects wrong at {c} cores");
        objects.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        let (t, out) = bench::time(|| run_hyperqueue(&cfg, &rt));
        assert_eq!(out.checksum(), reference, "hyperqueue wrong at {c} cores");
        hyperqueue.push((c, serial_time.as_secs_f64() / t.as_secs_f64()));

        eprintln!(
            "  {c:>2} cores: pthreads {:.2} tbb {:.2} objects {:.2} hyperqueue {:.2}",
            pthreads.last().unwrap().1,
            tbb.last().unwrap().1,
            objects.last().unwrap().1,
            hyperqueue.last().unwrap().1
        );
    }

    let series = vec![
        bench::Series {
            name: "Pthreads",
            points: pthreads,
        },
        bench::Series {
            name: "TBB",
            points: tbb,
        },
        bench::Series {
            name: "Objects",
            points: objects,
        },
        bench::Series {
            name: "Hyperqueue",
            points: hyperqueue,
        },
    ];
    println!(
        "{}",
        bench::render_speedup_figure(
            &format!("Figure 8: Ferret speedup by programming model ({images} images)"),
            serial_time,
            &series
        )
    );
}
