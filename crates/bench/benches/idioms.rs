//! Benchmarks of the §5 programming idioms: segment-capacity tuning
//! (§5.1), slices vs per-element operations (§5.2), and the recycling
//! freelist (§3.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperqueue::Hyperqueue;
use swan::Runtime;

const ITEMS: u64 = 500_000;

fn run_pair(rt: &Runtime, cap: usize, recycle: bool, slices: bool) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_config(s, cap, recycle);
        s.spawn((q.pushdep(),), move |_, (mut p,)| {
            if slices {
                let mut i = 0u64;
                while i < ITEMS {
                    let mut ws = p.write_slice(128);
                    let n = ws.capacity().min((ITEMS - i) as usize);
                    for _ in 0..n {
                        ws.push(i);
                        i += 1;
                    }
                }
            } else {
                for i in 0..ITEMS {
                    p.push(i);
                }
            }
        });
        s.spawn((q.popdep(),), move |_, (mut c,)| {
            let mut sum = 0u64;
            if slices {
                while let Some(rs) = c.read_slice(128) {
                    for &v in rs.as_slice() {
                        sum = sum.wrapping_add(v);
                    }
                }
            } else {
                while !c.empty() {
                    sum = sum.wrapping_add(c.pop());
                }
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

fn bench_segment_capacity(c: &mut Criterion) {
    let rt = Runtime::with_workers(2);
    let mut g = c.benchmark_group("segment_capacity");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    for cap in [32usize, 128, 512, 2048, 8192] {
        g.bench_with_input(BenchmarkId::from_parameter(cap), &cap, |b, &cap| {
            b.iter(|| run_pair(&rt, cap, true, false))
        });
    }
    g.finish();
}

fn bench_recycling(c: &mut Criterion) {
    let rt = Runtime::with_workers(2);
    let mut g = c.benchmark_group("recycling");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    g.bench_function("on", |b| b.iter(|| run_pair(&rt, 256, true, false)));
    g.bench_function("off", |b| b.iter(|| run_pair(&rt, 256, false, false)));
    g.finish();
}

fn bench_slices(c: &mut Criterion) {
    let rt = Runtime::with_workers(2);
    let mut g = c.benchmark_group("slice_api");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    g.bench_function("per_element", |b| {
        b.iter(|| run_pair(&rt, 1024, true, false))
    });
    g.bench_function("slices", |b| b.iter(|| run_pair(&rt, 1024, true, true)));
    g.finish();
}

criterion_group!(
    benches,
    bench_segment_capacity,
    bench_recycling,
    bench_slices
);
criterion_main!(benches);
