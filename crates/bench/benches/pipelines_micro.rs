//! A small fixed pipeline run across all four programming models — the
//! per-model overhead comparison at a size where criterion can iterate.

use criterion::{criterion_group, criterion_main, Criterion};
use swan::Runtime;
use workloads::ferret::{
    run_hyperqueue, run_objects, run_pthread, run_tbb, FerretConfig, PthreadTuning,
};

fn bench_models(c: &mut Criterion) {
    let cfg = FerretConfig {
        total_images: 96,
        ..FerretConfig::small()
    };
    let workers = 4usize;
    let rt = Runtime::with_workers(workers);
    let mut g = c.benchmark_group("ferret_96_images_4workers");
    g.sample_size(10);
    g.bench_function("pthreads", |b| {
        b.iter(|| run_pthread(&cfg, &PthreadTuning::oversubscribed(workers)))
    });
    g.bench_function("tbb", |b| b.iter(|| run_tbb(&cfg, workers, 4 * workers)));
    g.bench_function("objects", |b| b.iter(|| run_objects(&cfg, &rt)));
    g.bench_function("hyperqueue", |b| b.iter(|| run_hyperqueue(&cfg, &rt)));
    g.finish();
}

criterion_group!(benches, bench_models);
criterion_main!(benches);
