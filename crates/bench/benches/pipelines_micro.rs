//! A small fixed pipeline run across all four programming models — the
//! per-model overhead comparison at a size where criterion can iterate —
//! plus a three-stage hyperqueue micro pipeline in per-item and batched
//! form (how much of the per-token cost does slice I/O recover?).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use hyperqueue::Hyperqueue;
use swan::Runtime;
use workloads::ferret::{
    run_hyperqueue, run_objects, run_pthread, run_tbb, FerretConfig, PthreadTuning,
};

fn bench_models(c: &mut Criterion) {
    let cfg = FerretConfig {
        total_images: 96,
        ..FerretConfig::small()
    };
    let workers = 4usize;
    let rt = Runtime::with_workers(workers);
    let mut g = c.benchmark_group("ferret_96_images_4workers");
    g.sample_size(10);
    g.bench_function("pthreads", |b| {
        b.iter(|| run_pthread(&cfg, &PthreadTuning::oversubscribed(workers)))
    });
    g.bench_function("tbb", |b| b.iter(|| run_tbb(&cfg, workers, 4 * workers)));
    g.bench_function("objects", |b| b.iter(|| run_objects(&cfg, &rt)));
    g.bench_function("hyperqueue", |b| b.iter(|| run_hyperqueue(&cfg, &rt)));
    g.finish();
}

/// gen → double → sum over two hyperqueues; the token cost of a
/// pass-through stage is what separates per-item from batched here.
fn micro_3stage(rt: &Runtime, items: u64, batched: bool) {
    rt.scope(|s| {
        let q1 = Hyperqueue::<u64>::with_segment_capacity(s, 256);
        let q2 = Hyperqueue::<u64>::with_segment_capacity(s, 256);
        if batched {
            s.spawn((q1.pushdep(),), move |_, (mut p,)| {
                p.push_iter(0..items);
            });
            s.spawn((q1.popdep(), q2.pushdep()), |_, (mut c, mut p)| loop {
                let batch = c.pop_batch(256);
                if batch.is_empty() {
                    break;
                }
                p.push_iter(batch.into_iter().map(|v| v * 2));
            });
            s.spawn((q2.popdep(),), move |_, (mut c,)| {
                let mut sum = 0u64;
                c.for_each_batch(256, |vals| {
                    for &v in vals {
                        sum = sum.wrapping_add(v);
                    }
                });
                assert_eq!(sum, items * (items - 1));
            });
        } else {
            s.spawn((q1.pushdep(),), move |_, (mut p,)| {
                for i in 0..items {
                    p.push(i);
                }
            });
            s.spawn((q1.popdep(), q2.pushdep()), |_, (mut c, mut p)| {
                while !c.empty() {
                    p.push(c.pop() * 2);
                }
            });
            s.spawn((q2.popdep(),), move |_, (mut c,)| {
                let mut sum = 0u64;
                while !c.empty() {
                    sum = sum.wrapping_add(c.pop());
                }
                assert_eq!(sum, items * (items - 1));
            });
        }
    });
}

fn bench_micro_batching(c: &mut Criterion) {
    const ITEMS: u64 = 500_000;
    let rt = Runtime::with_workers(3);
    let mut g = c.benchmark_group("micro_3stage_500k");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    g.bench_function("per_item", |b| b.iter(|| micro_3stage(&rt, ITEMS, false)));
    g.bench_function("batched", |b| b.iter(|| micro_3stage(&rt, ITEMS, true)));
    g.finish();
}

criterion_group!(benches, bench_models, bench_micro_batching);
criterion_main!(benches);
