//! Graph-pipeline benchmark: the logstream workload on the DAG composition
//! layer, fan-out degrees swept against the linear chain equivalent.
//!
//! Besides the criterion table, this harness writes `BENCH_pipegraph.json`
//! (median ms per run for the linear chain and each fan-out degree, plus
//! the degree-4 speedup) so CI can archive the graph layer's perf
//! trajectory next to `BENCH_queue_ops.json`. The headline number is the
//! acceptance criterion for the DAG layer: the fan-out pipeline must beat
//! its linear equivalent once ≥ 4 workers are available.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use swan::Runtime;
use workloads::logstream::{corpus, run_graph, run_linear, run_serial, LogConfig};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn sized_config() -> LogConfig {
    LogConfig::bench(if smoke() { 20_000 } else { 120_000 })
}

fn bench_pipegraph(c: &mut Criterion) {
    let cfg = sized_config();
    let lines = corpus(&cfg);
    let rt = Runtime::with_workers(4);
    let mut g = c.benchmark_group("pipegraph_logstream");
    g.throughput(Throughput::Elements(cfg.records as u64));
    g.sample_size(10);
    g.bench_function(BenchmarkId::new("linear", 4), |b| {
        b.iter(|| run_linear(&cfg, &lines, &rt))
    });
    for degree in [2usize, 4] {
        g.bench_function(BenchmarkId::new(format!("fanout_x{degree}"), 4), |b| {
            b.iter(|| run_graph(&cfg, &lines, &rt, degree))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_pipegraph);

// ---------------------------------------------------------------------------
// BENCH_pipegraph.json: the machine-readable perf record CI archives.
// ---------------------------------------------------------------------------

fn median_ms(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let (d, ()) = bench::time(&mut f);
            d.as_secs_f64() * 1e3
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn emit_json() {
    let cfg = sized_config();
    let lines = corpus(&cfg);
    let reps = if smoke() { 1 } else { 5 };
    let workers = 4usize; // the acceptance point: fan-out must win here

    // Cross-check before timing: every measured driver produces the
    // serial output, so the numbers below describe *correct* pipelines.
    let (serial, _) = run_serial(&cfg, &lines);
    let rt = Runtime::with_workers(workers);
    assert_eq!(run_linear(&cfg, &lines, &rt).checksum(), serial.checksum());

    let serial_ms = median_ms(reps, || {
        let _ = run_serial(&cfg, &lines);
    });
    let linear_ms = median_ms(reps, || {
        let _ = run_linear(&cfg, &lines, &rt);
    });
    let degrees = [1usize, 2, 4, 8];
    let mut degree_ms = Vec::new();
    for &d in &degrees {
        assert_eq!(
            run_graph(&cfg, &lines, &rt, d).checksum(),
            serial.checksum()
        );
        degree_ms.push(median_ms(reps, || {
            let _ = run_graph(&cfg, &lines, &rt, d);
        }));
    }
    let fanout4_ms = degree_ms[2];

    let mut degree_json = String::new();
    for (i, &d) in degrees.iter().enumerate() {
        degree_json.push_str(&format!(
            "    \"fanout_x{d}\": {:.2}{}\n",
            degree_ms[i],
            if i + 1 < degrees.len() { "," } else { "" }
        ));
    }
    // The speedup is only physical when the machine can actually run the
    // 4 workers: on fewer cores the whole sweep collapses to ~1.0x, so the
    // record carries the core count for interpretation.
    let json = format!(
        "{{\n  \"bench\": \"pipegraph\",\n  \"workload\": \"logstream\",\n  \
         \"records\": {},\n  \"workers\": {workers},\n  \
         \"machine_cores\": {},\n  \"reps\": {reps},\n  \
         \"median_ms\": {{\n    \"serial\": {serial_ms:.2},\n    \
         \"linear\": {linear_ms:.2},\n{degree_json}  }},\n  \
         \"fanout4_speedup_vs_linear\": {:.2},\n  \
         \"fanout4_speedup_vs_serial\": {:.2}\n}}\n",
        cfg.records,
        bench::machine_cores(),
        linear_ms / fanout4_ms,
        serial_ms / fanout4_ms
    );
    std::fs::write("BENCH_pipegraph.json", &json).expect("write BENCH_pipegraph.json");
    println!("\nBENCH_pipegraph.json:\n{json}");
}

fn main() {
    benches();
    emit_json();
}
