//! Microbenchmarks of the hyperqueue data path: push/pop throughput of a
//! concurrent producer/consumer pair, compared against this repo's plain
//! Lamport SPSC ring and std's bounded mpsc channel (the "how much does
//! determinism cost per element?" question).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hyperqueue::Hyperqueue;
use swan::Runtime;

const ITEMS: u64 = 1_000_000;

fn hyperqueue_pair(rt: &Runtime, seg_cap: usize) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        s.spawn((q.pushdep(),), |_, (mut p,)| {
            for i in 0..ITEMS {
                p.push(i);
            }
        });
        s.spawn((q.popdep(),), |_, (mut c,)| {
            let mut sum = 0u64;
            while !c.empty() {
                sum = sum.wrapping_add(c.pop());
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

fn spsc_pair(cap: usize) {
    let (tx, rx) = pipelines::spsc::<u64>(cap);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..ITEMS {
                tx.send(i);
            }
        });
        scope.spawn(move || {
            let mut sum = 0u64;
            while let Some(v) = rx.recv() {
                sum = sum.wrapping_add(v);
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

fn mpsc_pair(cap: usize) {
    let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(cap);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..ITEMS {
                tx.send(i).unwrap();
            }
        });
        scope.spawn(move || {
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                sum = sum.wrapping_add(v);
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_throughput");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    let rt = Runtime::with_workers(2);
    g.bench_function(BenchmarkId::new("hyperqueue", 1024), |b| {
        b.iter(|| hyperqueue_pair(&rt, 1024))
    });
    g.bench_function(BenchmarkId::new("lamport_spsc", 1024), |b| {
        b.iter(|| spsc_pair(1024))
    });
    g.bench_function(BenchmarkId::new("mpsc_bounded", 1024), |b| {
        b.iter(|| mpsc_pair(1024))
    });
    g.finish();
}

fn bench_owner_ops(c: &mut Criterion) {
    // Owner-only push+pop (no concurrency): the raw segment fast path.
    let mut g = c.benchmark_group("owner_ops");
    g.throughput(Throughput::Elements(100_000));
    g.sample_size(20);
    let rt = Runtime::with_workers(1);
    g.bench_function("push_then_pop_100k", |b| {
        b.iter(|| {
            rt.scope(|s| {
                let q = Hyperqueue::<u64>::with_segment_capacity(s, 4096);
                for i in 0..100_000u64 {
                    q.push(i);
                }
                let mut sum = 0u64;
                while !q.empty() {
                    sum = sum.wrapping_add(q.pop());
                }
                std::hint::black_box(sum);
            });
        })
    });
    g.finish();
}

criterion_group!(benches, bench_queues, bench_owner_ops);
criterion_main!(benches);
