//! Microbenchmarks of the hyperqueue data path: push/pop throughput of a
//! concurrent producer/consumer pair, compared against this repo's plain
//! Lamport SPSC ring and std's bounded mpsc channel (the "how much does
//! determinism cost per element?" question), plus the batched slice API
//! against per-item calls.
//!
//! Besides the criterion table, this harness writes `BENCH_queue_ops.json`
//! (median ns/op for per-item vs batched and steady-state vs cross-segment
//! traffic) so CI can archive a machine-readable perf trajectory.

use criterion::{criterion_group, BenchmarkId, Criterion, Throughput};
use hyperqueue::Hyperqueue;
use swan::Runtime;

const ITEMS: u64 = 1_000_000;

fn hyperqueue_pair(rt: &Runtime, seg_cap: usize) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        s.spawn((q.pushdep(),), |_, (mut p,)| {
            for i in 0..ITEMS {
                p.push(i);
            }
        });
        s.spawn((q.popdep(),), |_, (mut c,)| {
            let mut sum = 0u64;
            while !c.empty() {
                sum = sum.wrapping_add(c.pop());
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

fn hyperqueue_pair_batched(rt: &Runtime, seg_cap: usize) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        s.spawn((q.pushdep(),), |_, (mut p,)| {
            p.push_iter(0..ITEMS);
        });
        s.spawn((q.popdep(),), move |_, (mut c,)| {
            let mut sum = 0u64;
            c.for_each_batch(seg_cap, |vals| {
                for &v in vals {
                    sum = sum.wrapping_add(v);
                }
            });
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

fn spsc_pair(cap: usize) {
    let (tx, rx) = pipelines::spsc::<u64>(cap);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..ITEMS {
                tx.send(i);
            }
        });
        scope.spawn(move || {
            let mut sum = 0u64;
            while let Some(v) = rx.recv() {
                sum = sum.wrapping_add(v);
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

fn mpsc_pair(cap: usize) {
    let (tx, rx) = std::sync::mpsc::sync_channel::<u64>(cap);
    std::thread::scope(|scope| {
        scope.spawn(move || {
            for i in 0..ITEMS {
                tx.send(i).unwrap();
            }
        });
        scope.spawn(move || {
            let mut sum = 0u64;
            while let Ok(v) = rx.recv() {
                sum = sum.wrapping_add(v);
            }
            assert_eq!(sum, ITEMS * (ITEMS - 1) / 2);
        });
    });
}

/// Owner-only traffic confined to one segment (no boundary is ever
/// crossed): the pure lock-free fast path.
fn owner_steady_state(rt: &Runtime, seg_cap: usize, items: u64) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        let burst = (seg_cap / 2) as u64;
        let mut sum = 0u64;
        let mut i = 0u64;
        while i < items {
            let n = burst.min(items - i);
            for v in i..i + n {
                q.push(v);
            }
            for _ in 0..n {
                sum = sum.wrapping_add(q.pop());
            }
            i += n;
        }
        std::hint::black_box(sum);
    });
}

/// The same single-segment ping-pong through the batched slice API
/// (`push_slice` staging from a local buffer, `read_slice` draining).
fn owner_steady_state_batched(rt: &Runtime, seg_cap: usize, items: u64) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        let burst = (seg_cap / 2) as u64;
        let mut buf = vec![0u64; burst as usize];
        let mut sum = 0u64;
        let mut i = 0u64;
        while i < items {
            let n = burst.min(items - i);
            for (k, slot) in buf[..n as usize].iter_mut().enumerate() {
                *slot = i + k as u64;
            }
            q.push_slice(&buf[..n as usize]);
            let mut got = 0u64;
            while got < n {
                let rs = q.read_slice((n - got) as usize).expect("pushed above");
                got += rs.len() as u64;
                sum = sum.wrapping_add(rs.as_slice().iter().sum::<u64>());
            }
            i += n;
        }
        std::hint::black_box(sum);
    });
}

/// Owner-only traffic that builds a long segment chain first and then
/// drains it: every `seg_cap` pops is a segment transition (lock-free
/// chain advance plus the periodic recycling probe).
fn owner_cross_segment(rt: &Runtime, seg_cap: usize, items: u64) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        for v in 0..items {
            q.push(v);
        }
        let mut sum = 0u64;
        for _ in 0..items {
            sum = sum.wrapping_add(q.pop());
        }
        std::hint::black_box(sum);
    });
}

/// The same cross-segment traffic through the batched API: this is the
/// per-op cost comparison free of producer/consumer scheduling noise.
fn owner_cross_segment_batched(rt: &Runtime, seg_cap: usize, items: u64) {
    rt.scope(|s| {
        let q = Hyperqueue::<u64>::with_segment_capacity(s, seg_cap);
        q.push_iter(0..items);
        let mut sum = 0u64;
        q.for_each_batch(seg_cap, |vals| {
            for &v in vals {
                sum = sum.wrapping_add(v);
            }
        });
        assert_eq!(sum, items * (items - 1) / 2);
    });
}

fn bench_queues(c: &mut Criterion) {
    let mut g = c.benchmark_group("spsc_throughput");
    g.throughput(Throughput::Elements(ITEMS));
    g.sample_size(10);
    let rt = Runtime::with_workers(2);
    g.bench_function(BenchmarkId::new("hyperqueue", 1024), |b| {
        b.iter(|| hyperqueue_pair(&rt, 1024))
    });
    g.bench_function(BenchmarkId::new("hyperqueue_batched", 1024), |b| {
        b.iter(|| hyperqueue_pair_batched(&rt, 1024))
    });
    g.bench_function(BenchmarkId::new("lamport_spsc", 1024), |b| {
        b.iter(|| spsc_pair(1024))
    });
    g.bench_function(BenchmarkId::new("mpsc_bounded", 1024), |b| {
        b.iter(|| mpsc_pair(1024))
    });
    g.finish();
}

fn bench_owner_ops(c: &mut Criterion) {
    // Owner-only push+pop (no concurrency): the raw segment fast path.
    let mut g = c.benchmark_group("owner_ops");
    g.throughput(Throughput::Elements(100_000));
    g.sample_size(20);
    let rt = Runtime::with_workers(1);
    g.bench_function("steady_state_100k", |b| {
        b.iter(|| owner_steady_state(&rt, 4096, 100_000))
    });
    g.bench_function("steady_state_batched_100k", |b| {
        b.iter(|| owner_steady_state_batched(&rt, 4096, 100_000))
    });
    g.bench_function("cross_segment_100k", |b| {
        b.iter(|| owner_cross_segment(&rt, 256, 100_000))
    });
    g.bench_function("cross_segment_batched_100k", |b| {
        b.iter(|| owner_cross_segment_batched(&rt, 256, 100_000))
    });
    g.finish();
}

criterion_group!(benches, bench_queues, bench_owner_ops);

// ---------------------------------------------------------------------------
// BENCH_queue_ops.json: the machine-readable perf record CI archives.
// ---------------------------------------------------------------------------

/// Median ns per transported element over `reps` runs of `f`, where each
/// run moves `ops` values through the queue (one "op" = one value pushed
/// and popped — the same accounting for every row of the JSON).
fn median_ns_per_op(reps: usize, ops: u64, mut f: impl FnMut()) -> f64 {
    let mut times: Vec<f64> = (0..reps.max(1))
        .map(|_| {
            let (d, ()) = bench::time(&mut f);
            d.as_nanos() as f64 / ops as f64
        })
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    times[times.len() / 2]
}

fn emit_json() {
    const SEG_CAP: usize = 256;
    let smoke = std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false);
    let reps = if smoke { 1 } else { 5 };
    let rt = Runtime::with_workers(2);
    let rt1 = Runtime::with_workers(1);

    // The 2×2 matrix: {per-item, batched} × {steady-state, cross-segment},
    // all uncontended (owner-only) so the per-op cost is what's measured,
    // not producer/consumer rendezvous noise. Steady state = ring wraps in
    // place (the paper's zero-allocation regime); cross-segment = a long
    // published chain is built and then drained (segment transitions,
    // chain advances, recycling).
    let steady_item = median_ns_per_op(reps, ITEMS, || owner_steady_state(&rt1, SEG_CAP, ITEMS));
    let steady_batch = median_ns_per_op(reps, ITEMS, || {
        owner_steady_state_batched(&rt1, SEG_CAP, ITEMS)
    });
    let cross_item = median_ns_per_op(reps, 100_000, || {
        owner_cross_segment(&rt1, SEG_CAP, 100_000)
    });
    let cross_batch = median_ns_per_op(reps, 100_000, || {
        owner_cross_segment_batched(&rt1, SEG_CAP, 100_000)
    });
    // Concurrent pair, for context (dominated by producer/consumer
    // rendezvous, so noisier run to run).
    let spsc_item = median_ns_per_op(reps, ITEMS, || hyperqueue_pair(&rt, SEG_CAP));
    let spsc_batch = median_ns_per_op(reps, ITEMS, || hyperqueue_pair_batched(&rt, SEG_CAP));

    // machine_cores lets the bench-check gate refuse to compare this
    // record against a baseline from a different runner class.
    let json = format!(
        "{{\n  \"bench\": \"queue_ops\",\n  \"segment_capacity\": {SEG_CAP},\n  \
         \"items\": {ITEMS},\n  \"reps\": {reps},\n  \
         \"machine_cores\": {},\n  \"median_ns_per_op\": {{\n    \
         \"steady_state_per_item\": {steady_item:.2},\n    \
         \"steady_state_batched\": {steady_batch:.2},\n    \
         \"cross_segment_per_item\": {cross_item:.2},\n    \
         \"cross_segment_batched\": {cross_batch:.2},\n    \
         \"spsc_per_item\": {spsc_item:.2},\n    \"spsc_batched\": {spsc_batch:.2}\n  }},\n  \
         \"batched_speedup_vs_per_item\": {:.2},\n  \
         \"batched_cross_segment_speedup\": {:.2},\n  \
         \"batched_spsc_speedup\": {:.2}\n}}\n",
        bench::machine_cores(),
        steady_item / steady_batch,
        cross_item / cross_batch,
        spsc_item / spsc_batch
    );
    std::fs::write("BENCH_queue_ops.json", &json).expect("write BENCH_queue_ops.json");
    println!("\nBENCH_queue_ops.json:\n{json}");
}

fn main() {
    benches();
    emit_json();
}
