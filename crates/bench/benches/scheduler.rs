//! Microbenchmarks of the swan runtime: spawn/sync overhead, dataflow
//! dependence overhead, and fork-join scaling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use swan::{Runtime, Scope, Versioned};

fn bench_spawn_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("spawn_sync");
    g.sample_size(10);
    for workers in [1usize, 4] {
        let rt = Runtime::with_workers(workers);
        g.throughput(Throughput::Elements(10_000));
        g.bench_with_input(
            BenchmarkId::new("empty_tasks_10k", workers),
            &rt,
            |b, rt| {
                b.iter(|| {
                    rt.scope(|s| {
                        for _ in 0..10_000 {
                            s.spawn((), |_, ()| {});
                        }
                    });
                })
            },
        );
    }
    g.finish();
}

fn bench_versioned_chain(c: &mut Criterion) {
    let mut g = c.benchmark_group("dataflow");
    g.sample_size(10);
    g.throughput(Throughput::Elements(5_000));
    let rt = Runtime::with_workers(4);
    g.bench_function("inout_chain_5k", |b| {
        b.iter(|| {
            let v: Versioned<u64> = Versioned::new(0);
            rt.scope(|s| {
                for _ in 0..5_000 {
                    s.spawn((v.update(),), |_, (mut g,)| *g += 1);
                }
            });
            assert_eq!(v.read_latest(), 5_000);
        })
    });
    g.finish();
}

fn fib<'s>(s: &Scope<'s>, n: u64, out: &'s std::sync::atomic::AtomicU64) {
    if n < 12 {
        // Serial cutoff: keep leaf tasks coarse.
        out.fetch_add(fib_serial(n), std::sync::atomic::Ordering::Relaxed);
        return;
    }
    s.spawn((), move |s, ()| fib(s, n - 1, out));
    fib(s, n - 2, out);
}

fn fib_serial(n: u64) -> u64 {
    if n < 2 {
        n
    } else {
        fib_serial(n - 1) + fib_serial(n - 2)
    }
}

fn bench_fork_join(c: &mut Criterion) {
    let mut g = c.benchmark_group("fork_join");
    g.sample_size(10);
    for workers in [1usize, 4, 8] {
        let rt = Runtime::with_workers(workers);
        g.bench_with_input(BenchmarkId::new("fib_26", workers), &rt, |b, rt| {
            b.iter(|| {
                let out = std::sync::atomic::AtomicU64::new(0);
                rt.scope(|s| fib(s, 26, &out));
                assert_eq!(out.load(std::sync::atomic::Ordering::Relaxed), 121_393);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_spawn_overhead,
    bench_versioned_chain,
    bench_fork_join
);
criterion_main!(benches);
