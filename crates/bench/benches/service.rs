//! Service-runtime benchmark: thousands of small jobs against a
//! persistent compiled graph.
//!
//! Besides the criterion table (single warm-job latency), this harness
//! writes `BENCH_service.json`: closed-loop throughput and p50/p95/p99
//! job latency for the wordcount and logstream-digest services, plus the
//! steady-state segment-allocation count (zero on a warm graph — the
//! service layer's acceptance criterion). The `median_us` block is what
//! CI's `bench-check` gate diffs against `crates/bench/baselines/`.

use std::sync::Arc;

use criterion::{criterion_group, Criterion};
use pipelines::Admission;
use swan::Runtime;
use workloads::service::{
    build_wordcount_service, job_lines, run_logstream_service, run_wordcount_service,
    wordcount_serial, ServiceReport, ServiceWorkloadConfig,
};

fn smoke() -> bool {
    std::env::var("BENCH_SMOKE")
        .map(|v| v == "1")
        .unwrap_or(false)
}

fn sized_config() -> ServiceWorkloadConfig {
    ServiceWorkloadConfig::bench(if smoke() { 150 } else { 2_000 })
}

fn bench_service(c: &mut Criterion) {
    let cfg = sized_config();
    let rt = Arc::new(Runtime::with_workers(4));
    let graph = build_wordcount_service(Arc::clone(&rt), &cfg);
    graph
        .submit(job_lines(&cfg, 0), Admission::Unbounded)
        .expect_accepted()
        .join(); // instantiate edges
    graph.prewarm(cfg.prewarm_depth());
    let lines = job_lines(&cfg, 1);
    let expect = wordcount_serial(&lines);
    let mut g = c.benchmark_group("service");
    g.sample_size(10);
    g.bench_function("wordcount_warm_job", |b| {
        b.iter(|| {
            let out = graph
                .submit(lines.clone(), Admission::Unbounded)
                .expect_accepted()
                .join();
            assert_eq!(out.len(), expect.len());
            out
        })
    });
    g.finish();
}

criterion_group!(benches, bench_service);

// ---------------------------------------------------------------------------
// BENCH_service.json: the machine-readable perf record CI archives and
// gates (bench-check diffs the `median_us` block against the baseline).
// ---------------------------------------------------------------------------

fn report_block(name: &str, r: &ServiceReport) -> String {
    format!(
        "  \"{name}\": {{\n    \"jobs_per_sec\": {:.1},\n    \"p95_us\": {:.1},\n    \
         \"p99_us\": {:.1},\n    \"max_us\": {:.1},\n    \
         \"steady_state_segment_allocs\": {},\n    \
         \"admission_high_water\": {}\n  }}",
        r.throughput_jobs_per_sec,
        r.p95_us,
        r.p99_us,
        r.max_us,
        r.steady_segment_allocs,
        r.admission.high_water_in_flight,
    )
}

fn emit_json() {
    let cfg = sized_config();
    let workers = 4usize;
    let rt = Arc::new(Runtime::with_workers(workers));
    // Each run verifies every job's output against its serial elision
    // before the numbers are recorded (the checks live in the harness).
    let wc = run_wordcount_service(Arc::clone(&rt), &cfg);
    let ls = run_logstream_service(Arc::clone(&rt), &cfg);

    let json = format!(
        "{{\n  \"bench\": \"service\",\n  \"jobs\": {},\n  \"job_lines\": {},\n  \
         \"degree\": {},\n  \"workers\": {workers},\n  \"machine_cores\": {},\n  \
         \"max_in_flight\": {},\n  \"clients\": {},\n  \
         \"median_us\": {{\n    \"wordcount_p50\": {:.1},\n    \
         \"logstream_p50\": {:.1}\n  }},\n{},\n{}\n}}\n",
        cfg.jobs,
        cfg.job_lines,
        cfg.degree,
        bench::machine_cores(),
        cfg.max_in_flight,
        cfg.clients,
        wc.p50_us,
        ls.p50_us,
        report_block("wordcount", &wc),
        report_block("logstream", &ls),
    );
    std::fs::write("BENCH_service.json", &json).expect("write BENCH_service.json");
    println!("\nBENCH_service.json:\n{json}");
}

fn main() {
    benches();
    emit_json();
}
