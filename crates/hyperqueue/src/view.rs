//! Views and the split/reduce algebra (paper §3.3).
//!
//! A *view* is a window onto a linked list of queue segments, written
//! `(h, t)` for head and tail pointers. Pointers are **local** (they
//! address a segment and may be dereferenced by the view's owner) or
//! **non-local** (the segment at this end is shared with exactly one other
//! view; represented in the paper by null, here by a paired unique id so
//! the pairing discipline can be *checked*). The distinguished **empty
//! view** ε contains no pointers at all — it is distinct from a shared view
//! `(pNL, qNL)`.
//!
//! Two operations exist:
//!
//! * `split((s, s)) = ((s, pNL), (pNL, s))` — carves a head-only and a
//!   tail-only view out of a local view, introducing a fresh non-local
//!   pair. Unique to hyperqueues: it makes the head of a fresh list
//!   reachable by the consumer before the producer finishes (§3.3, §4.1).
//! * `reduce((h1, t1), (h2, t2)) = (h1, t2)` — concatenates two views in
//!   program order. If `t1`/`h2` are local, the underlying segments are
//!   physically linked (`s1.next = s2`); if non-local, they must be the two
//!   halves of one split pair and the segments are already linked.

use std::ptr::NonNull;

use crate::segment::Segment;

/// One end of a view.
pub(crate) enum Ptr<T> {
    /// No pointer — only valid in the empty view ε.
    Nil,
    /// A dereferenceable pointer to a segment.
    Local(NonNull<Segment<T>>),
    /// A shared end; the id pairs it with its partner view.
    NonLocal(u64),
}

impl<T> Clone for Ptr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Ptr<T> {}

impl<T> PartialEq for Ptr<T> {
    fn eq(&self, other: &Self) -> bool {
        match (self, other) {
            (Ptr::Nil, Ptr::Nil) => true,
            (Ptr::Local(a), Ptr::Local(b)) => a == b,
            (Ptr::NonLocal(a), Ptr::NonLocal(b)) => a == b,
            _ => false,
        }
    }
}
impl<T> Eq for Ptr<T> {}

impl<T> std::fmt::Debug for Ptr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Ptr::Nil => write!(f, "∅"),
            Ptr::Local(p) => write!(f, "L({:p})", p.as_ptr()),
            Ptr::NonLocal(id) => write!(f, "NL({id})"),
        }
    }
}

impl<T> Ptr<T> {
    /// True for `Local`.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn is_local(&self) -> bool {
        matches!(self, Ptr::Local(_))
    }

    /// The segment pointer, if local.
    pub(crate) fn as_local(&self) -> Option<NonNull<Segment<T>>> {
        match self {
            Ptr::Local(p) => Some(*p),
            _ => None,
        }
    }
}

/// A view: ε or a (head, tail) pair. See module docs.
pub(crate) struct View<T> {
    pub(crate) head: Ptr<T>,
    pub(crate) tail: Ptr<T>,
}

impl<T> Clone for View<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for View<T> {}

impl<T> PartialEq for View<T> {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.tail == other.tail
    }
}
impl<T> Eq for View<T> {}

impl<T> std::fmt::Debug for View<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_empty() {
            write!(f, "ε")
        } else {
            write!(f, "({:?}, {:?})", self.head, self.tail)
        }
    }
}

impl<T> View<T> {
    /// The empty view ε.
    pub(crate) const EMPTY: View<T> = View {
        head: Ptr::Nil,
        tail: Ptr::Nil,
    };

    /// The local view `(s, s)` on a single segment.
    pub(crate) fn local(seg: NonNull<Segment<T>>) -> Self {
        View {
            head: Ptr::Local(seg),
            tail: Ptr::Local(seg),
        }
    }

    /// True for ε.
    pub(crate) fn is_empty(&self) -> bool {
        debug_assert_eq!(
            matches!(self.head, Ptr::Nil),
            matches!(self.tail, Ptr::Nil),
            "half-empty view: {self:?}"
        );
        matches!(self.head, Ptr::Nil)
    }

    /// Takes the view out, leaving ε.
    pub(crate) fn take(&mut self) -> View<T> {
        std::mem::replace(self, View::EMPTY)
    }

    /// `split((h, t), p) = ((h, pNL), (pNL, t))` with `pNL` fresh.
    ///
    /// The paper defines split on `(s, s)`; the straightforward
    /// generalization to any non-empty view is used nowhere else but keeps
    /// the algebra total.
    pub(crate) fn split(self, nonlocal_id: u64) -> (View<T>, View<T>) {
        debug_assert!(!self.is_empty(), "split(ε) is undefined");
        (
            View {
                head: self.head,
                tail: Ptr::NonLocal(nonlocal_id),
            },
            View {
                head: Ptr::NonLocal(nonlocal_id),
                tail: self.tail,
            },
        )
    }

    /// `reduce(a, b)`: concatenates `b` after `a` (program order),
    /// physically linking segments when both boundary pointers are local.
    ///
    /// # Safety
    /// If `a.tail` and `b.head` are local, both segments must be alive and
    /// the caller must hold the queue lock (the link mutates `s1.next`).
    pub(crate) unsafe fn reduce(a: View<T>, b: View<T>) -> View<T> {
        if a.is_empty() {
            return b;
        }
        if b.is_empty() {
            return a;
        }
        match (a.tail, b.head) {
            (Ptr::Local(s1), Ptr::Local(s2)) => {
                debug_assert_ne!(s1, s2, "reducing a view with itself");
                // SAFETY: caller guarantees liveness + exclusion.
                unsafe { s1.as_ref().set_next(s2.as_ptr()) };
            }
            (Ptr::NonLocal(x), Ptr::NonLocal(y)) => {
                // The two halves of one split pair meet again; the segments
                // on either side are already linked.
                assert_eq!(
                    x, y,
                    "non-local pointers must match between successive views (§3.3)"
                );
            }
            (t, h) => {
                unreachable!("mixed reduce boundary: tail={t:?} head={h:?} cannot occur (§3.3)")
            }
        }
        View {
            head: a.head,
            tail: b.tail,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg() -> NonNull<Segment<u32>> {
        NonNull::new(Box::into_raw(Segment::new(4))).unwrap()
    }

    unsafe fn free(p: NonNull<Segment<u32>>) {
        unsafe { drop(Box::from_raw(p.as_ptr())) };
    }

    #[test]
    fn empty_view_identity_under_reduce() {
        let s = seg();
        let v = View::local(s);
        unsafe {
            assert_eq!(View::reduce(View::EMPTY, v), v);
            assert_eq!(View::reduce(v, View::EMPTY), v);
            let e: View<u32> = View::reduce(View::EMPTY, View::EMPTY);
            assert!(e.is_empty());
            free(s);
        }
    }

    #[test]
    fn split_produces_matching_pair() {
        let s = seg();
        let (head_only, tail_only) = View::local(s).split(7);
        assert_eq!(head_only.head, Ptr::Local(s));
        assert_eq!(head_only.tail, Ptr::NonLocal(7));
        assert_eq!(tail_only.head, Ptr::NonLocal(7));
        assert_eq!(tail_only.tail, Ptr::Local(s));
        // Reducing the pair is the inverse of split (§3.3 case 2).
        let merged = unsafe { View::reduce(head_only, tail_only) };
        assert_eq!(merged, View::local(s));
        unsafe { free(s) };
    }

    #[test]
    fn reduce_local_links_segments() {
        let s1 = seg();
        let s2 = seg();
        let merged = unsafe { View::reduce(View::local(s1), View::local(s2)) };
        assert_eq!(merged.head, Ptr::Local(s1));
        assert_eq!(merged.tail, Ptr::Local(s2));
        unsafe {
            assert_eq!(s1.as_ref().next(), s2.as_ptr(), "segments must be linked");
            assert!(s2.as_ref().next().is_null());
            free(s1);
            free(s2);
        }
    }

    #[test]
    #[should_panic(expected = "non-local pointers must match")]
    fn mismatched_nonlocals_panic() {
        let a: View<u32> = View {
            head: Ptr::NonLocal(1),
            tail: Ptr::NonLocal(2),
        };
        let b: View<u32> = View {
            head: Ptr::NonLocal(3),
            tail: Ptr::NonLocal(4),
        };
        let _ = unsafe { View::reduce(a, b) };
    }

    #[test]
    fn shared_view_is_not_empty() {
        // (qNL, rNL) is a shared view, distinct from ε (§3.3).
        let v: View<u32> = View {
            head: Ptr::NonLocal(1),
            tail: Ptr::NonLocal(2),
        };
        assert!(!v.is_empty());
    }

    #[test]
    fn reduce_keeps_outer_nonlocals() {
        // reduce((qNL, t1), (h2, rNL)) with t1/h2 local: result (qNL, rNL).
        let s1 = seg();
        let s2 = seg();
        let a = View {
            head: Ptr::NonLocal(9),
            tail: Ptr::Local(s1),
        };
        let b = View {
            head: Ptr::Local(s2),
            tail: Ptr::NonLocal(11),
        };
        let r = unsafe { View::reduce(a, b) };
        assert_eq!(r.head, Ptr::NonLocal(9));
        assert_eq!(r.tail, Ptr::NonLocal(11));
        unsafe {
            assert_eq!(s1.as_ref().next(), s2.as_ptr());
            free(s1);
            free(s2);
        }
    }

    #[test]
    fn take_leaves_empty() {
        let s = seg();
        let mut v = View::local(s);
        let t = v.take();
        assert!(v.is_empty());
        assert_eq!(t, View::local(s));
        unsafe { free(s) };
    }
}
