//! The public hyperqueue API: the queue object, access-mode dependency
//! arguments (`pushdep`/`popdep`/`pushpopdep`), and the per-task tokens
//! through which tasks push and pop.
//!
//! # Ownership & privilege model
//!
//! * [`Hyperqueue`] is created by (and stays with) one *owner* task, which
//!   holds both push and pop privileges (§4: "the top-level task always has
//!   both"). It is `!Send`: it cannot leave its task.
//! * Privileges are delegated to children by passing
//!   [`Hyperqueue::pushdep`]/[`popdep`](Hyperqueue::popdep)/
//!   [`pushpopdep`](Hyperqueue::pushpopdep) values as spawn dependencies;
//!   the child's body receives a [`PushToken`]/[`PopToken`]/
//!   [`PushPopToken`]. Tokens can delegate further, but only a *subset* of
//!   their privileges (§2.3) — enforced by which methods exist on each
//!   token type, and re-checked at run time.
//!
//! # Fast paths and slow paths
//!
//! Tokens perform pushes and pops through lock-free SPSC fast paths on a
//! cached segment. The queue mutex is confined to *structural* events:
//! producer segment transitions, consumer probes that must consult the
//! view table (blocking or deciding permanent emptiness), spawns and
//! completions. Two mechanisms keep the steady state entirely off the
//! mutex:
//!
//! * **Consumer chain advance**: when the cached head segment drains but
//!   already has a published `next` link, the consumer follows the link
//!   and keeps popping without touching [`QueueState`](crate::state) —
//!   legal because physical `next` links are created exactly when the
//!   linked data becomes visible to the consumer (invariant 6 plus the
//!   reduction discipline of §4.2). Lock-free advances are capped at
//!   [`MAX_LOCKFREE_ADVANCES`] so drained segments are still handed back
//!   to the recycling freelist at a bounded lag.
//! * **Notify suppression**: segment publications only wake the runtime
//!   when a worker is actually parked (see `swan::sched::Sleeper`);
//!   suppressed wakeups are counted in [`QueueStats::notifies_suppressed`].
//!
//! The batched entry points ([`Hyperqueue::push_iter`],
//! [`Hyperqueue::pop_batch`], [`Hyperqueue::for_each_batch`]) amortize
//! even the fast path's per-item atomics over whole slices.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use swan::{AcquireCtx, DepArg, Frame, HelpMode, RuntimeHandle, Scope};

use crate::pool::SegmentPool;
use crate::segment::Segment;
use crate::slice::{ReadSlice, WriteSlice};
use crate::state::{EmptyProbe, Mode, Probe, QueueState, QueueStats, POP_LABEL, PUSH_LABEL};

/// Default number of values per queue segment. §5.1 discusses tuning this;
/// [`Hyperqueue::with_segment_capacity`] sets it per queue.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 256;

/// Upper bound on consecutive lock-free consumer chain advances before the
/// slow path is forced once. Advancing lock-free leaves drained segments
/// unrecycled (only the locked `consumer_advance` may hand them to the
/// freelist, because only it can prove nobody still points at them), so
/// this cap bounds the un-recycled backlog to a constant number of
/// segments while keeping the amortized locking cost at one acquisition
/// per `MAX_LOCKFREE_ADVANCES` segment transitions.
const MAX_LOCKFREE_ADVANCES: u32 = 32;

/// Lock-free observability counters (see [`QueueStats`]). These live
/// outside the mutex precisely because the events they count must not
/// take it.
///
/// # Memory-ordering contract
///
/// Every increment and every read uses `Ordering::Relaxed` — deliberately
/// and uniformly. The counters are *statistics*, not synchronization: no
/// control flow depends on them, so they need no happens-before edges, and
/// anything stronger would put fence traffic on the paths whose
/// lock-freedom they exist to demonstrate. The consequence, documented on
/// [`QueueStats`]: each counter is individually monotonic and exact over
/// its own event stream, but a snapshot taken while producers/consumers
/// are running may lag concurrent fast-path events and may be mutually
/// inconsistent across counters. Quiesce first (`sync` on the
/// producing/consuming tasks) for exact totals.
#[derive(Default)]
pub(crate) struct FastStats {
    pub(crate) lock_acquisitions: AtomicU64,
    pub(crate) chain_advances: AtomicU64,
    pub(crate) notifies_suppressed: AtomicU64,
}

impl FastStats {
    /// One increment path for all three counters, so the ordering contract
    /// above is enforced in exactly one place.
    #[inline]
    pub(crate) fn incr(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads the three fast-path counters with the same (Relaxed) ordering
    /// the increments use; see the struct docs for what that means.
    pub(crate) fn snapshot(&self) -> (u64, u64, u64) {
        (
            self.lock_acquisitions.load(Ordering::Relaxed),
            self.chain_advances.load(Ordering::Relaxed),
            self.notifies_suppressed.load(Ordering::Relaxed),
        )
    }
}

pub(crate) struct QueueInner<T: Send + 'static> {
    pub(crate) id: u64,
    pub(crate) rt: RuntimeHandle,
    pub(crate) state: Mutex<QueueState<T>>,
    pub(crate) fast: FastStats,
    /// Number of tasks currently blocked in this queue's `pop`/`empty`
    /// slow paths. Data publications skip the runtime wakeup entirely
    /// while this is zero: a publication can only unblock a waiter of
    /// *this* queue, and a waiter that races past the check re-polls
    /// within one bounded park interval anyway (see `swan::sched::Sleeper`).
    pub(crate) waiters: AtomicUsize,
}

impl<T: Send + 'static> QueueInner<T> {
    /// Locks the queue state on behalf of a data-path operation,
    /// incrementing the observability counter.
    fn lock_counted(&self) -> parking_lot::MutexGuard<'_, QueueState<T>> {
        FastStats::incr(&self.fast.lock_acquisitions);
        self.state.lock()
    }
}

impl<T: Send + 'static> Drop for QueueInner<T> {
    fn drop(&mut self) {
        // The fast-path counters live here (outside the state mutex) and
        // die with this value: compose them with the state's counters and
        // hand the total to the shared pool before the state drops.
        let fast = self.fast.snapshot();
        self.state.get_mut().absorb_stats_into_pool(fast);
    }
}

/// Wakes the runtime after a publication — unless no consumer of this
/// queue is blocked, or no worker is parked at all. Suppressed wakeups
/// are counted.
#[inline]
pub(crate) fn notify_counted<T: Send + 'static>(inner: &QueueInner<T>) {
    if inner.waiters.load(Ordering::SeqCst) == 0 || !inner.rt.notify() {
        FastStats::incr(&inner.fast.notifies_suppressed);
    }
}

/// RAII registration of a blocked consumer (kept through panics — the
/// pop-on-permanently-empty path unwinds out of `block_until`).
struct WaiterGuard<'a>(&'a AtomicUsize);

impl<'a> WaiterGuard<'a> {
    fn register(counter: &'a AtomicUsize) -> Self {
        counter.fetch_add(1, Ordering::SeqCst);
        WaiterGuard(counter)
    }
}

impl Drop for WaiterGuard<'_> {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

type SegCache<T> = Option<NonNull<Segment<T>>>;

/// Consumer-side cache: the segment being drained plus the number of
/// lock-free chain advances taken since the last locked probe.
pub(crate) struct PopCache<T> {
    seg: SegCache<T>,
    advances: u32,
}

impl<T> Clone for PopCache<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PopCache<T> {}

impl<T> Default for PopCache<T> {
    fn default() -> Self {
        PopCache {
            seg: None,
            advances: 0,
        }
    }
}

// ---------------------------------------------------------------------------
// Shared op implementations (used by the owner object and all tokens).
// ---------------------------------------------------------------------------

#[inline]
fn push_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    value: T,
) {
    if let Some(seg) = cache {
        // SAFETY: token/view discipline makes us the unique producer of the
        // cached user-view tail segment.
        match unsafe { seg.as_ref().try_push(value) } {
            Ok(()) => {}
            Err(v) => push_slow(inner, frame, cache, v), // full → slow path
        }
    } else {
        push_slow(inner, frame, cache, value);
    }
}

#[cold]
#[inline(never)]
fn push_slow<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    value: T,
) {
    let seg = {
        let mut st = inner.lock_counted();
        // Over-provision: ask for a whole segment of room rather than one
        // slot, so the next ~capacity pushes stay on the lock-free fast
        // path instead of re-entering this slow path for the dregs of a
        // nearly-full tail.
        let room = st.segment_capacity();
        let seg = st.producer_segment(frame.id.0, room);
        // SAFETY: unique producer; `producer_segment` guarantees the room.
        unsafe {
            seg.as_ref()
                .try_push(value)
                .unwrap_or_else(|_| unreachable!("fresh segment has room"))
        };
        seg
    };
    *cache = Some(seg);
    // Segment transitions are rare; wake blocked consumers so freshly
    // linked data is noticed promptly (suppressed when nobody is parked).
    notify_counted(inner);
}

/// Commits one lock-free consumer step to `next` (the current segment's
/// published successor, Acquire-loaded by the caller). Returns `None`
/// without advancing when the budget is spent and the caller must take
/// the slow path. The caller must have re-checked the current segment for
/// data *after* its Acquire load of `next` — see the call sites.
#[inline]
fn chain_advance<T: Send + 'static>(
    inner: &QueueInner<T>,
    cache: &mut PopCache<T>,
    next: NonNull<Segment<T>>,
) -> Option<NonNull<Segment<T>>> {
    if cache.advances >= MAX_LOCKFREE_ADVANCES {
        return None;
    }
    cache.seg = Some(next);
    cache.advances += 1;
    FastStats::incr(&inner.fast.chain_advances);
    Some(next)
}

#[inline]
fn pop_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
) -> T {
    if let Some(mut seg) = cache.seg {
        loop {
            // SAFETY: delegation gate + rule 3 make us the unique consumer.
            if let Some(v) = unsafe { seg.as_ref().try_pop() } {
                return v;
            }
            // Drained. If a successor is published, the Acquire load of
            // `next` also makes every pre-link push visible — so re-check
            // before advancing past the segment (a value may have been
            // published between the failed pop above and the link).
            let Some(next) = NonNull::new(unsafe { seg.as_ref().next() }) else {
                break;
            };
            if let Some(v) = unsafe { seg.as_ref().try_pop() } {
                return v;
            }
            match chain_advance(inner, cache, next) {
                Some(n) => seg = n,
                None => break,
            }
        }
    }
    pop_slow(inner, frame, cache)
}

#[cold]
#[inline(never)]
fn pop_slow<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
) -> T {
    let mut result: Option<T> = None;
    let fid = frame.id.0;
    let _waiting = WaiterGuard::register(&inner.waiters);
    inner.rt.block_until(frame, HelpMode::Preceding, || {
        let mut st = inner.lock_counted();
        match st.pop_probe(fid) {
            Probe::Value(v, seg) => {
                result = Some(v);
                cache.seg = Some(seg);
                cache.advances = 0;
                true
            }
            Probe::Empty => panic!(
                "hyperqueue: pop() on a permanently empty queue is an error (§2.1); \
                 guard pops with empty()"
            ),
            Probe::Blocked => false,
        }
    });
    result.expect("block_until returns only once the condition holds")
}

#[inline]
fn empty_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
) -> bool {
    if let Some(mut seg) = cache.seg {
        loop {
            // SAFETY: unique consumer.
            if unsafe { !seg.as_ref().is_empty() } {
                return false;
            }
            let Some(next) = NonNull::new(unsafe { seg.as_ref().next() }) else {
                break;
            };
            // Re-check after the Acquire load of `next` (see pop_impl).
            if unsafe { !seg.as_ref().is_empty() } {
                return false;
            }
            match chain_advance(inner, cache, next) {
                Some(n) => seg = n,
                None => break,
            }
        }
    }
    empty_slow(inner, frame, cache)
}

#[cold]
#[inline(never)]
fn empty_slow<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
) -> bool {
    let mut result: Option<bool> = None;
    let fid = frame.id.0;
    let _waiting = WaiterGuard::register(&inner.waiters);
    inner.rt.block_until(frame, HelpMode::Preceding, || {
        let mut st = inner.lock_counted();
        match st.empty_probe(fid) {
            EmptyProbe::HasData(seg) => {
                cache.seg = Some(seg);
                cache.advances = 0;
                result = Some(false);
                true
            }
            EmptyProbe::Empty => {
                // The probe's consumer_advance may have recycled the
                // cached segment (drained and linked-past, e.g. when the
                // advance cap broke mid-chain before an empty reserved
                // tail). Drop the cache: the owner may push again after a
                // true-empty verdict, and a recycled segment must not be
                // read through a stale pointer.
                cache.seg = None;
                cache.advances = 0;
                result = Some(true);
                true
            }
            EmptyProbe::Blocked => false,
        }
    });
    result.expect("block_until returns only once the condition holds")
}

#[inline]
fn write_slice_impl<'t, T: Send + 'static>(
    inner: &'t Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    len: usize,
) -> WriteSlice<'t, T> {
    let len = len.max(1);
    // Fast path: the cached tail segment has *any* room — return a
    // (possibly shorter) slice over it without locking. This is the
    // paper's §5.2 contract: "the slice must fit inside a single segment;
    // if not, a shorter slice will be returned". Slices are additionally
    // clamped to the ring's contiguous span so staging writes need no
    // per-value index arithmetic.
    if let Some(seg) = cache {
        // SAFETY: unique producer of the cached segment.
        let avail = unsafe { seg.as_ref().contiguous_writable() };
        if avail >= 1 {
            // SAFETY: unique producer; `len.min(avail)` contiguous slots
            // are free.
            return unsafe { WriteSlice::new(inner, *seg, len.min(avail)) };
        }
    }
    write_slice_slow(inner, frame, cache, len)
}

#[cold]
#[inline(never)]
fn write_slice_slow<'t, T: Send + 'static>(
    inner: &'t Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    len: usize,
) -> WriteSlice<'t, T> {
    let mut st = inner.lock_counted();
    let len = len.min(st.segment_capacity());
    let seg = st.producer_segment(frame.id.0, len);
    drop(st);
    *cache = Some(seg);
    // `producer_segment` guarantees `len` free slots, but a reused
    // segment's tail may sit mid-ring: clamp to the contiguous span
    // (never zero when free ≥ 1).
    // SAFETY: unique producer of `seg`.
    let len = len.min(unsafe { seg.as_ref().contiguous_writable() });
    unsafe { WriteSlice::new(inner, seg, len) }
}

fn read_slice_impl<'t, T: Send + 'static>(
    inner: &'t Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
    max_len: usize,
) -> Option<ReadSlice<'t, T>> {
    if empty_impl(inner, frame, cache) {
        return None;
    }
    let seg = cache
        .seg
        .expect("empty_impl(false) caches the head segment");
    // SAFETY: unique consumer of the head segment.
    Some(unsafe { ReadSlice::new(inner, seg, max_len) })
}

/// Shared implementation of the batched push: drains `iter` through
/// write slices, publishing once per slice instead of once per value.
fn push_iter_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    iter: impl IntoIterator<Item = T>,
) -> u64 {
    let mut it = iter.into_iter();
    let mut pushed = 0u64;
    loop {
        let Some(first) = it.next() else {
            return pushed;
        };
        // Reserve generously: unwritten reservation slots are simply never
        // published, so over-asking costs nothing, while under-asking
        // costs an extra slice per segment.
        let want = it.size_hint().0.saturating_add(1).max(32);
        let mut ws = write_slice_impl(inner, frame, cache, want);
        ws.push(first);
        pushed += 1;
        while ws.remaining() > 0 {
            match it.next() {
                Some(v) => {
                    ws.push(v);
                    pushed += 1;
                }
                None => return pushed,
            }
        }
    }
}

/// Shared implementation of the copying batched push: memcpys `vals`
/// through write slices (for `Copy` payloads — the fastest producer path).
fn push_slice_impl<T: Send + Copy + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    mut vals: &[T],
) -> u64 {
    let total = vals.len() as u64;
    while !vals.is_empty() {
        let mut ws = write_slice_impl(inner, frame, cache, vals.len());
        let n = ws.extend_from_slice(vals);
        vals = &vals[n..];
    }
    total
}

/// Shared implementation of the batched pop: bulk-moves up to `max`
/// currently-visible values into `out` (appending), following published
/// chain links lock-free. Blocks only when nothing is visible yet;
/// returns the number appended — `0` iff the queue is permanently empty,
/// except that `max == 0` short-circuits to `0` without inspecting the
/// queue. Taking the destination by reference lets steady-state consumers
/// reuse one buffer instead of allocating a vector per round.
fn pop_batch_into_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
    max: usize,
    out: &mut Vec<T>,
) -> usize {
    if max == 0 {
        return 0;
    }
    let base = out.len();
    // Saturate: `usize::MAX` is a legitimate "take everything visible"
    // request, and the buffer may already hold values.
    let target = base.saturating_add(max);
    loop {
        if let Some(mut seg) = cache.seg {
            loop {
                // SAFETY: unique consumer.
                unsafe { seg.as_ref().pop_bulk(target - out.len(), out) };
                if out.len() == target {
                    return out.len() - base;
                }
                let Some(next) = NonNull::new(unsafe { seg.as_ref().next() }) else {
                    break;
                };
                // Re-check after the Acquire load of `next` (see pop_impl).
                unsafe { seg.as_ref().pop_bulk(target - out.len(), out) };
                if out.len() == target {
                    return out.len() - base;
                }
                match chain_advance(inner, cache, next) {
                    Some(n) => seg = n,
                    None => break,
                }
            }
        }
        if out.len() > base {
            return out.len() - base;
        }
        // Nothing visible: wait for data or the permanent-empty verdict.
        if empty_slow(inner, frame, cache) {
            return 0;
        }
    }
}

/// Owning wrapper over [`pop_batch_into_impl`]: empty vector iff the
/// queue is permanently empty.
fn pop_batch_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
    max: usize,
) -> Vec<T> {
    let mut out = Vec::new();
    pop_batch_into_impl(inner, frame, cache, max, &mut out);
    out
}

/// Shared implementation of the batched visitor: feeds `f` contiguous
/// slices until the queue is permanently empty. Returns the total number
/// of values consumed.
fn for_each_batch_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut PopCache<T>,
    max_batch: usize,
    mut f: impl FnMut(&[T]),
) -> u64 {
    let mut total = 0u64;
    while let Some(rs) = read_slice_impl(inner, frame, cache, max_batch) {
        f(rs.as_slice());
        total += rs.len() as u64;
    }
    total
}

fn spawn_transfer_and_release<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    ctx: &mut AcquireCtx<'_>,
    mode: Mode,
) {
    let parent = Arc::clone(ctx.parent_frame());
    let child = Arc::clone(ctx.frame());
    let pred = {
        let mut st = inner.state.lock();
        st.spawn_transfer(parent.id.0, &child, mode)
    };
    if let Some(p) = pred {
        // Rule 3: serialize pop-privileged siblings.
        ctx.add_predecessor(p);
    }
    if mode.has_push() {
        parent.label_incr((inner.id, PUSH_LABEL));
    }
    if mode.has_pop() {
        parent.label_incr((inner.id, POP_LABEL));
    }
    let inner2 = Arc::clone(inner);
    ctx.on_release(move || {
        {
            let mut st = inner2.state.lock();
            st.complete(child.id.0);
        }
        if mode.has_push() {
            parent.label_decr((inner2.id, PUSH_LABEL));
        }
        if mode.has_pop() {
            parent.label_decr((inner2.id, POP_LABEL));
        }
        // Completion may have linked new data into the consumer chain or
        // retired the last preceding producer: wake blocked waiters.
        notify_counted(&inner2);
    });
}

fn initial_push_cache<T: Send + 'static>(inner: &Arc<QueueInner<T>>, frame_id: u64) -> SegCache<T> {
    let st = inner.state.lock();
    st.user_tail_segment(frame_id)
}

// ---------------------------------------------------------------------------
// The queue object (owner side).
// ---------------------------------------------------------------------------

/// A deterministic single-producer/single-consumer queue abstraction for
/// pipeline parallelism (the paper's `hyperqueue<T>`).
///
/// ```
/// use swan::Runtime;
/// use hyperqueue::Hyperqueue;
///
/// let rt = Runtime::with_workers(4);
/// let mut out = Vec::new();
/// rt.scope(|s| {
///     let q = Hyperqueue::<u32>::new(s);
///     // Producer task runs concurrently with the owner's pops below.
///     s.spawn((q.pushdep(),), |_, (mut push,)| {
///         for i in 0..100 {
///             push.push(i);
///         }
///     });
///     while !q.empty() {
///         out.push(q.pop());
///     }
/// });
/// assert_eq!(out, (0..100).collect::<Vec<_>>());
/// ```
pub struct Hyperqueue<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    owner: Arc<Frame>,
    push_cache: Cell<SegCache<T>>,
    pop_cache: Cell<PopCache<T>>,
    /// The queue must not leave its owner task.
    _not_send: PhantomData<*mut ()>,
}

impl<T: Send + 'static> Hyperqueue<T> {
    /// Creates a hyperqueue owned by the current scope's task, with the
    /// default segment capacity.
    pub fn new(scope: &Scope<'_>) -> Self {
        Self::with_config(scope, DEFAULT_SEGMENT_CAPACITY, true)
    }

    /// Creates a hyperqueue with an explicit segment capacity (§5.1:
    /// programmers often know the right granularity).
    pub fn with_segment_capacity(scope: &Scope<'_>, capacity: usize) -> Self {
        Self::with_config(scope, capacity, true)
    }

    /// Creates a hyperqueue whose segments come from (and return to) a
    /// shared [`SegmentPool`] — the service-layer constructor: successive
    /// queue instantiations over one pool reuse each other's storage, so a
    /// warm pipeline pays **zero segment allocations per job** (see the
    /// pool docs and [`QueueStats::pool_draws`]). The segment capacity is
    /// the pool's.
    pub fn with_pool(scope: &Scope<'_>, pool: &Arc<SegmentPool<T>>) -> Self {
        Self::build(scope, pool.segment_capacity(), true, Some(Arc::clone(pool)))
    }

    /// Full-control constructor; `recycle` toggles the drained-segment
    /// freelist (kept switchable for the ablation benchmarks).
    pub fn with_config(scope: &Scope<'_>, capacity: usize, recycle: bool) -> Self {
        Self::build(scope, capacity, recycle, None)
    }

    fn build(
        scope: &Scope<'_>,
        capacity: usize,
        recycle: bool,
        pool: Option<Arc<SegmentPool<T>>>,
    ) -> Self {
        let owner = Arc::clone(scope.frame());
        let rt = scope.runtime();
        let state = QueueState::new(&owner, capacity.max(2), recycle, pool);
        let inner = Arc::new(QueueInner {
            id: swan::next_object_id(),
            rt,
            state: Mutex::new(state),
            fast: FastStats::default(),
            waiters: AtomicUsize::new(0),
        });
        let push_cache = initial_push_cache(&inner, owner.id.0);
        Hyperqueue {
            inner,
            owner,
            push_cache: Cell::new(push_cache),
            pop_cache: Cell::new(PopCache::default()),
            _not_send: PhantomData,
        }
    }

    /// The queue's object id (diagnostics; labels for selective sync).
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }

    /// `pushdep` access for a spawn: the child may only push.
    pub fn pushdep(&self) -> PushDep<T> {
        // The child takes the user view; our cached tail is no longer ours.
        self.push_cache.set(None);
        PushDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `popdep` access for a spawn: the child may only pop.
    pub fn popdep(&self) -> PopDep<T> {
        // Pop spawns also take the user view (§4.2) and the consumer role.
        self.push_cache.set(None);
        self.pop_cache.set(PopCache::default());
        PopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `pushpopdep` access for a spawn: the child may push and pop.
    pub fn pushpopdep(&self) -> PushPopDep<T> {
        self.push_cache.set(None);
        self.pop_cache.set(PopCache::default());
        PushPopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a value as the owner task.
    pub fn push(&self, value: T) {
        let mut cache = self.push_cache.get();
        push_impl(&self.inner, &self.owner, &mut cache, value);
        self.push_cache.set(cache);
    }

    /// Pushes every value of `iter`, in order, through write slices —
    /// one publication per slice rather than per value. Returns the
    /// number of values pushed.
    ///
    /// ```
    /// use swan::Runtime;
    /// use hyperqueue::Hyperqueue;
    ///
    /// let rt = Runtime::with_workers(2);
    /// rt.scope(|s| {
    ///     let q = Hyperqueue::<u32>::new(s);
    ///     assert_eq!(q.push_iter(0..10), 10);
    ///     assert_eq!(q.pop_batch(4), vec![0, 1, 2, 3]);
    ///     assert_eq!(q.pop_batch(100), (4..10).collect::<Vec<_>>());
    ///     assert!(q.pop_batch(8).is_empty()); // permanently empty
    /// });
    /// ```
    pub fn push_iter(&self, iter: impl IntoIterator<Item = T>) -> u64 {
        let mut cache = self.push_cache.get();
        let n = push_iter_impl(&self.inner, &self.owner, &mut cache, iter);
        self.push_cache.set(cache);
        n
    }

    /// Alias of [`Hyperqueue::push_iter`] mirroring `Extend::extend`.
    pub fn extend(&self, iter: impl IntoIterator<Item = T>) {
        self.push_iter(iter);
    }

    /// Copies every value of `vals` into the queue — one memcpy per write
    /// slice, the fastest producer path for `Copy` payloads. Returns the
    /// number of values pushed.
    pub fn push_slice(&self, vals: &[T]) -> u64
    where
        T: Copy,
    {
        let mut cache = self.push_cache.get();
        let n = push_slice_impl(&self.inner, &self.owner, &mut cache, vals);
        self.push_cache.set(cache);
        n
    }

    /// Pops the next value as the owner task. Blocks while the value is in
    /// flight; **panics** if the queue is permanently empty (guard with
    /// [`Hyperqueue::empty`]).
    pub fn pop(&self) -> T {
        let mut cache = self.pop_cache.get();
        let v = pop_impl(&self.inner, &self.owner, &mut cache);
        self.pop_cache.set(cache);
        v
    }

    /// Pops up to `max` currently-visible values in one batch (a single
    /// published head update per segment). Blocks only while *nothing* is
    /// visible; an empty vector means the queue is permanently empty, so
    /// this doubles as the loop condition:
    ///
    /// ```
    /// use swan::Runtime;
    /// use hyperqueue::Hyperqueue;
    ///
    /// let rt = Runtime::with_workers(2);
    /// let mut sum = 0u64;
    /// rt.scope(|s| {
    ///     let q = Hyperqueue::<u64>::with_segment_capacity(s, 64);
    ///     s.spawn((q.pushdep(),), |_, (mut p,)| {
    ///         p.push_iter(0..1000);
    ///     });
    ///     loop {
    ///         let batch = q.pop_batch(128);
    ///         if batch.is_empty() {
    ///             break; // permanently empty
    ///         }
    ///         sum += batch.iter().sum::<u64>();
    ///     }
    /// });
    /// assert_eq!(sum, 1000 * 999 / 2);
    /// ```
    pub fn pop_batch(&self, max: usize) -> Vec<T> {
        let mut cache = self.pop_cache.get();
        let v = pop_batch_impl(&self.inner, &self.owner, &mut cache, max);
        self.pop_cache.set(cache);
        v
    }

    /// Like [`Hyperqueue::pop_batch`] but appends into a caller-owned
    /// buffer, returning how many values were appended — the
    /// allocation-free loop shape for steady-state consumers. With
    /// `max ≥ 1` the return is `0` iff the queue is permanently empty;
    /// `max == 0` appends nothing and returns `0` without inspecting the
    /// queue, so pass a positive `max` when the result doubles as the
    /// loop condition:
    ///
    /// ```
    /// use swan::Runtime;
    /// use hyperqueue::Hyperqueue;
    ///
    /// let rt = Runtime::with_workers(2);
    /// rt.scope(|s| {
    ///     let q = Hyperqueue::<u32>::new(s);
    ///     q.push_iter(0..100);
    ///     let mut buf = Vec::with_capacity(32);
    ///     let mut total = 0;
    ///     while q.pop_batch_into(32, &mut buf) > 0 {
    ///         total += buf.drain(..).count();
    ///     }
    ///     assert_eq!(total, 100);
    /// });
    /// ```
    pub fn pop_batch_into(&self, max: usize, out: &mut Vec<T>) -> usize {
        let mut cache = self.pop_cache.get();
        let n = pop_batch_into_impl(&self.inner, &self.owner, &mut cache, max, out);
        self.pop_cache.set(cache);
        n
    }

    /// Drains the queue through read slices of up to `max_batch` values,
    /// invoking `f` on each contiguous batch until the queue is
    /// permanently empty. Values are dropped after `f` observes them.
    /// Returns the total number of values consumed.
    pub fn for_each_batch(&self, max_batch: usize, f: impl FnMut(&[T])) -> u64 {
        let mut cache = self.pop_cache.get();
        let n = for_each_batch_impl(&self.inner, &self.owner, &mut cache, max_batch, f);
        self.pop_cache.set(cache);
        n
    }

    /// The paper's `empty()`: `false` iff a value is available to this
    /// task; `true` iff no more values can ever become visible to it;
    /// blocks until one of the two is certain (§2.1).
    pub fn empty(&self) -> bool {
        let mut cache = self.pop_cache.get();
        let r = empty_impl(&self.inner, &self.owner, &mut cache);
        self.pop_cache.set(cache);
        r
    }

    /// Requests a write slice of up to `len` values (§5.2). The returned
    /// slice may be shorter than `len` when the current segment has less
    /// room ("if not, a shorter slice will be returned") — size loops with
    /// [`WriteSlice::capacity`], or use [`Hyperqueue::push_iter`].
    pub fn write_slice(&self, len: usize) -> WriteSlice<'_, T> {
        let mut cache = self.push_cache.get();
        let ws = write_slice_impl(&self.inner, &self.owner, &mut cache, len);
        self.push_cache.set(cache);
        ws
    }

    /// Requests a read slice of up to `max_len` currently-visible values;
    /// `None` iff the queue is permanently empty (§5.2).
    pub fn read_slice(&self, max_len: usize) -> Option<ReadSlice<'_, T>> {
        let mut cache = self.pop_cache.get();
        let rs = read_slice_impl(&self.inner, &self.owner, &mut cache, max_len);
        self.pop_cache.set(cache);
        rs
    }

    /// Selective sync over pop-privileged children (§5.5:
    /// `sync (popdep<T>) queue;`).
    pub fn sync_pop(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, POP_LABEL));
    }

    /// Selective sync over push-privileged children.
    pub fn sync_push(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, PUSH_LABEL));
    }

    /// Allocation/recycling counters plus the fast-path observability
    /// counters (lock acquisitions, lock-free chain advances, suppressed
    /// notifies). The first group is read under the queue mutex and is
    /// exact; the fast-path group is read with the same `Relaxed` ordering
    /// its increments use and is approximate while tasks are still
    /// running — see [`QueueStats`] for the precise contract.
    pub fn stats(&self) -> QueueStats {
        let mut s = self.inner.state.lock().stats;
        let (locks, advances, suppressed) = self.inner.fast.snapshot();
        s.lock_acquisitions = locks;
        s.chain_advances = advances;
        s.notifies_suppressed = suppressed;
        s
    }
}

// ---------------------------------------------------------------------------
// Dependency arguments.
// ---------------------------------------------------------------------------

/// Spawn argument granting push-only access (the paper's `pushdep<T>`).
pub struct PushDep<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
}

/// Spawn argument granting pop-only access (`popdep<T>`).
pub struct PopDep<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
}

/// Spawn argument granting combined access (`pushpopdep<T>`).
pub struct PushPopDep<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
}

impl<T: Send + 'static> DepArg for PushDep<T> {
    type Guard = PushToken<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> PushToken<T> {
        spawn_transfer_and_release(&self.inner, ctx, Mode::Push);
        let frame = Arc::clone(ctx.frame());
        let cache = initial_push_cache(&self.inner, frame.id.0);
        PushToken {
            inner: self.inner,
            frame,
            cache,
        }
    }
}

impl<T: Send + 'static> DepArg for PopDep<T> {
    type Guard = PopToken<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> PopToken<T> {
        spawn_transfer_and_release(&self.inner, ctx, Mode::Pop);
        let frame = Arc::clone(ctx.frame());
        PopToken {
            inner: self.inner,
            frame,
            cache: PopCache::default(),
        }
    }
}

impl<T: Send + 'static> DepArg for PushPopDep<T> {
    type Guard = PushPopToken<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> PushPopToken<T> {
        spawn_transfer_and_release(&self.inner, ctx, Mode::PushPop);
        let frame = Arc::clone(ctx.frame());
        let push_cache = initial_push_cache(&self.inner, frame.id.0);
        PushPopToken {
            inner: self.inner,
            frame,
            push_cache,
            pop_cache: PopCache::default(),
        }
    }
}

// ---------------------------------------------------------------------------
// Tokens (task-side capability objects).
// ---------------------------------------------------------------------------

/// Push capability held by a task spawned with [`PushDep`].
pub struct PushToken<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    frame: Arc<Frame>,
    cache: SegCache<T>,
}

// SAFETY: tokens move into exactly one task body (possibly on another
// thread). The cached raw segment pointer is owned by the queue arena,
// which the Arc keeps alive, and the view discipline makes this token the
// unique producer of that segment.
unsafe impl<T: Send + 'static> Send for PushToken<T> {}

impl<T: Send + 'static> PushToken<T> {
    /// Appends `value` to the queue in this task's position of the serial
    /// order.
    #[inline]
    pub fn push(&mut self, value: T) {
        push_impl(&self.inner, &self.frame, &mut self.cache, value);
    }

    /// Pushes every value of `iter` through write slices (see
    /// [`Hyperqueue::push_iter`]). Returns the number of values pushed.
    pub fn push_iter(&mut self, iter: impl IntoIterator<Item = T>) -> u64 {
        push_iter_impl(&self.inner, &self.frame, &mut self.cache, iter)
    }

    /// Copies `vals` into the queue (see [`Hyperqueue::push_slice`]).
    pub fn push_slice(&mut self, vals: &[T]) -> u64
    where
        T: Copy,
    {
        push_slice_impl(&self.inner, &self.frame, &mut self.cache, vals)
    }

    /// Delegates push privileges to a child spawn (recursive producers,
    /// Fig. 2/3).
    pub fn pushdep(&mut self) -> PushDep<T> {
        self.cache = None; // the child takes the user view
        PushDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests a write slice of up to `len` values (§5.2); may be
    /// shorter (see [`Hyperqueue::write_slice`]).
    pub fn write_slice(&mut self, len: usize) -> WriteSlice<'_, T> {
        write_slice_impl(&self.inner, &self.frame, &mut self.cache, len)
    }

    /// Selective sync over push-privileged children of the current task.
    pub fn sync_push(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, PUSH_LABEL));
    }

    /// The queue's object id.
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }
}

impl<T: Send + 'static> Extend<T> for PushToken<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.push_iter(iter);
    }
}

/// Pop capability held by a task spawned with [`PopDep`].
pub struct PopToken<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    frame: Arc<Frame>,
    cache: PopCache<T>,
}

// SAFETY: see PushToken.
unsafe impl<T: Send + 'static> Send for PopToken<T> {}

impl<T: Send + 'static> PopToken<T> {
    /// Removes and returns the next value in serial order. Blocks while
    /// the value is in flight; panics if permanently empty.
    #[inline]
    pub fn pop(&mut self) -> T {
        pop_impl(&self.inner, &self.frame, &mut self.cache)
    }

    /// Pops up to `max` values in one batch (see
    /// [`Hyperqueue::pop_batch`]); empty iff permanently empty.
    pub fn pop_batch(&mut self, max: usize) -> Vec<T> {
        pop_batch_impl(&self.inner, &self.frame, &mut self.cache, max)
    }

    /// Appends up to `max` values into `out` (see
    /// [`Hyperqueue::pop_batch_into`]); `0` iff permanently empty.
    pub fn pop_batch_into(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        pop_batch_into_impl(&self.inner, &self.frame, &mut self.cache, max, out)
    }

    /// Drains the queue through batches of up to `max_batch` values (see
    /// [`Hyperqueue::for_each_batch`]). Returns the number consumed.
    pub fn for_each_batch(&mut self, max_batch: usize, f: impl FnMut(&[T])) -> u64 {
        for_each_batch_impl(&self.inner, &self.frame, &mut self.cache, max_batch, f)
    }

    /// The paper's `empty()` (see [`Hyperqueue::empty`]).
    #[inline]
    pub fn empty(&mut self) -> bool {
        empty_impl(&self.inner, &self.frame, &mut self.cache)
    }

    /// Delegates pop privileges to a child spawn.
    pub fn popdep(&mut self) -> PopDep<T> {
        self.cache = PopCache::default(); // the child becomes the consumer
        PopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests a read slice of up to `max_len` values; `None` iff
    /// permanently empty (§5.2).
    pub fn read_slice(&mut self, max_len: usize) -> Option<ReadSlice<'_, T>> {
        read_slice_impl(&self.inner, &self.frame, &mut self.cache, max_len)
    }

    /// Selective sync over pop-privileged children of the current task.
    pub fn sync_pop(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, POP_LABEL));
    }

    /// The queue's object id.
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }
}

/// Combined capability held by a task spawned with [`PushPopDep`].
pub struct PushPopToken<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    frame: Arc<Frame>,
    push_cache: SegCache<T>,
    pop_cache: PopCache<T>,
}

// SAFETY: see PushToken.
unsafe impl<T: Send + 'static> Send for PushPopToken<T> {}

impl<T: Send + 'static> PushPopToken<T> {
    /// Pushes a value (see [`PushToken::push`]).
    #[inline]
    pub fn push(&mut self, value: T) {
        push_impl(&self.inner, &self.frame, &mut self.push_cache, value);
    }

    /// Pushes every value of `iter` (see [`Hyperqueue::push_iter`]).
    pub fn push_iter(&mut self, iter: impl IntoIterator<Item = T>) -> u64 {
        push_iter_impl(&self.inner, &self.frame, &mut self.push_cache, iter)
    }

    /// Copies `vals` into the queue (see [`Hyperqueue::push_slice`]).
    pub fn push_slice(&mut self, vals: &[T]) -> u64
    where
        T: Copy,
    {
        push_slice_impl(&self.inner, &self.frame, &mut self.push_cache, vals)
    }

    /// Pops a value (see [`PopToken::pop`]).
    #[inline]
    pub fn pop(&mut self) -> T {
        pop_impl(&self.inner, &self.frame, &mut self.pop_cache)
    }

    /// Pops up to `max` values in one batch (see
    /// [`Hyperqueue::pop_batch`]).
    pub fn pop_batch(&mut self, max: usize) -> Vec<T> {
        pop_batch_impl(&self.inner, &self.frame, &mut self.pop_cache, max)
    }

    /// Appends up to `max` values into `out` (see
    /// [`Hyperqueue::pop_batch_into`]); `0` iff permanently empty.
    pub fn pop_batch_into(&mut self, max: usize, out: &mut Vec<T>) -> usize {
        pop_batch_into_impl(&self.inner, &self.frame, &mut self.pop_cache, max, out)
    }

    /// Drains the queue through batches (see
    /// [`Hyperqueue::for_each_batch`]).
    pub fn for_each_batch(&mut self, max_batch: usize, f: impl FnMut(&[T])) -> u64 {
        for_each_batch_impl(&self.inner, &self.frame, &mut self.pop_cache, max_batch, f)
    }

    /// `empty()` (see [`Hyperqueue::empty`]).
    #[inline]
    pub fn empty(&mut self) -> bool {
        empty_impl(&self.inner, &self.frame, &mut self.pop_cache)
    }

    /// Delegates push privileges only.
    pub fn pushdep(&mut self) -> PushDep<T> {
        self.push_cache = None;
        PushDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Delegates pop privileges only.
    pub fn popdep(&mut self) -> PopDep<T> {
        self.push_cache = None;
        self.pop_cache = PopCache::default();
        PopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Delegates both privileges.
    pub fn pushpopdep(&mut self) -> PushPopDep<T> {
        self.push_cache = None;
        self.pop_cache = PopCache::default();
        PushPopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests a write slice (§5.2); may be shorter than requested.
    pub fn write_slice(&mut self, len: usize) -> WriteSlice<'_, T> {
        write_slice_impl(&self.inner, &self.frame, &mut self.push_cache, len)
    }

    /// Requests a read slice (§5.2).
    pub fn read_slice(&mut self, max_len: usize) -> Option<ReadSlice<'_, T>> {
        read_slice_impl(&self.inner, &self.frame, &mut self.pop_cache, max_len)
    }

    /// The queue's object id.
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }
}

impl<T: Send + 'static> Extend<T> for PushPopToken<T> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        self.push_iter(iter);
    }
}
