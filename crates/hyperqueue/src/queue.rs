//! The public hyperqueue API: the queue object, access-mode dependency
//! arguments (`pushdep`/`popdep`/`pushpopdep`), and the per-task tokens
//! through which tasks push and pop.
//!
//! # Ownership & privilege model
//!
//! * [`Hyperqueue`] is created by (and stays with) one *owner* task, which
//!   holds both push and pop privileges (§4: "the top-level task always has
//!   both"). It is `!Send`: it cannot leave its task.
//! * Privileges are delegated to children by passing
//!   [`Hyperqueue::pushdep`]/[`popdep`](Hyperqueue::popdep)/
//!   [`pushpopdep`](Hyperqueue::pushpopdep) values as spawn dependencies;
//!   the child's body receives a [`PushToken`]/[`PopToken`]/
//!   [`PushPopToken`]. Tokens can delegate further, but only a *subset* of
//!   their privileges (§2.3) — enforced by which methods exist on each
//!   token type, and re-checked at run time.
//! * Tokens perform pushes and pops through lock-free SPSC fast paths on a
//!   cached segment; the queue mutex is only taken on segment boundaries,
//!   spawns, completions and blocking.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::Arc;

use parking_lot::Mutex;
use swan::{AcquireCtx, DepArg, Frame, HelpMode, RuntimeHandle, Scope};

use crate::segment::Segment;
use crate::slice::{ReadSlice, WriteSlice};
use crate::state::{EmptyProbe, Mode, Probe, QueueState, QueueStats, POP_LABEL, PUSH_LABEL};

/// Default number of values per queue segment. §5.1 discusses tuning this;
/// [`Hyperqueue::with_segment_capacity`] sets it per queue.
pub const DEFAULT_SEGMENT_CAPACITY: usize = 256;

pub(crate) struct QueueInner<T: Send + 'static> {
    pub(crate) id: u64,
    pub(crate) rt: RuntimeHandle,
    pub(crate) state: Mutex<QueueState<T>>,
}

type SegCache<T> = Option<NonNull<Segment<T>>>;

// ---------------------------------------------------------------------------
// Shared op implementations (used by the owner object and all tokens).
// ---------------------------------------------------------------------------

fn push_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    value: T,
) {
    let mut value = value;
    if let Some(seg) = cache {
        // SAFETY: token/view discipline makes us the unique producer of the
        // cached user-view tail segment.
        match unsafe { seg.as_ref().try_push(value) } {
            Ok(()) => return,
            Err(v) => value = v, // full → slow path
        }
    }
    let seg = {
        let mut st = inner.state.lock();
        let seg = st.producer_segment(frame.id.0, 1);
        // SAFETY: as above; `producer_segment` guarantees one free slot.
        unsafe {
            seg.as_ref()
                .try_push(value)
                .unwrap_or_else(|_| unreachable!("fresh segment has room"))
        };
        seg
    };
    *cache = Some(seg);
    // Segment transitions are rare; wake blocked consumers so freshly
    // linked data is noticed promptly.
    inner.rt.notify();
}

fn pop_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
) -> T {
    if let Some(seg) = cache {
        // SAFETY: delegation gate + rule 3 make us the unique consumer.
        if let Some(v) = unsafe { seg.as_ref().try_pop() } {
            return v;
        }
    }
    let mut result: Option<T> = None;
    let fid = frame.id.0;
    inner.rt.block_until(frame, HelpMode::Preceding, || {
        let mut st = inner.state.lock();
        match st.pop_probe(fid) {
            Probe::Value(v, seg) => {
                result = Some(v);
                *cache = Some(seg);
                true
            }
            Probe::Empty => panic!(
                "hyperqueue: pop() on a permanently empty queue is an error (§2.1); \
                 guard pops with empty()"
            ),
            Probe::Blocked => false,
        }
    });
    result.expect("block_until returns only once the condition holds")
}

fn empty_impl<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
) -> bool {
    if let Some(seg) = cache {
        // SAFETY: unique consumer.
        if unsafe { !seg.as_ref().is_empty() } {
            return false;
        }
    }
    let mut result: Option<bool> = None;
    let fid = frame.id.0;
    inner.rt.block_until(frame, HelpMode::Preceding, || {
        let mut st = inner.state.lock();
        match st.empty_probe(fid) {
            EmptyProbe::HasData(seg) => {
                *cache = Some(seg);
                result = Some(false);
                true
            }
            EmptyProbe::Empty => {
                result = Some(true);
                true
            }
            EmptyProbe::Blocked => false,
        }
    });
    result.expect("block_until returns only once the condition holds")
}

fn write_slice_impl<'t, T: Send + 'static>(
    inner: &'t Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    len: usize,
) -> WriteSlice<'t, T> {
    let len = len.max(1);
    // Fast path: the cached tail segment already has room for the whole
    // request — no lock needed (the producer owns the tail index).
    if let Some(seg) = cache {
        // SAFETY: unique producer of the cached segment.
        let free = unsafe {
            let s = seg.as_ref();
            s.capacity() - s.len()
        };
        if free >= len {
            // SAFETY: unique producer; `len` slots are free.
            return unsafe { WriteSlice::new(inner, *seg, len) };
        }
    }
    let mut st = inner.state.lock();
    let len = len.min(st.segment_capacity());
    let seg = st.producer_segment(frame.id.0, len);
    drop(st);
    *cache = Some(seg);
    // SAFETY: unique producer of `seg`; `len` slots are free.
    unsafe { WriteSlice::new(inner, seg, len) }
}

fn read_slice_impl<'t, T: Send + 'static>(
    inner: &'t Arc<QueueInner<T>>,
    frame: &Arc<Frame>,
    cache: &mut SegCache<T>,
    max_len: usize,
) -> Option<ReadSlice<'t, T>> {
    if empty_impl(inner, frame, cache) {
        return None;
    }
    let seg = cache.expect("empty_impl(false) caches the head segment");
    // SAFETY: unique consumer of the head segment.
    Some(unsafe { ReadSlice::new(inner, seg, max_len) })
}

fn spawn_transfer_and_release<T: Send + 'static>(
    inner: &Arc<QueueInner<T>>,
    ctx: &mut AcquireCtx<'_>,
    mode: Mode,
) {
    let parent = Arc::clone(ctx.parent_frame());
    let child = Arc::clone(ctx.frame());
    let pred = {
        let mut st = inner.state.lock();
        st.spawn_transfer(parent.id.0, &child, mode)
    };
    if let Some(p) = pred {
        // Rule 3: serialize pop-privileged siblings.
        ctx.add_predecessor(p);
    }
    if mode.has_push() {
        parent.label_incr((inner.id, PUSH_LABEL));
    }
    if mode.has_pop() {
        parent.label_incr((inner.id, POP_LABEL));
    }
    let inner2 = Arc::clone(inner);
    ctx.on_release(move || {
        {
            let mut st = inner2.state.lock();
            st.complete(child.id.0);
        }
        if mode.has_push() {
            parent.label_decr((inner2.id, PUSH_LABEL));
        }
        if mode.has_pop() {
            parent.label_decr((inner2.id, POP_LABEL));
        }
        // Completion may have linked new data into the consumer chain or
        // retired the last preceding producer: wake blocked waiters.
        inner2.rt.notify();
    });
}

fn initial_push_cache<T: Send + 'static>(inner: &Arc<QueueInner<T>>, frame_id: u64) -> SegCache<T> {
    let st = inner.state.lock();
    st.user_tail_segment(frame_id)
}

// ---------------------------------------------------------------------------
// The queue object (owner side).
// ---------------------------------------------------------------------------

/// A deterministic single-producer/single-consumer queue abstraction for
/// pipeline parallelism (the paper's `hyperqueue<T>`).
///
/// ```
/// use swan::Runtime;
/// use hyperqueue::Hyperqueue;
///
/// let rt = Runtime::with_workers(4);
/// let mut out = Vec::new();
/// rt.scope(|s| {
///     let q = Hyperqueue::<u32>::new(s);
///     // Producer task runs concurrently with the owner's pops below.
///     s.spawn((q.pushdep(),), |_, (mut push,)| {
///         for i in 0..100 {
///             push.push(i);
///         }
///     });
///     while !q.empty() {
///         out.push(q.pop());
///     }
/// });
/// assert_eq!(out, (0..100).collect::<Vec<_>>());
/// ```
pub struct Hyperqueue<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    owner: Arc<Frame>,
    push_cache: Cell<SegCache<T>>,
    pop_cache: Cell<SegCache<T>>,
    /// The queue must not leave its owner task.
    _not_send: PhantomData<*mut ()>,
}

impl<T: Send + 'static> Hyperqueue<T> {
    /// Creates a hyperqueue owned by the current scope's task, with the
    /// default segment capacity.
    pub fn new(scope: &Scope<'_>) -> Self {
        Self::with_config(scope, DEFAULT_SEGMENT_CAPACITY, true)
    }

    /// Creates a hyperqueue with an explicit segment capacity (§5.1:
    /// programmers often know the right granularity).
    pub fn with_segment_capacity(scope: &Scope<'_>, capacity: usize) -> Self {
        Self::with_config(scope, capacity, true)
    }

    /// Full-control constructor; `recycle` toggles the drained-segment
    /// freelist (kept switchable for the ablation benchmarks).
    pub fn with_config(scope: &Scope<'_>, capacity: usize, recycle: bool) -> Self {
        let owner = Arc::clone(scope.frame());
        let rt = scope.runtime();
        let state = QueueState::new(&owner, capacity.max(2), recycle);
        let inner = Arc::new(QueueInner {
            id: swan::next_object_id(),
            rt,
            state: Mutex::new(state),
        });
        let push_cache = initial_push_cache(&inner, owner.id.0);
        Hyperqueue {
            inner,
            owner,
            push_cache: Cell::new(push_cache),
            pop_cache: Cell::new(None),
            _not_send: PhantomData,
        }
    }

    /// The queue's object id (diagnostics; labels for selective sync).
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }

    /// `pushdep` access for a spawn: the child may only push.
    pub fn pushdep(&self) -> PushDep<T> {
        // The child takes the user view; our cached tail is no longer ours.
        self.push_cache.set(None);
        PushDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `popdep` access for a spawn: the child may only pop.
    pub fn popdep(&self) -> PopDep<T> {
        // Pop spawns also take the user view (§4.2) and the consumer role.
        self.push_cache.set(None);
        self.pop_cache.set(None);
        PopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// `pushpopdep` access for a spawn: the child may push and pop.
    pub fn pushpopdep(&self) -> PushPopDep<T> {
        self.push_cache.set(None);
        self.pop_cache.set(None);
        PushPopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Pushes a value as the owner task.
    pub fn push(&self, value: T) {
        let mut cache = self.push_cache.get();
        push_impl(&self.inner, &self.owner, &mut cache, value);
        self.push_cache.set(cache);
    }

    /// Pops the next value as the owner task. Blocks while the value is in
    /// flight; **panics** if the queue is permanently empty (guard with
    /// [`Hyperqueue::empty`]).
    pub fn pop(&self) -> T {
        let mut cache = self.pop_cache.get();
        let v = pop_impl(&self.inner, &self.owner, &mut cache);
        self.pop_cache.set(cache);
        v
    }

    /// The paper's `empty()`: `false` iff a value is available to this
    /// task; `true` iff no more values can ever become visible to it;
    /// blocks until one of the two is certain (§2.1).
    pub fn empty(&self) -> bool {
        let mut cache = self.pop_cache.get();
        let r = empty_impl(&self.inner, &self.owner, &mut cache);
        self.pop_cache.set(cache);
        r
    }

    /// Requests a write slice of up to `len` values (§5.2).
    pub fn write_slice(&self, len: usize) -> WriteSlice<'_, T> {
        let mut cache = self.push_cache.get();
        let ws = write_slice_impl(&self.inner, &self.owner, &mut cache, len);
        self.push_cache.set(cache);
        ws
    }

    /// Requests a read slice of up to `max_len` currently-visible values;
    /// `None` iff the queue is permanently empty (§5.2).
    pub fn read_slice(&self, max_len: usize) -> Option<ReadSlice<'_, T>> {
        let mut cache = self.pop_cache.get();
        let rs = read_slice_impl(&self.inner, &self.owner, &mut cache, max_len);
        self.pop_cache.set(cache);
        rs
    }

    /// Selective sync over pop-privileged children (§5.5:
    /// `sync (popdep<T>) queue;`).
    pub fn sync_pop(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, POP_LABEL));
    }

    /// Selective sync over push-privileged children.
    pub fn sync_push(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, PUSH_LABEL));
    }

    /// Allocation/recycling counters.
    pub fn stats(&self) -> QueueStats {
        self.inner.state.lock().stats
    }
}

// ---------------------------------------------------------------------------
// Dependency arguments.
// ---------------------------------------------------------------------------

/// Spawn argument granting push-only access (the paper's `pushdep<T>`).
pub struct PushDep<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
}

/// Spawn argument granting pop-only access (`popdep<T>`).
pub struct PopDep<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
}

/// Spawn argument granting combined access (`pushpopdep<T>`).
pub struct PushPopDep<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
}

impl<T: Send + 'static> DepArg for PushDep<T> {
    type Guard = PushToken<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> PushToken<T> {
        spawn_transfer_and_release(&self.inner, ctx, Mode::Push);
        let frame = Arc::clone(ctx.frame());
        let cache = initial_push_cache(&self.inner, frame.id.0);
        PushToken {
            inner: self.inner,
            frame,
            cache,
        }
    }
}

impl<T: Send + 'static> DepArg for PopDep<T> {
    type Guard = PopToken<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> PopToken<T> {
        spawn_transfer_and_release(&self.inner, ctx, Mode::Pop);
        let frame = Arc::clone(ctx.frame());
        PopToken {
            inner: self.inner,
            frame,
            cache: None,
        }
    }
}

impl<T: Send + 'static> DepArg for PushPopDep<T> {
    type Guard = PushPopToken<T>;
    fn acquire(self, ctx: &mut AcquireCtx<'_>) -> PushPopToken<T> {
        spawn_transfer_and_release(&self.inner, ctx, Mode::PushPop);
        let frame = Arc::clone(ctx.frame());
        let push_cache = initial_push_cache(&self.inner, frame.id.0);
        PushPopToken {
            inner: self.inner,
            frame,
            push_cache,
            pop_cache: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Tokens (task-side capability objects).
// ---------------------------------------------------------------------------

/// Push capability held by a task spawned with [`PushDep`].
pub struct PushToken<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    frame: Arc<Frame>,
    cache: SegCache<T>,
}

// SAFETY: tokens move into exactly one task body (possibly on another
// thread). The cached raw segment pointer is owned by the queue arena,
// which the Arc keeps alive, and the view discipline makes this token the
// unique producer of that segment.
unsafe impl<T: Send + 'static> Send for PushToken<T> {}

impl<T: Send + 'static> PushToken<T> {
    /// Appends `value` to the queue in this task's position of the serial
    /// order.
    pub fn push(&mut self, value: T) {
        push_impl(&self.inner, &self.frame, &mut self.cache, value);
    }

    /// Delegates push privileges to a child spawn (recursive producers,
    /// Fig. 2/3).
    pub fn pushdep(&mut self) -> PushDep<T> {
        self.cache = None; // the child takes the user view
        PushDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests a write slice of up to `len` values (§5.2).
    pub fn write_slice(&mut self, len: usize) -> WriteSlice<'_, T> {
        write_slice_impl(&self.inner, &self.frame, &mut self.cache, len)
    }

    /// Selective sync over push-privileged children of the current task.
    pub fn sync_push(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, PUSH_LABEL));
    }

    /// The queue's object id.
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }
}

/// Pop capability held by a task spawned with [`PopDep`].
pub struct PopToken<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    frame: Arc<Frame>,
    cache: SegCache<T>,
}

// SAFETY: see PushToken.
unsafe impl<T: Send + 'static> Send for PopToken<T> {}

impl<T: Send + 'static> PopToken<T> {
    /// Removes and returns the next value in serial order. Blocks while
    /// the value is in flight; panics if permanently empty.
    pub fn pop(&mut self) -> T {
        pop_impl(&self.inner, &self.frame, &mut self.cache)
    }

    /// The paper's `empty()` (see [`Hyperqueue::empty`]).
    pub fn empty(&mut self) -> bool {
        empty_impl(&self.inner, &self.frame, &mut self.cache)
    }

    /// Delegates pop privileges to a child spawn.
    pub fn popdep(&mut self) -> PopDep<T> {
        self.cache = None; // the child becomes the consumer
        PopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests a read slice of up to `max_len` values; `None` iff
    /// permanently empty (§5.2).
    pub fn read_slice(&mut self, max_len: usize) -> Option<ReadSlice<'_, T>> {
        read_slice_impl(&self.inner, &self.frame, &mut self.cache, max_len)
    }

    /// Selective sync over pop-privileged children of the current task.
    pub fn sync_pop(&self, scope: &Scope<'_>) {
        scope.sync_label((self.inner.id, POP_LABEL));
    }

    /// The queue's object id.
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }
}

/// Combined capability held by a task spawned with [`PushPopDep`].
pub struct PushPopToken<T: Send + 'static> {
    inner: Arc<QueueInner<T>>,
    frame: Arc<Frame>,
    push_cache: SegCache<T>,
    pop_cache: SegCache<T>,
}

// SAFETY: see PushToken.
unsafe impl<T: Send + 'static> Send for PushPopToken<T> {}

impl<T: Send + 'static> PushPopToken<T> {
    /// Pushes a value (see [`PushToken::push`]).
    pub fn push(&mut self, value: T) {
        push_impl(&self.inner, &self.frame, &mut self.push_cache, value);
    }

    /// Pops a value (see [`PopToken::pop`]).
    pub fn pop(&mut self) -> T {
        pop_impl(&self.inner, &self.frame, &mut self.pop_cache)
    }

    /// `empty()` (see [`Hyperqueue::empty`]).
    pub fn empty(&mut self) -> bool {
        empty_impl(&self.inner, &self.frame, &mut self.pop_cache)
    }

    /// Delegates push privileges only.
    pub fn pushdep(&mut self) -> PushDep<T> {
        self.push_cache = None;
        PushDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Delegates pop privileges only.
    pub fn popdep(&mut self) -> PopDep<T> {
        self.push_cache = None;
        self.pop_cache = None;
        PopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Delegates both privileges.
    pub fn pushpopdep(&mut self) -> PushPopDep<T> {
        self.push_cache = None;
        self.pop_cache = None;
        PushPopDep {
            inner: Arc::clone(&self.inner),
        }
    }

    /// Requests a write slice (§5.2).
    pub fn write_slice(&mut self, len: usize) -> WriteSlice<'_, T> {
        write_slice_impl(&self.inner, &self.frame, &mut self.push_cache, len)
    }

    /// Requests a read slice (§5.2).
    pub fn read_slice(&mut self, max_len: usize) -> Option<ReadSlice<'_, T>> {
        read_slice_impl(&self.inner, &self.frame, &mut self.pop_cache, max_len)
    }

    /// The queue's object id.
    pub fn object_id(&self) -> u64 {
        self.inner.id
    }
}
