//! Cross-queue segment pools: the storage-reuse layer of the service
//! runtime.
//!
//! A one-shot pipeline recycles drained segments through its queue's
//! private freelist and frees everything when the queue drops. A
//! *persistent* pipeline (see `pipelines::graph::CompiledGraph`) instead
//! instantiates fresh queues for every job — and without help, job N+1
//! would re-allocate every segment job N just freed. A [`SegmentPool`]
//! breaks that cycle: queues created with
//! [`Hyperqueue::with_pool`](crate::Hyperqueue::with_pool) draw their
//! segments from the pool and, when dropped, hand every segment they own
//! back to it (drained, reset, ready for reuse). After a warm-up job the
//! steady state is **zero segment allocations per job** — the service-layer
//! extension of the paper's zero-allocation steady state for a single
//! queue.
//!
//! Pools are `Send + Sync`: concurrent jobs may share one pool per graph
//! edge, and the segments of edge *k* circulate between the successive (or
//! concurrent) instantiations of that edge.

use std::ptr::NonNull;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::segment::Segment;
use crate::state::QueueStats;

/// Counters reported by [`SegmentPool::stats`]. `hits`/`misses`/`returned`
/// are monotonic; `available` is the instantaneous pool depth.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Capacity (values per segment) of every segment in this pool.
    pub segment_capacity: usize,
    /// Segments currently parked in the pool.
    pub available: u64,
    /// Allocation requests served from the pool (no heap traffic).
    pub hits: u64,
    /// Allocation requests the pool could not serve — each miss is one
    /// heap allocation somewhere downstream. A flat `misses` curve across
    /// jobs is the zero-allocation steady state.
    pub misses: u64,
    /// Segments handed back by dropped queues.
    pub returned: u64,
}

/// A shared pool of equally-sized segments (see module docs).
///
/// Created once per logical queue *slot* (e.g. per compiled-graph edge)
/// and passed to every [`Hyperqueue`](crate::Hyperqueue) instantiated for
/// that slot via [`with_pool`](crate::Hyperqueue::with_pool).
pub struct SegmentPool<T> {
    seg_cap: usize,
    free: Mutex<Vec<NonNull<Segment<T>>>>,
    hits: AtomicU64,
    misses: AtomicU64,
    returned: AtomicU64,
    /// Lifetime [`QueueStats`] totals absorbed from every retired queue
    /// that drew from this pool (a queue's own counters die with it, so
    /// the pool is where the service layer accumulates the history of
    /// its edge).
    retired: Mutex<QueueStats>,
}

// SAFETY: the raw segment pointers are owned by the pool while parked in
// `free` (nobody else holds a reference — queues hand them back only after
// draining and unlinking them), and `T: Send` lets the stored buffers move
// across threads.
unsafe impl<T: Send> Send for SegmentPool<T> {}
unsafe impl<T: Send> Sync for SegmentPool<T> {}

impl<T> SegmentPool<T> {
    /// Creates an empty pool of segments holding `segment_capacity` values
    /// each (min 2, like
    /// [`Hyperqueue::with_segment_capacity`](crate::Hyperqueue::with_segment_capacity)).
    pub fn new(segment_capacity: usize) -> Self {
        SegmentPool {
            seg_cap: segment_capacity.max(2),
            free: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            returned: AtomicU64::new(0),
            retired: Mutex::new(QueueStats::default()),
        }
    }

    /// Folds a retired queue's final counters into the pool's lifetime
    /// totals (called from the queue's drop path).
    pub(crate) fn absorb(&self, stats: &QueueStats) {
        self.retired.lock().merge(stats);
    }

    /// [`QueueStats`] totals accumulated across every queue that retired
    /// into this pool. On a compiled service graph this is the lifetime
    /// fast-path history of one edge (live queues report through
    /// [`crate::Hyperqueue::stats`] until they drop).
    pub fn retired_queue_stats(&self) -> QueueStats {
        *self.retired.lock()
    }

    /// Capacity (values per segment) of every segment in this pool.
    pub fn segment_capacity(&self) -> usize {
        self.seg_cap
    }

    /// Heap-allocates `n` segments straight into the pool, so even the
    /// first job runs allocation-free.
    pub fn preallocate(&self, n: usize) {
        let mut free = self.free.lock();
        for _ in 0..n {
            let seg =
                NonNull::new(Box::into_raw(Segment::<T>::new(self.seg_cap))).expect("Box nonnull");
            free.push(seg);
        }
    }

    /// Counter snapshot (see [`PoolStats`]).
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            segment_capacity: self.seg_cap,
            available: self.free.lock().len() as u64,
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            returned: self.returned.load(Ordering::Relaxed),
        }
    }

    /// Takes one reset segment, or records a miss (the caller will
    /// heap-allocate).
    pub(crate) fn take(&self) -> Option<NonNull<Segment<T>>> {
        let seg = self.free.lock().pop();
        match seg {
            Some(s) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(s)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Returns a batch of segments to the pool.
    ///
    /// # Safety
    /// Every segment must be drained, unlinked (`next == null`, indices
    /// reset — i.e. [`Segment::reset`] was just called) and unreachable
    /// from any task or view.
    pub(crate) unsafe fn put_all(&self, segs: impl IntoIterator<Item = NonNull<Segment<T>>>) {
        let mut free = self.free.lock();
        let before = free.len();
        free.extend(segs);
        let n = (free.len() - before) as u64;
        drop(free);
        self.returned.fetch_add(n, Ordering::Relaxed);
    }
}

impl<T> Drop for SegmentPool<T> {
    fn drop(&mut self) {
        // Parked segments are empty (reset before return), so freeing them
        // runs no value destructors.
        for seg in self.free.get_mut().drain(..) {
            // SAFETY: the pool exclusively owns parked segments.
            unsafe { drop(Box::from_raw(seg.as_ptr())) };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_from_empty_pool_is_a_miss() {
        let pool = SegmentPool::<u32>::new(8);
        assert!(pool.take().is_none());
        let s = pool.stats();
        assert_eq!((s.hits, s.misses, s.available), (0, 1, 0));
    }

    #[test]
    fn preallocate_then_take_hits() {
        let pool = SegmentPool::<u32>::new(8);
        pool.preallocate(3);
        assert_eq!(pool.stats().available, 3);
        let seg = pool.take().expect("preallocated");
        assert_eq!(pool.stats().hits, 1);
        // SAFETY: fresh segment from the pool, unreachable elsewhere.
        unsafe { pool.put_all([seg]) };
        let s = pool.stats();
        assert_eq!((s.available, s.returned), (3, 1));
    }

    #[test]
    fn capacity_is_clamped_to_two() {
        assert_eq!(SegmentPool::<u8>::new(0).segment_capacity(), 2);
    }
}
