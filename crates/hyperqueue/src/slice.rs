//! Queue slices (paper §5.2): batched, array-speed access to a segment.
//!
//! Instead of paying one synchronized index update per `push`/`pop`, a task
//! reserves a *slice* and then works on raw slots, publishing (write) or
//! consuming (read) once, when the slice drops. Slices never span segment
//! boundaries — that is the paper's contract ("the slice must fit inside a
//! single segment; if not, a shorter slice will be returned").

use std::marker::PhantomData;
use std::ptr::NonNull;
use std::sync::Arc;

use crate::queue::{notify_counted, QueueInner};
use crate::segment::Segment;

/// A reserved span of producer slots. Values added with
/// [`WriteSlice::push`] become visible to the consumer *when the slice is
/// dropped* (single publication).
pub struct WriteSlice<'a, T: Send + 'static> {
    seg: NonNull<Segment<T>>,
    /// Pointer to the reserved span's first slot; the whole reservation is
    /// contiguous (it never crosses the ring wrap point), so staging a
    /// value is a raw pointer write — no index arithmetic per value.
    base: *mut T,
    start: usize,
    cap: usize,
    written: usize,
    inner: &'a QueueInner<T>,
    /// Borrows the issuing token mutably: no other queue operation may run
    /// while the slice is live.
    _marker: PhantomData<&'a mut ()>,
}

impl<'a, T: Send + 'static> WriteSlice<'a, T> {
    /// # Safety
    /// `seg` must be the caller's user-view tail segment with at least
    /// `cap` free slots *contiguous in the ring* (no wrap within the
    /// span), and the caller must be its unique producer.
    pub(crate) unsafe fn new(
        inner: &'a Arc<QueueInner<T>>,
        seg: NonNull<Segment<T>>,
        cap: usize,
    ) -> Self {
        // SAFETY: unique producer per caller contract.
        let (start, base) = unsafe {
            let s = seg.as_ref();
            let start = s.raw_tail();
            (start, s.slot_ptr(start))
        };
        WriteSlice {
            seg,
            base,
            start,
            cap,
            written: 0,
            inner: inner.as_ref(),
            _marker: PhantomData,
        }
    }

    /// Number of slots reserved.
    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of values staged so far.
    pub fn len(&self) -> usize {
        self.written
    }

    /// True if nothing has been staged.
    pub fn is_empty(&self) -> bool {
        self.written == 0
    }

    /// Remaining room in the slice.
    pub fn remaining(&self) -> usize {
        self.cap - self.written
    }

    /// Stages a value. Panics if the reservation is exhausted.
    #[inline]
    pub fn push(&mut self, value: T) {
        assert!(
            self.written < self.cap,
            "write slice overflow: capacity {}",
            self.cap
        );
        // SAFETY: unique producer; the slot lies in the reserved span,
        // which is contiguous per the `new` contract.
        unsafe { self.base.add(self.written).write(value) };
        self.written += 1;
    }

    /// Stages as many leading values of `vals` as the reservation still
    /// holds, in one contiguous copy, returning how many were staged —
    /// the bulk analogue of [`WriteSlice::push`].
    pub fn extend_from_slice(&mut self, vals: &[T]) -> usize
    where
        T: Copy,
    {
        let n = vals.len().min(self.remaining());
        // SAFETY: unique producer; the destination span is reserved,
        // contiguous, and vacant (written values only grow forward).
        unsafe { std::ptr::copy_nonoverlapping(vals.as_ptr(), self.base.add(self.written), n) };
        self.written += n;
        n
    }
}

impl<T: Send + 'static> Drop for WriteSlice<'_, T> {
    fn drop(&mut self) {
        if self.written > 0 {
            // SAFETY: slots [start, start+written) were initialized above.
            unsafe { self.seg.as_ref().publish_tail(self.start + self.written) };
            // One wakeup per published batch — and none at all while no
            // worker is parked (the suppressed case is counted).
            notify_counted(self.inner);
        }
    }
}

/// A readable span at the head of the queue. All `len()` values are
/// consumed (popped and dropped) when the slice drops.
pub struct ReadSlice<'a, T: Send + 'static> {
    seg: NonNull<Segment<T>>,
    start: usize,
    len: usize,
    _marker: PhantomData<&'a mut ()>,
}

impl<'a, T: Send + 'static> ReadSlice<'a, T> {
    /// # Safety
    /// `seg` must be the queue-view head segment holding at least one
    /// visible value, and the caller must be its unique consumer.
    pub(crate) unsafe fn new(
        _inner: &'a Arc<QueueInner<T>>,
        seg: NonNull<Segment<T>>,
        max_len: usize,
    ) -> Self {
        // SAFETY: unique consumer per caller contract.
        let (start, len) = unsafe {
            let s = seg.as_ref();
            (s.raw_head(), s.contiguous_readable().min(max_len.max(1)))
        };
        debug_assert!(len >= 1, "ReadSlice on a segment without data");
        ReadSlice {
            seg,
            start,
            len,
            _marker: PhantomData,
        }
    }

    /// Number of values in the slice.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the slice is empty (never happens for slices returned by
    /// the queue API, but keeps clippy and generic code happy).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The values, as a contiguous array view.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: [start, start+len) is published and within one wrap (see
        // `contiguous_readable`); we are the unique consumer so the values
        // stay put while the slice is borrowed.
        unsafe { self.seg.as_ref().read_slice_raw(self.start, self.len) }
    }

    /// Iterates over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }
}

impl<T: Send + 'static> Drop for ReadSlice<'_, T> {
    fn drop(&mut self) {
        // SAFETY: unique consumer; exactly the viewed values are consumed.
        unsafe { self.seg.as_ref().consume_front(self.len) };
    }
}

impl<'s, T: Send + 'static> IntoIterator for &'s ReadSlice<'_, T> {
    type Item = &'s T;
    type IntoIter = std::slice::Iter<'s, T>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}
