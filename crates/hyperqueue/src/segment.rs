//! Queue segments: fixed-size single-producer/single-consumer circular
//! buffers, linkable into lists (paper §3.2).
//!
//! A segment is the unit of storage of a hyperqueue. At any moment a
//! segment is operated on by **at most one producer task and at most one
//! consumer task** (invariant 6 of §4.4): the producer owns the `tail`
//! index, the consumer owns the `head` index, and both are monotonic
//! counters addressing the buffer modulo its capacity (Lamport's classic
//! SPSC queue). A concurrent producer/consumer pair can therefore reuse a
//! single segment indefinitely — the zero-allocation steady state the paper
//! highlights.
//!
//! `next` links segments into lists; it is written at most once between
//! resets (either by the producer appending a continuation segment, or by a
//! view reduction concatenating two lists) and is read by the consumer to
//! advance.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::ptr;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};

use swan::util::CachePadded;

/// A fixed-capacity SPSC circular buffer with a link to the next segment.
pub(crate) struct Segment<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Consumer index (monotonic; slot = head % cap).
    head: CachePadded<AtomicUsize>,
    /// Producer index (monotonic; slot = tail % cap).
    tail: CachePadded<AtomicUsize>,
    /// Next segment in the list; null while this segment is a list tail.
    next: AtomicPtr<Segment<T>>,
}

// SAFETY: the buffer cells are accessed only through the SPSC protocol
// (producer writes slot `tail` before publishing `tail+1` with Release; the
// consumer reads slots below an Acquire-loaded `tail`), and the hyperqueue
// view machinery guarantees a single producer and single consumer per
// segment (invariant 6).
unsafe impl<T: Send> Send for Segment<T> {}
unsafe impl<T: Send> Sync for Segment<T> {}

impl<T> Segment<T> {
    /// Allocates an empty segment with capacity `cap` (min 2).
    pub(crate) fn new(cap: usize) -> Box<Self> {
        let cap = cap.max(2);
        let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect();
        Box::new(Self {
            buf,
            cap,
            head: CachePadded::new(AtomicUsize::new(0)),
            tail: CachePadded::new(AtomicUsize::new(0)),
            next: AtomicPtr::new(ptr::null_mut()),
        })
    }

    /// Buffer capacity.
    #[inline]
    pub(crate) fn capacity(&self) -> usize {
        self.cap
    }

    /// Number of values currently stored (racy but monotonic-consistent:
    /// producer sees an underestimate of pops, consumer of pushes).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        let tail = self.tail.load(Ordering::Acquire);
        let head = self.head.load(Ordering::Acquire);
        tail.saturating_sub(head)
    }

    /// True if the consumer would find nothing.
    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Producer-side push. Fails (returning the value) when full.
    ///
    /// # Safety
    /// Caller must be the unique producer of this segment.
    #[inline]
    pub(crate) unsafe fn try_push(&self, value: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed); // we own tail
        let head = self.head.load(Ordering::Acquire);
        if tail - head == self.cap {
            return Err(value);
        }
        // SAFETY: slot `tail % cap` is vacant: the consumer only reads
        // slots below `tail` (it Acquire-loads our Release store), and we
        // are the only producer.
        unsafe { (*self.buf[tail % self.cap].get()).write(value) };
        self.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Consumer-side pop. Returns `None` when currently empty.
    ///
    /// # Safety
    /// Caller must be the unique consumer of this segment.
    #[inline]
    pub(crate) unsafe fn try_pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed); // we own head
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: slot `head % cap` was initialized by the producer's write
        // that happens-before our Acquire load of `tail`; we are the only
        // consumer, so the slot is read exactly once.
        let value = unsafe { (*self.buf[head % self.cap].get()).assume_init_read() };
        self.head.store(head + 1, Ordering::Release);
        Some(value)
    }

    /// Peek at the front value without consuming it.
    ///
    /// # Safety
    /// Caller must be the unique consumer of this segment.
    #[allow(dead_code)]
    pub(crate) unsafe fn peek(&self) -> Option<&T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: as in try_pop; the reference is valid until the consumer
        // advances, which only the caller (unique consumer) can do.
        Some(unsafe { (*self.buf[head % self.cap].get()).assume_init_ref() })
    }

    /// The link to the next segment (null = list tail).
    #[inline]
    pub(crate) fn next(&self) -> *mut Segment<T> {
        self.next.load(Ordering::Acquire)
    }

    /// Consumer-side bulk pop: moves up to `max` values into `out` with a
    /// single published head update (one Release store for the whole
    /// batch, vs one per value with [`Segment::try_pop`]) and at most two
    /// contiguous copies (the span may wrap the ring once).
    /// Returns the number of values moved.
    ///
    /// # Safety
    /// Caller must be the unique consumer of this segment.
    pub(crate) unsafe fn pop_bulk(&self, max: usize, out: &mut Vec<T>) -> usize {
        let head = self.head.load(Ordering::Relaxed); // we own head
        let tail = self.tail.load(Ordering::Acquire);
        let n = (tail - head).min(max);
        if n == 0 {
            return 0;
        }
        out.reserve(n);
        // SAFETY: slots [head, head+n) were initialized by producer writes
        // that happen-before our Acquire load of `tail`; we are the only
        // consumer, so each slot is moved out exactly once. The two copies
        // cover the spans before and after the ring wrap point.
        unsafe {
            let dst = out.as_mut_ptr().add(out.len());
            let first = n.min(self.cap - head % self.cap);
            ptr::copy_nonoverlapping(self.slot_ptr(head) as *const T, dst, first);
            if n > first {
                ptr::copy_nonoverlapping(self.slot_ptr(0) as *const T, dst.add(first), n - first);
            }
            out.set_len(out.len() + n);
        }
        self.head.store(head + n, Ordering::Release);
        n
    }

    /// Raw pointer to the slot at absolute index `idx`. Dereferencing is
    /// governed by the SPSC protocol (see the methods that use it).
    #[inline]
    pub(crate) fn slot_ptr(&self, idx: usize) -> *mut T {
        self.buf[idx % self.cap].get() as *mut T
    }

    /// Links `next` after this segment.
    ///
    /// Called either by the unique producer (appending when full) or by a
    /// view reduction holding the queue lock; per invariant 5 the segment
    /// has no successor yet.
    pub(crate) fn set_next(&self, next: *mut Segment<T>) {
        let prev = self.next.swap(next, Ordering::AcqRel);
        debug_assert!(prev.is_null(), "segment already linked (invariant 5)");
    }

    // ---- slice support (paper §5.2) ------------------------------------

    /// Producer-owned tail index (for write slices).
    pub(crate) fn raw_tail(&self) -> usize {
        self.tail.load(Ordering::Relaxed)
    }

    /// Consumer-owned head index (for read slices).
    pub(crate) fn raw_head(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Acquire-load of tail, for the consumer side.
    #[allow(dead_code)]
    pub(crate) fn tail_acquire(&self) -> usize {
        self.tail.load(Ordering::Acquire)
    }

    /// Writes `value` at absolute index `idx` without publishing.
    /// (The write-slice hot path uses contiguous pointer writes instead;
    /// this remains the wrap-safe primitive, exercised by the tests.)
    ///
    /// # Safety
    /// Caller is the unique producer; `idx` lies in `[tail, head+cap)`.
    #[allow(dead_code)]
    pub(crate) unsafe fn write_at(&self, idx: usize, value: T) {
        unsafe { (*self.buf[idx % self.cap].get()).write(value) };
    }

    /// Publishes values written up to absolute index `new_tail`.
    ///
    /// # Safety
    /// Caller is the unique producer and has initialized all slots in
    /// `[tail, new_tail)`.
    pub(crate) unsafe fn publish_tail(&self, new_tail: usize) {
        debug_assert!(new_tail >= self.tail.load(Ordering::Relaxed));
        self.tail.store(new_tail, Ordering::Release);
    }

    /// Reads a reference to the value at absolute index `idx`.
    ///
    /// # Safety
    /// Caller is the unique consumer; `head <= idx < tail` (published).
    #[allow(dead_code)]
    pub(crate) unsafe fn read_ref(&self, idx: usize) -> &T {
        unsafe { (*self.buf[idx % self.cap].get()).assume_init_ref() }
    }

    /// Drops `n` values from the front and advances the head.
    ///
    /// # Safety
    /// Caller is the unique consumer; `n <= len()`.
    pub(crate) unsafe fn consume_front(&self, n: usize) {
        let head = self.head.load(Ordering::Relaxed);
        // Without drop glue the loop below is pure index arithmetic —
        // skip it so consuming a slice is a single head update.
        if std::mem::needs_drop::<T>() {
            for i in 0..n {
                // SAFETY: slots [head, head+n) are published and unread.
                unsafe { (*self.buf[(head + i) % self.cap].get()).assume_init_drop() };
            }
        }
        self.head.store(head + n, Ordering::Release);
    }

    /// Number of slots the consumer can view contiguously (up to the ring
    /// wrap point).
    pub(crate) fn contiguous_readable(&self) -> usize {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        let avail = tail - head;
        let to_wrap = self.cap - (head % self.cap);
        avail.min(to_wrap)
    }

    /// Number of slots the producer can fill contiguously (up to the ring
    /// wrap point). Zero iff the segment is full.
    pub(crate) fn contiguous_writable(&self) -> usize {
        let tail = self.tail.load(Ordering::Relaxed); // we own tail
        let head = self.head.load(Ordering::Acquire);
        let free = self.cap - (tail - head);
        free.min(self.cap - (tail % self.cap))
    }

    /// A contiguous array view over `[idx, idx+len)`.
    ///
    /// # Safety
    /// Caller is the unique consumer; the span is published, within one
    /// ring wrap, and not consumed while the reference is live.
    pub(crate) unsafe fn read_slice_raw(&self, idx: usize, len: usize) -> &[T] {
        debug_assert!(idx % self.cap + len <= self.cap, "slice wraps the ring");
        let base = self.buf[idx % self.cap].get() as *const T;
        // SAFETY: slots are adjacent `UnsafeCell<MaybeUninit<T>>`, layout-
        // compatible with `T`, and the span is initialized per the caller
        // contract.
        unsafe { std::slice::from_raw_parts(base, len) }
    }

    // ---- lifecycle ------------------------------------------------------

    /// Resets a fully drained segment for reuse from the freelist.
    ///
    /// # Safety
    /// No task may hold any pointer to this segment (the recycling rules in
    /// `state.rs` guarantee this: the segment was drained by the consumer
    /// and has a non-null `next`, so per invariants 4–5 nobody else can
    /// reach it).
    pub(crate) unsafe fn reset(&self) {
        debug_assert_eq!(self.len(), 0, "resetting a non-empty segment");
        self.head.store(0, Ordering::Relaxed);
        self.tail.store(0, Ordering::Relaxed);
        self.next.store(ptr::null_mut(), Ordering::Release);
    }

    /// Drops all unconsumed values (used when the hyperqueue is destroyed
    /// with values still inside, which the model allows — §2.1).
    ///
    /// # Safety
    /// No concurrent access to the segment.
    pub(crate) unsafe fn drop_remaining(&self) {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Relaxed);
        for i in head..tail {
            unsafe { (*self.buf[i % self.cap].get()).assume_init_drop() };
        }
        self.head.store(tail, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_pop_roundtrip() {
        let s = Segment::<u32>::new(4);
        unsafe {
            assert!(s.try_pop().is_none());
            s.try_push(1).unwrap();
            s.try_push(2).unwrap();
            assert_eq!(s.len(), 2);
            assert_eq!(s.try_pop(), Some(1));
            assert_eq!(s.try_pop(), Some(2));
            assert!(s.try_pop().is_none());
        }
    }

    #[test]
    fn full_rejects_push() {
        let s = Segment::<u32>::new(2);
        unsafe {
            s.try_push(1).unwrap();
            s.try_push(2).unwrap();
            assert_eq!(s.try_push(3), Err(3));
            assert_eq!(s.try_pop(), Some(1));
            s.try_push(3).unwrap();
        }
    }

    #[test]
    fn circular_reuse_wraps_many_times() {
        let s = Segment::<u64>::new(4);
        unsafe {
            for i in 0..1000u64 {
                s.try_push(i).unwrap();
                assert_eq!(s.try_pop(), Some(i));
            }
        }
        assert!(s.is_empty());
    }

    #[test]
    fn peek_does_not_consume() {
        let s = Segment::<u32>::new(4);
        unsafe {
            s.try_push(7).unwrap();
            assert_eq!(s.peek(), Some(&7));
            assert_eq!(s.peek(), Some(&7));
            assert_eq!(s.try_pop(), Some(7));
            assert_eq!(s.peek(), None);
        }
    }

    #[test]
    fn next_links_once() {
        let a = Segment::<u32>::new(2);
        let b = Box::into_raw(Segment::<u32>::new(2));
        assert!(a.next().is_null());
        a.set_next(b);
        assert_eq!(a.next(), b);
        unsafe { drop(Box::from_raw(b)) };
    }

    #[test]
    fn reset_clears_state() {
        let s = Segment::<u32>::new(2);
        let b = Box::into_raw(Segment::<u32>::new(2));
        unsafe {
            s.try_push(1).unwrap();
            assert_eq!(s.try_pop(), Some(1));
            s.set_next(b);
            s.reset();
        }
        assert!(s.next().is_null());
        assert!(s.is_empty());
        unsafe {
            s.try_push(9).unwrap();
            assert_eq!(s.try_pop(), Some(9));
            drop(Box::from_raw(b));
        }
    }

    #[test]
    fn drop_remaining_runs_destructors() {
        let counter = Arc::new(());
        let s = Segment::<Arc<()>>::new(8);
        unsafe {
            for _ in 0..5 {
                s.try_push(Arc::clone(&counter)).unwrap();
            }
            assert_eq!(Arc::strong_count(&counter), 6);
            s.drop_remaining();
        }
        assert_eq!(Arc::strong_count(&counter), 1);
    }

    #[test]
    fn slice_primitives_roundtrip() {
        let s = Segment::<u32>::new(8);
        unsafe {
            let t = s.raw_tail();
            for i in 0..5 {
                s.write_at(t + i, i as u32 * 10);
            }
            s.publish_tail(t + 5);
            assert_eq!(s.len(), 5);
            assert_eq!(s.contiguous_readable(), 5);
            let h = s.raw_head();
            for i in 0..5 {
                assert_eq!(*s.read_ref(h + i), i as u32 * 10);
            }
            s.consume_front(5);
        }
        assert!(s.is_empty());
    }

    #[test]
    fn pop_bulk_moves_batches_across_the_wrap() {
        let s = Segment::<u32>::new(4);
        let mut out = Vec::new();
        unsafe {
            // Stagger head so the bulk read wraps the ring.
            s.try_push(0).unwrap();
            s.try_push(1).unwrap();
            assert_eq!(s.try_pop(), Some(0));
            assert_eq!(s.try_pop(), Some(1));
            for v in 2..6 {
                s.try_push(v).unwrap();
            }
            assert_eq!(s.pop_bulk(3, &mut out), 3);
            assert_eq!(s.pop_bulk(8, &mut out), 1);
            assert_eq!(s.pop_bulk(8, &mut out), 0);
        }
        assert_eq!(out, vec![2, 3, 4, 5]);
        assert!(s.is_empty());
    }

    #[test]
    fn spsc_concurrent_order_preserved() {
        const N: u64 = 200_000;
        let s = Arc::new(Segment::<u64>::new(64));
        let p = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                for i in 0..N {
                    let mut v = i;
                    loop {
                        // SAFETY: single producer thread.
                        match unsafe { s.try_push(v) } {
                            Ok(()) => break,
                            Err(back) => {
                                v = back;
                                std::hint::spin_loop();
                            }
                        }
                    }
                }
            })
        };
        let c = {
            let s = Arc::clone(&s);
            std::thread::spawn(move || {
                let mut expect = 0u64;
                while expect < N {
                    // SAFETY: single consumer thread.
                    if let Some(v) = unsafe { s.try_pop() } {
                        assert_eq!(v, expect, "SPSC order violated");
                        expect += 1;
                    } else {
                        std::hint::spin_loop();
                    }
                }
            })
        };
        p.join().unwrap();
        c.join().unwrap();
        assert!(s.is_empty());
    }
}
