//! The per-queue view table: §4 of the paper.
//!
//! Every task holding privileges on a hyperqueue has an entry here with its
//! `user`, `children` and `right` views (§4). The consumer-side `queue`
//! view is a singleton (invariant 2: exactly one view with a local head
//! exists); instead of physically handing it from frame to frame as the
//! paper narrates, we keep it in the state and gate access with a
//! *delegation count*: a frame may consume only while it has no outstanding
//! pop-privileged children — observationally identical to "the parent's
//! queue view is empty while the consumer child executes" (Fig. 6
//! discussion), see DESIGN.md §2.
//!
//! All view-linking operations run under the queue mutex. The paper's
//! "special optimization" (reduce only on steals) is explicitly *not*
//! implemented — the paper's own evaluation omits it too (§4.5).

use std::collections::HashMap;
use std::ptr::NonNull;
use std::sync::Arc;

use swan::frame::{program_order, Frame, FrameId, ProgramOrder};

use crate::pool::SegmentPool;
use crate::segment::Segment;
use crate::view::{Ptr, View};

/// Access mode of a grant (the paper's `pushdep` / `popdep` /
/// `pushpopdep`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// May only push (`pushdep`).
    Push,
    /// May only pop (`popdep`).
    Pop,
    /// May do both (`pushpopdep`).
    PushPop,
}

impl Mode {
    /// Whether the mode grants push privileges.
    pub fn has_push(self) -> bool {
        matches!(self, Mode::Push | Mode::PushPop)
    }
    /// Whether the mode grants pop privileges.
    pub fn has_pop(self) -> bool {
        matches!(self, Mode::Pop | Mode::PushPop)
    }
}

/// Selective-sync label tag for push privileges.
pub const PUSH_LABEL: u8 = 1;
/// Selective-sync label tag for pop privileges.
pub const POP_LABEL: u8 = 2;

pub(crate) struct FrameEntry<T> {
    pub(crate) frame: Arc<Frame>,
    parent: Option<u64>,
    /// Nearest *live* older sibling with privileges on this queue.
    left: Option<u64>,
    /// Nearest live younger sibling.
    right_sib: Option<u64>,
    /// Youngest live child with privileges on this queue.
    last_live_child: Option<u64>,
    pub(crate) user: View<T>,
    pub(crate) children: View<T>,
    pub(crate) right: View<T>,
    pub(crate) has_push: bool,
    pub(crate) has_pop: bool,
    /// Live pop-privileged children; consuming requires 0 (see module docs).
    pub(crate) pop_delegations: usize,
    /// Rule-3 predecessor tracking: last pop-privileged child spawned.
    last_pop_child: Option<FrameId>,
}

/// Counters reported by [`crate::Hyperqueue::stats`].
///
/// # Exact vs approximate counters
///
/// The first four (`segments_allocated`, `segments_recycled`,
/// `freelist_hits`, `head_attaches`) are maintained under the queue mutex:
/// a snapshot is exact at the instant the lock was held.
///
/// The last three (`lock_acquisitions`, `chain_advances`,
/// `notifies_suppressed`) are fast-path observability counters kept in
/// atomics outside the lock, incremented *and* read with
/// `Ordering::Relaxed` (uniformly — see `FastStats` in `queue.rs`). Each
/// is monotonic and eventually exact, but while producer/consumer tasks
/// are still running a snapshot is **approximate**: it may lag in-flight
/// fast-path events, and the three values need not be mutually consistent
/// (e.g. a `chain_advances` increment may be visible while a
/// `lock_acquisitions` increment that happened earlier on another thread
/// is not). Read after quiescing (e.g. after `Scope::sync`) — as the
/// fast-path assertions in `tests/fastpath.rs` do — when exact totals
/// matter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueueStats {
    /// Segments allocated from the heap. Exact (mutex-guarded).
    pub segments_allocated: u64,
    /// Segments returned to the freelist after being drained. Exact
    /// (mutex-guarded).
    pub segments_recycled: u64,
    /// Freelist hits (allocations served without heap traffic). Exact
    /// (mutex-guarded).
    pub freelist_hits: u64,
    /// Early head attachments (§4.1 "double reduction" first step). Exact
    /// (mutex-guarded).
    pub head_attaches: u64,
    /// Segments drawn from a shared [`SegmentPool`] instead of the heap
    /// (queues created with [`crate::Hyperqueue::with_pool`]). A warm
    /// service-layer queue has `segments_allocated == 0` and all its
    /// storage accounted here. Exact (mutex-guarded).
    pub pool_draws: u64,
    /// Data-path acquisitions of the queue mutex (push/pop/empty/slice
    /// slow paths). Zero while a producer/consumer pair streams through
    /// already-published segments — the paper's steady-state claim.
    /// Approximate under concurrency (Relaxed; see struct docs).
    pub lock_acquisitions: u64,
    /// Consumer segment transitions taken lock-free by following a
    /// published `next` link instead of probing the queue state.
    /// Approximate under concurrency (Relaxed; see struct docs).
    pub chain_advances: u64,
    /// Runtime wakeups skipped because no worker was parked. Approximate
    /// under concurrency (Relaxed; see struct docs).
    pub notifies_suppressed: u64,
}

impl QueueStats {
    /// Adds `other`'s counters into `self`, field by field. Used to
    /// accumulate totals across queues — per-edge lifetime history in
    /// [`crate::SegmentPool::retired_queue_stats`], and cross-edge sums in
    /// the service layer's consolidated stats snapshot.
    pub fn merge(&mut self, other: &QueueStats) {
        self.segments_allocated += other.segments_allocated;
        self.segments_recycled += other.segments_recycled;
        self.freelist_hits += other.freelist_hits;
        self.head_attaches += other.head_attaches;
        self.pool_draws += other.pool_draws;
        self.lock_acquisitions += other.lock_acquisitions;
        self.chain_advances += other.chain_advances;
        self.notifies_suppressed += other.notifies_suppressed;
    }
}

/// Result of a consumer-side probe.
pub(crate) enum Probe<T> {
    /// A value was popped; the new head segment is returned for caching.
    Value(T, NonNull<Segment<T>>),
    /// No value now, but more may become visible: caller must wait.
    Blocked,
    /// Permanently empty for this consumer (paper `empty() == true`).
    Empty,
}

/// Result of an `empty()` probe.
pub(crate) enum EmptyProbe<T> {
    /// Data is available; head segment returned for caching.
    HasData(NonNull<Segment<T>>),
    /// Undecidable yet: caller must wait.
    Blocked,
    /// Permanently empty.
    Empty,
}

pub(crate) struct QueueState<T> {
    pub(crate) frames: HashMap<u64, FrameEntry<T>>,
    /// The singleton consumer view (invariant 2).
    pub(crate) queue_view: View<T>,
    /// Frame id of the owning task (diagnostics).
    #[allow(dead_code)]
    owner: u64,
    next_nonlocal: u64,
    seg_cap: usize,
    recycle_enabled: bool,
    /// Shared segment pool, if this queue participates in service-layer
    /// storage reuse: allocations draw from it first, and drop returns
    /// every owned segment to it instead of freeing.
    pool: Option<Arc<SegmentPool<T>>>,
    /// Every segment this queue owns (heap-allocated or drawn from the
    /// pool); released on drop — freed, or handed back to the pool.
    arena: Vec<NonNull<Segment<T>>>,
    freelist: Vec<NonNull<Segment<T>>>,
    pub(crate) stats: QueueStats,
}

// SAFETY: the raw segment pointers are owned by the arena and only
// dereferenced under the queue mutex or through the SPSC token protocol;
// `T: Send` is required for the values stored inside.
unsafe impl<T: Send> Send for QueueState<T> {}

impl<T> QueueState<T> {
    /// Builds the initial state: one segment, queue view and the owner's
    /// user view split over it (§4.1 `(queue, user) ← split((snew, snew))`).
    pub(crate) fn new(
        owner: &Arc<Frame>,
        seg_cap: usize,
        recycle: bool,
        pool: Option<Arc<SegmentPool<T>>>,
    ) -> Self {
        let mut st = QueueState {
            frames: HashMap::new(),
            queue_view: View::EMPTY,
            owner: owner.id.0,
            next_nonlocal: 0,
            seg_cap,
            recycle_enabled: recycle,
            pool,
            arena: Vec::new(),
            freelist: Vec::new(),
            stats: QueueStats::default(),
        };
        let s0 = st.alloc_segment();
        let nl = st.fresh_nonlocal();
        let (queue, user) = View::local(s0).split(nl);
        st.queue_view = queue;
        st.frames.insert(
            owner.id.0,
            FrameEntry {
                frame: Arc::clone(owner),
                parent: None,
                left: None,
                right_sib: None,
                last_live_child: None,
                user,
                children: View::EMPTY,
                right: View::EMPTY,
                has_push: true,
                has_pop: true,
                pop_delegations: 0,
                last_pop_child: None,
            },
        );
        st
    }

    fn fresh_nonlocal(&mut self) -> u64 {
        let id = self.next_nonlocal;
        self.next_nonlocal += 1;
        id
    }

    fn alloc_segment(&mut self) -> NonNull<Segment<T>> {
        if let Some(seg) = self.freelist.pop() {
            self.stats.freelist_hits += 1;
            return seg;
        }
        if let Some(seg) = self.pool.as_ref().and_then(|p| p.take()) {
            self.arena.push(seg);
            self.stats.pool_draws += 1;
            return seg;
        }
        let seg = NonNull::new(Box::into_raw(Segment::new(self.seg_cap))).expect("Box is nonnull");
        self.arena.push(seg);
        self.stats.segments_allocated += 1;
        seg
    }

    /// Number of live entries (grants) on this queue.
    #[allow(dead_code)]
    pub(crate) fn live_grants(&self) -> usize {
        self.frames.len()
    }

    /// Configured segment capacity.
    pub(crate) fn segment_capacity(&self) -> usize {
        self.seg_cap
    }

    /// The segment a producer token may cache at acquire time (the user
    /// view's local tail, if any).
    pub(crate) fn user_tail_segment(&self, id: u64) -> Option<NonNull<Segment<T>>> {
        self.frames.get(&id).and_then(|e| e.user.tail.as_local())
    }

    // ---- spawn-time transfer (§4.2) -------------------------------------

    /// Handles a spawn of `child` with `mode` privileges by the task owning
    /// `parent_id`'s entry. Returns the rule-3 predecessor (the previously
    /// spawned pop-privileged sibling) if the mode has pop privileges.
    pub(crate) fn spawn_transfer(
        &mut self,
        parent_id: u64,
        child: &Arc<Frame>,
        mode: Mode,
    ) -> Option<FrameId> {
        let child_id = child.id.0;
        assert!(
            !self.frames.contains_key(&child_id),
            "a task may hold at most one grant per hyperqueue; \
             use pushpopdep for combined access"
        );
        let (user, pred, left) = {
            let p = self
                .frames
                .get_mut(&parent_id)
                .expect("spawning task holds no grant on this hyperqueue");
            if mode.has_push() {
                assert!(
                    p.has_push,
                    "child cannot receive push privileges its parent lacks (§2.3)"
                );
            }
            if mode.has_pop() {
                assert!(
                    p.has_pop,
                    "child cannot receive pop privileges its parent lacks (§2.3)"
                );
            }
            // "The user view, if any, is passed from the parent frame to
            // the child frame. The parent's user view is cleared." (§4.2)
            let user = p.user.take();
            let mut pred = None;
            if mode.has_pop() {
                // Rule 3: a pop task waits for the previous pop task.
                pred = p.last_pop_child.replace(child.id);
                p.pop_delegations += 1;
            }
            let left = p.last_live_child.replace(child_id);
            (user, pred, left)
        };
        if let Some(l) = left {
            self.frames
                .get_mut(&l)
                .expect("live-chain left sibling present")
                .right_sib = Some(child_id);
        }
        self.frames.insert(
            child_id,
            FrameEntry {
                frame: Arc::clone(child),
                parent: Some(parent_id),
                left,
                right_sib: None,
                last_live_child: None,
                user,
                children: View::EMPTY,
                right: View::EMPTY,
                has_push: mode.has_push(),
                has_pop: mode.has_pop(),
                pop_delegations: 0,
                last_pop_child: None,
            },
        );
        self.debug_validate();
        pred
    }

    // ---- completion-time reduction (§4.2) --------------------------------

    /// Handles completion of the task owning entry `id`: reduces its views
    /// in view order (children < user < right) and merges the result into
    /// the live left sibling's right view, or the parent's children view
    /// (the Cilk++ reducer discipline the paper builds on).
    pub(crate) fn complete(&mut self, id: u64) {
        let entry = self.frames.remove(&id).expect("completing unknown grant");
        debug_assert!(
            entry.last_live_child.is_none(),
            "children complete before their parent (implicit sync)"
        );
        debug_assert_eq!(entry.pop_delegations, 0, "pop children still live");
        // SAFETY: queue lock held (we have &mut self); segments alive in
        // the arena.
        let mut v = unsafe { View::reduce(entry.children, entry.user) };
        v = unsafe { View::reduce(v, entry.right) };
        if let Some(l) = entry.left {
            let le = self
                .frames
                .get_mut(&l)
                .expect("live left sibling entry present");
            let lr = le.right.take();
            le.right = unsafe { View::reduce(lr, v) };
            le.right_sib = entry.right_sib;
        } else if let Some(p) = entry.parent {
            let pe = self.frames.get_mut(&p).expect("parent entry present");
            let pc = pe.children.take();
            pe.children = unsafe { View::reduce(pc, v) };
        } else {
            // The owner entry completes only via Hyperqueue::drop; data, if
            // any, stays reachable from the queue view.
        }
        if let Some(r) = entry.right_sib {
            self.frames
                .get_mut(&r)
                .expect("live right sibling entry present")
                .left = entry.left;
        }
        if let Some(p) = entry.parent {
            let pe = self.frames.get_mut(&p).expect("parent entry present");
            if pe.last_live_child == Some(id) {
                pe.last_live_child = entry.left;
            }
            if entry.has_pop {
                debug_assert!(pe.pop_delegations > 0);
                pe.pop_delegations -= 1;
            }
        }
        self.debug_validate();
    }

    // ---- producer side ----------------------------------------------------

    /// Slow-path push support: returns the segment the producer of entry
    /// `id` must push to, allocating/attaching as needed. The caller caches
    /// the returned pointer for lock-free fast-path pushes.
    pub(crate) fn producer_segment(&mut self, id: u64, need: usize) -> NonNull<Segment<T>> {
        let seg = self.producer_segment_inner(id, need);
        self.debug_validate();
        seg
    }

    fn producer_segment_inner(&mut self, id: u64, need: usize) -> NonNull<Segment<T>> {
        let e = self.frames.get(&id).expect("push without a grant");
        assert!(e.has_push, "push requires push privileges");
        match e.user.tail {
            Ptr::Local(seg) => {
                // SAFETY: we are the unique producer of our user-view tail.
                let full = unsafe {
                    let s = seg.as_ref();
                    s.capacity() - s.len() < need
                };
                if !full {
                    return seg;
                }
                let fresh = self.alloc_segment();
                // SAFETY: lock held; `seg` is a tail (next == null by
                // invariant 5).
                unsafe { seg.as_ref().set_next(fresh.as_ptr()) };
                let e = self.frames.get_mut(&id).expect("just read");
                e.user.tail = Ptr::Local(fresh);
                fresh
            }
            Ptr::Nil => self.attach_fresh_head(id),
            Ptr::NonLocal(_) => unreachable!(
                "a push grant's user view never has a non-local tail \
                 (it is ε or ends in the segment being produced)"
            ),
        }
    }

    /// §4.1: push found an empty user view. Create a segment, split it, set
    /// the tail half as the user view, and merge the head half into the
    /// *maximal materialized view strictly preceding this task's user view*
    /// in the §4.4 view order: the last live child's right view, the
    /// (non-empty) children view, the live left sibling's right view, or —
    /// recursively through the ancestors — ultimately the owner's children
    /// view.
    fn attach_fresh_head(&mut self, id: u64) -> NonNull<Segment<T>> {
        let snew = self.alloc_segment();
        let nl = self.fresh_nonlocal();
        let (tmp, user) = View::local(snew).split(nl);
        self.stats.head_attaches += 1;
        {
            let e = self.frames.get_mut(&id).expect("push without a grant");
            debug_assert!(e.user.is_empty());
            e.user = user;
        }
        // Level 0: the pushing frame's own completed/live children precede
        // its continuation.
        {
            let e = &self.frames[&id];
            if let Some(lc) = e.last_live_child {
                let le = self.frames.get_mut(&lc).expect("live child entry");
                let lr = le.right.take();
                le.right = unsafe { View::reduce(lr, tmp) };
                return snew;
            }
            if !e.children.is_empty() {
                let e = self.frames.get_mut(&id).expect("just read");
                let c = e.children.take();
                e.children = unsafe { View::reduce(c, tmp) };
                return snew;
            }
        }
        // Ascend: live left sibling's right view, else the parent's
        // children view if non-empty, else recurse (paper §4.1).
        let mut cur = id;
        loop {
            let e = &self.frames[&cur];
            if let Some(l) = e.left {
                let le = self.frames.get_mut(&l).expect("live left sibling");
                let lr = le.right.take();
                le.right = unsafe { View::reduce(lr, tmp) };
                return snew;
            }
            match e.parent {
                None => {
                    // Top-level (owner) reached: merge with its children
                    // view even if empty.
                    let oe = self.frames.get_mut(&cur).expect("owner entry");
                    let c = oe.children.take();
                    oe.children = unsafe { View::reduce(c, tmp) };
                    return snew;
                }
                Some(p) => {
                    let pe = &self.frames[&p];
                    if !pe.children.is_empty() {
                        let pe = self.frames.get_mut(&p).expect("just read");
                        let c = pe.children.take();
                        pe.children = unsafe { View::reduce(c, tmp) };
                        return snew;
                    }
                    cur = p;
                }
            }
        }
    }

    // ---- consumer side ----------------------------------------------------

    /// Advances the queue view over drained segments, recycling them.
    /// Returns the current head segment.
    fn consumer_advance(&mut self) -> NonNull<Segment<T>> {
        let mut cur = self
            .queue_view
            .head
            .as_local()
            .expect("queue view head is always local (invariants 1-2)");
        loop {
            // SAFETY: head segments are alive (arena) and we are the unique
            // consumer (delegation gate).
            let (next, empty) = unsafe {
                let s = cur.as_ref();
                // Load `next` BEFORE emptiness: observing a non-null next
                // (Acquire) also makes all prior pushes visible, so an
                // empty check afterwards cannot miss values.
                let n = s.next();
                (n, s.is_empty())
            };
            if !empty {
                break;
            }
            let Some(next) = NonNull::new(next) else {
                break;
            };
            self.queue_view.head = Ptr::Local(next);
            // `cur` is drained and linked-past: per invariants 4-5 nobody
            // else can reach it — recycle.
            if self.recycle_enabled {
                // SAFETY: unreachable by any other task (see above).
                unsafe { cur.as_ref().reset() };
                self.freelist.push(cur);
                self.stats.segments_recycled += 1;
            }
            cur = next;
        }
        self.debug_validate();
        cur
    }

    /// True if any *live* push-privileged grant precedes `consumer` in
    /// program order — i.e. more values may still become visible (this
    /// replaces the paper's per-segment `producing` flag; see DESIGN.md §2).
    ///
    /// "Precedes" = the grant's subtree lies strictly before the consumer,
    /// or the grant is a descendant of the consumer (work the consumer
    /// already spawned). Ancestors do not count: their *future* pushes come
    /// after the consumer in the serial elision and are invisible to it.
    fn live_push_grant_precedes(&self, consumer: &Arc<Frame>) -> bool {
        self.frames.values().any(|e| {
            e.has_push
                && e.frame.id != consumer.id
                && matches!(
                    program_order(&e.frame.path, &consumer.path),
                    ProgramOrder::Before | ProgramOrder::DescendantOfB
                )
        })
    }

    /// Consumer-side pop probe. The caller must be the task owning entry
    /// `id` (enforced structurally by token ownership).
    pub(crate) fn pop_probe(&mut self, id: u64) -> Probe<T> {
        let e = self.frames.get(&id).expect("pop without a grant");
        assert!(e.has_pop, "pop requires pop privileges");
        if e.pop_delegations > 0 {
            // The queue view is (logically) with a pop-privileged child.
            return Probe::Blocked;
        }
        let consumer = Arc::clone(&e.frame);
        let seg = self.consumer_advance();
        // SAFETY: unique consumer (delegation gate + rule 3).
        if let Some(v) = unsafe { seg.as_ref().try_pop() } {
            return Probe::Value(v, seg);
        }
        if self.live_push_grant_precedes(&consumer) {
            Probe::Blocked
        } else {
            Probe::Empty
        }
    }

    /// Consumer-side `empty()` probe (paper §2.1: false only when a value
    /// is available; true only when no more values can become visible;
    /// otherwise the caller must block).
    pub(crate) fn empty_probe(&mut self, id: u64) -> EmptyProbe<T> {
        let e = self.frames.get(&id).expect("empty() without a grant");
        assert!(e.has_pop, "empty() requires pop privileges");
        if e.pop_delegations > 0 {
            return EmptyProbe::Blocked;
        }
        let consumer = Arc::clone(&e.frame);
        let seg = self.consumer_advance();
        // SAFETY: unique consumer.
        if unsafe { !seg.as_ref().is_empty() } {
            return EmptyProbe::HasData(seg);
        }
        if self.live_push_grant_precedes(&consumer) {
            EmptyProbe::Blocked
        } else {
            EmptyProbe::Empty
        }
    }

    /// Read-slice support: the head segment if it currently holds data.
    #[allow(dead_code)]
    pub(crate) fn reader_segment(&mut self, id: u64) -> Option<NonNull<Segment<T>>> {
        match self.empty_probe(id) {
            EmptyProbe::HasData(seg) => Some(seg),
            _ => None,
        }
    }

    /// Checks the structural invariants of §4.4 (1-6; 7-9 are ordering
    /// statements validated behaviourally by the determinism tests).
    /// Panics on violation. Called from tests and, in debug builds, after
    /// every view-table mutation.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    pub(crate) fn validate_invariants(&self) {
        use std::collections::{HashMap as Map, HashSet};
        let free: HashSet<*mut Segment<T>> = self.freelist.iter().map(|p| p.as_ptr()).collect();
        let mut head_refs: Map<*mut Segment<T>, usize> = Map::new();
        let mut tail_refs: Map<*mut Segment<T>, usize> = Map::new();
        let count = |v: &View<T>,
                     heads: &mut Map<*mut Segment<T>, usize>,
                     tails: &mut Map<*mut Segment<T>, usize>| {
            if let Some(p) = v.head.as_local() {
                *heads.entry(p.as_ptr()).or_insert(0) += 1;
            }
            if let Some(p) = v.tail.as_local() {
                *tails.entry(p.as_ptr()).or_insert(0) += 1;
            }
        };
        count(&self.queue_view, &mut head_refs, &mut tail_refs);
        for e in self.frames.values() {
            count(&e.user, &mut head_refs, &mut tail_refs);
            count(&e.children, &mut head_refs, &mut tail_refs);
            count(&e.right, &mut head_refs, &mut tail_refs);
            // Invariant 3 (half of it): a user view's head is never local
            // — it is ε or starts at a non-local boundary.
            assert!(
                !e.user.head.is_local(),
                "invariant 3: user view with a local head: {:?}",
                e.user
            );
        }
        // Invariants 1-2: at least one segment; the singleton queue view
        // has a local head and a non-local tail.
        assert!(!self.arena.is_empty(), "invariant 1: no segments");
        assert!(
            self.queue_view.head.is_local(),
            "invariant 2: queue view head must be local"
        );
        assert!(
            !self.queue_view.tail.is_local(),
            "invariant 3: queue view tail must be non-local"
        );
        // Incoming next-pointer counts.
        let mut next_refs: Map<*mut Segment<T>, usize> = Map::new();
        for &seg in &self.arena {
            if free.contains(&seg.as_ptr()) {
                continue;
            }
            // SAFETY: arena segments are alive; we hold the state lock.
            let n = unsafe { seg.as_ref().next() };
            if !n.is_null() {
                *next_refs.entry(n).or_insert(0) += 1;
            }
        }
        for &seg in &self.arena {
            let p = seg.as_ptr();
            if free.contains(&p) {
                continue;
            }
            let h = head_refs.get(&p).copied().unwrap_or(0);
            let n = next_refs.get(&p).copied().unwrap_or(0);
            let t = tail_refs.get(&p).copied().unwrap_or(0);
            // SAFETY: as above.
            let next_is_null = unsafe { seg.as_ref().next().is_null() };
            // Invariant 4: at most one incoming head-or-next pointer (it
            // is exactly one unless recycling is disabled, in which case
            // drained segments linger unreferenced instead of being freed).
            assert!(
                h + n <= 1,
                "invariant 4: segment with {h} head refs and {n} next refs"
            );
            // Invariant 5: at most one tail pointer; a tail-pointed
            // segment is a list tail (null next).
            assert!(t <= 1, "invariant 5: {t} tail refs on one segment");
            if t == 1 {
                assert!(
                    next_is_null,
                    "invariant 5: tail-pointed segment has a successor"
                );
            }
        }
    }

    #[cfg(debug_assertions)]
    pub(crate) fn debug_validate(&self) {
        self.validate_invariants();
    }

    #[cfg(not(debug_assertions))]
    pub(crate) fn debug_validate(&self) {}
}

impl<T> QueueState<T> {
    /// End-of-life stats handoff: folds this queue's final counters
    /// (mutex-guarded ones from `self.stats`, the fast-path trio passed
    /// in by the owner) into the shared pool's lifetime totals, so the
    /// service layer can still observe an edge's history after its
    /// queues retire. No-op for unpooled queues.
    pub(crate) fn absorb_stats_into_pool(&mut self, fast: (u64, u64, u64)) {
        if let Some(pool) = &self.pool {
            let mut s = self.stats;
            (s.lock_acquisitions, s.chain_advances, s.notifies_suppressed) = fast;
            pool.absorb(&s);
        }
    }
}

impl<T> Drop for QueueState<T> {
    fn drop(&mut self) {
        // A hyperqueue may be destroyed with values still inside (§2.1):
        // drop every unconsumed value, then release all segments — back to
        // the shared pool when this queue participates in service-layer
        // reuse, to the heap otherwise.
        if let Some(pool) = self.pool.take() {
            for &seg in &self.arena {
                // SAFETY: no tasks are live at destruction time (tokens
                // hold an Arc on the inner, so the state only drops after
                // every token is gone); after drop_remaining the segment is
                // empty, so reset() leaves it pristine for the next queue.
                unsafe {
                    seg.as_ref().drop_remaining();
                    seg.as_ref().reset();
                }
            }
            // This end-of-life recycling is observable through the pool's
            // `returned` counter (the queue's own stats die with it here).
            // SAFETY: every arena segment is now drained, unlinked and —
            // all tasks having completed — unreachable.
            unsafe { pool.put_all(self.arena.drain(..)) };
            return;
        }
        for &seg in &self.arena {
            // SAFETY: as above; freelist segments are empty so
            // drop_remaining is a no-op for them.
            unsafe {
                seg.as_ref().drop_remaining();
                drop(Box::from_raw(seg.as_ptr()));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swan::frame::Frame;

    fn state_with_owner(cap: usize) -> (QueueState<u32>, Arc<Frame>) {
        let owner = Frame::new_root(FrameId(100));
        let st = QueueState::new(&owner, cap, true, None);
        (st, owner)
    }

    /// Pushes `vals` as the producer of entry `id`, via the slow path.
    fn push_all(st: &mut QueueState<u32>, id: u64, vals: &[u32]) {
        for &v in vals {
            let seg = st.producer_segment(id, 1);
            // SAFETY: tests run single-threaded; unique producer.
            unsafe { seg.as_ref().try_push(v).unwrap() };
        }
    }

    fn pop_expect(st: &mut QueueState<u32>, id: u64, expect: u32) {
        match st.pop_probe(id) {
            Probe::Value(v, _) => assert_eq!(v, expect),
            Probe::Blocked => panic!("unexpected Blocked while popping"),
            Probe::Empty => panic!("unexpected Empty while popping"),
        }
    }

    #[test]
    fn owner_push_then_pop_in_order() {
        let (mut st, _o) = state_with_owner(4);
        push_all(&mut st, 100, &[1, 2, 3, 4, 5, 6, 7]); // spans 2+ segments
        for i in 1..=7 {
            pop_expect(&mut st, 100, i);
        }
        match st.pop_probe(100) {
            Probe::Empty => {}
            _ => panic!("owner with no children: queue must be permanently empty"),
        }
    }

    #[test]
    fn segment_overflow_links_segments() {
        let (mut st, _o) = state_with_owner(2);
        push_all(&mut st, 100, &[10, 20, 30, 40, 50]);
        assert!(st.stats.segments_allocated >= 3);
        for v in [10, 20, 30, 40, 50] {
            pop_expect(&mut st, 100, v);
        }
    }

    #[test]
    fn drained_segments_are_recycled() {
        let (mut st, _o) = state_with_owner(2);
        push_all(&mut st, 100, &[1, 2, 3, 4]);
        for v in [1, 2, 3, 4] {
            pop_expect(&mut st, 100, v);
        }
        assert!(st.stats.segments_recycled >= 1, "expected recycling");
        // Freelist reuse on the next overflow.
        let before = st.stats.segments_allocated;
        push_all(&mut st, 100, &[5, 6, 7, 8]);
        assert!(st.stats.freelist_hits >= 1);
        assert_eq!(
            st.stats.segments_allocated, before,
            "steady state must not allocate"
        );
        for v in [5, 6, 7, 8] {
            pop_expect(&mut st, 100, v);
        }
    }

    #[test]
    fn child_inherits_user_view_and_merges_back() {
        // owner spawns push child A; A pushes; A completes; owner pops.
        let (mut st, owner) = state_with_owner(8);
        let a = Frame::new_child(&owner, FrameId(101));
        let pred = st.spawn_transfer(100, &a, Mode::Push);
        assert!(pred.is_none(), "push tasks have no rule-3 predecessor");
        push_all(&mut st, 101, &[7, 8, 9]);
        st.complete(101);
        for v in [7, 8, 9] {
            pop_expect(&mut st, 100, v);
        }
    }

    #[test]
    fn two_producers_merge_in_program_order() {
        // owner spawns A then B (both push); B pushes first (out of order
        // in time), then A; the consumer must still see A's values first.
        let (mut st, owner) = state_with_owner(4);
        let a = Frame::new_child(&owner, FrameId(101));
        let b = Frame::new_child(&owner, FrameId(102));
        st.spawn_transfer(100, &a, Mode::Push);
        st.spawn_transfer(100, &b, Mode::Push);
        push_all(&mut st, 102, &[20, 21]); // B goes first in time
        push_all(&mut st, 101, &[10, 11]);
        st.complete(102); // B completes first
        st.complete(101);
        for v in [10, 11, 20, 21] {
            pop_expect(&mut st, 100, v);
        }
        match st.pop_probe(100) {
            Probe::Empty => {}
            _ => panic!("should be permanently empty"),
        }
    }

    #[test]
    fn consumer_sees_data_from_incomplete_producer_chain() {
        // A pushes into the initial segment: values are visible to the
        // owner even while A is still live (rule 2 concurrency).
        let (mut st, owner) = state_with_owner(4);
        let a = Frame::new_child(&owner, FrameId(101));
        st.spawn_transfer(100, &a, Mode::Push);
        push_all(&mut st, 101, &[1, 2]);
        pop_expect(&mut st, 100, 1);
        // ...but after draining, the owner must BLOCK (A might push more),
        // not report empty.
        pop_expect(&mut st, 100, 2);
        match st.pop_probe(100) {
            Probe::Blocked => {}
            _ => panic!("live preceding producer ⇒ Blocked"),
        }
        st.complete(101);
        match st.pop_probe(100) {
            Probe::Empty => {}
            _ => panic!("producer done ⇒ Empty"),
        }
    }

    #[test]
    fn early_head_attach_makes_second_producer_visible_after_first_completes() {
        // Fig. 4(a)/(b): A holds the initial segment; B attaches a fresh
        // segment to A.right. While A is live, B's values are unreachable;
        // once A completes they become poppable in order.
        let (mut st, owner) = state_with_owner(4);
        let a = Frame::new_child(&owner, FrameId(101));
        let b = Frame::new_child(&owner, FrameId(102));
        st.spawn_transfer(100, &a, Mode::Push);
        st.spawn_transfer(100, &b, Mode::Push);
        push_all(&mut st, 102, &[5, 6]); // B: fresh segment via attach
        assert_eq!(st.stats.head_attaches, 1);
        match st.pop_probe(100) {
            Probe::Blocked => {} // A live, nothing linked yet
            _ => panic!("B's values must be invisible while A is live"),
        }
        st.complete(101); // A pushed nothing, completes
        pop_expect(&mut st, 100, 5);
        pop_expect(&mut st, 100, 6);
        st.complete(102);
        match st.pop_probe(100) {
            Probe::Empty => {}
            _ => panic!("all producers done"),
        }
    }

    #[test]
    fn pop_delegation_blocks_parent() {
        let (mut st, owner) = state_with_owner(4);
        push_all(&mut st, 100, &[1]);
        let c = Frame::new_child(&owner, FrameId(101));
        let pred = st.spawn_transfer(100, &c, Mode::Pop);
        assert!(pred.is_none(), "first pop child has no predecessor");
        // Parent now blocked from consuming (queue view delegated).
        match st.pop_probe(100) {
            Probe::Blocked => {}
            _ => panic!("parent must not pop while a pop child is live"),
        }
        // The child consumes...
        pop_expect(&mut st, 101, 1);
        st.complete(101);
        // ...and the parent regains access.
        match st.pop_probe(100) {
            Probe::Empty => {}
            _ => panic!("no producers left: Empty"),
        }
    }

    #[test]
    fn rule3_second_pop_child_names_first_as_predecessor() {
        let (mut st, owner) = state_with_owner(4);
        let c1 = Frame::new_child(&owner, FrameId(101));
        let c2 = Frame::new_child(&owner, FrameId(102));
        assert!(st.spawn_transfer(100, &c1, Mode::Pop).is_none());
        assert_eq!(st.spawn_transfer(100, &c2, Mode::Pop), Some(FrameId(101)));
        // pushpop also participates in the pop chain.
        let c3 = Frame::new_child(&owner, FrameId(103));
        assert_eq!(
            st.spawn_transfer(100, &c3, Mode::PushPop),
            Some(FrameId(102))
        );
    }

    #[test]
    #[should_panic(expected = "push privileges")]
    fn privilege_subsetting_is_enforced() {
        let (mut st, owner) = state_with_owner(4);
        let c = Frame::new_child(&owner, FrameId(101));
        st.spawn_transfer(100, &c, Mode::Pop);
        // A pop-only child trying to delegate push privileges must panic.
        let gc = Frame::new_child(&c, FrameId(102));
        st.spawn_transfer(101, &gc, Mode::Push);
    }

    #[test]
    fn nested_producers_preserve_order() {
        // owner -> A(push); A -> A1(push), A2(push); order must be
        // A1's values, A2's values, then A's own later pushes.
        let (mut st, owner) = state_with_owner(4);
        let a = Frame::new_child(&owner, FrameId(101));
        st.spawn_transfer(100, &a, Mode::Push);
        let a1 = Frame::new_child(&a, FrameId(102));
        let a2 = Frame::new_child(&a, FrameId(103));
        st.spawn_transfer(101, &a1, Mode::Push);
        st.spawn_transfer(101, &a2, Mode::Push);
        push_all(&mut st, 103, &[30]); // A2 first in time
        push_all(&mut st, 102, &[20]);
        push_all(&mut st, 101, &[40]); // A pushes after spawning children
        st.complete(103);
        st.complete(102);
        st.complete(101);
        for v in [20, 30, 40] {
            pop_expect(&mut st, 100, v);
        }
    }

    #[test]
    fn pooled_state_draws_and_returns_segments() {
        let pool = Arc::new(SegmentPool::<u32>::new(2));
        {
            let owner = Frame::new_root(FrameId(100));
            let mut st = QueueState::new(&owner, 2, true, Some(Arc::clone(&pool)));
            push_all(&mut st, 100, &[1, 2, 3, 4, 5]);
            // Cold pool: every segment was a miss (heap allocation).
            assert!(st.stats.segments_allocated >= 2);
            assert_eq!(st.stats.pool_draws, 0);
            drop(st); // values dropped, segments handed to the pool
        }
        let s = pool.stats();
        assert!(s.returned >= 2, "drop must hand segments back: {s:?}");
        assert_eq!(s.available, s.returned);
        {
            // Warm pool: the next state allocates nothing from the heap.
            let owner = Frame::new_root(FrameId(200));
            let mut st = QueueState::new(&owner, 2, true, Some(Arc::clone(&pool)));
            push_all(&mut st, 200, &[7, 8, 9]);
            for v in [7, 8, 9] {
                pop_expect(&mut st, 200, v);
            }
            assert_eq!(st.stats.segments_allocated, 0, "warm pool must serve");
            assert!(st.stats.pool_draws >= 1);
        }
    }

    #[test]
    fn values_survive_destruction() {
        // Destroying a queue with values inside must drop them cleanly
        // (checked under miri-like logic by using Arc counters in the
        // segment test; here we just exercise the path).
        let (mut st, _o) = state_with_owner(4);
        push_all(&mut st, 100, &[1, 2, 3]);
        drop(st); // must not leak or double-free
    }
}
